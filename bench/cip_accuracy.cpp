/**
 * @file
 * Section 5.3: Cache Index Predictor accuracy vs Last-Time-Table size,
 * plus the size-based write predictor's accuracy and the total SRAM
 * budget (< 1 KB).
 *
 * Paper result: read accuracy 93.2% (512 entries) -> 93.8% (2048,
 * the 256-B default) -> 94.1% (8192); write accuracy 95%.
 */

#include <cstdio>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("CIP accuracy vs Last-Time-Table size",
                "DICE (ISCA'17) Section 5.3");

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    std::vector<OrgCell> orgs;
    for (const std::uint32_t entries : {512u, 2048u, 8192u}) {
        SystemConfig cfg = configureDice(defaultBase());
        cfg.l4.comp.cip_entries = entries;
        orgs.push_back({cfg, entries == 2048
                                 ? "dice"
                                 : "dice-ltt" + std::to_string(entries)});
    }
    runSweep(all, orgs);

    std::printf("%-12s %14s %14s %12s\n", "LTT entries", "read acc %",
                "write acc %", "SRAM bytes");
    for (const std::uint32_t entries : {512u, 2048u, 8192u}) {
        SystemConfig cfg = configureDice(defaultBase());
        cfg.l4.comp.cip_entries = entries;
        const std::string key =
            entries == 2048 ? "dice" : "dice-ltt" + std::to_string(entries);
        double racc = 0, wacc = 0;
        for (const auto &name : all) {
            const RunResult &r = runWorkload(name, cfg, key);
            racc += r.cip_read_accuracy;
            wacc += r.cip_write_accuracy;
        }
        std::printf("%-12u %14.1f %14.1f %12u\n", entries,
                    100.0 * racc / all.size(), 100.0 * wacc / all.size(),
                    (entries + 7) / 8);
    }
    std::printf("\nPaper: 93.2%% (512) / 93.8%% (2048, 256 B) / 94.1%% "
                "(8192); writes 95%%.\n");
    return 0;
}
