/**
 * @file
 * Figure 1(f): potential speedup from doubling the DRAM cache's
 * capacity, bandwidth, and both — the limit study motivating
 * compression for bandwidth.
 *
 * Paper result (ALL26 average): 2x capacity ~1.10, 2x bandwidth
 * ~1.15, 2x both ~1.22.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Limit study: doubling DRAM cache capacity / bandwidth",
                "DICE (ISCA'17) Figure 1(f)");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig cap = configure2xCapacity(defaultBase());
    const SystemConfig bw = configure2xBandwidth(defaultBase());
    const SystemConfig both = configure2xBoth(defaultBase());

    runSweep(allNames(), {{base, "base"},
                          {cap, "2xcap"},
                          {bw, "2xbw"},
                          {both, "2x2x"}});

    std::map<std::string, double> s_cap, s_bw, s_both;
    std::vector<std::string> all;
    printColumns({"2xCapacity", "2xBandwidth", "2xBoth"});
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            s_cap[name] = speedupOver(name, base, "base", cap, "2xcap");
            s_bw[name] = speedupOver(name, base, "base", bw, "2xbw");
            s_both[name] = speedupOver(name, base, "base", both, "2x2x");
            printRow(name, {s_cap[name], s_bw[name], s_both[name]});
            all.push_back(name);
        }
    }
    std::printf("\n");
    printRow("ALL26", {geomeanOver(all, s_cap), geomeanOver(all, s_bw),
                       geomeanOver(all, s_both)});
    std::printf("\nPaper (avg): 2xCapacity ~1.10, 2xBW ~1.15, "
                "2xBoth ~1.22\n");
    return 0;
}
