/**
 * @file
 * Standalone sweep-timeline merger.
 *
 * Usage: sweep_timeline <results_dir> [out.json]
 *
 * Reads every participant event journal under <results_dir>/events
 * (written when a sweep runs with DICE_SWEEP_EVENTS=1) and merges them
 * into one Chrome trace-event document — a lane per participant,
 * clocks aligned across processes/hosts — at out.json (default:
 * <results_dir>/timeline.json). Load the output in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * The sweep coordinator runs the same merge automatically after every
 * batch; this tool exists for post-mortems (the coordinator died, or
 * the journals came from another machine) and for re-merging after
 * --join workers appended more events.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/sweep_events.hpp"

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr,
                     "usage: %s <results_dir> [out.json]\n"
                     "  merges <results_dir>/events/*.jsonl into one "
                     "Chrome trace-event file\n",
                     argv[0]);
        return 2;
    }
    const std::filesystem::path results_dir = argv[1];
    const std::filesystem::path out =
        argc == 3 ? std::filesystem::path(argv[2])
                  : results_dir / "timeline.json";

    std::string error;
    dice::TimelineStats stats;
    if (!dice::mergeSweepTimeline(results_dir / "events", out, &error,
                                  &stats)) {
        std::fprintf(stderr, "sweep_timeline: %s\n", error.c_str());
        return 1;
    }
    std::printf("merged %zu participant journal(s), %zu event(s) -> %s\n",
                stats.participants, stats.events,
                out.string().c_str());
    return 0;
}
