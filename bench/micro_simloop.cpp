/**
 * @file
 * google-benchmark microbenchmarks of the simulation loop itself:
 * end-to-end refs/sec of System::run() under each L4 organization of
 * the fig10 comparison, plus System construction cost. Every benchmark
 * reports heap allocations so storage regressions in the hot loop
 * (e.g. a node-based map sneaking back in) show up as a counter jump,
 * not just a slowdown.
 *
 * `micro_simloop --check` runs the steady-state allocation gate used
 * by ctest: it measures allocations per simulated reference in the
 * steady phase (the delta between a long and a short run of the same
 * configuration, so construction and cold-start fills cancel) and
 * fails when the rate exceeds the budget below.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <new>

#include "common/simd.hpp"
#include "common/sweep_events.hpp"
#include "compress/hybrid.hpp"
#include "core/tad.hpp"
#include "harness.hpp"
#include "workloads/arena_store.hpp"
#include "workloads/datagen.hpp"
#include "workloads/trace_arena.hpp"

// Global heap-allocation counter (same scheme as micro_compress).
static std::atomic<std::size_t> g_heap_allocs{0};

// GCC cannot see that the replaced operator new below is the matching
// malloc-based allocator for these frees.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using dice::System;
using dice::SystemConfig;
using namespace dice::bench;

/**
 * Steady-state allocation budget (allocations per simulated L3
 * reference) enforced by `--check`. The dense-set + FlatMap storage
 * brought the node-map model's ~1.9 down to ~0.12; replacing the
 * core model's in-flight deque with a fixed ring removed the
 * remaining block churn, so the budget tightens accordingly.
 */
constexpr double kMaxSteadyAllocsPerRef = 0.12;

/** Workload every sim-loop benchmark replays (paper Table 3's mcf). */
constexpr const char *kWorkload = "mcf";

/**
 * fig10-scale configuration with a fixed reference budget: unlike the
 * table benches this must not follow DICE_BENCH_REFS, or refs/sec
 * comparisons across runs would silently measure different work.
 */
SystemConfig
simBase(std::uint64_t refs_per_core)
{
    SystemConfig cfg = defaultBase();
    cfg.refs_per_core = refs_per_core;
    cfg.warmup_refs_per_core = refs_per_core / 2;
    return cfg;
}

SystemConfig
orgConfig(const std::string &org, std::uint64_t refs_per_core)
{
    SystemConfig cfg = simBase(refs_per_core);
    if (org == "none") {
        cfg.l4.organization = "none";
        return cfg;
    }
    if (org == "alloy")
        return configureBaseline(cfg);
    if (org == "tsi")
        return configureCompressed(cfg, dice::CompressionPolicy::TsiOnly);
    if (org == "dice")
        return configureDice(cfg);
    // Any other registered organization name ("scc", "banshee",
    // "touche", ...) resolves through the registry.
    return configureOrganization(cfg, org);
}

/** Simulated references one System::run() executes (all phases). */
double
refsPerRun(const SystemConfig &cfg)
{
    return static_cast<double>(
        (cfg.refs_per_core + cfg.warmup_refs_per_core) * cfg.num_cores);
}

/// Reports heap allocations per simulated reference as a counter.
class AllocScope
{
public:
    AllocScope(benchmark::State &state, double refs_per_iter)
        : state_(state), refs_per_iter_(refs_per_iter),
          start_(g_heap_allocs.load(std::memory_order_relaxed))
    {
    }

    ~AllocScope()
    {
        const std::size_t n =
            g_heap_allocs.load(std::memory_order_relaxed) - start_;
        state_.counters["heap_allocs_per_ref"] = benchmark::Counter(
            static_cast<double>(n) /
            (refs_per_iter_ *
             static_cast<double>(state_.iterations())));
    }

private:
    benchmark::State &state_;
    double refs_per_iter_;
    std::size_t start_;
};

/** Phase 1: System construction (storage reservation) only. */
void
BM_SimBuild(benchmark::State &state, const std::string &org)
{
    const SystemConfig cfg = orgConfig(org, 10'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    for (auto _ : state) {
        System sys(cfg, profiles);
        benchmark::DoNotOptimize(&sys);
    }
}

/**
 * Phase 2: the full warmup + measurement simulation loop. Long enough
 * (30k refs/core) that steady-state simulation dominates one-time
 * construction, as it does in the paper-scale runs.
 */
void
BM_SimLoop(benchmark::State &state, const std::string &org)
{
    const SystemConfig cfg = orgConfig(org, 30'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const double refs = refsPerRun(cfg);
    AllocScope allocs(state, refs);
    for (auto _ : state) {
        System sys(cfg, profiles);
        dice::RunResult r = sys.run();
        benchmark::DoNotOptimize(&r);
    }
    state.counters["refs_per_sec"] = benchmark::Counter(
        refs * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

/** Stream length one System::run() consumes (prime + all phases). */
std::uint64_t
streamRefs(const SystemConfig &cfg)
{
    return cfg.warmup_refs_per_core + cfg.refs_per_core + 1;
}

/** Packed pre-generation throughput: what the arena pays per miss. */
void
BM_TraceGen(benchmark::State &state)
{
    const SystemConfig cfg = simBase(30'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const double refs = static_cast<double>(streamRefs(cfg)) *
                        static_cast<double>(cfg.num_cores);
    for (auto _ : state) {
        auto set = dice::generateTraceSet(
            profiles, cfg.num_cores, cfg.reference_capacity, cfg.seed,
            streamRefs(cfg), 1);
        benchmark::DoNotOptimize(&set);
    }
    state.counters["refs_per_sec"] = benchmark::Counter(
        refs * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGen);

/** Temp spill directory shared by the two arena-store benchmarks. */
std::filesystem::path
bmArenaDir()
{
    return std::filesystem::temp_directory_path() /
           "dice_bm_arena_store";
}

/**
 * Arena spill throughput (GB/s): serialize + checksum + temp write +
 * atomic rename of one packed trace set — what a generating worker
 * pays once per key on top of the generation itself. Compare against
 * BM_TraceGen to see the spill's share of a cold miss.
 */
void
BM_ArenaSpill(benchmark::State &state)
{
    const SystemConfig cfg = simBase(30'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const auto set = dice::generateTraceSet(
        profiles, cfg.num_cores, cfg.reference_capacity, cfg.seed,
        streamRefs(cfg), 1);
    const dice::ArenaStore store(bmArenaDir());
    const dice::ArenaStoreKey key{kWorkload, cfg.seed, cfg.num_cores,
                                  cfg.reference_capacity,
                                  streamRefs(cfg)};
    std::string blob;
    dice::ArenaStore::serialize(*set, blob);
    for (auto _ : state) {
        const bool ok = store.save(key, *set);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(blob.size()) * state.iterations());
}
BENCHMARK(BM_ArenaSpill);

/**
 * Arena load throughput (GB/s): read + validate + rebuild the packed
 * planes from a warm spill file — what every later process pays
 * instead of regenerating. The refs/sec-equivalent is usually orders
 * of magnitude above BM_TraceGen; that gap is the whole point of the
 * persistent store.
 */
void
BM_ArenaLoad(benchmark::State &state)
{
    const SystemConfig cfg = simBase(30'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const auto set = dice::generateTraceSet(
        profiles, cfg.num_cores, cfg.reference_capacity, cfg.seed,
        streamRefs(cfg), 1);
    const dice::ArenaStore store(bmArenaDir());
    const dice::ArenaStoreKey key{kWorkload, cfg.seed, cfg.num_cores,
                                  cfg.reference_capacity,
                                  streamRefs(cfg)};
    if (!store.save(key, *set)) {
        state.SkipWithError("cannot write spill file");
        return;
    }
    std::string blob;
    dice::ArenaStore::serialize(*set, blob);
    for (auto _ : state) {
        std::shared_ptr<const dice::TraceSet> loaded;
        const bool ok = store.load(key, loaded);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(&loaded);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(blob.size()) * state.iterations());
    std::error_code ec;
    std::filesystem::remove_all(bmArenaDir(), ec);
}
BENCHMARK(BM_ArenaLoad);

/**
 * The simulation loop replaying an arena stream instead of running
 * the generator inline. The refs/sec delta against BM_SimLoop of the
 * same organization is the per-cell trace-generation share a sweep
 * saves on every column after the first.
 */
void
BM_SimLoopReplay(benchmark::State &state, const std::string &org)
{
    const SystemConfig cfg = orgConfig(org, 30'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const auto set = dice::generateTraceSet(
        profiles, cfg.num_cores, cfg.reference_capacity, cfg.seed,
        streamRefs(cfg), 1);
    const double refs = refsPerRun(cfg);
    AllocScope allocs(state, refs);
    for (auto _ : state) {
        System sys(cfg, profiles, set);
        dice::RunResult r = sys.run();
        benchmark::DoNotOptimize(&r);
    }
    state.counters["refs_per_sec"] = benchmark::Counter(
        refs * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

#define DICE_SIM_BENCH(org)                                            \
    BENCHMARK_CAPTURE(BM_SimBuild, org, #org);                         \
    BENCHMARK_CAPTURE(BM_SimLoop, org, #org);                          \
    BENCHMARK_CAPTURE(BM_SimLoopReplay, org, #org)

DICE_SIM_BENCH(none);
DICE_SIM_BENCH(alloy);
DICE_SIM_BENCH(tsi);
DICE_SIM_BENCH(dice);
DICE_SIM_BENCH(scc);
DICE_SIM_BENCH(banshee);
DICE_SIM_BENCH(touche);

#undef DICE_SIM_BENCH

/**
 * The TAD-set scan kernels in isolation: per iteration one hit probe,
 * one miss probe, and one evict + refill on a full wide set (SCC
 * geometry, 32 items — the worst-case scan length). Run it with
 * DICE_FORCE_SCALAR=1 to see the dispatched-vs-scalar kernel delta
 * without the rest of the simulator in the way.
 */
void
BM_SetScan(benchmark::State &state)
{
    constexpr std::uint32_t kItems = 32;
    dice::TadSet set(/*budget_bytes=*/kItems * dice::kAlloyTagBytes,
                     /*max_lines=*/kItems,
                     /*tag_bytes=*/dice::kAlloyTagBytes);
    for (std::uint32_t i = 0; i < kItems; ++i)
        set.insertSingle(/*line=*/std::uint64_t{i} * 2, /*data_bytes=*/0,
                         /*dirty=*/false, /*payload=*/i, /*bai=*/false,
                         /*lru_stamp=*/i + 1);

    dice::WritebackList wbs;
    std::uint64_t stamp = kItems;
    std::uint64_t hit_line = 2 * (kItems - 1);
    for (auto _ : state) {
        const dice::TadLookup hit = set.lookup(hit_line);
        benchmark::DoNotOptimize(hit.found);
        const dice::TadLookup miss = set.lookup(std::uint64_t{1} << 40);
        benchmark::DoNotOptimize(miss.found);
        wbs.clear();
        // Evict the LRU item and refill so occupancy stays at kItems.
        set.evictLru(hit_line, wbs);
        ++stamp;
        set.insertSingle(stamp * 2, 0, false, stamp, false, stamp);
        hit_line = stamp * 2;
    }
    state.SetLabel(dice::simd::backendName());
    state.counters["scans_per_sec"] = benchmark::Counter(
        3.0 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SetScan);

/**
 * Batched size-only codec route over a class-diverse line batch —
 * the FPC prefix classification and BDI delta-width checks that
 * dominate sizeOf() misses. Label reports the active SIMD backend.
 */
void
BM_BatchSize(benchmark::State &state)
{
    constexpr std::size_t kBatch = 64;
    constexpr dice::CompClass kClasses[] = {
        dice::CompClass::Zero, dice::CompClass::Ptr,
        dice::CompClass::Int,  dice::CompClass::C36,
        dice::CompClass::Half, dice::CompClass::Rand,
    };
    dice::Line lines[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
        lines[i] = dice::DataGenerator::synthesize(
            kClasses[i % std::size(kClasses)],
            static_cast<dice::LineAddr>(i), /*version=*/i * 7 + 1);
    }
    const dice::HybridCodec codec;
    std::uint32_t sizes[kBatch];
    for (auto _ : state) {
        codec.compressedSizeBytes(lines, kBatch, sizes);
        benchmark::DoNotOptimize(sizes[0]);
    }
    state.SetLabel(dice::simd::backendName());
    state.counters["lines_per_sec"] = benchmark::Counter(
        static_cast<double>(kBatch) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchSize);

/** Allocations one full System lifetime (construct + run) performs. */
std::size_t
allocsForRun(const SystemConfig &cfg)
{
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const std::size_t start =
        g_heap_allocs.load(std::memory_order_relaxed);
    System sys(cfg, profiles);
    dice::RunResult r = sys.run();
    benchmark::DoNotOptimize(&r);
    return g_heap_allocs.load(std::memory_order_relaxed) - start;
}

/**
 * The ctest allocation gate. Two runs of the fig10 DICE cell differing
 * only in measured references isolate the steady-state allocation
 * rate; a bounded-storage regression (anything that allocates per
 * reference, or a memo that grows without bound) trips the budget.
 */
int
runCheck()
{
    constexpr std::uint64_t kShortRefs = 10'000;
    constexpr std::uint64_t kLongRefs = 4 * kShortRefs;

    SystemConfig short_cfg = orgConfig("dice", kShortRefs);
    SystemConfig long_cfg = orgConfig("dice", kLongRefs);
    // Identical warmup so cold-start fills cancel in the delta, and a
    // cache small enough (16 Ki sets) that the warmup touches every
    // set: per-set storage performs its one-time growth before the
    // measured window, so the delta isolates true per-reference
    // allocation. The fig10-sized cache would still be absorbing
    // first-touch set fills at these reference counts.
    short_cfg.l4.base.capacity = std::uint64_t{1} << 20;
    long_cfg.l4.base.capacity = std::uint64_t{1} << 20;
    long_cfg.warmup_refs_per_core = short_cfg.warmup_refs_per_core;

    const std::size_t short_allocs = allocsForRun(short_cfg);
    const std::size_t long_allocs = allocsForRun(long_cfg);

    const double extra_refs = static_cast<double>(
        (kLongRefs - kShortRefs) * short_cfg.num_cores);
    const std::size_t delta =
        long_allocs > short_allocs ? long_allocs - short_allocs : 0;
    const double per_ref = static_cast<double>(delta) / extra_refs;

    std::printf("micro_simloop --check (16 Ki-set dice cell, simd "
                "backend: %s)\n",
                dice::simd::backendName());
    std::printf("  allocs short run (%llu refs/core): %zu\n",
                static_cast<unsigned long long>(kShortRefs),
                short_allocs);
    std::printf("  allocs long run  (%llu refs/core): %zu\n",
                static_cast<unsigned long long>(kLongRefs), long_allocs);
    std::printf("  steady-state allocs/ref: %.4f (budget %.2f)\n",
                per_ref, kMaxSteadyAllocsPerRef);

    if (per_ref > kMaxSteadyAllocsPerRef) {
        std::printf("  FAIL: simulation loop allocates beyond budget\n");
        return 1;
    }
    std::printf("  OK\n");

    // Sweep-journal hot-path hooks: with no journal open (the
    // DICE_SWEEP_EVENTS-off default) every emitter must early-return
    // before touching the heap, so instrumenting the per-cell loop is
    // free for ordinary bench runs. Hard zero, not a budget.
    {
        dice::SweepJournal &journal = dice::SweepJournal::instance();
        const std::string cell = "mcf_dice";
        const std::size_t start =
            g_heap_allocs.load(std::memory_order_relaxed);
        for (int i = 0; i < 10'000; ++i) {
            journal.claim(cell, false, false, 7);
            journal.begin("simulate", cell);
            journal.phase("simulate", cell, 0, 42);
            journal.lease("refresh", cell, 3);
            journal.arena("disk_hit", cell);
            journal.publish(cell);
        }
        const std::size_t hook_allocs =
            g_heap_allocs.load(std::memory_order_relaxed) - start;
        std::printf("  disabled journal hooks: %zu allocs across 60k "
                    "emits (budget 0)\n",
                    hook_allocs);
        if (hook_allocs != 0) {
            std::printf("  FAIL: disabled sweep-journal emitters touch "
                        "the heap\n");
            return 1;
        }
        std::printf("  OK\n");
    }

    // Trace-generation share of one live fig10-scale cell: the
    // fraction of a cell's wall time the arena saves on every
    // organization column after the first. Informational (timing is
    // machine-dependent), not gated.
    using Clock = std::chrono::steady_clock;
    const SystemConfig cfg = orgConfig("dice", 30'000);
    const auto profiles = workloadProfiles(kWorkload, cfg.num_cores);
    const std::uint64_t stream_refs =
        cfg.warmup_refs_per_core + cfg.refs_per_core + 1;

    const auto t0 = Clock::now();
    const auto set = dice::generateTraceSet(
        profiles, cfg.num_cores, cfg.reference_capacity, cfg.seed,
        stream_refs, 1);
    const auto t1 = Clock::now();
    {
        System sys(cfg, profiles);
        dice::RunResult r = sys.run();
        benchmark::DoNotOptimize(&r);
    }
    const auto t2 = Clock::now();

    const double gen_s = std::chrono::duration<double>(t1 - t0).count();
    const double live_s = std::chrono::duration<double>(t2 - t1).count();
    std::printf("  trace generation: %.3fs packed (%.1f MiB); live "
                "cell %.3fs -> generation share %.1f%%\n",
                gen_s,
                static_cast<double>(set->bytes()) / (1024.0 * 1024.0),
                live_s, 100.0 * gen_s / live_s);
    std::printf("  live cell throughput: %.0f refs/s (informational; "
                "timing is machine-dependent)\n",
                static_cast<double>(stream_refs * cfg.num_cores) /
                    live_s);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0)
            return runCheck();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
