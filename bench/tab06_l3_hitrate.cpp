/**
 * @file
 * Table 6: L3 hit rate of the baseline vs a system with DICE. The
 * free spatial neighbors DICE forwards into L3 lift its hit rate.
 *
 * Paper result: 37.0% baseline -> 43.6% with DICE.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Effect of DICE on L3 hit rate",
                "DICE (ISCA'17) Table 6");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig dice_cfg = configureDice(defaultBase());

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    runSweep(all, {{base, "base"}, {dice_cfg, "dice"}});

    std::map<std::string, double> h_base, h_dice;
    printColumns({"BASE%", "DICE%"});
    for (const auto &name : all) {
        h_base[name] =
            100.0 * runWorkload(name, base, "base").l3_hit_rate;
        h_dice[name] =
            100.0 * runWorkload(name, dice_cfg, "dice").l3_hit_rate;
        printRow(name, {h_base[name], h_dice[name]});
    }
    std::printf("\n");
    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"SPEC RATE", rateNames()},
             {"SPEC MIX", mixNames()},
             {"GAP", gapNames()},
             {"AVG26", all}}) {
        double b = 0, d = 0;
        for (const auto &n : names) {
            b += h_base[n];
            d += h_dice[n];
        }
        printRow(label, {b / names.size(), d / names.size()});
    }
    std::printf("\nPaper (AVG26): 37.0%% -> 43.6%%.\n");
    return 0;
}
