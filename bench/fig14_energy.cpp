/**
 * @file
 * Figure 14: off-chip power, performance, energy, and energy-delay
 * product of TSI / BAI / DICE normalized to the uncompressed baseline.
 *
 * Paper result: DICE reduces energy 24% and EDP 36%; BAI's energy is
 * worse than baseline despite similar performance.
 */

#include <cstdio>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

namespace
{

struct Agg
{
    double power = 0, perf = 0, energy = 0, edp = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Off-chip power / performance / energy / EDP",
                "DICE (ISCA'17) Figure 14");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig tsi =
        configureCompressed(defaultBase(), CompressionPolicy::TsiOnly);
    const SystemConfig bai =
        configureCompressed(defaultBase(), CompressionPolicy::BaiOnly);
    const SystemConfig dice_cfg = configureDice(defaultBase());

    const std::vector<std::pair<std::string, SystemConfig>> orgs = {
        {"base", base}, {"tsi", tsi}, {"bai", bai}, {"dice", dice_cfg}};

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    runSweep(all, {{base, "base"},
                   {tsi, "tsi"},
                   {bai, "bai"},
                   {dice_cfg, "dice"}});

    std::printf("%-10s %12s %12s %12s %12s  (normalized to baseline)\n",
                "org", "power", "perf", "energy", "EDP");
    for (const auto &[tag, cfg] : orgs) {
        std::vector<double> power, perf, energy, edp;
        for (const auto &name : all) {
            const RunResult &b = runWorkload(name, base, "base");
            const RunResult &r = runWorkload(name, cfg, tag);
            power.push_back(r.energy.avg_power_w / b.energy.avg_power_w);
            perf.push_back(weightedSpeedup(b, r));
            energy.push_back(r.energy.total_nj / b.energy.total_nj);
            edp.push_back(r.energy.edp / b.energy.edp);
        }
        std::printf("%-10s %12.3f %12.3f %12.3f %12.3f\n", tag.c_str(),
                    geomean(power), geomean(perf), geomean(energy),
                    geomean(edp));
    }
    std::printf("\nPaper: DICE energy 0.76, EDP 0.64, perf 1.19.\n");
    return 0;
}
