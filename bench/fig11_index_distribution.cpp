/**
 * @file
 * Figure 11: distribution of install-index decisions under DICE. For
 * half of all lines TSI and BAI coincide (the BAI invariance property),
 * so no decision is needed; the rest split between BAI (compressible)
 * and TSI (incompressible) with a skew that follows workload
 * compressibility.
 *
 * Paper result: 50% invariant; remaining lines split ~52% TSI / 48%
 * BAI across ALL26 (libq-like workloads drag toward TSI).
 */

#include <cstdio>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE install-index distribution",
                "DICE (ISCA'17) Figure 11");

    const SystemConfig dice_cfg = configureDice(defaultBase());

    runSweep(allNames(), {{dice_cfg, "dice"}});

    printColumns({"invariant%", "BAI%", "TSI%", "BAI%of-decided"});
    double sum_bai = 0, sum_tsi = 0;
    int count = 0;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            const RunResult &r = runWorkload(name, dice_cfg, "dice");
            const double decided = r.frac_bai + r.frac_tsi;
            const double bai_of_decided =
                decided > 0 ? 100.0 * r.frac_bai / decided : 0.0;
            printRow(name, {100.0 * r.frac_invariant, 100.0 * r.frac_bai,
                            100.0 * r.frac_tsi, bai_of_decided});
            sum_bai += r.frac_bai;
            sum_tsi += r.frac_tsi;
            ++count;
        }
    }
    std::printf("\n");
    const double db = sum_bai / count, dt = sum_tsi / count;
    printRow("ALL26", {100.0 * (1.0 - db - dt) /* approx invariant */,
                       100.0 * db, 100.0 * dt,
                       db + dt > 0 ? 100.0 * db / (db + dt) : 0.0});
    std::printf("\nPaper: ~50%% invariant; decided lines split ~48%% "
                "BAI / 52%% TSI.\n");
    return 0;
}
