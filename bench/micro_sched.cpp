/**
 * @file
 * Scheduler microbenchmark: legacy static index sharding vs the
 * work-stealing claim queue (bench/sweep_queue.hpp), measured over
 * synthetic *sleep-cells* — each "simulation" is a nanosleep of the
 * cell's nominal duration. Sleeping workers do not contend for CPU,
 * so the makespan difference between the two schedulers is visible
 * even on a single-core CI host, where real CPU-bound workers would
 * serialize and erase any scheduling signal.
 *
 * The cell durations are a deterministic heavy-tailed mix (most cells
 * short, a few 10-20x long), which is exactly the shape of a real
 * sweep batch (compressed organizations and big-capacity cells
 * dominate). Static sharding's makespan is the unluckiest shard's sum;
 * the claim queue hands the tail out longest-first and every idle
 * worker steals, so its makespan approaches total/M + longest.
 *
 * Usage: micro_sched [--cells N] [--workers M] [--scale-ms S]
 *                    [--check]
 *
 * --check exits nonzero unless the queue scheduler beats static
 * sharding by at least 1.15x (CI smoke; the margin is deliberately
 * below the typical ~1.3-1.6x so scheduler regressions fail the gate
 * without flaking on timer jitter).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "sweep_queue.hpp"

#include "common/log.hpp"

namespace
{

using dice::bench::QueueCell;
using dice::bench::SweepQueue;

/** Deterministic heavy-tailed duration (ms) for cell @p i. */
unsigned
cellMs(std::size_t i, unsigned scale_ms)
{
    // splitmix-style hash keeps the mix stable across builds.
    std::uint64_t x = i + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    const unsigned r = static_cast<unsigned>(x % 100);
    // 12% of cells are 10-22x long: the batch's expensive tail.
    const unsigned units = r < 12 ? 10 + static_cast<unsigned>(x % 13)
                                  : 1 + static_cast<unsigned>(x % 3);
    return units * scale_ms;
}

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

#ifndef _WIN32

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Fork @p workers children running @p body(index); return the
 *  wall-clock seconds until the last child exits (the makespan). */
template <typename Body>
double
makespan(unsigned workers, Body body)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<pid_t> pids;
    for (unsigned w = 0; w < workers; ++w) {
        const pid_t pid = fork();
        if (pid == 0) {
            body(w);
            _exit(0);
        }
        if (pid > 0)
            pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        waitpid(pid, &status, 0);
    }
    return secondsSince(t0);
}

double
runStatic(std::size_t cells, unsigned workers, unsigned scale_ms)
{
    return makespan(workers, [cells, workers, scale_ms](unsigned w) {
        for (std::size_t i = w; i < cells; i += workers)
            sleepMs(cellMs(i, scale_ms));
    });
}

double
runQueue(const std::filesystem::path &dir, std::size_t cells,
         unsigned workers, unsigned scale_ms)
{
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    return makespan(workers, [&dir, cells, workers,
                              scale_ms](unsigned w) {
        std::vector<QueueCell> qcells;
        qcells.reserve(cells);
        for (std::size_t i = 0; i < cells; ++i)
            qcells.push_back(QueueCell{
                "cell" + std::to_string(i), i,
                static_cast<double>(cellMs(i, scale_ms))});
        SweepQueue q(dir, std::move(qcells), w, workers);
        for (;;) {
            const std::optional<std::size_t> idx = q.claimNext();
            if (!idx) {
                if (q.complete())
                    return;
                sleepMs(5);
                continue;
            }
            sleepMs(cellMs(q.cell(*idx).canonical_index, scale_ms));
            q.publish(*idx, "{}\n");
        }
    });
}

#endif // !_WIN32

} // namespace

int
main(int argc, char **argv)
{
#ifdef _WIN32
    (void)argc;
    (void)argv;
    std::fprintf(stderr, "micro_sched is POSIX-only\n");
    return 0;
#else
    std::size_t cells = 64;
    unsigned workers = 4;
    unsigned scale_ms = 15;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cells" && i + 1 < argc)
            cells = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--workers" && i + 1 < argc)
            workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--scale-ms" && i + 1 < argc)
            scale_ms = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (arg == "--check")
            check = true;
    }
    if (cells == 0 || workers == 0) {
        std::fprintf(stderr, "need --cells > 0 and --workers > 0\n");
        return 2;
    }

    double total_s = 0.0, longest_s = 0.0;
    std::vector<double> shard_s(workers, 0.0);
    for (std::size_t i = 0; i < cells; ++i) {
        const double s = cellMs(i, scale_ms) / 1000.0;
        total_s += s;
        longest_s = std::max(longest_s, s);
        shard_s[i % workers] += s;
    }
    double worst_shard_s = 0.0;
    for (const double s : shard_s)
        worst_shard_s = std::max(worst_shard_s, s);

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("dice_micro_sched." + std::to_string(getpid()));

    const double static_s = runStatic(cells, workers, scale_ms);
    const double queue_s = runQueue(dir, cells, workers, scale_ms);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    const double speedup = queue_s > 0.0 ? static_s / queue_s : 0.0;
    std::printf("cells %zu  workers %u  scale %u ms\n", cells, workers,
                scale_ms);
    std::printf("work total      %7.3f s  (ideal makespan %.3f, "
                "longest cell %.3f)\n",
                total_s, total_s / workers, longest_s);
    std::printf("static makespan %7.3f s  (unluckiest shard %.3f)\n",
                static_s, worst_shard_s);
    std::printf("queue  makespan %7.3f s\n", queue_s);
    std::printf("speedup %.2fx\n", speedup);

    if (check && speedup < 1.15) {
        std::fprintf(stderr,
                     "FAIL: queue scheduler only %.2fx over static "
                     "(need >= 1.15x)\n",
                     speedup);
        return 1;
    }
    return 0;
#endif
}
