/**
 * @file
 * google-benchmark microbenchmarks of the compression substrate:
 * codec throughput per data class, the size-only fast paths the cache
 * model uses, and pair compression. These support the simulator's
 * premise that FPC/BDI decompression is off the critical path.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "compress/cpack.hpp"
#include "compress/hybrid.hpp"
#include "workloads/datagen.hpp"

// Global heap-allocation counter. The size-only codec routes must be
// allocation-free; the benchmarks below report allocations/iteration
// so a regression shows up as a nonzero counter, not just a slowdown.
static std::atomic<std::size_t> g_heap_allocs{0};

// GCC cannot see that the replaced operator new below is the matching
// malloc-based allocator for these frees.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc{};
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

/// Reports heap allocations per benchmark iteration as a counter.
class AllocScope
{
public:
    explicit AllocScope(benchmark::State &state)
        : state_(state),
          start_(g_heap_allocs.load(std::memory_order_relaxed))
    {
    }

    ~AllocScope()
    {
        const std::size_t n =
            g_heap_allocs.load(std::memory_order_relaxed) - start_;
        state_.counters["heap_allocs_per_iter"] = benchmark::Counter(
            static_cast<double>(n) /
            static_cast<double>(state_.iterations()));
    }

private:
    benchmark::State &state_;
    std::size_t start_;
};

using dice::BdiCodec;
using dice::CpackCodec;
using dice::CompClass;
using dice::DataGenerator;
using dice::Encoded;
using dice::FpcCodec;
using dice::HybridCodec;
using dice::Line;
using dice::LineAddr;

Line
lineOfClass(CompClass cls, LineAddr salt)
{
    return DataGenerator::synthesize(cls, salt, 0);
}

void
BM_FpcCompress(benchmark::State &state)
{
    FpcCodec fpc;
    const Line l =
        lineOfClass(static_cast<CompClass>(state.range(0)), 1234);
    for (auto _ : state)
        benchmark::DoNotOptimize(fpc.compress(l));
}
BENCHMARK(BM_FpcCompress)->DenseRange(0, 5);

void
BM_BdiCompress(benchmark::State &state)
{
    BdiCodec bdi;
    const Line l =
        lineOfClass(static_cast<CompClass>(state.range(0)), 1234);
    for (auto _ : state)
        benchmark::DoNotOptimize(bdi.compress(l));
}
BENCHMARK(BM_BdiCompress)->DenseRange(0, 5);

void
BM_HybridSizeOnly(benchmark::State &state)
{
    HybridCodec codec;
    const Line l =
        lineOfClass(static_cast<CompClass>(state.range(0)), 1234);
    AllocScope allocs(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.compressedSizeBytes(l));
}
BENCHMARK(BM_HybridSizeOnly)->DenseRange(0, 5);

void
BM_HybridFullEncode(benchmark::State &state)
{
    HybridCodec codec;
    const Line l =
        lineOfClass(static_cast<CompClass>(state.range(0)), 1234);
    AllocScope allocs(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.compress(l));
}
BENCHMARK(BM_HybridFullEncode)->DenseRange(0, 5);

void
BM_HybridDecompress(benchmark::State &state)
{
    HybridCodec codec;
    const Line l =
        lineOfClass(static_cast<CompClass>(state.range(0)), 1234);
    const Encoded enc = codec.compress(l);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decompress(enc));
}
BENCHMARK(BM_HybridDecompress)->DenseRange(0, 5);

void
BM_PairSizeOnly(benchmark::State &state)
{
    HybridCodec codec;
    const Line a =
        lineOfClass(static_cast<CompClass>(state.range(0)), 2000);
    const Line b =
        lineOfClass(static_cast<CompClass>(state.range(0)), 2001);
    AllocScope allocs(state);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.pairSizeBytes(a, b));
}
BENCHMARK(BM_PairSizeOnly)->DenseRange(0, 5);

void
BM_CpackCompress(benchmark::State &state)
{
    CpackCodec cpack;
    const Line l =
        lineOfClass(static_cast<CompClass>(state.range(0)), 1234);
    for (auto _ : state)
        benchmark::DoNotOptimize(cpack.compress(l));
}
BENCHMARK(BM_CpackCompress)->DenseRange(0, 5);

void
BM_DataSynthesis(benchmark::State &state)
{
    LineAddr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(DataGenerator::synthesize(
            static_cast<CompClass>(state.range(0)), ++line, 0));
    }
}
BENCHMARK(BM_DataSynthesis)->DenseRange(0, 5);

} // namespace

BENCHMARK_MAIN();
