/**
 * @file
 * Shared harness for the paper-reproduction benchmark binaries.
 *
 * Each bench binary declares the L4 organizations it compares, runs
 * every workload of the evaluation suite under each of them, and
 * prints rows in the shape of the paper's figure/table.
 *
 * Every (workload, organization) simulation is independent and
 * deterministic, so the harness exposes a batch API: a binary
 * enumerates all the cells it will need up front (runSweep/runCells)
 * and the harness dispatches them across a DICE_BENCH_JOBS-sized
 * thread pool. Results are memoized twice — in a concurrency-safe
 * in-process map, and persistently in bench_cache/ (written via
 * temp-file + atomic rename, validated by checksum on load) so that
 * concurrently running bench binaries share work and never read torn
 * files. After the batch run, the per-cell accessors (runWorkload,
 * speedupOver) are cheap cache hits.
 *
 * Freshly-simulated cells draw their reference streams from the
 * process-wide TraceArena: each (workload, seed) stream is generated
 * once per sweep and replayed bit-identically by every organization
 * column (DICE_TRACE_ARENA=0 disables; DICE_TRACE_ARENA_BYTES bounds
 * resident stream memory).
 *
 * Observability (all off by default; see README "Telemetry"):
 *  - DICE_STATS_JSON / DICE_STATS_CSV: per-cell stat-registry export
 *    into the named directory, one document per fresh cell.
 *  - DICE_TRACE_OUT: Chrome trace-event JSON of per-worker cell
 *    generate/simulate spans (view in Perfetto).
 *  - DICE_PROGRESS=1: heartbeat line with cells done/total, refs/sec,
 *    and trace-arena residency.
 */

#ifndef DICE_BENCH_HARNESS_HPP
#define DICE_BENCH_HARNESS_HPP

#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/compressed.hpp" // CompressionPolicy
#include "sim/system.hpp"

namespace dice::bench
{

/** A named way of building a SystemConfig (one bar/line per figure). */
struct Organization
{
    std::string name;
    std::function<SystemConfig(const SystemConfig &base)> configure;
};

/** Default scaled system parameters used by all benches. */
SystemConfig defaultBase();

/** Named SystemConfig builders for the standard organizations. */
SystemConfig configureBaseline(SystemConfig base);
SystemConfig configureCompressed(SystemConfig base,
                                 CompressionPolicy policy);
SystemConfig configureDice(SystemConfig base);
SystemConfig configure2xCapacity(SystemConfig base);
SystemConfig configure2xBandwidth(SystemConfig base);
SystemConfig configure2xBoth(SystemConfig base);

/**
 * SystemConfig for any L4Registry organization name ("alloy", "dice",
 * "scc", "banshee", "touche", ...); asserts the name is registered.
 */
SystemConfig configureOrganization(SystemConfig base,
                                   const std::string &org);

/**
 * Extra organization columns requested via DICE_BENCH_ORGS (a comma-
 * separated list of registry names; default empty). fig10/fig13
 * append these after their standard columns, so default stdout stays
 * byte-identical.
 */
std::vector<std::string> extraOrgNames();

/** Per-core profiles of a named workload ("mix3" or a suite name). */
std::vector<WorkloadProfile> workloadProfiles(const std::string &name,
                                              std::uint32_t cores);

/** One simulation cell: a workload replayed under one organization. */
struct SimCell
{
    std::string workload;
    SystemConfig config;
    std::string cache_key;
};

/** An organization paired with its result-cache key. */
struct OrgCell
{
    SystemConfig config;
    std::string cache_key;
};

/** Worker threads the engine uses (DICE_BENCH_JOBS, default ncpu). */
unsigned benchJobs();

/**
 * Enable the distributed sweep engine from the command line. Every
 * bench main calls this first; with no recognized flags it is a no-op
 * and the binary runs serially (in-process thread pool only).
 *
 *  --serve M     Coordinator: each runCells batch is executed by M
 *                re-spawned copies of this binary (posix_spawn), which
 *                pull cells from a shared work-stealing claim queue
 *                (bench/sweep_queue.hpp: O_EXCL lease files, cost-
 *                ordered longest-first, requeue-on-crash) and stream
 *                per-cell results into <cache>/results/ and the shared
 *                persistent caches. The coordinator merges in
 *                canonical cell order, so its stdout and merged
 *                documents are byte-identical to a serial run even
 *                when workers crash or extra workers join.
 *  --worker i/M  Worker i of M (spawned by --serve; not for hand use).
 *  --batch B     The runCells batch index a worker owns.
 *  --join DIR    Attach to an in-flight sweep whose results directory
 *                is DIR (possibly from another machine sharing the
 *                filesystem): steal pending cells from its claim
 *                queue, publish them, and exit. Own stdout is
 *                suppressed — the coordinator renders the figure.
 *
 * Related environment: DICE_SWEEP_RESULTS overrides the results
 * directory, DICE_SWEEP_MERGED names a canonical merged JSON document
 * written (serially or distributed) after every batch,
 * DICE_SWEEP_LEASE_STALE_S (default 30) is the lease staleness
 * threshold for requeueing a dead holder's cells, and
 * DICE_SWEEP_STATIC=1 reverts to the legacy static index-mod-M
 * sharding (no stealing) for A/B comparison. Every distributed batch
 * leaves <results>/sweep_summary.json describing how it executed:
 * scheduler, total stolen/requeued, per-participant cells, busy/span
 * seconds, utilization, trace-arena counters, merged per-phase
 * latency percentiles (phase_latency_us), the slowest cell, and
 * anomaly warnings (straggler threshold DICE_SWEEP_STRAGGLER_K,
 * default 4 x p90). DICE_SWEEP_EVENTS=1 additionally journals every
 * participant's events to <results>/events/*.jsonl and merges them
 * into a Chrome trace at <results>/timeline.json (override with
 * DICE_SWEEP_TIMELINE); see README "Sweep observability".
 */
void initSweepMode(int argc, char **argv);

/**
 * Simulate every cell (deduplicated by workload|cache_key) across a
 * benchJobs()-sized thread pool, populating both memoization layers.
 * Results are bit-identical to a serial run: each cell's System is
 * self-contained and seeded from its own config.
 */
void runCells(const std::vector<SimCell> &cells);

/** Batch-run the cross product of @p workloads and @p orgs. */
void runSweep(const std::vector<std::string> &workloads,
              const std::vector<OrgCell> &orgs);

/** Run one workload under one configuration (memoized, thread-safe). */
const RunResult &runWorkload(const std::string &workload,
                             const SystemConfig &config,
                             const std::string &cache_key);

/**
 * Speedup of config over the uncompressed Alloy baseline for a
 * workload (weighted speedup, as in the paper).
 */
double speedupOver(const std::string &workload,
                   const SystemConfig &base_cfg,
                   const std::string &base_key,
                   const SystemConfig &test_cfg,
                   const std::string &test_key);

/** Workload-name groups used in every table. */
const std::vector<std::string> &rateNames();
const std::vector<std::string> &mixNames();
const std::vector<std::string> &gapNames();

/** All 26 evaluation workloads in RATE, MIX, GAP order. */
std::vector<std::string> allNames();

/** Geomean over a set of named per-workload values. */
double geomeanOver(const std::vector<std::string> &names,
                   const std::map<std::string, double> &values);

/** Print a header naming the figure/table being reproduced. */
void printHeader(const std::string &title, const std::string &paper_ref);

/** Print one row: workload name + columns at fixed width. */
void printRow(const std::string &name,
              const std::vector<double> &values,
              const std::vector<std::string> &suffix = {});

/** Print the column legend. */
void printColumns(const std::vector<std::string> &names);

namespace detail
{

/**
 * Persist @p r at @p path crash- and race-safely: the serialized
 * result plus a trailing checksum is written to a unique temp file in
 * the same directory and atomically renamed into place. Fails silently
 * (the persistent cache is an optimization, not a correctness layer).
 */
void saveResult(const std::filesystem::path &path, const RunResult &r);

/**
 * Load a persisted result. Returns false — a cache miss — for missing,
 * truncated, corrupted, or checksum-mismatching files.
 */
bool loadResult(const std::filesystem::path &path, RunResult &r);

/**
 * Stable golden digest of a result: FNV-1a over its canonical
 * serialization. Identical across processes and across cache
 * round-trips, so a distributed sweep can be diffed against a serial
 * one digest-by-digest.
 */
std::uint64_t resultDigest(const RunResult &r);

} // namespace detail

} // namespace dice::bench

#endif // DICE_BENCH_HARNESS_HPP
