/**
 * @file
 * Shared harness for the paper-reproduction benchmark binaries.
 *
 * Each bench binary declares the L4 organizations it compares, runs
 * every workload of the evaluation suite under each of them, and
 * prints rows in the shape of the paper's figure/table. Results are
 * cached per (workload, organization) within a process so binaries
 * that report several aggregates do not re-simulate.
 */

#ifndef DICE_BENCH_HARNESS_HPP
#define DICE_BENCH_HARNESS_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/system.hpp"

namespace dice::bench
{

/** A named way of building a SystemConfig (one bar/line per figure). */
struct Organization
{
    std::string name;
    std::function<SystemConfig(const SystemConfig &base)> configure;
};

/** Default scaled system parameters used by all benches. */
SystemConfig defaultBase();

/** Named SystemConfig builders for the standard organizations. */
SystemConfig configureBaseline(SystemConfig base);
SystemConfig configureCompressed(SystemConfig base,
                                 CompressionPolicy policy);
SystemConfig configureDice(SystemConfig base);
SystemConfig configure2xCapacity(SystemConfig base);
SystemConfig configure2xBandwidth(SystemConfig base);
SystemConfig configure2xBoth(SystemConfig base);

/** Per-core profiles of a named workload ("mix3" or a suite name). */
std::vector<WorkloadProfile> workloadProfiles(const std::string &name,
                                              std::uint32_t cores);

/** Run one workload under one configuration (memoized per process). */
const RunResult &runWorkload(const std::string &workload,
                             const SystemConfig &config,
                             const std::string &cache_key);

/**
 * Speedup of config over the uncompressed Alloy baseline for a
 * workload (weighted speedup, as in the paper).
 */
double speedupOver(const std::string &workload,
                   const SystemConfig &base_cfg,
                   const std::string &base_key,
                   const SystemConfig &test_cfg,
                   const std::string &test_key);

/** Workload-name groups used in every table. */
const std::vector<std::string> &rateNames();
const std::vector<std::string> &mixNames();
const std::vector<std::string> &gapNames();

/** Geomean over a set of named per-workload values. */
double geomeanOver(const std::vector<std::string> &names,
                   const std::map<std::string, double> &values);

/** Print a header naming the figure/table being reproduced. */
void printHeader(const std::string &title, const std::string &paper_ref);

/** Print one row: workload name + columns at fixed width. */
void printRow(const std::string &name,
              const std::vector<double> &values,
              const std::vector<std::string> &suffix = {});

/** Print the column legend. */
void printColumns(const std::vector<std::string> &names);

} // namespace dice::bench

#endif // DICE_BENCH_HARNESS_HPP
