/**
 * @file
 * Figure 10: speedup of compressed-cache TSI, BAI, and DICE over the
 * uncompressed Alloy baseline, against the 2x-capacity/2x-bandwidth
 * limit, per workload and for RATE/MIX/GAP/ALL26 geomeans.
 *
 * Paper result: TSI +7%, BAI +0.1%, DICE +19.0%, 2x-both +21.9%.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Compressed DRAM cache speedup: TSI vs BAI vs DICE",
                "DICE (ISCA'17) Figure 10");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig tsi =
        configureCompressed(defaultBase(), CompressionPolicy::TsiOnly);
    const SystemConfig bai =
        configureCompressed(defaultBase(), CompressionPolicy::BaiOnly);
    const SystemConfig dice_cfg = configureDice(defaultBase());
    const SystemConfig both = configure2xBoth(defaultBase());

    // Batch-simulate every cell across the thread pool up front; the
    // per-cell reads below are then memoized lookups.
    runSweep(allNames(), {{base, "base"},
                          {tsi, "tsi"},
                          {bai, "bai"},
                          {dice_cfg, "dice"},
                          {both, "2x2x"}});

    std::map<std::string, double> s_tsi, s_bai, s_dice, s_both;

    printColumns({"TSI", "BAI", "DICE", "2xCap+2xBW"});
    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            s_tsi[name] = speedupOver(name, base, "base", tsi, "tsi");
            s_bai[name] = speedupOver(name, base, "base", bai, "bai");
            s_dice[name] =
                speedupOver(name, base, "base", dice_cfg, "dice");
            s_both[name] = speedupOver(name, base, "base", both, "2x2x");
            printRow(name, {s_tsi[name], s_bai[name], s_dice[name],
                            s_both[name]});
            all.push_back(name);
        }
    }

    std::printf("\n");
    printRow("RATE", {geomeanOver(rateNames(), s_tsi),
                      geomeanOver(rateNames(), s_bai),
                      geomeanOver(rateNames(), s_dice),
                      geomeanOver(rateNames(), s_both)});
    printRow("MIX", {geomeanOver(mixNames(), s_tsi),
                     geomeanOver(mixNames(), s_bai),
                     geomeanOver(mixNames(), s_dice),
                     geomeanOver(mixNames(), s_both)});
    printRow("GAP", {geomeanOver(gapNames(), s_tsi),
                     geomeanOver(gapNames(), s_bai),
                     geomeanOver(gapNames(), s_dice),
                     geomeanOver(gapNames(), s_both)});
    printRow("ALL26", {geomeanOver(all, s_tsi), geomeanOver(all, s_bai),
                       geomeanOver(all, s_dice), geomeanOver(all, s_both)});

    std::printf("\nPaper (ALL26): TSI 1.07, BAI 1.001, DICE 1.190, "
                "2xBoth 1.219\n");
    return 0;
}
