/**
 * @file
 * Figure 10: speedup of compressed-cache TSI, BAI, and DICE over the
 * uncompressed Alloy baseline, against the 2x-capacity/2x-bandwidth
 * limit, per workload and for RATE/MIX/GAP/ALL26 geomeans.
 *
 * Extra organization columns (e.g. banshee, touche) can be appended
 * via DICE_BENCH_ORGS=name[,name...]; the default output is unchanged.
 *
 * Paper result: TSI +7%, BAI +0.1%, DICE +19.0%, 2x-both +21.9%.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Compressed DRAM cache speedup: TSI vs BAI vs DICE",
                "DICE (ISCA'17) Figure 10");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig tsi =
        configureCompressed(defaultBase(), CompressionPolicy::TsiOnly);
    const SystemConfig bai =
        configureCompressed(defaultBase(), CompressionPolicy::BaiOnly);
    const SystemConfig dice_cfg = configureDice(defaultBase());
    const SystemConfig both = configure2xBoth(defaultBase());

    const std::vector<std::string> extras = extraOrgNames();
    std::vector<SystemConfig> extra_cfgs;
    for (const std::string &org : extras)
        extra_cfgs.push_back(configureOrganization(defaultBase(), org));

    // Batch-simulate every cell across the thread pool up front; the
    // per-cell reads below are then memoized lookups.
    std::vector<OrgCell> orgs = {{base, "base"},
                                 {tsi, "tsi"},
                                 {bai, "bai"},
                                 {dice_cfg, "dice"},
                                 {both, "2x2x"}};
    for (std::size_t i = 0; i < extras.size(); ++i)
        orgs.push_back({extra_cfgs[i], extras[i]});
    runSweep(allNames(), orgs);

    std::map<std::string, double> s_tsi, s_bai, s_dice, s_both;
    std::vector<std::map<std::string, double>> s_extra(extras.size());

    std::vector<std::string> columns = {"TSI", "BAI", "DICE",
                                        "2xCap+2xBW"};
    columns.insert(columns.end(), extras.begin(), extras.end());
    printColumns(columns);
    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            s_tsi[name] = speedupOver(name, base, "base", tsi, "tsi");
            s_bai[name] = speedupOver(name, base, "base", bai, "bai");
            s_dice[name] =
                speedupOver(name, base, "base", dice_cfg, "dice");
            s_both[name] = speedupOver(name, base, "base", both, "2x2x");
            std::vector<double> row = {s_tsi[name], s_bai[name],
                                       s_dice[name], s_both[name]};
            for (std::size_t i = 0; i < extras.size(); ++i) {
                s_extra[i][name] = speedupOver(name, base, "base",
                                               extra_cfgs[i], extras[i]);
                row.push_back(s_extra[i][name]);
            }
            printRow(name, row);
            all.push_back(name);
        }
    }

    const auto summaryRow = [&](const std::string &label,
                                const std::vector<std::string> &names) {
        std::vector<double> row = {geomeanOver(names, s_tsi),
                                   geomeanOver(names, s_bai),
                                   geomeanOver(names, s_dice),
                                   geomeanOver(names, s_both)};
        for (const auto &s : s_extra)
            row.push_back(geomeanOver(names, s));
        printRow(label, row);
    };

    std::printf("\n");
    summaryRow("RATE", rateNames());
    summaryRow("MIX", mixNames());
    summaryRow("GAP", gapNames());
    summaryRow("ALL26", all);

    std::printf("\nPaper (ALL26): TSI 1.07, BAI 1.001, DICE 1.190, "
                "2xBoth 1.219\n");
    return 0;
}
