/**
 * @file
 * Ablation of DICE's ingredients (not a paper table; supports the
 * design discussion of Sections 4-5):
 *
 *  - full DICE;
 *  - without forwarding the free neighbor into L3 (bandwidth benefit
 *    only inside the L4);
 *  - without shared-tag pair compression (singles only);
 *  - with a degenerate 1-entry CIP (always follows the last access).
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE ingredient ablation", "supporting study");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig full = configureDice(defaultBase());
    SystemConfig no_extra = configureDice(defaultBase());
    no_extra.extra_line_to_l3 = false;
    SystemConfig no_pairs = configureDice(defaultBase());
    no_pairs.l4.comp.pair_compression = false;
    SystemConfig tiny_cip = configureDice(defaultBase());
    tiny_cip.l4.comp.cip_entries = 1;

    const std::vector<std::pair<std::string, const SystemConfig *>>
        orgs = {{"DICE", &full},
                {"no-L3-extra", &no_extra},
                {"no-pairs", &no_pairs},
                {"1-entry-CIP", &tiny_cip}};

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    std::vector<OrgCell> sweep = {{base, "base"}};
    for (const auto &[tag, cfg] : orgs)
        sweep.push_back({*cfg, tag == "DICE" ? "dice" : "abl-" + tag});
    runSweep(all, sweep);

    std::map<std::string, std::map<std::string, double>> s;
    for (const auto &[tag, cfg] : orgs) {
        const std::string key = tag == "DICE" ? "dice" : "abl-" + tag;
        for (const auto &name : all)
            s[tag][name] = speedupOver(name, base, "base", *cfg, key);
    }

    std::printf("%-12s %12s %12s %12s %12s\n", "group", "DICE",
                "no-L3-extra", "no-pairs", "1-entry-CIP");
    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"SPEC RATE", rateNames()},
             {"SPEC MIX", mixNames()},
             {"GAP", gapNames()},
             {"GMEAN26", all}}) {
        printRow(label, {geomeanOver(names, s["DICE"]),
                         geomeanOver(names, s["no-L3-extra"]),
                         geomeanOver(names, s["no-pairs"]),
                         geomeanOver(names, s["1-entry-CIP"])});
    }
    return 0;
}
