#include "sweep_queue.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <unordered_set>

#include "common/claim_file.hpp"
#include "common/log.hpp"

namespace dice::bench
{

namespace
{

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Microseconds since @p t0. */
std::uint64_t
elapsedUs(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

std::uint64_t
SweepQueue::leaseStaleSeconds()
{
    if (const char *env = std::getenv("DICE_SWEEP_LEASE_STALE_S")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 30;
}

std::filesystem::path
SweepQueue::docPath(const std::filesystem::path &results_dir,
                    const std::string &stem)
{
    return results_dir / (stem + ".cell.json");
}

std::filesystem::path
SweepQueue::leasePath(const std::filesystem::path &results_dir,
                      const std::string &stem)
{
    return results_dir / "leases" / (stem + ".lease");
}

void
SweepQueue::resetCell(const std::filesystem::path &results_dir,
                      const std::string &stem)
{
    std::error_code ec;
    std::filesystem::remove(docPath(results_dir, stem), ec);
    std::filesystem::remove(leasePath(results_dir, stem), ec);
}

SweepQueue::SweepQueue(std::filesystem::path results_dir,
                       std::vector<QueueCell> cells, unsigned home_shard,
                       unsigned shard_count)
    : results_dir_(std::move(results_dir)),
      lease_dir_(results_dir_ / "leases"), cells_(std::move(cells)),
      home_shard_(home_shard), shard_count_(shard_count),
      state_(cells_.size(), State::Pending)
{
    std::error_code ec;
    std::filesystem::create_directories(lease_dir_, ec);

    // Longest-expected-first hands the batch's expensive tail out
    // immediately; ties fall back to canonical order so the schedule
    // is deterministic across participants.
    cost_order_.resize(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i)
        cost_order_[i] = i;
    std::stable_sort(cost_order_.begin(), cost_order_.end(),
                     [this](std::size_t a, std::size_t b) {
                         if (cells_[a].cost != cells_[b].cost)
                             return cells_[a].cost > cells_[b].cost;
                         return cells_[a].canonical_index <
                                cells_[b].canonical_index;
                     });

    refresher_ = std::thread([this] { refresherLoop(); });
}

SweepQueue::~SweepQueue()
{
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    refresher_cv_.notify_all();
    if (refresher_.joinable())
        refresher_.join();

    // Leases still held name cells this participant claimed but never
    // published (an exiting worker mid-teardown): release them so
    // peers reclaim immediately instead of waiting out staleness.
    std::error_code ec;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (state_[i] == State::Held) {
            std::filesystem::remove(leasePath(results_dir_,
                                              cells_[i].stem),
                                    ec);
            SweepJournal::instance().lease("release", cells_[i].stem,
                                           0);
        }
    }
}

void
SweepQueue::markDoneLocked(std::size_t idx)
{
    if (state_[idx] != State::Done) {
        state_[idx] = State::Done;
        ++done_;
    }
}

std::optional<std::size_t>
SweepQueue::claimNext(std::uint64_t wait_us)
{
    std::lock_guard lock(mu_);
    const std::uint64_t stale_s = leaseStaleSeconds();
    for (const std::size_t idx : cost_order_) {
        if (state_[idx] != State::Pending)
            continue;
        const QueueCell &c = cells_[idx];
        if (std::filesystem::exists(docPath(results_dir_, c.stem))) {
            markDoneLocked(idx);
            continue;
        }

        const std::filesystem::path lease =
            leasePath(results_dir_, c.stem);
        const auto acquire_t0 = std::chrono::steady_clock::now();
        ClaimAttempt attempt = createClaimFile(lease);
        bool via_requeue = false;
        if (attempt == ClaimAttempt::Busy) {
            if (claimFileLive(lease, stale_s))
                continue; // live holder: steal something else
            // The lease is gone or stale — but publish() writes the
            // document *before* releasing the lease, so a holder that
            // just finished is distinguishable from one that crashed:
            // recheck the document before declaring a requeue.
            if (std::filesystem::exists(
                    docPath(results_dir_, c.stem))) {
                markDoneLocked(idx);
                continue;
            }
            // Expired lease: the holder crashed or wedged. Break it
            // and retake via O_EXCL so racing breakers cannot both
            // win; losing the retake means a peer got there first.
            dice_warn("sweep: requeueing cell %s (lease holder "
                      "dead or stale)",
                      c.stem.c_str());
            SweepJournal::instance().lease("break", c.stem, 0);
            std::error_code ec;
            std::filesystem::remove(lease, ec);
            attempt = createClaimFile(lease);
            via_requeue = attempt == ClaimAttempt::Acquired;
            if (attempt == ClaimAttempt::Busy)
                continue;
        }
        // Acquired — or Error (unclaimable results dir: read-only or
        // no O_EXCL). On Error every participant degrades to claiming
        // everything in-process; they duplicate work but each still
        // completes the batch by itself.
        state_[idx] = State::Held;
        ++stats_.claimed;
        if (via_requeue)
            ++stats_.requeued;
        const bool stolen =
            shard_count_ == 0 ||
            c.canonical_index % shard_count_ != home_shard_;
        if (stolen)
            ++stats_.stolen;
        SweepMetrics::instance().sample(SweepPhase::LeaseAcquire,
                                        elapsedUs(acquire_t0));
        SweepMetrics::instance().sample(SweepPhase::ClaimWait, wait_us);
        SweepJournal::instance().claim(c.stem, stolen, via_requeue,
                                       wait_us);
        return idx;
    }
    return std::nullopt;
}

void
SweepQueue::publish(std::size_t idx, const std::string &doc)
{
    dice_assert(idx < cells_.size(), "bad queue cell index");
    const QueueCell &c = cells_[idx];
    if (!atomicWriteFile(docPath(results_dir_, c.stem), doc))
        dice_warn("sweep: cannot publish cell doc %s", c.stem.c_str());
    std::error_code ec;
    std::filesystem::remove(leasePath(results_dir_, c.stem), ec);
    SweepJournal::instance().publish(c.stem);
    SweepJournal::instance().lease("release", c.stem, 0);

    std::lock_guard lock(mu_);
    dice_assert(state_[idx] == State::Held,
                "publishing a cell that was not claimed");
    ++stats_.published;
    markDoneLocked(idx);
}

std::size_t
SweepQueue::doneCount()
{
    std::lock_guard lock(mu_);
    if (done_ == cells_.size())
        return done_;
    // Throttle the filesystem rescan: idle claim loops poll complete()
    // every ~50 ms, and one exists() per pending cell per poll adds up
    // on large batches.
    const double now = monotonicSeconds();
    if (last_scan_s_ >= 0.0 && now - last_scan_s_ < 0.2)
        return done_;
    last_scan_s_ = now;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (state_[i] == State::Pending &&
            std::filesystem::exists(
                docPath(results_dir_, cells_[i].stem)))
            markDoneLocked(i);
    }
    return done_;
}

QueueStats
SweepQueue::stats() const
{
    std::lock_guard lock(mu_);
    return stats_;
}

void
SweepQueue::refresherLoop()
{
    // Refresh held leases well under the staleness threshold so a
    // long-simulating holder is never mistaken for a dead one.
    std::unique_lock lock(mu_);
    for (;;) {
        const auto interval = std::chrono::milliseconds(
            std::min<std::uint64_t>(5'000,
                                    leaseStaleSeconds() * 1'000 / 3) +
            1);
        if (refresher_cv_.wait_for(lock, interval,
                                   [this] { return stop_; }))
            return;
        for (std::size_t i = 0; i < cells_.size(); ++i) {
            if (state_[i] == State::Held) {
                const auto t0 = std::chrono::steady_clock::now();
                refreshClaimFile(
                    leasePath(results_dir_, cells_[i].stem));
                const std::uint64_t us = elapsedUs(t0);
                SweepMetrics::instance().sample(
                    SweepPhase::LeaseRefresh, us);
                SweepJournal::instance().lease("refresh",
                                               cells_[i].stem, us);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Participant heartbeat / summary files.

std::string
renderHeartbeat(const HeartbeatRecord &hb)
{
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "batch %lu done %zu total %zu stolen %llu requeued "
                  "%llu busy_ms %llu\n",
                  hb.batch, hb.done, hb.total,
                  static_cast<unsigned long long>(hb.stolen),
                  static_cast<unsigned long long>(hb.requeued),
                  static_cast<unsigned long long>(hb.busy_ms));
    return buf;
}

bool
parseHeartbeat(const std::string &content, HeartbeatRecord &out)
{
    out = HeartbeatRecord{};
    unsigned long long stolen = 0, requeued = 0, busy = 0;
    if (std::sscanf(content.c_str(),
                    "batch %lu done %zu total %zu stolen %llu "
                    "requeued %llu busy_ms %llu",
                    &out.batch, &out.done, &out.total, &stolen,
                    &requeued, &busy) != 6 ||
        out.done > out.total)
        return false;
    out.stolen = stolen;
    out.requeued = requeued;
    out.busy_ms = busy;
    return true;
}

std::string
renderSummary(const SummaryRecord &s)
{
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "batch %lu cells %llu stolen %llu requeued %llu busy_ms %llu "
        "span_ms %llu jobs %u generations %llu disk_hits %llu "
        "spills %llu\n",
        s.batch, static_cast<unsigned long long>(s.cells),
        static_cast<unsigned long long>(s.stolen),
        static_cast<unsigned long long>(s.requeued),
        static_cast<unsigned long long>(s.busy_ms),
        static_cast<unsigned long long>(s.span_ms), s.jobs,
        static_cast<unsigned long long>(s.generations),
        static_cast<unsigned long long>(s.disk_hits),
        static_cast<unsigned long long>(s.spills));
    std::string out = buf;
    for (const auto &[name, h] : s.hists)
        appendHistText(out, name, h);
    if (!s.slowest_cell.empty()) {
        out += "slowest " + s.slowest_cell + " " +
               std::to_string(s.slowest_us) + "\n";
    }
    return out;
}

bool
parseSummary(const std::string &content, SummaryRecord &out)
{
    out = SummaryRecord{};
    std::istringstream in(content);
    std::string line;
    if (!std::getline(in, line))
        return false;
    unsigned long long cells = 0, stolen = 0, requeued = 0;
    unsigned long long busy = 0, span = 0;
    unsigned long long gens = 0, disk = 0, spills = 0;
    if (std::sscanf(line.c_str(),
                    "batch %lu cells %llu stolen %llu requeued "
                    "%llu busy_ms %llu span_ms %llu jobs %u "
                    "generations %llu disk_hits %llu spills %llu",
                    &out.batch, &cells, &stolen, &requeued, &busy,
                    &span, &out.jobs, &gens, &disk, &spills) != 10 ||
        out.jobs == 0)
        return false;
    out.cells = cells;
    out.stolen = stolen;
    out.requeued = requeued;
    out.busy_ms = busy;
    out.span_ms = span;
    out.generations = gens;
    out.disk_hits = disk;
    out.spills = spills;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line.rfind("hist ", 0) == 0) {
            std::string name;
            LogHistogram h;
            // A hist line that fails to parse fails the whole
            // summary: the file kinds are written atomically, so this
            // is garbage, and half-accumulating it would skew totals.
            if (!parseHistLine(line, name, h))
                return false;
            out.hists.emplace_back(std::move(name), h);
        } else if (line.rfind("slowest ", 0) == 0) {
            std::istringstream sl(line);
            std::string tag;
            if (!(sl >> tag >> out.slowest_cell >> out.slowest_us))
                return false;
        }
        // Unknown lines: a newer writer; ignore.
    }
    return true;
}

void
forEachParticipantFile(
    const std::filesystem::path &dir, const std::string &extension,
    bool remove_garbled,
    const std::function<bool(const std::filesystem::path &path,
                             const std::string &content)> &consume)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return;
    std::vector<std::filesystem::path> files;
    for (const auto &entry : it) {
        if (entry.path().extension() == extension)
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const std::filesystem::path &path : files) {
        std::ifstream in(path);
        if (!in)
            continue;
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        if (consume(path, content))
            continue;
        // Warn once per path per process: pollers (progress loops,
        // sweep_top) revisit the same directory several times a
        // second, and one foreign file must not flood stderr.
        static std::mutex warned_mu;
        static std::unordered_set<std::string> warned;
        bool fresh = false;
        {
            std::lock_guard lock(warned_mu);
            fresh = warned.insert(path.string()).second;
        }
        if (fresh) {
            dice_warn("sweep: %s garbled participant file %s",
                      remove_garbled ? "removing" : "ignoring",
                      path.string().c_str());
        }
        if (remove_garbled)
            std::filesystem::remove(path, ec);
    }
}

} // namespace dice::bench
