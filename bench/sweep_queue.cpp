#include "sweep_queue.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/claim_file.hpp"
#include "common/log.hpp"

namespace dice::bench
{

namespace
{

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

std::uint64_t
SweepQueue::leaseStaleSeconds()
{
    if (const char *env = std::getenv("DICE_SWEEP_LEASE_STALE_S")) {
        const std::uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 30;
}

std::filesystem::path
SweepQueue::docPath(const std::filesystem::path &results_dir,
                    const std::string &stem)
{
    return results_dir / (stem + ".cell.json");
}

std::filesystem::path
SweepQueue::leasePath(const std::filesystem::path &results_dir,
                      const std::string &stem)
{
    return results_dir / "leases" / (stem + ".lease");
}

void
SweepQueue::resetCell(const std::filesystem::path &results_dir,
                      const std::string &stem)
{
    std::error_code ec;
    std::filesystem::remove(docPath(results_dir, stem), ec);
    std::filesystem::remove(leasePath(results_dir, stem), ec);
}

SweepQueue::SweepQueue(std::filesystem::path results_dir,
                       std::vector<QueueCell> cells, unsigned home_shard,
                       unsigned shard_count)
    : results_dir_(std::move(results_dir)),
      lease_dir_(results_dir_ / "leases"), cells_(std::move(cells)),
      home_shard_(home_shard), shard_count_(shard_count),
      state_(cells_.size(), State::Pending)
{
    std::error_code ec;
    std::filesystem::create_directories(lease_dir_, ec);

    // Longest-expected-first hands the batch's expensive tail out
    // immediately; ties fall back to canonical order so the schedule
    // is deterministic across participants.
    cost_order_.resize(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i)
        cost_order_[i] = i;
    std::stable_sort(cost_order_.begin(), cost_order_.end(),
                     [this](std::size_t a, std::size_t b) {
                         if (cells_[a].cost != cells_[b].cost)
                             return cells_[a].cost > cells_[b].cost;
                         return cells_[a].canonical_index <
                                cells_[b].canonical_index;
                     });

    refresher_ = std::thread([this] { refresherLoop(); });
}

SweepQueue::~SweepQueue()
{
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    refresher_cv_.notify_all();
    if (refresher_.joinable())
        refresher_.join();

    // Leases still held name cells this participant claimed but never
    // published (an exiting worker mid-teardown): release them so
    // peers reclaim immediately instead of waiting out staleness.
    std::error_code ec;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (state_[i] == State::Held)
            std::filesystem::remove(leasePath(results_dir_,
                                              cells_[i].stem),
                                    ec);
    }
}

void
SweepQueue::markDoneLocked(std::size_t idx)
{
    if (state_[idx] != State::Done) {
        state_[idx] = State::Done;
        ++done_;
    }
}

std::optional<std::size_t>
SweepQueue::claimNext()
{
    std::lock_guard lock(mu_);
    const std::uint64_t stale_s = leaseStaleSeconds();
    for (const std::size_t idx : cost_order_) {
        if (state_[idx] != State::Pending)
            continue;
        const QueueCell &c = cells_[idx];
        if (std::filesystem::exists(docPath(results_dir_, c.stem))) {
            markDoneLocked(idx);
            continue;
        }

        const std::filesystem::path lease =
            leasePath(results_dir_, c.stem);
        ClaimAttempt attempt = createClaimFile(lease);
        bool via_requeue = false;
        if (attempt == ClaimAttempt::Busy) {
            if (claimFileLive(lease, stale_s))
                continue; // live holder: steal something else
            // The lease is gone or stale — but publish() writes the
            // document *before* releasing the lease, so a holder that
            // just finished is distinguishable from one that crashed:
            // recheck the document before declaring a requeue.
            if (std::filesystem::exists(
                    docPath(results_dir_, c.stem))) {
                markDoneLocked(idx);
                continue;
            }
            // Expired lease: the holder crashed or wedged. Break it
            // and retake via O_EXCL so racing breakers cannot both
            // win; losing the retake means a peer got there first.
            dice_warn("sweep: requeueing cell %s (lease holder "
                      "dead or stale)",
                      c.stem.c_str());
            std::error_code ec;
            std::filesystem::remove(lease, ec);
            attempt = createClaimFile(lease);
            via_requeue = attempt == ClaimAttempt::Acquired;
            if (attempt == ClaimAttempt::Busy)
                continue;
        }
        // Acquired — or Error (unclaimable results dir: read-only or
        // no O_EXCL). On Error every participant degrades to claiming
        // everything in-process; they duplicate work but each still
        // completes the batch by itself.
        state_[idx] = State::Held;
        ++stats_.claimed;
        if (via_requeue)
            ++stats_.requeued;
        if (shard_count_ == 0 ||
            c.canonical_index % shard_count_ != home_shard_)
            ++stats_.stolen;
        return idx;
    }
    return std::nullopt;
}

void
SweepQueue::publish(std::size_t idx, const std::string &doc)
{
    dice_assert(idx < cells_.size(), "bad queue cell index");
    const QueueCell &c = cells_[idx];
    if (!atomicWriteFile(docPath(results_dir_, c.stem), doc))
        dice_warn("sweep: cannot publish cell doc %s", c.stem.c_str());
    std::error_code ec;
    std::filesystem::remove(leasePath(results_dir_, c.stem), ec);

    std::lock_guard lock(mu_);
    dice_assert(state_[idx] == State::Held,
                "publishing a cell that was not claimed");
    ++stats_.published;
    markDoneLocked(idx);
}

std::size_t
SweepQueue::doneCount()
{
    std::lock_guard lock(mu_);
    if (done_ == cells_.size())
        return done_;
    // Throttle the filesystem rescan: idle claim loops poll complete()
    // every ~50 ms, and one exists() per pending cell per poll adds up
    // on large batches.
    const double now = monotonicSeconds();
    if (last_scan_s_ >= 0.0 && now - last_scan_s_ < 0.2)
        return done_;
    last_scan_s_ = now;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (state_[i] == State::Pending &&
            std::filesystem::exists(
                docPath(results_dir_, cells_[i].stem)))
            markDoneLocked(i);
    }
    return done_;
}

QueueStats
SweepQueue::stats() const
{
    std::lock_guard lock(mu_);
    return stats_;
}

void
SweepQueue::refresherLoop()
{
    // Refresh held leases well under the staleness threshold so a
    // long-simulating holder is never mistaken for a dead one.
    std::unique_lock lock(mu_);
    for (;;) {
        const auto interval = std::chrono::milliseconds(
            std::min<std::uint64_t>(5'000,
                                    leaseStaleSeconds() * 1'000 / 3) +
            1);
        if (refresher_cv_.wait_for(lock, interval,
                                   [this] { return stop_; }))
            return;
        for (std::size_t i = 0; i < cells_.size(); ++i) {
            if (state_[i] == State::Held)
                refreshClaimFile(
                    leasePath(results_dir_, cells_[i].stem));
        }
    }
}

} // namespace dice::bench
