/**
 * @file
 * Table 8: DICE's benefit across DRAM-cache configurations — the
 * default cache, double capacity, double bandwidth (2x channels), and
 * half latency — each normalized to its own uncompressed counterpart.
 *
 * Paper result (GMEAN26): base +19.0%, 2x capacity +13.2%,
 * 2x bandwidth +24.5%, half latency +24.4%.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

namespace
{

SystemConfig
withHalfLatency(SystemConfig cfg)
{
    DramTiming &b = cfg.l4.base.timing;
    b.tCAS /= 2;
    b.tRCD /= 2;
    b.tRP /= 2;
    b.tRAS /= 2;
    DramTiming &c = cfg.l4.base.timing;
    c.tCAS /= 2;
    c.tRCD /= 2;
    c.tRP /= 2;
    c.tRAS /= 2;
    return cfg;
}

SystemConfig
withDoubleCapacity(SystemConfig cfg)
{
    cfg.l4.base.capacity *= 2;
    cfg.l4.base.capacity *= 2;
    return cfg;
}

SystemConfig
withDoubleBandwidth(SystemConfig cfg)
{
    cfg.l4.base.timing.channels *= 2;
    cfg.l4.base.timing.channels *= 2;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE sensitivity to L4 capacity / bandwidth / latency",
                "DICE (ISCA'17) Table 8");

    struct Variant
    {
        std::string tag;
        SystemConfig cfg;
    };
    const std::vector<Variant> variants = {
        {"base-1x", defaultBase()},
        {"2xcap", withDoubleCapacity(defaultBase())},
        {"2xbw", withDoubleBandwidth(defaultBase())},
        {"halflat", withHalfLatency(defaultBase())},
    };

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    std::vector<OrgCell> sweep;
    for (const Variant &v : variants) {
        const std::string bkey =
            v.tag == "base-1x" ? "base" : "base-" + v.tag;
        const std::string dkey =
            v.tag == "base-1x" ? "dice" : "dice-" + v.tag;
        sweep.push_back({configureBaseline(v.cfg), bkey});
        sweep.push_back({configureDice(v.cfg), dkey});
    }
    runSweep(all, sweep);

    std::map<std::string, std::map<std::string, double>> s;
    for (const Variant &v : variants) {
        const SystemConfig base = configureBaseline(v.cfg);
        const SystemConfig dice_cfg = configureDice(v.cfg);
        const std::string bkey =
            v.tag == "base-1x" ? "base" : "base-" + v.tag;
        const std::string dkey =
            v.tag == "base-1x" ? "dice" : "dice-" + v.tag;
        for (const auto &name : all) {
            s[v.tag][name] =
                speedupOver(name, base, bkey, dice_cfg, dkey);
        }
    }

    std::printf("%-12s %12s %12s %12s %12s\n", "group", "Base(1x)",
                "2xCapacity", "2xBW", "50%Latency");
    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"SPEC RATE", rateNames()},
             {"SPEC MIX", mixNames()},
             {"GAP", gapNames()},
             {"GMEAN26", all}}) {
        printRow(label, {geomeanOver(names, s["base-1x"]),
                         geomeanOver(names, s["2xcap"]),
                         geomeanOver(names, s["2xbw"]),
                         geomeanOver(names, s["halflat"])});
    }
    std::printf("\nPaper (GMEAN26): 1.190 / 1.132 / 1.245 / 1.244.\n");
    return 0;
}
