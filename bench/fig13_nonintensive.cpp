/**
 * @file
 * Figure 13: DICE on the non-memory-intensive SPEC workloads (L3
 * MPKI < 2). Most fit in the on-chip hierarchy; the requirement is
 * that DICE never degrades them.
 *
 * Extra organization columns (e.g. banshee, touche) can be appended
 * via DICE_BENCH_ORGS=name[,name...]; the default output is unchanged.
 *
 * Paper result: ~+2% average, no workload degraded.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE on non-memory-intensive workloads",
                "DICE (ISCA'17) Figure 13");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig dice_cfg = configureDice(defaultBase());

    const std::vector<std::string> extras = extraOrgNames();
    std::vector<SystemConfig> extra_cfgs;
    for (const std::string &org : extras)
        extra_cfgs.push_back(configureOrganization(defaultBase(), org));

    std::vector<std::string> sweep_names;
    for (const WorkloadProfile &p : nonIntensiveSuite())
        sweep_names.push_back(p.name);
    std::vector<OrgCell> orgs = {{base, "base"}, {dice_cfg, "dice"}};
    for (std::size_t i = 0; i < extras.size(); ++i)
        orgs.push_back({extra_cfgs[i], extras[i]});
    runSweep(sweep_names, orgs);

    std::map<std::string, double> s;
    std::vector<std::map<std::string, double>> s_extra(extras.size());
    std::vector<std::string> names;
    std::vector<std::string> columns = {"DICE"};
    columns.insert(columns.end(), extras.begin(), extras.end());
    printColumns(columns);
    for (const WorkloadProfile &p : nonIntensiveSuite()) {
        s[p.name] = speedupOver(p.name, base, "base", dice_cfg, "dice");
        std::vector<double> row = {s[p.name]};
        for (std::size_t i = 0; i < extras.size(); ++i) {
            s_extra[i][p.name] = speedupOver(p.name, base, "base",
                                             extra_cfgs[i], extras[i]);
            row.push_back(s_extra[i][p.name]);
        }
        printRow(p.name, row);
        names.push_back(p.name);
    }
    std::printf("\n");
    std::vector<double> gmean = {geomeanOver(names, s)};
    for (const auto &se : s_extra)
        gmean.push_back(geomeanOver(names, se));
    printRow("GMEAN", gmean);
    std::printf("\nPaper: ~1.02 geomean, no degradation.\n");
    return 0;
}
