/**
 * @file
 * Figure 13: DICE on the non-memory-intensive SPEC workloads (L3
 * MPKI < 2). Most fit in the on-chip hierarchy; the requirement is
 * that DICE never degrades them.
 *
 * Paper result: ~+2% average, no workload degraded.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE on non-memory-intensive workloads",
                "DICE (ISCA'17) Figure 13");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig dice_cfg = configureDice(defaultBase());

    std::vector<std::string> sweep_names;
    for (const WorkloadProfile &p : nonIntensiveSuite())
        sweep_names.push_back(p.name);
    runSweep(sweep_names, {{base, "base"}, {dice_cfg, "dice"}});

    std::map<std::string, double> s;
    std::vector<std::string> names;
    printColumns({"DICE"});
    for (const WorkloadProfile &p : nonIntensiveSuite()) {
        s[p.name] = speedupOver(p.name, base, "base", dice_cfg, "dice");
        printRow(p.name, {s[p.name]});
        names.push_back(p.name);
    }
    std::printf("\n");
    printRow("GMEAN", {geomeanOver(names, s)});
    std::printf("\nPaper: ~1.02 geomean, no degradation.\n");
    return 0;
}
