/**
 * @file
 * Table 4: sensitivity of DICE to the BAI-vs-TSI insertion threshold
 * (32 B / 36 B / 40 B). 36 B is the sweet spot because BDI's B4D2
 * mode produces exactly 36-B singles whose shared-base pairs fit a
 * 72-B TAD.
 *
 * Paper result: +17.5% / +19.0% / +18.3% — 36 B best.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE insertion-threshold sensitivity",
                "DICE (ISCA'17) Table 4");

    const SystemConfig base = configureBaseline(defaultBase());

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    std::vector<OrgCell> orgs = {{base, "base"}};
    for (const std::uint32_t threshold : {32u, 36u, 40u}) {
        SystemConfig cfg = configureDice(defaultBase());
        cfg.l4.comp.threshold_bytes = threshold;
        const std::string key =
            threshold == 36 ? "dice" : "dice-t" + std::to_string(threshold);
        orgs.push_back({cfg, key});
    }
    runSweep(all, orgs);

    std::printf("%-12s %12s %12s %12s\n", "group", "<=32B", "<=36B",
                "<=40B");
    std::map<std::uint32_t, std::map<std::string, double>> speedups;
    for (std::size_t i = 1; i < orgs.size(); ++i) {
        const std::uint32_t threshold =
            orgs[i].config.l4.comp.threshold_bytes;
        for (const auto &name : all) {
            speedups[threshold][name] = speedupOver(
                name, base, "base", orgs[i].config, orgs[i].cache_key);
        }
    }

    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"SPEC RATE", rateNames()},
             {"SPEC MIX", mixNames()},
             {"GAP", gapNames()},
             {"GMEAN26", all}}) {
        printRow(label, {geomeanOver(names, speedups[32]),
                         geomeanOver(names, speedups[36]),
                         geomeanOver(names, speedups[40])});
    }
    std::printf("\nPaper (GMEAN26): 1.175 / 1.190 / 1.183 — 36 B "
                "maximizes performance.\n");
    return 0;
}
