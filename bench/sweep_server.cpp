/**
 * @file
 * Generic sweep driver for distributed runs.
 *
 * Unlike the figure/table binaries, which hard-code one paper plot,
 * this driver takes the sweep shape from the command line, so CI and
 * cluster jobs can run an arbitrary slice serially or sharded and
 * byte-diff the outputs:
 *
 *   sweep_server --sweep fig10 --workloads mcf,lbm --refs 2000
 *   sweep_server --serve 3 --sweep fig10 ...    # 3-worker distributed
 *   sweep_server --join DIR --sweep fig10 ...   # attach extra hands
 *
 * --serve M spawns M workers that drain a shared work-stealing claim
 * queue (see bench/sweep_queue.hpp); --join RESULTS_DIR attaches this
 * process — from this host or any other sharing the filesystem — to
 * an in-flight sweep's queue as an extra worker (pass the same
 * --sweep/--workloads/--refs so it enumerates the same cells).
 * DICE_SWEEP_STATIC=1 selects the legacy static index sharding for
 * scheduler A/B comparisons.
 *
 * Flags (besides the --serve/--worker/--batch/--join sweep flags):
 *   --sweep NAME      Organization set: "fig10" (base/tsi/bai/dice/
 *                     2x2x, the default), "quick" (base/dice), or
 *                     "zoo" (every registry organization: base/tsi/
 *                     bai/dice/scc/banshee/touche). The fig10 cells
 *                     keep the same cache keys in both sweeps, so
 *                     their digest lines byte-diff clean across them.
 *   --workloads CSV   Comma-separated workload names (default: the
 *                     full 26-workload evaluation suite).
 *   --refs N          Shorthand for DICE_BENCH_REFS=N.
 *
 * stdout is one "workload org digest" line per cell, in a fixed
 * order independent of execution mode — identical bytes for a serial
 * and a sharded run of the same sweep. The arena accounting line goes
 * to stderr (it legitimately differs between modes).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness.hpp"
#include "workloads/trace_arena.hpp"

using namespace dice;
using namespace dice::bench;

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string sweep = "fig10";
    std::string workloads_csv;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
            sweep = argv[++i];
        } else if (std::strcmp(argv[i], "--workloads") == 0 &&
                   i + 1 < argc) {
            workloads_csv = argv[++i];
        } else if (std::strcmp(argv[i], "--refs") == 0 && i + 1 < argc) {
#ifndef _WIN32
            setenv("DICE_BENCH_REFS", argv[++i], 1);
#else
            ++i;
#endif
        }
    }
    // After --refs: spawned workers re-parse the same flags, and the
    // env must be set before any SystemConfig is built below.
    initSweepMode(argc, argv);

    std::vector<OrgCell> orgs;
    const SystemConfig base = configureBaseline(defaultBase());
    if (sweep == "fig10") {
        orgs.push_back({base, "base"});
        orgs.push_back({configureCompressed(defaultBase(),
                                            CompressionPolicy::TsiOnly),
                        "tsi"});
        orgs.push_back({configureCompressed(defaultBase(),
                                            CompressionPolicy::BaiOnly),
                        "bai"});
        orgs.push_back({configureDice(defaultBase()), "dice"});
        orgs.push_back({configure2xBoth(defaultBase()), "2x2x"});
    } else if (sweep == "quick") {
        orgs.push_back({base, "base"});
        orgs.push_back({configureDice(defaultBase()), "dice"});
    } else if (sweep == "zoo") {
        // One column per registry organization. The first five reuse
        // the fig10 builders and cache keys, so a zoo sweep's digest
        // lines for them are byte-identical to a fig10 sweep's.
        orgs.push_back({base, "base"});
        orgs.push_back({configureCompressed(defaultBase(),
                                            CompressionPolicy::TsiOnly),
                        "tsi"});
        orgs.push_back({configureCompressed(defaultBase(),
                                            CompressionPolicy::BaiOnly),
                        "bai"});
        orgs.push_back({configureDice(defaultBase()), "dice"});
        for (const char *org : {"scc", "banshee", "touche"})
            orgs.push_back(
                {configureOrganization(defaultBase(), org), org});
    } else {
        std::fprintf(stderr, "sweep_server: unknown --sweep %s "
                             "(try fig10, quick, or zoo)\n",
                     sweep.c_str());
        return 2;
    }

    const std::vector<std::string> names =
        workloads_csv.empty() ? allNames() : splitList(workloads_csv);

    runSweep(names, orgs);

    for (const std::string &w : names) {
        for (const OrgCell &org : orgs) {
            const RunResult &r =
                runWorkload(w, org.config, org.cache_key);
            std::printf("%s %s %llu\n", w.c_str(),
                        org.cache_key.c_str(),
                        static_cast<unsigned long long>(
                            detail::resultDigest(r)));
        }
    }

    const TraceArena::Stats a = TraceArena::instance().stats();
    std::fprintf(stderr,
                 "arena: generations=%llu disk_hits=%llu spills=%llu\n",
                 static_cast<unsigned long long>(a.generations),
                 static_cast<unsigned long long>(a.disk_hits),
                 static_cast<unsigned long long>(a.spills));
    return 0;
}
