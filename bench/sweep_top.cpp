/**
 * @file
 * Live sweep status: a read-only `top` over a sweep results directory.
 *
 * Usage: sweep_top <results_dir> [--once] [--interval <seconds>]
 *
 * Renders, refreshed in place on a tty (or once with --once, for CI
 * and scripts):
 *  - overall batch progress, queue depth, publish rate, and an ETA
 *    estimated from the rate of appearing per-cell documents;
 *  - one row per participant: published progress, steal/requeue
 *    counts, busy time, and — when the sweep runs with
 *    DICE_SWEEP_EVENTS=1 — the cell currently in flight with its
 *    elapsed phase, straight from the participant's event journal.
 *
 * Strictly read-only: it never removes, rewrites, or locks anything
 * under the results directory, so it is safe to point at a sweep
 * owned by another user or another host. Garbled files are ignored
 * (warned once), never removed — that hygiene belongs to the
 * coordinator.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "sweep_queue.hpp"

#include "common/sweep_events.hpp"

namespace
{

using dice::JournalEvent;
using dice::ParticipantJournal;
using dice::bench::forEachParticipantFile;
using dice::bench::HeartbeatRecord;
using dice::bench::parseHeartbeat;

std::uint64_t
nowWallUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** What a participant's journal says it is doing right now. */
struct InFlight
{
    std::string cell;
    std::string phase;   ///< Deepest begun phase of that cell.
    std::uint64_t since_wall_us = 0;
};

/**
 * The last segment's unfinished cell, if any: the latest "begin cell"
 * with no later publish or completed "cell" phase for the same cell.
 * A crashed worker's journal reports its final cell forever — which
 * is exactly the post-mortem one wants to see.
 */
bool
inFlightOf(const ParticipantJournal &p, InFlight &out)
{
    const int last_seg = static_cast<int>(p.segments.size()) - 1;
    bool active = false;
    for (const JournalEvent &e : p.events) {
        if (e.segment != last_seg)
            continue;
        if (e.ev == "begin" && e.phase == "cell") {
            out.cell = e.cell;
            out.phase = "cell";
            out.since_wall_us = e.wall_us;
            active = true;
        } else if (active && e.ev == "begin" && e.cell == out.cell) {
            out.phase = e.phase;
        } else if (active &&
                   (e.ev == "publish" ||
                    (e.ev == "phase" && e.phase == "cell")) &&
                   e.cell == out.cell) {
            active = false;
        }
    }
    return active;
}

std::string
humanSeconds(double s)
{
    char buf[32];
    if (s >= 3600.0)
        std::snprintf(buf, sizeof buf, "%.1fh", s / 3600.0);
    else if (s >= 60.0)
        std::snprintf(buf, sizeof buf, "%.1fm", s / 60.0);
    else
        std::snprintf(buf, sizeof buf, "%.1fs", s);
    return buf;
}

struct Snapshot
{
    unsigned long batch = 0;
    std::size_t done = 0;
    std::size_t total = 0;
    std::size_t docs = 0;
    std::map<std::string, HeartbeatRecord> participants;
    std::map<std::string, InFlight> in_flight;
};

Snapshot
collect(const std::filesystem::path &results_dir)
{
    Snapshot snap;
    // Heartbeats: each participant's is a view of the same batch, and
    // under the queue scheduler its "done" already counts everyone's
    // published documents; take the freshest batch and its max.
    forEachParticipantFile(
        results_dir, ".heartbeat", /*remove_garbled=*/false,
        [&snap](const std::filesystem::path &path,
                const std::string &content) {
            HeartbeatRecord hb;
            if (!parseHeartbeat(content, hb))
                return false;
            snap.participants[path.stem().string()] = hb;
            if (hb.batch > snap.batch) {
                snap.batch = hb.batch;
                snap.done = 0;
                snap.total = 0;
            }
            if (hb.batch == snap.batch) {
                snap.done = std::max(snap.done, hb.done);
                snap.total = std::max(snap.total, hb.total);
            }
            return true;
        });

    std::error_code ec;
    std::filesystem::directory_iterator it(results_dir, ec);
    if (!ec) {
        for (const auto &entry : it) {
            if (entry.path().string().size() > 10 &&
                entry.path().string().rfind(".cell.json") ==
                    entry.path().string().size() - 10)
                ++snap.docs;
        }
    }

    // Event journals (optional): in-flight cells with elapsed phase.
    std::filesystem::directory_iterator jt(results_dir / "events", ec);
    if (!ec) {
        for (const auto &entry : jt) {
            if (entry.path().extension() != ".jsonl")
                continue;
            ParticipantJournal p;
            if (!dice::readJournal(entry.path(), p))
                continue;
            InFlight fl;
            if (inFlightOf(p, fl))
                snap.in_flight[p.name] = fl;
        }
    }
    return snap;
}

void
render(const Snapshot &snap, double elapsed_s, std::size_t docs_at_start,
       bool clear)
{
    if (clear)
        std::printf("\033[H\033[2J");

    const std::size_t done = std::max(snap.done, snap.docs);
    const double rate =
        elapsed_s > 0.0
            ? static_cast<double>(snap.docs - docs_at_start) / elapsed_s
            : 0.0;
    std::printf("[sweep_top] batch %lu: %zu/%zu cells published",
                snap.batch, done, snap.total);
    if (snap.total > done && rate > 0.0) {
        std::printf(" | %.2f cells/s | ETA %s", rate,
                    humanSeconds(static_cast<double>(snap.total - done) /
                                 rate)
                        .c_str());
    }
    std::printf("\n\n%-14s %8s %8s %8s %8s  %s\n", "participant",
                "done", "stolen", "requeue", "busy", "in flight");

    const std::uint64_t now_us = nowWallUs();
    for (const auto &[name, hb] : snap.participants) {
        std::string flight = "-";
        const auto fl = snap.in_flight.find(name);
        if (fl != snap.in_flight.end()) {
            const double for_s =
                now_us > fl->second.since_wall_us
                    ? static_cast<double>(now_us -
                                          fl->second.since_wall_us) /
                          1e6
                    : 0.0;
            flight = fl->second.cell + " (" + fl->second.phase + ", " +
                     humanSeconds(for_s) + ")";
        }
        std::printf("%-14s %8zu %8llu %8llu %8s  %s\n", name.c_str(),
                    hb.done,
                    static_cast<unsigned long long>(hb.stolen),
                    static_cast<unsigned long long>(hb.requeued),
                    humanSeconds(hb.busy_ms / 1000.0).c_str(),
                    flight.c_str());
    }
    // Journal-only participants (heartbeat not yet written, or a
    // joiner that died before its first publish).
    for (const auto &[name, fl] : snap.in_flight) {
        if (snap.participants.count(name) != 0)
            continue;
        std::printf("%-14s %8s %8s %8s %8s  %s (%s)\n", name.c_str(),
                    "?", "?", "?", "?", fl.cell.c_str(),
                    fl.phase.c_str());
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::filesystem::path results_dir;
    bool once = false;
    double interval_s = 1.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i] != nullptr ? argv[i] : "";
        if (arg == "--once") {
            once = true;
        } else if (arg == "--interval" && i + 1 < argc) {
            interval_s = std::strtod(argv[++i], nullptr);
            if (interval_s <= 0.0)
                interval_s = 1.0;
        } else if (results_dir.empty() && !arg.empty() &&
                   arg[0] != '-') {
            results_dir = arg;
        } else {
            std::fprintf(
                stderr,
                "usage: %s <results_dir> [--once] [--interval S]\n",
                argv[0]);
            return 2;
        }
    }
    if (results_dir.empty()) {
        std::fprintf(stderr,
                     "usage: %s <results_dir> [--once] [--interval S]\n",
                     argv[0]);
        return 2;
    }
    std::error_code ec;
    if (!std::filesystem::is_directory(results_dir, ec)) {
        std::fprintf(stderr, "sweep_top: %s is not a directory\n",
                     results_dir.string().c_str());
        return 1;
    }

#ifdef _WIN32
    const bool tty = false;
#else
    const bool tty = isatty(fileno(stdout)) != 0;
#endif
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t docs_at_start = collect(results_dir).docs;
    for (;;) {
        const Snapshot snap = collect(results_dir);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        render(snap, elapsed, docs_at_start, tty && !once);
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval_s));
    }
}
