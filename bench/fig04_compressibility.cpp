/**
 * @file
 * Figure 4: fraction of lines that compress to <=32 B, <=36 B, and of
 * adjacent pairs that compress (jointly, with shared tag/base) to
 * <=68 B, per workload — measured by sampling the real data generator
 * through the real FPC+BDI codec.
 *
 * Paper result: wide spread (mcf/omnetpp/astar high; lbm/libq/Gems
 * low); on average 52% of adjacent pairs fit a 72-B TAD.
 */

#include <cstdio>

#include "common/parallel.hpp"
#include "compress/hybrid.hpp"
#include "harness.hpp"
#include "workloads/address_space.hpp"
#include "workloads/datagen.hpp"

using namespace dice;
using namespace dice::bench;

namespace
{

struct Fractions
{
    double single32 = 0;
    double single36 = 0;
    double pair68 = 0;
};

Fractions
measure(const WorkloadProfile &profile)
{
    DataGenerator gen;
    const std::uint64_t lines = 1 << 20;
    gen.addRegion(kLinesPerPage, kLinesPerPage + lines, profile);

    HybridCodec codec;
    std::uint64_t n32 = 0, n36 = 0, p68 = 0, n = 0, pairs = 0;
    for (LineAddr base = kLinesPerPage; base < kLinesPerPage + 40000;
         base += 2) {
        const Line a = gen.bytes(base, 0);
        const Line b = gen.bytes(base + 1, 0);
        for (const Line *l : {&a, &b}) {
            const std::uint32_t size = codec.compressedSizeBytes(*l);
            n32 += size <= 32;
            n36 += size <= 36;
            ++n;
        }
        p68 += codec.pairSizeBytes(a, b) <= 68;
        ++pairs;
    }
    return {100.0 * n32 / n, 100.0 * n36 / n, 100.0 * p68 / pairs};
}

} // namespace

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Compressibility of lines installed in the DRAM cache",
                "DICE (ISCA'17) Figure 4");
    printColumns({"Single<=32", "Single<=36", "Double<=68"});

    std::vector<const WorkloadProfile *> profiles;
    for (const auto *suite : {&specRateSuite(), &gapSuite()}) {
        for (const WorkloadProfile &p : *suite)
            profiles.push_back(&p);
    }

    // Each measure() samples an independent generator; fan the
    // workloads across the thread pool and print in order afterwards.
    std::vector<Fractions> fracs(profiles.size());
    parallelFor(profiles.size(), benchJobs(),
                [&](std::size_t i) { fracs[i] = measure(*profiles[i]); });

    double sum32 = 0, sum36 = 0, sum68 = 0;
    int count = 0;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const Fractions &f = fracs[i];
        printRow(profiles[i]->name, {f.single32, f.single36, f.pair68});
        sum32 += f.single32;
        sum36 += f.single36;
        sum68 += f.pair68;
        ++count;
    }
    std::printf("\n");
    printRow("AVG", {sum32 / count, sum36 / count, sum68 / count});
    std::printf("\nPaper: 52%% of adjacent pairs compress to <=68 B "
                "on average.\n");
    return 0;
}
