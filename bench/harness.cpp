#include "harness.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <thread>
#include <tuple>
#include <unordered_set>

#include <chrono>

#include "sweep_queue.hpp"

#include "common/claim_file.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/sweep_events.hpp"
#include "common/telemetry.hpp"
#include "common/trace_events.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>
extern char **environ;
#endif

namespace dice::bench
{

namespace
{

/** Bump when simulator or cache-file format changes invalidate
 *  cached results (v6: trailing checksum field). */
constexpr int kCacheVersion = 6;

/** Scale knob: DICE_BENCH_REFS overrides refs per core. */
std::uint64_t
refsPerCore()
{
    if (const char *env = std::getenv("DICE_BENCH_REFS"))
        return std::strtoull(env, nullptr, 10);
    return 40'000;
}

/**
 * Directory for cross-binary result caching. Every bench binary needs
 * many of the same (workload, organization) simulations; persisting
 * them lets the whole table suite run each simulation exactly once.
 * Disable with DICE_BENCH_NO_CACHE=1.
 */
std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("DICE_BENCH_CACHE_DIR"))
        return env;
    return "bench_cache";
}

bool
cacheEnabled()
{
    return std::getenv("DICE_BENCH_NO_CACHE") == nullptr;
}

/**
 * Reference streams depend only on (workload, seed, cores, capacity,
 * length), never on the L4 organization, so freshly-simulated cells
 * pull their traces from the process-wide TraceArena: a sweep
 * generates each stream once and every organization column replays
 * it. DICE_TRACE_ARENA=0 falls back to live per-cell generation.
 */
bool
arenaEnabled()
{
    const char *env = std::getenv("DICE_TRACE_ARENA");
    return env == nullptr || std::string(env) != "0";
}

std::string
resultFileName(const std::string &workload, const SystemConfig &config,
               const std::string &cache_key)
{
    std::ostringstream key;
    key << kCacheVersion << '|' << workload << '|' << cache_key << '|'
        << config.refs_per_core << '|' << config.warmup_refs_per_core
        << '|' << config.seed << '|' << config.reference_capacity;
    return std::to_string(mix64(std::hash<std::string>{}(key.str()))) +
           ".result";
}

/** Stable (cross-process, cross-build) FNV-1a hash of the payload. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Serialize a result into the cache-file payload (no checksum). */
std::string
serializeResult(const RunResult &r)
{
    std::ostringstream out;
    out.precision(17);
    out << r.cycles << ' ' << r.instructions << ' ' << r.ipc << ' '
        << r.l3_hit_rate << ' ' << r.l4_hit_rate << ' ' << r.l4_reads
        << ' ' << r.l4_extra_lines << ' ' << r.l4_second_probes << ' '
        << r.cip_read_accuracy << ' ' << r.cip_write_accuracy << ' '
        << r.mapi_accuracy << ' ' << r.frac_invariant << ' '
        << r.frac_bai << ' ' << r.frac_tsi << ' ' << r.avg_valid_lines
        << ' ' << r.l4_bytes << ' ' << r.mem_bytes << ' '
        << r.avg_miss_latency << ' ' << r.energy.l4_nj << ' '
        << r.energy.mem_nj << ' ' << r.energy.background_nj << ' '
        << r.energy.total_nj << ' ' << r.energy.avg_power_w << ' '
        << r.energy.edp << ' ' << r.energy.seconds << ' '
        << r.core_cycles.size();
    for (const Cycle c : r.core_cycles)
        out << ' ' << c;
    return out.str();
}

/** Inverse of serializeResult(); false on malformed payloads. */
bool
parseResult(const std::string &payload, RunResult &r)
{
    std::istringstream in(payload);
    std::size_t n_cores = 0;
    in >> r.cycles >> r.instructions >> r.ipc >> r.l3_hit_rate >>
        r.l4_hit_rate >> r.l4_reads >> r.l4_extra_lines >>
        r.l4_second_probes >> r.cip_read_accuracy >>
        r.cip_write_accuracy >> r.mapi_accuracy >> r.frac_invariant >>
        r.frac_bai >> r.frac_tsi >> r.avg_valid_lines >> r.l4_bytes >>
        r.mem_bytes >> r.avg_miss_latency >> r.energy.l4_nj >>
        r.energy.mem_nj >> r.energy.background_nj >> r.energy.total_nj >>
        r.energy.avg_power_w >> r.energy.edp >> r.energy.seconds >>
        n_cores;
    if (!in || n_cores == 0 || n_cores > 1024)
        return false;
    r.core_cycles.resize(n_cores);
    for (std::size_t i = 0; i < n_cores; ++i)
        in >> r.core_cycles[i];
    return static_cast<bool>(in);
}

/**
 * In-process result memo. Guarded by a shared mutex so parallel sweep
 * workers can look up and publish results concurrently; std::map node
 * stability makes the returned references permanently valid.
 */
struct ResultCache
{
    std::shared_mutex mu;
    std::map<std::string, RunResult> results;
};

ResultCache &
resultCache()
{
    static ResultCache cache;
    return cache;
}

/** References actually simulated this process (fresh cells only;
 *  cache-loaded cells do no simulation work). Feeds the heartbeat's
 *  refs/sec figure. */
std::atomic<std::uint64_t> g_simulated_refs{0};

/** Rendered trace-event args for a cell span. */
std::string
cellArgsJson(const std::string &workload, const std::string &cache_key)
{
    std::string args = "{\"workload\": \"";
    appendJsonEscaped(args, workload);
    args += "\", \"org\": \"";
    appendJsonEscaped(args, cache_key);
    args += "\"}";
    return args;
}

/**
 * Export one freshly-simulated cell's stat registry when
 * DICE_STATS_JSON / DICE_STATS_CSV name output directories. Called
 * with the System still alive (the registry reads live counters).
 */
void
exportCellStats(const System &sys, const std::string &workload,
                const std::string &cache_key)
{
    const std::string json_dir = statsJsonDir();
    const std::string csv_dir = statsCsvDir();
    if (json_dir.empty() && csv_dir.empty())
        return;
    const std::string stem =
        sanitizeFileStem(workload + "_" + cache_key);
    std::error_code ec;
    if (!json_dir.empty()) {
        std::filesystem::create_directories(json_dir, ec);
        const auto path =
            std::filesystem::path(json_dir) / (stem + ".json");
        if (!sys.statRegistry().writeJson(path.string()))
            dice_warn("cannot write stats JSON %s", path.c_str());
    }
    if (!csv_dir.empty()) {
        std::filesystem::create_directories(csv_dir, ec);
        const auto path =
            std::filesystem::path(csv_dir) / (stem + ".csv");
        if (!sys.statRegistry().writeCsv(path.string()))
            dice_warn("cannot write stats CSV %s", path.c_str());
    }
}

/**
 * DICE_PROGRESS=1 heartbeat: one line per completed cell with the
 * sweep position, cumulative simulation throughput, and the arena's
 * residency. Serialized by its own mutex so parallel workers never
 * interleave; on a tty the line redraws in place.
 */
void
printProgress(std::size_t done, std::size_t total, double elapsed_s)
{
    const TraceArena::Stats arena = TraceArena::instance().stats();
    const double refs =
        static_cast<double>(g_simulated_refs.load(std::memory_order_relaxed));
    const double mrefs_per_s =
        elapsed_s > 0.0 ? refs / elapsed_s / 1e6 : 0.0;
#ifdef _WIN32
    const bool tty = false;
#else
    const bool tty = isatty(fileno(stderr)) != 0;
#endif
    static std::mutex mu;
    std::lock_guard lock(mu);
    std::fprintf(stderr,
                 "%s[progress] %zu/%zu cells | %.2f Mref/s | arena "
                 "%.1f MiB, %llu entries%s",
                 tty ? "\r" : "", done, total, mrefs_per_s,
                 static_cast<double>(arena.resident_bytes) /
                     (1024.0 * 1024.0),
                 static_cast<unsigned long long>(arena.entries),
                 tty ? (done == total ? "\n" : "") : "\n");
    std::fflush(stderr);
}

} // namespace

namespace detail
{

void
saveResult(const std::filesystem::path &path, const RunResult &r)
{
    // Unique temp name per process and call: concurrent writers (other
    // threads or other bench binaries) never collide, and readers only
    // ever see fully-written files because rename() is atomic within a
    // directory.
    static std::atomic<std::uint64_t> counter{0};
    const std::string payload = serializeResult(r);
    std::filesystem::path tmp = path;
    tmp += ".tmp." + std::to_string(static_cast<long>(getpid())) + "." +
           std::to_string(counter.fetch_add(1));

    {
        std::ofstream out(tmp);
        if (!out)
            return;
        out << payload << ' ' << fnv1a(payload) << '\n';
        if (!out)
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

bool
loadResult(const std::filesystem::path &path, RunResult &r)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    while (!content.empty() &&
           (content.back() == '\n' || content.back() == '\r'))
        content.pop_back();

    // The file is "<payload> <checksum>"; a truncated, stale (pre-v6),
    // or partially-written file fails the checksum and is a cache miss.
    const std::size_t sep = content.rfind(' ');
    if (sep == std::string::npos || sep + 1 >= content.size())
        return false;
    const std::string payload = content.substr(0, sep);
    errno = 0;
    char *end = nullptr;
    const std::uint64_t stored =
        std::strtoull(content.c_str() + sep + 1, &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    if (stored != fnv1a(payload))
        return false;
    return parseResult(payload, r);
}

std::uint64_t
resultDigest(const RunResult &r)
{
    return fnv1a(serializeResult(r));
}

} // namespace detail

namespace
{

// ---------------------------------------------------------------------
// Distributed sweep engine (--serve M / --worker i/M / --batch B /
// --join DIR).
//
// The coordinator never sends cell data over a pipe: every
// participant re-runs the same deterministic binary, deterministically
// enumerates the same canonical cell vector, and publishes results
// through the shared persistent caches (bench_cache/ for RunResults,
// bench_cache/arena/ for reference streams). Which participant
// simulates which cell is decided by the work-stealing claim queue
// (bench/sweep_queue.hpp): everyone loops "claim next unowned cell →
// simulate → publish per-cell doc → release", crashed holders' leases
// expire and their cells are silently requeued, and extra --join
// workers (other processes, or other hosts sharing the filesystem)
// attach to the same queue mid-sweep. The coordinator then replays
// the batch as pure cache loads in canonical order, which makes its
// stdout, golden digests, and merged document byte-identical to a
// serial run no matter who computed what or how many times a cell was
// reclaimed. DICE_SWEEP_STATIC=1 falls back to the legacy static
// sharding (worker i owns canonical indices ≡ i mod M) for A/B
// scheduling comparisons.

/** How this process participates in a sweep (set by initSweepMode). */
struct SweepMode
{
    enum class Role
    {
        Serial,      ///< No flags: in-process thread pool only.
        Coordinator, ///< --serve M: shards batches across workers.
        Worker,      ///< --worker i/M: claims cells of one batch.
        Join         ///< --join DIR: attaches to an in-flight sweep.
    };

    Role role = Role::Serial;
    unsigned workers = 0;           ///< M.
    unsigned worker_index = 0;      ///< i in [0, M); worker role only.
    unsigned long target_batch = 0; ///< The batch a worker owns.
    std::string self;               ///< argv[0], for re-spawning.
    std::string join_results;       ///< --join results directory.
    /** Original arguments minus the sweep flags (workers get these
     *  back so binary-specific flags survive the respawn). */
    std::vector<std::string> passthrough;
};

/** DICE_SWEEP_STATIC=1: legacy static index sharding (no stealing). */
bool
schedulerIsStatic()
{
    const char *env = std::getenv("DICE_SWEEP_STATIC");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
}

SweepMode &
sweepMode()
{
    static SweepMode mode;
    return mode;
}

/** Monotonic runCells batch index. Coordinator and workers run the
 *  same main(), so the same sequence numbers the same batches. */
std::atomic<unsigned long> g_batch_counter{0};

/**
 * Canonical cell registry: every cell every runCells batch has seen,
 * deduplicated, in first-appearance order. Identical across roles
 * (the enumeration is deterministic), so "index in this vector" is a
 * cross-process cell identity and the merged document's row order.
 */
struct CellRecord
{
    std::string workload;
    SystemConfig config;
    std::string cache_key;
};

struct CellRegistry
{
    std::mutex mu;
    std::vector<CellRecord> order;
    std::unordered_set<std::string> seen;
};

CellRegistry &
cellRegistry()
{
    static CellRegistry reg;
    return reg;
}

void
registerCells(const std::vector<const SimCell *> &work)
{
    CellRegistry &reg = cellRegistry();
    std::lock_guard lock(reg.mu);
    for (const SimCell *c : work) {
        if (reg.seen.insert(c->workload + "|" + c->cache_key).second)
            reg.order.push_back(
                CellRecord{c->workload, c->config, c->cache_key});
    }
}

/** Worker-product directory (heartbeats, per-cell docs, summaries). */
std::filesystem::path
resultsDir()
{
    const std::string env = sweepResultsDir();
    if (!env.empty())
        return env;
    return cacheDir() / "results";
}

/** File stem naming a cell's per-cell doc and lease. */
std::string
cellStem(const SimCell &c)
{
    return sanitizeFileStem(c.workload + "_" + c.cache_key);
}

/**
 * Expected simulation cost of a cell, in arbitrary comparable units:
 * trace length × cores × an organization weight. Only the *ordering*
 * matters — the claim queue hands out the longest-expected cells
 * first so the batch's expensive tail never lands late on an
 * already-loaded worker.
 */
double
cellCost(const SimCell &c)
{
    const SystemConfig &cfg = c.config;
    double cost = static_cast<double>(cfg.warmup_refs_per_core +
                                      cfg.refs_per_core) *
                  std::max<std::uint32_t>(1, cfg.num_cores);
    // Compressed organizations run codec sizing on every install, so
    // their cells simulate measurably slower than the uncompressed
    // baseline; no L4 at all is cheaper still.
    const std::string &org = cfg.l4.organization;
    double weight = 1.0;
    if (org == "none")
        weight = 0.5;
    else if (org != "alloy")
        weight = 1.5;
    // Larger L4s take longer to warm and serve more hits per ref.
    const double cap_ratio =
        static_cast<double>(cfg.l4.base.capacity) / (8.0 * 1024 * 1024);
    if (cap_ratio > 1.0)
        weight *= 1.0 + 0.25 * std::log2(cap_ratio);
    return cost * weight;
}

/** The batch's cells as claim-queue entries (canonical order). */
std::vector<QueueCell>
queueCellsFor(const std::vector<const SimCell *> &work)
{
    std::vector<QueueCell> cells;
    cells.reserve(work.size());
    for (std::size_t i = 0; i < work.size(); ++i)
        cells.push_back(
            QueueCell{cellStem(*work[i]), i, cellCost(*work[i])});
    return cells;
}

/**
 * One cell as a JSON object: identity, golden digest, and every
 * RunResult field. Rendered only from the (cache-round-trip-exact)
 * RunResult — never from the StatRegistry, whose process-global
 * trace_arena group depends on execution order — so serial and
 * distributed runs render identical bytes.
 */
std::string
resultJson(const std::string &workload, const std::string &org,
           const RunResult &r)
{
    std::string out = "{\"workload\": \"";
    appendJsonEscaped(out, workload);
    out += "\", \"org\": \"";
    appendJsonEscaped(out, org);
    out += "\", \"digest\": ";
    out += std::to_string(detail::resultDigest(r));
    out += ", \"stats\": {";

    bool first = true;
    const auto u64 = [&out, &first](const char *name, std::uint64_t v) {
        out += first ? "\"" : ", \"";
        first = false;
        out += name;
        out += "\": ";
        out += std::to_string(v);
    };
    const auto num = [&out, &first](const char *name, double v) {
        out += first ? "\"" : ", \"";
        first = false;
        out += name;
        out += "\": ";
        appendJsonNumber(out, v);
    };
    u64("cycles", r.cycles);
    u64("instructions", r.instructions);
    num("ipc", r.ipc);
    num("l3_hit_rate", r.l3_hit_rate);
    num("l4_hit_rate", r.l4_hit_rate);
    u64("l4_reads", r.l4_reads);
    u64("l4_extra_lines", r.l4_extra_lines);
    u64("l4_second_probes", r.l4_second_probes);
    num("cip_read_accuracy", r.cip_read_accuracy);
    num("cip_write_accuracy", r.cip_write_accuracy);
    num("mapi_accuracy", r.mapi_accuracy);
    num("frac_invariant", r.frac_invariant);
    num("frac_bai", r.frac_bai);
    num("frac_tsi", r.frac_tsi);
    num("avg_valid_lines", r.avg_valid_lines);
    u64("l4_bytes", r.l4_bytes);
    u64("mem_bytes", r.mem_bytes);
    num("avg_miss_latency", r.avg_miss_latency);
    num("energy_l4_nj", r.energy.l4_nj);
    num("energy_mem_nj", r.energy.mem_nj);
    num("energy_background_nj", r.energy.background_nj);
    num("energy_total_nj", r.energy.total_nj);
    num("energy_avg_power_w", r.energy.avg_power_w);
    num("energy_edp", r.energy.edp);
    num("energy_seconds", r.energy.seconds);
    out += ", \"core_cycles\": [";
    for (std::size_t i = 0; i < r.core_cycles.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(r.core_cycles[i]);
    }
    out += "]}}";
    return out;
}

/** One participant's aggregated scheduling record (across batches). */
struct ParticipantAgg
{
    std::uint64_t cells = 0;
    std::uint64_t stolen = 0;
    std::uint64_t requeued = 0;
    std::uint64_t busy_ms = 0;
    std::uint64_t span_ms = 0;
    unsigned jobs = 1;
    /** Phase-latency histograms (exact cross-batch merge). */
    std::array<LogHistogram, kSweepPhases> phases;
    std::string slowest_cell;
    std::uint64_t slowest_us = 0;
};

/** Cross-batch totals of what worker processes reported, plus the
 *  coordinator's own claim-loop work (its arena counters are tracked
 *  by the arena itself). */
struct SweepTotals
{
    std::uint64_t worker_cells = 0;
    std::uint64_t worker_generations = 0;
    std::uint64_t worker_disk_hits = 0;
    std::uint64_t worker_spills = 0;
    std::uint64_t worker_stolen = 0;
    std::uint64_t worker_requeued = 0;
    std::uint64_t worker_busy_ms = 0;
    /** Σ span × jobs per worker summary (utilization denominator). */
    std::uint64_t worker_span_jobs_ms = 0;
    /** Per-participant records keyed by name ("worker0", "join123"). */
    std::map<std::string, ParticipantAgg> per_worker;
    ParticipantAgg coordinator;
};

SweepTotals &
sweepTotals()
{
    static SweepTotals totals;
    return totals;
}

/**
 * Open this process's event journal (once) when DICE_SWEEP_EVENTS is
 * set. The participant name matches the role: "coordinator",
 * "worker<i>", "join<pid>", or "serial". The coordinator (or a serial
 * run) owns the results directory, so it clears journals left by a
 * previous run of the same directory first — workers and --join
 * attachers append (a respawned worker's later batches become new
 * segments of the same journal).
 */
void
maybeOpenSweepJournal()
{
    static bool attempted = false;
    if (attempted || !sweepEventsEnabled())
        return;
    attempted = true;
    const SweepMode &m = sweepMode();
    std::string name = "serial";
    bool owner = true;
    switch (m.role) {
      case SweepMode::Role::Coordinator:
        name = "coordinator";
        break;
      case SweepMode::Role::Worker:
        name = "worker" + std::to_string(m.worker_index);
        owner = false;
        break;
      case SweepMode::Role::Join:
        name = "join" + std::to_string(claimPid());
        owner = false;
        break;
      case SweepMode::Role::Serial:
        break;
    }
    const std::filesystem::path events = resultsDir() / "events";
    if (owner) {
        std::error_code ec;
        std::filesystem::directory_iterator it(events, ec);
        if (!ec) {
            std::vector<std::filesystem::path> stale;
            for (const auto &entry : it) {
                if (entry.path().extension() == ".jsonl")
                    stale.push_back(entry.path());
            }
            for (const std::filesystem::path &p : stale)
                std::filesystem::remove(p, ec);
        }
    }
    SweepJournal::instance().open(events, name);
}

#ifndef _WIN32

/**
 * One participant's heartbeat: its own progress and steal/requeue
 * counters, rewritten (atomically) after every published cell. Feeds
 * the static-scheduler progress line and post-mortem debugging; the
 * queue scheduler's progress counts published docs directly.
 */
void
writeHeartbeat(const std::string &name, unsigned long batch,
               std::size_t done, std::size_t total,
               const QueueStats &qs, std::uint64_t busy_ms)
{
    HeartbeatRecord hb;
    hb.batch = batch;
    hb.done = done;
    hb.total = total;
    hb.stolen = qs.stolen;
    hb.requeued = qs.requeued;
    hb.busy_ms = busy_ms;
    atomicWriteFile(resultsDir() / (name + ".heartbeat"),
                    renderHeartbeat(hb));
}

/**
 * Sum of all live participant heartbeats for @p batch. Heartbeats are
 * written atomically, so a malformed file is foreign garbage, not a
 * torn write: forEachParticipantFile rejects it with a (once-per-path)
 * warning and removes it — never silently folds it into the totals.
 */
void
readHeartbeats(unsigned long batch, std::size_t &done,
               std::size_t &total)
{
    done = total = 0;
    forEachParticipantFile(
        resultsDir(), ".heartbeat", /*remove_garbled=*/true,
        [batch, &done, &total](const std::filesystem::path &,
                               const std::string &content) {
            HeartbeatRecord hb;
            if (!parseHeartbeat(content, hb))
                return false;
            if (hb.batch == batch) {
                done += hb.done;
                total += hb.total;
            }
            return true;
        });
}

/** The coordinator's single aggregated progress line (stderr). */
void
printSweepProgress(unsigned long batch, std::size_t done,
                   std::size_t total, unsigned workers,
                   std::size_t alive, bool final_line)
{
    const bool tty = isatty(fileno(stderr)) != 0;
    std::fprintf(stderr,
                 "%s[sweep] batch %lu: %zu/%zu cells | %u workers, "
                 "%zu alive%s",
                 tty ? "\r" : "", batch, done, total, workers, alive,
                 tty ? (final_line ? "\n" : "") : "\n");
    std::fflush(stderr);
}

pid_t
spawnWorker(unsigned index, unsigned long batch)
{
    const SweepMode &m = sweepMode();
    std::vector<std::string> args;
    args.push_back(m.self);
    args.insert(args.end(), m.passthrough.begin(), m.passthrough.end());
    args.push_back("--worker");
    args.push_back(std::to_string(index) + "/" +
                   std::to_string(m.workers));
    args.push_back("--batch");
    args.push_back(std::to_string(batch));

    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    // The spawn mark goes to the journal *before* the spawn itself:
    // the timeline merge uses "a worker's epoch cannot precede its
    // spawn mark" as a hard causal constraint when aligning clocks,
    // which only holds if the mark is durable first.
    SweepJournal::instance().mark("spawn",
                                  "worker" + std::to_string(index));

    // Workers would duplicate the coordinator's stdout tables; their
    // real output is the shared caches and the results directory.
    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_addopen(&fa, STDOUT_FILENO, "/dev/null",
                                     O_WRONLY, 0);
    pid_t pid = -1;
    const int rc =
        posix_spawnp(&pid, m.self.c_str(), &fa, nullptr, argv.data(),
                     environ);
    posix_spawn_file_actions_destroy(&fa);
    if (rc != 0) {
        // No special case: the unspawned worker's cells simply stay in
        // the claim queue for the remaining participants (under the
        // legacy static scheduler its shard is absorbed at merge).
        dice_warn("sweep: cannot spawn worker %u (%s)", index,
                  std::strerror(rc));
        return -1;
    }
    return pid;
}

/** Map a summary-transport hist name back to its SweepPhase slot
 *  (kSweepPhases when unknown — a newer writer's phase). */
unsigned
phaseIndexByName(const std::string &name)
{
    for (unsigned i = 0; i < kSweepPhases; ++i) {
        if (name == sweepPhaseName(static_cast<SweepPhase>(i)))
            return i;
    }
    return kSweepPhases;
}

/**
 * Fold finished participants' summary files into the cross-batch
 * totals (consumed on read so a later batch never double-counts).
 * Summaries are written atomically; anything that fails to parse is
 * foreign garbage, rejected by forEachParticipantFile with a
 * (once-per-path) warning and removed — never silently folded into
 * the totals.
 */
void
accumulateWorkerSummaries()
{
    SweepTotals &totals = sweepTotals();
    forEachParticipantFile(
        resultsDir(), ".summary", /*remove_garbled=*/true,
        [&totals](const std::filesystem::path &path,
                  const std::string &content) {
            SummaryRecord s;
            if (!parseSummary(content, s))
                return false;
            totals.worker_cells += s.cells;
            totals.worker_generations += s.generations;
            totals.worker_disk_hits += s.disk_hits;
            totals.worker_spills += s.spills;
            totals.worker_stolen += s.stolen;
            totals.worker_requeued += s.requeued;
            totals.worker_busy_ms += s.busy_ms;
            totals.worker_span_jobs_ms += s.span_ms * s.jobs;
            ParticipantAgg &agg =
                totals.per_worker[path.stem().string()];
            agg.cells += s.cells;
            agg.stolen += s.stolen;
            agg.requeued += s.requeued;
            agg.busy_ms += s.busy_ms;
            agg.span_ms += s.span_ms;
            agg.jobs = s.jobs;
            for (const auto &[name, h] : s.hists) {
                const unsigned p = phaseIndexByName(name);
                if (p < kSweepPhases)
                    agg.phases[p].merge(h);
            }
            if (s.slowest_us > agg.slowest_us) {
                agg.slowest_us = s.slowest_us;
                agg.slowest_cell = s.slowest_cell;
            }
            std::error_code ec;
            std::filesystem::remove(path, ec);
            return true;
        });
}

/**
 * Render one participant's summary file. Arena counters and phase
 * histograms are process-cumulative, so the caller passes the
 * snapshots taken at batch start (@p since / @p phases_since) and the
 * summary reports the deltas — a multi-batch participant (a --join
 * worker) never double-counts across its summaries. The slowest-cell
 * record stays cumulative: it merges by max, which is idempotent.
 */
std::string
summaryLine(unsigned long batch, std::uint64_t cells,
            const QueueStats &qs, std::uint64_t busy_ms,
            std::uint64_t span_ms, unsigned jobs,
            const TraceArena::Stats &since,
            const std::array<LogHistogram, kSweepPhases> &phases_since)
{
    const TraceArena::Stats now = TraceArena::instance().stats();
    SummaryRecord s;
    s.batch = batch;
    s.cells = cells;
    s.stolen = qs.stolen;
    s.requeued = qs.requeued;
    s.busy_ms = busy_ms;
    s.span_ms = span_ms;
    s.jobs = jobs;
    s.generations = now.generations - since.generations;
    s.disk_hits = now.disk_hits - since.disk_hits;
    s.spills = now.spills - since.spills;
    const std::array<LogHistogram, kSweepPhases> phases =
        SweepMetrics::instance().snapshotAll();
    for (unsigned i = 0; i < kSweepPhases; ++i) {
        const LogHistogram delta =
            phases[i].subtracted(phases_since[i]);
        if (delta.count() > 0)
            s.hists.emplace_back(
                sweepPhaseName(static_cast<SweepPhase>(i)), delta);
    }
    std::tie(s.slowest_cell, s.slowest_us) =
        SweepMetrics::instance().slowestCell();
    return renderSummary(s);
}

#endif // !_WIN32

/**
 * The machine-readable sweep summary: trace-generation accounting plus
 * the scheduling record (who claimed, stole, and requeued what, and
 * how busy each participant was). Not part of the byte-identical
 * contract — it reports *how* the run executed, which legitimately
 * differs between serial and distributed runs; CI uses it to prove a
 * warm arena rerun generated zero streams and that a skewed sweep
 * actually stole work.
 */
/** One histogram as a JSON object of its summary statistics. */
void
appendHistJson(std::string &out, const LogHistogram &h)
{
    out += "{\"count\": ";
    out += std::to_string(h.count());
    out += ", \"sum_us\": ";
    out += std::to_string(h.sum());
    out += ", \"mean_us\": ";
    appendJsonNumber(out, h.mean());
    out += ", \"max_us\": ";
    out += std::to_string(h.max());
    out += ", \"p50_us\": ";
    appendJsonNumber(out, h.percentile(0.50));
    out += ", \"p90_us\": ";
    appendJsonNumber(out, h.percentile(0.90));
    out += ", \"p99_us\": ";
    appendJsonNumber(out, h.percentile(0.99));
    out += "}";
}

void
writeSweepSummary()
{
    const TraceArena::Stats arena = TraceArena::instance().stats();
    const SweepTotals &totals = sweepTotals();

    // Phase latencies merged across every participant: the
    // coordinator's own in-process histograms plus each worker's
    // summary-transported deltas. The merge is exact (fixed
    // power-of-two bucket edges), so these percentiles are what one
    // process sampling every cell would have reported.
    std::array<LogHistogram, kSweepPhases> merged =
        SweepMetrics::instance().snapshotAll();
    std::string slowest_cell;
    std::uint64_t slowest_us = 0;
    std::tie(slowest_cell, slowest_us) =
        SweepMetrics::instance().slowestCell();
    for (const auto &[name, agg] : totals.per_worker) {
        for (unsigned i = 0; i < kSweepPhases; ++i)
            merged[i].merge(agg.phases[i]);
        if (agg.slowest_us > slowest_us) {
            slowest_us = agg.slowest_us;
            slowest_cell = agg.slowest_cell;
        }
    }
    // busy / (span × jobs): 1.0 means every claim-loop thread
    // simulated for the participant's whole wall-clock span.
    const auto utilization = [](std::uint64_t busy_ms,
                                std::uint64_t span_ms, unsigned jobs) {
        const double denom =
            static_cast<double>(span_ms) * static_cast<double>(jobs);
        return denom > 0.0 ? static_cast<double>(busy_ms) / denom : 0.0;
    };

    std::string out = "{\n \"batches\": ";
    out += std::to_string(g_batch_counter.load());
    out += ",\n \"cells\": ";
    {
        CellRegistry &reg = cellRegistry();
        std::lock_guard lock(reg.mu);
        out += std::to_string(reg.order.size());
    }
    out += ",\n \"scheduler\": \"";
    out += schedulerIsStatic() ? "static" : "queue";
    out += "\",\n \"stolen\": ";
    out += std::to_string(totals.worker_stolen +
                          totals.coordinator.stolen);
    out += ",\n \"requeued\": ";
    out += std::to_string(totals.worker_requeued +
                          totals.coordinator.requeued);
    out += ",\n \"coordinator\": {\"generations\": ";
    out += std::to_string(arena.generations);
    out += ", \"disk_hits\": ";
    out += std::to_string(arena.disk_hits);
    out += ", \"spills\": ";
    out += std::to_string(arena.spills);
    out += ", \"cells\": ";
    out += std::to_string(totals.coordinator.cells);
    out += ", \"stolen\": ";
    out += std::to_string(totals.coordinator.stolen);
    out += ", \"requeued\": ";
    out += std::to_string(totals.coordinator.requeued);
    out += ", \"busy_s\": ";
    appendJsonNumber(out, totals.coordinator.busy_ms / 1000.0);
    out += ", \"span_s\": ";
    appendJsonNumber(out, totals.coordinator.span_ms / 1000.0);
    out += ", \"utilization\": ";
    appendJsonNumber(out, utilization(totals.coordinator.busy_ms,
                                      totals.coordinator.span_ms,
                                      totals.coordinator.jobs));
    out += "},\n \"workers\": {\"cells\": ";
    out += std::to_string(totals.worker_cells);
    out += ", \"generations\": ";
    out += std::to_string(totals.worker_generations);
    out += ", \"disk_hits\": ";
    out += std::to_string(totals.worker_disk_hits);
    out += ", \"spills\": ";
    out += std::to_string(totals.worker_spills);
    out += ", \"stolen\": ";
    out += std::to_string(totals.worker_stolen);
    out += ", \"requeued\": ";
    out += std::to_string(totals.worker_requeued);
    out += ", \"busy_s\": ";
    appendJsonNumber(out, totals.worker_busy_ms / 1000.0);
    out += ", \"utilization\": ";
    appendJsonNumber(
        out, totals.worker_span_jobs_ms > 0
                 ? static_cast<double>(totals.worker_busy_ms) /
                       static_cast<double>(totals.worker_span_jobs_ms)
                 : 0.0);
    out += "},\n \"per_worker\": [";
    bool first = true;
    for (const auto &[name, agg] : totals.per_worker) {
        out += first ? "\n  " : ",\n  ";
        first = false;
        out += "{\"name\": \"";
        appendJsonEscaped(out, name);
        out += "\", \"cells\": ";
        out += std::to_string(agg.cells);
        out += ", \"stolen\": ";
        out += std::to_string(agg.stolen);
        out += ", \"requeued\": ";
        out += std::to_string(agg.requeued);
        out += ", \"busy_s\": ";
        appendJsonNumber(out, agg.busy_ms / 1000.0);
        out += ", \"span_s\": ";
        appendJsonNumber(out, agg.span_ms / 1000.0);
        out += ", \"jobs\": ";
        out += std::to_string(agg.jobs);
        out += ", \"utilization\": ";
        appendJsonNumber(
            out, utilization(agg.busy_ms, agg.span_ms, agg.jobs));
        out += ", \"cell_us\": ";
        appendHistJson(out,
                       agg.phases[static_cast<unsigned>(
                           SweepPhase::Cell)]);
        out += "}";
    }
    out += first ? "],\n \"phase_latency_us\": {"
                 : "\n ],\n \"phase_latency_us\": {";
    for (unsigned i = 0; i < kSweepPhases; ++i) {
        out += i == 0 ? "\n  \"" : ",\n  \"";
        out += sweepPhaseName(static_cast<SweepPhase>(i));
        out += "\": ";
        appendHistJson(out, merged[i]);
    }
    out += "\n },\n \"slowest_cell\": {\"cell\": \"";
    appendJsonEscaped(out, slowest_cell);
    out += "\", \"us\": ";
    out += std::to_string(slowest_us);
    out += "},\n \"warnings\": [";
    {
        const std::vector<std::string> warnings = sweepAnomalyWarnings(
            merged[static_cast<unsigned>(SweepPhase::Cell)],
            slowest_cell, slowest_us,
            totals.worker_requeued + totals.coordinator.requeued,
            totals.worker_cells + totals.coordinator.cells,
            sweepStragglerK());
        bool first_warn = true;
        for (const std::string &w : warnings) {
            out += first_warn ? "\n  \"" : ",\n  \"";
            first_warn = false;
            appendJsonEscaped(out, w);
            out += "\"";
            // Only a distributed run's coordinator escalates to
            // stderr — a serial run exporting a summary keeps the
            // anomalies in the JSON alone.
            if (sweepMode().role == SweepMode::Role::Coordinator)
                dice_warn("sweep: %s", w.c_str());
        }
        out += first_warn ? "]" : "\n ]";
    }
    out += ",\n \"total_generations\": ";
    out += std::to_string(arena.generations + totals.worker_generations);
    out += "\n}\n";
    std::error_code ec;
    std::filesystem::create_directories(resultsDir(), ec);
    atomicWriteFile(resultsDir() / "sweep_summary.json", out);
}

/**
 * Rewrite the canonical merged document (DICE_SWEEP_MERGED) from the
 * cell registry after a batch. Every row is a memo/cache hit by now,
 * so this costs one JSON render. Cumulative: the file always covers
 * every cell any batch so far has run.
 */
void
writeSweepOutputs()
{
    const std::string merged = sweepMergedPath();
    if (!merged.empty()) {
        std::vector<CellRecord> order;
        {
            CellRegistry &reg = cellRegistry();
            std::lock_guard lock(reg.mu);
            order = reg.order;
        }
        std::string out = "{\"version\": 1, \"cells\": [";
        bool first = true;
        for (const CellRecord &c : order) {
            const RunResult &r =
                runWorkload(c.workload, c.config, c.cache_key);
            out += first ? "\n " : ",\n ";
            first = false;
            out += resultJson(c.workload, c.cache_key, r);
        }
        out += "\n]}\n";
        if (!atomicWriteFile(merged, out))
            dice_warn("sweep: cannot write DICE_SWEEP_MERGED=%s",
                      merged.c_str());
    }
    if (sweepMode().role == SweepMode::Role::Coordinator ||
        !sweepResultsDir().empty())
        writeSweepSummary();

    // Merge every participant's event journal into one Chrome trace
    // after each batch (cheap: journals are small), so the timeline is
    // inspectable mid-sweep and survives a killed coordinator. The
    // standalone bench/sweep_timeline tool re-runs the same merge.
    if (sweepEventsEnabled()) {
        const std::string custom = sweepTimelinePath();
        const std::filesystem::path out_path =
            custom.empty() ? resultsDir() / "timeline.json"
                           : std::filesystem::path(custom);
        std::string error;
        if (!mergeSweepTimeline(resultsDir() / "events", out_path,
                                &error))
            dice_warn("sweep: timeline merge failed: %s",
                      error.c_str());
    }
}

/** The classic engine: a benchJobs()-sized in-process thread pool. */
void
runCellsSerial(const std::vector<const SimCell *> &work,
               bool progress_allowed)
{
    const bool progress = progress_allowed && progressEnabled();
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> done{0};
    parallelFor(work.size(), benchJobs(),
                [&work, &done, progress, t0](std::size_t i) {
        runWorkload(work[i]->workload, work[i]->config,
                    work[i]->cache_key);
        if (progress) {
            const std::size_t d =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            printProgress(d, work.size(), elapsed);
        }
    });
}

#ifndef _WIN32

/** Milliseconds elapsed since @p t0. */
std::uint64_t
elapsedMs(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/**
 * One participant's claim loop against @p q, run as @p jobs parallel
 * loops: claim the most expensive unowned cell, simulate it, publish
 * its document, repeat. When nothing is claimable the loop polls until
 * the batch completes — a live peer may still crash and requeue its
 * cells, and those must not be orphaned. @p after_cell runs after
 * every publish with this participant's cumulative busy milliseconds
 * (used for heartbeats/progress). Returns total busy milliseconds.
 */
template <typename AfterCell>
std::uint64_t
drainSweepQueue(SweepQueue &q, const std::vector<const SimCell *> &work,
                unsigned jobs, AfterCell after_cell)
{
    std::atomic<std::uint64_t> busy_ms{0};
    parallelFor(jobs, jobs, [&](std::size_t) {
        // How long this claim loop has been idle: feeds the
        // claim-wait latency histogram and the journal's claim events
        // (the distributed analogue of run-queue wait).
        auto free_since = std::chrono::steady_clock::now();
        for (;;) {
            const std::uint64_t wait_us = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - free_since)
                    .count());
            const std::optional<std::size_t> idx =
                q.claimNext(wait_us);
            if (!idx) {
                if (q.complete())
                    return;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                continue;
            }
            const SimCell *c = work[q.cell(*idx).canonical_index];
            const auto t0 = std::chrono::steady_clock::now();
            const RunResult &r =
                runWorkload(c->workload, c->config, c->cache_key);
            const std::uint64_t dt = elapsedMs(t0);
            const std::uint64_t busy =
                busy_ms.fetch_add(dt, std::memory_order_relaxed) + dt;
            q.publish(*idx,
                      resultJson(c->workload, c->cache_key, r) + "\n");
            after_cell(busy);
            free_since = std::chrono::steady_clock::now();
        }
    });
    return busy_ms.load();
}

/**
 * Run one batch as a claim-queue participant named @p name whose
 * nominal static shard is @p home_shard of @p shard_count (0 ⇒ no
 * shard; every claim counts as stolen). Heartbeats after every
 * published cell; ends with either a summary file for the coordinator
 * to accumulate or, when @p record is non-null (the coordinator
 * itself), an in-process record — the coordinator's arena counters
 * are already reported directly, so it must not also write a summary
 * that would double-count them.
 */
void
runCellsQueueParticipant(const std::vector<const SimCell *> &work,
                         unsigned long batch, const std::string &name,
                         unsigned home_shard, unsigned shard_count,
                         ParticipantAgg *record = nullptr)
{
    std::error_code ec;
    std::filesystem::create_directories(resultsDir(), ec);
    SweepQueue q(resultsDir(), queueCellsFor(work), home_shard,
                 shard_count);
    const unsigned jobs = benchJobs();
    const auto t0 = std::chrono::steady_clock::now();
    const TraceArena::Stats since = TraceArena::instance().stats();
    const std::array<LogHistogram, kSweepPhases> phases_since =
        SweepMetrics::instance().snapshotAll();
    // The summary is rewritten (atomically) after every publish, not
    // only at the end: completion detection lags the last publish by
    // a poll interval, and the accumulating coordinator must find the
    // full record the instant the batch's last document lands — not
    // lose a race against a --join worker still noticing it is done.
    const auto write_summary = [&](std::uint64_t busy_ms) {
        if (record != nullptr)
            return;
        const QueueStats qs = q.stats();
        atomicWriteFile(resultsDir() / (name + ".summary"),
                        summaryLine(batch, qs.published, qs, busy_ms,
                                    elapsedMs(t0), jobs, since,
                                    phases_since));
    };
    writeHeartbeat(name, batch, 0, work.size(), QueueStats{}, 0);
    write_summary(0);
    const std::uint64_t busy =
        drainSweepQueue(q, work, jobs, [&](std::uint64_t busy_so_far) {
            writeHeartbeat(name, batch, q.doneCount(), work.size(),
                           q.stats(), busy_so_far);
            write_summary(busy_so_far);
        });
    const std::uint64_t span = elapsedMs(t0);
    const QueueStats qs = q.stats();
    if (record != nullptr) {
        record->cells += qs.published;
        record->stolen += qs.stolen;
        record->requeued += qs.requeued;
        record->busy_ms += busy;
        record->span_ms += span;
        record->jobs = jobs;
    } else {
        write_summary(busy);
    }
}

/**
 * Legacy static scheduler (DICE_SWEEP_STATIC=1): the worker owns
 * exactly the canonical indices congruent to its index mod M. Kept as
 * the A/B baseline for scheduling experiments; a crashed worker's
 * shard silently degrades to coordinator-local simulation at merge.
 */
void
runCellsWorkerStatic(const std::vector<const SimCell *> &work,
                     unsigned long batch)
{
    const SweepMode &m = sweepMode();
    std::error_code ec;
    std::filesystem::create_directories(resultsDir(), ec);
    std::vector<const SimCell *> mine;
    for (std::size_t i = m.worker_index; i < work.size();
         i += m.workers)
        mine.push_back(work[i]);

    const std::string name = "worker" + std::to_string(m.worker_index);
    const unsigned jobs = benchJobs();
    const auto t0 = std::chrono::steady_clock::now();
    const TraceArena::Stats since = TraceArena::instance().stats();
    const std::array<LogHistogram, kSweepPhases> phases_since =
        SweepMetrics::instance().snapshotAll();
    std::atomic<std::size_t> done{0};
    std::atomic<std::uint64_t> busy_ms{0};
    writeHeartbeat(name, batch, 0, mine.size(), QueueStats{}, 0);
    parallelFor(mine.size(), jobs, [&](std::size_t i) {
        const SimCell *c = mine[i];
        const auto c0 = std::chrono::steady_clock::now();
        const RunResult &r =
            runWorkload(c->workload, c->config, c->cache_key);
        const std::uint64_t dt = elapsedMs(c0);
        const std::uint64_t busy =
            busy_ms.fetch_add(dt, std::memory_order_relaxed) + dt;
        atomicWriteFile(SweepQueue::docPath(resultsDir(), cellStem(*c)),
                        resultJson(c->workload, c->cache_key, r) + "\n");
        writeHeartbeat(name, batch,
                       done.fetch_add(1, std::memory_order_relaxed) + 1,
                       mine.size(), QueueStats{}, busy);
    });
    atomicWriteFile(resultsDir() / (name + ".summary"),
                    summaryLine(batch, mine.size(), QueueStats{},
                                busy_ms.load(), elapsedMs(t0), jobs,
                                since, phases_since));
}

/**
 * Worker role: batches before the target were already merged into the
 * persistent cache by the coordinator, so they replay as loads; the
 * target batch drains the shared claim queue (or, under
 * DICE_SWEEP_STATIC=1, simulates exactly its static shard), then the
 * worker exits before the bench main can print anything or touch
 * later batches.
 */
void
runCellsWorker(const std::vector<const SimCell *> &work,
               unsigned long batch)
{
    const SweepMode &m = sweepMode();
    if (batch != m.target_batch) {
        runCellsSerial(work, /*progress_allowed=*/false);
        return;
    }

    if (schedulerIsStatic())
        runCellsWorkerStatic(work, batch);
    else
        runCellsQueueParticipant(
            work, batch, "worker" + std::to_string(m.worker_index),
            m.worker_index, m.workers);
    if (TraceLog::instance().enabled())
        TraceLog::instance().flush();
    std::exit(0);
}

/**
 * Join role (--join DIR): attach to an in-flight sweep's results
 * directory and drain every batch's claim queue alongside the owning
 * coordinator — from this host or any other sharing the filesystem.
 * A join worker is a pure extra pair of hands: it feeds the shared
 * caches, per-cell documents, its heartbeat, and a summary per batch;
 * the sweep's coordinator still owns stdout, the merged document, and
 * the sweep summary.
 */
void
runCellsJoin(const std::vector<const SimCell *> &work,
             unsigned long batch)
{
    static const std::string name =
        "join" + std::to_string(claimPid());
    runCellsQueueParticipant(work, batch, name, 0, 0);
}

/** Remove every participant heartbeat and summary (batch-start
 *  hygiene: leftovers from a previous batch or run — e.g. a --join
 *  worker's final summary rewrite that landed after the previous
 *  batch was accumulated — must not pollute this batch's progress or
 *  get accumulated twice). */
void
removeHeartbeats()
{
    std::error_code ec;
    std::filesystem::directory_iterator it(resultsDir(), ec);
    if (ec)
        return;
    std::vector<std::filesystem::path> stale;
    for (const auto &entry : it) {
        const std::filesystem::path ext = entry.path().extension();
        if (ext == ".heartbeat" || ext == ".summary")
            stale.push_back(entry.path());
    }
    for (const std::filesystem::path &p : stale)
        std::filesystem::remove(p, ec);
}

/**
 * Coordinator role, work-stealing scheduler: reset the batch's cells
 * (documents left by a previous run must not masquerade as done),
 * spawn M workers, and monitor the queue. While workers live the
 * coordinator only reaps and reports progress — a worker that dies
 * abnormally just abandons its leases, which expire and requeue to
 * the survivors. Only when *every* worker is gone does the
 * coordinator drain the remainder itself (also the degenerate path
 * when spawning fails entirely). Then it merges by replaying the
 * batch as cache loads in canonical order, which keeps stdout and the
 * merged document byte-identical to a serial run.
 */
void
runCellsCoordinatorQueue(const std::vector<const SimCell *> &work,
                         unsigned long batch)
{
    const SweepMode &m = sweepMode();
    std::error_code ec;
    std::filesystem::create_directories(resultsDir() / "leases", ec);
    for (const SimCell *c : work)
        SweepQueue::resetCell(resultsDir(), cellStem(*c));
    removeHeartbeats();

    std::vector<pid_t> pids;
    for (unsigned i = 0; i < m.workers; ++i) {
        const pid_t pid = spawnWorker(i, batch);
        if (pid > 0)
            pids.push_back(pid);
    }

    SweepQueue q(resultsDir(), queueCellsFor(work), 0, 0);
    const unsigned jobs = benchJobs();
    const auto t0 = std::chrono::steady_clock::now();
    const bool progress = progressEnabled();
    std::vector<bool> reaped(pids.size(), false);
    std::size_t alive = pids.size();
    std::uint64_t busy_ms = 0;
    for (;;) {
        for (std::size_t i = 0; i < pids.size(); ++i) {
            if (reaped[i])
                continue;
            int status = 0;
            if (waitpid(pids[i], &status, WNOHANG) == pids[i]) {
                reaped[i] = true;
                --alive;
                if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                    dice_warn("sweep: worker %zu died; its cells "
                              "return to the queue",
                              i);
            }
        }
        if (progress)
            printSweepProgress(batch, q.doneCount(), work.size(),
                               m.workers, alive, false);
        if (q.complete())
            break;
        if (alive == 0) {
            // Every worker is gone (crashed, or never spawned): the
            // coordinator claims and simulates what remains. Expired
            // leases of the dead are broken inside claimNext.
            busy_ms += drainSweepQueue(
                q, work, jobs, [&](std::uint64_t) {
                    if (progress)
                        printSweepProgress(batch, q.doneCount(),
                                           work.size(), m.workers, 0,
                                           false);
                });
        } else {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    }
    // Workers exit on their own once they observe the batch complete.
    for (std::size_t i = 0; i < pids.size(); ++i) {
        if (!reaped[i]) {
            int status = 0;
            waitpid(pids[i], &status, 0);
        }
    }
    if (progress)
        printSweepProgress(batch, work.size(), work.size(), m.workers,
                           0, true);

    const QueueStats qs = q.stats();
    SweepTotals &totals = sweepTotals();
    totals.coordinator.cells += qs.published;
    totals.coordinator.stolen += qs.stolen;
    totals.coordinator.requeued += qs.requeued;
    totals.coordinator.busy_ms += busy_ms;
    totals.coordinator.span_ms += elapsedMs(t0);
    totals.coordinator.jobs = jobs;

    for (const SimCell *c : work)
        runWorkload(c->workload, c->config, c->cache_key);
    accumulateWorkerSummaries();
}

/**
 * Coordinator role, legacy static scheduler (DICE_SWEEP_STATIC=1):
 * shard the batch across M re-spawned workers, wait on them while
 * aggregating their heartbeats into one progress line, then merge by
 * replaying the batch as cache loads in canonical order (simulating
 * locally anything a worker failed to publish).
 */
void
runCellsCoordinatorStatic(const std::vector<const SimCell *> &work,
                          unsigned long batch)
{
    const SweepMode &m = sweepMode();
    std::error_code ec;
    std::filesystem::create_directories(resultsDir(), ec);
    removeHeartbeats();

    std::vector<pid_t> pids;
    for (unsigned i = 0; i < m.workers; ++i) {
        const pid_t pid = spawnWorker(i, batch);
        if (pid > 0)
            pids.push_back(pid);
    }

    const bool progress = progressEnabled();
    std::vector<bool> reaped(pids.size(), false);
    std::size_t alive = pids.size();
    while (alive > 0) {
        for (std::size_t i = 0; i < pids.size(); ++i) {
            if (reaped[i])
                continue;
            int status = 0;
            if (waitpid(pids[i], &status, WNOHANG) == pids[i]) {
                reaped[i] = true;
                --alive;
                if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                    dice_warn("sweep: worker %zu died; its shard falls "
                              "back to the coordinator",
                              i);
            }
        }
        if (progress) {
            std::size_t done = 0, total = 0;
            readHeartbeats(batch, done, total);
            printSweepProgress(batch, done,
                               total != 0 ? total : work.size(),
                               m.workers, alive, alive == 0);
        }
        if (alive > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
    }

    for (const SimCell *c : work)
        runWorkload(c->workload, c->config, c->cache_key);
    accumulateWorkerSummaries();
}

void
runCellsCoordinator(const std::vector<const SimCell *> &work,
                    unsigned long batch)
{
    if (schedulerIsStatic())
        runCellsCoordinatorStatic(work, batch);
    else
        runCellsCoordinatorQueue(work, batch);
}

#endif // !_WIN32

} // namespace

SystemConfig
defaultBase()
{
    SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.refs_per_core = refsPerCore();
    cfg.warmup_refs_per_core = refsPerCore() / 2;
    // 1/128-scale machine: an 8-MiB L4 stands in for the paper's
    // 1 GiB and a 64-KiB shared L3 for the paper's 8 MiB. Footprints
    // scale with reference_capacity so footprint/capacity pressure
    // matches Table 3, and the smaller caches reach steady state
    // within the scaled instruction budget.
    cfg.reference_capacity = 8_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4.base.capacity = 8_MiB;
    cfg.core.mshrs = 16;
    cfg.seed = 2017;
    return cfg;
}

SystemConfig
configureBaseline(SystemConfig base)
{
    base.l4.organization = "alloy";
    return base;
}

SystemConfig
configureOrganization(SystemConfig base, const std::string &org)
{
    dice_assert(L4Registry::instance().known(org),
                "unknown L4 organization '%s'", org.c_str());
    base.l4.organization = org;
    return base;
}

SystemConfig
configureCompressed(SystemConfig base, CompressionPolicy policy)
{
    base.l4.organization = policyName(policy);
    return base;
}

SystemConfig
configureDice(SystemConfig base)
{
    return configureCompressed(std::move(base), CompressionPolicy::Dice);
}

SystemConfig
configure2xCapacity(SystemConfig base)
{
    base.l4.organization = "alloy";
    base.l4.base.capacity *= 2;
    return base;
}

SystemConfig
configure2xBandwidth(SystemConfig base)
{
    base.l4.organization = "alloy";
    base.l4.base.timing.channels *= 2;
    return base;
}

SystemConfig
configure2xBoth(SystemConfig base)
{
    return configure2xBandwidth(configure2xCapacity(std::move(base)));
}

std::vector<std::string>
extraOrgNames()
{
    std::vector<std::string> out;
    const char *env = std::getenv("DICE_BENCH_ORGS");
    if (env == nullptr || *env == '\0')
        return out;
    std::string cur;
    for (const char *p = env;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty()) {
                dice_assert(L4Registry::instance().known(cur),
                            "DICE_BENCH_ORGS names unknown organization "
                            "'%s'",
                            cur.c_str());
                out.push_back(cur);
            }
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

std::vector<WorkloadProfile>
workloadProfiles(const std::string &name, std::uint32_t cores)
{
    if (name.rfind("mix", 0) == 0 && name.size() == 4) {
        const std::size_t idx =
            static_cast<std::size_t>(name[3] - '1');
        dice_assert(idx < mixSuite().size(), "bad mix name %s",
                    name.c_str());
        std::vector<WorkloadProfile> profiles = mixSuite()[idx];
        dice_assert(!profiles.empty(), "mix suite %s has no profiles",
                    name.c_str());
        // Copy the fill value out first: resize may reallocate, and
        // passing a reference into the vector being resized would
        // read a dangling element.
        const WorkloadProfile fill = profiles.front();
        profiles.resize(cores, fill);
        return profiles;
    }
    return std::vector<WorkloadProfile>(cores, profileByName(name));
}

unsigned
benchJobs()
{
    return jobsFromEnv("DICE_BENCH_JOBS");
}

const RunResult &
runWorkload(const std::string &workload, const SystemConfig &config,
            const std::string &cache_key)
{
    ResultCache &rc = resultCache();
    const std::string key = workload + "|" + cache_key;
    {
        std::shared_lock lock(rc.mu);
        const auto it = rc.results.find(key);
        if (it != rc.results.end())
            return it->second;
    }

    const std::filesystem::path file =
        cacheDir() / resultFileName(workload, config, cache_key);
    RunResult computed;
    bool loaded = false;
    if (cacheEnabled()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir(), ec);
        loaded = detail::loadResult(file, computed);
    }
    if (!loaded) {
        // The per-cell announcement honors DICE_LOG_LEVEL=quiet and
        // yields to the heartbeat line when DICE_PROGRESS is set.
        if (logLevel() >= LogLevel::Warn && !progressEnabled()) {
            std::fprintf(stderr, "[sim] %s / %s ...\n", workload.c_str(),
                         cache_key.c_str());
        }
        const auto usSince =
            [](std::chrono::steady_clock::time_point t) {
                return static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t)
                        .count());
            };
        const std::string stem =
            sanitizeFileStem(workload + "_" + cache_key);
        SweepJournal &jr = SweepJournal::instance();
        SweepMetrics &sm = SweepMetrics::instance();
        const auto cell_t0 = std::chrono::steady_clock::now();
        const std::uint64_t cell_m0 = jr.enabled() ? jr.monoUs() : 0;
        if (jr.enabled())
            jr.begin("cell", stem);
        TraceSpan cell_span("cell", workload + "/" + cache_key,
                            cellArgsJson(workload, cache_key));
        std::vector<WorkloadProfile> profiles =
            workloadProfiles(workload, config.num_cores);
        std::shared_ptr<const TraceSet> replay;
        if (arenaEnabled()) {
            const auto gen_t0 = std::chrono::steady_clock::now();
            const std::uint64_t gen_m0 =
                jr.enabled() ? jr.monoUs() : 0;
            if (jr.enabled())
                jr.begin("generate", stem);
            TraceSpan gen_span("generate", workload);
            // +1: the simulator primes one reference ahead of the
            // warmup + measurement budget.
            replay = TraceArena::instance().acquire(
                workload, config.seed, config.num_cores,
                config.reference_capacity,
                config.warmup_refs_per_core + config.refs_per_core + 1,
                profiles, benchJobs());
            const std::uint64_t gen_us = usSince(gen_t0);
            sm.sample(SweepPhase::Generate, gen_us);
            if (jr.enabled())
                jr.phase("generate", stem, gen_m0, gen_us);
        }
        System sys(config, std::move(profiles), std::move(replay));
        {
            const auto sim_t0 = std::chrono::steady_clock::now();
            const std::uint64_t sim_m0 =
                jr.enabled() ? jr.monoUs() : 0;
            if (jr.enabled())
                jr.begin("simulate", stem);
            TraceSpan sim_span("simulate", workload + "/" + cache_key);
            computed = sys.run();
            const std::uint64_t sim_us = usSince(sim_t0);
            sm.sample(SweepPhase::Simulate, sim_us);
            if (jr.enabled())
                jr.phase("simulate", stem, sim_m0, sim_us);
        }
        {
            const auto exp_t0 = std::chrono::steady_clock::now();
            const std::uint64_t exp_m0 =
                jr.enabled() ? jr.monoUs() : 0;
            exportCellStats(sys, workload, cache_key);
            const std::uint64_t exp_us = usSince(exp_t0);
            sm.sample(SweepPhase::Export, exp_us);
            if (jr.enabled())
                jr.phase("export", stem, exp_m0, exp_us);
        }
        const std::uint64_t cell_us = usSince(cell_t0);
        sm.noteCell(stem, cell_us);
        if (jr.enabled())
            jr.phase("cell", stem, cell_m0, cell_us);
        g_simulated_refs.fetch_add(
            (config.warmup_refs_per_core + config.refs_per_core) *
                config.num_cores,
            std::memory_order_relaxed);
    }

    std::pair<std::map<std::string, RunResult>::iterator, bool> pub;
    {
        std::unique_lock lock(rc.mu);
        // First publisher wins; a racing duplicate computed the same
        // bits anyway (the simulation is deterministic).
        pub = rc.results.emplace(key, std::move(computed));
    }
    if (pub.second && !loaded && cacheEnabled())
        detail::saveResult(file, pub.first->second);
    return pub.first->second;
}

void
initSweepMode(int argc, char **argv)
{
    SweepMode &m = sweepMode();
    m = SweepMode{};
    if (argc > 0 && argv[0] != nullptr)
        m.self = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i] != nullptr ? argv[i] : "";
        if (arg == "--serve" && i + 1 < argc) {
            m.role = SweepMode::Role::Coordinator;
            m.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--worker" && i + 1 < argc) {
            m.role = SweepMode::Role::Worker;
            char *end = nullptr;
            m.worker_index = static_cast<unsigned>(
                std::strtoul(argv[++i], &end, 10));
            m.workers =
                end != nullptr && *end == '/'
                    ? static_cast<unsigned>(
                          std::strtoul(end + 1, nullptr, 10))
                    : 0;
        } else if (arg == "--batch" && i + 1 < argc) {
            m.target_batch = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--join" && i + 1 < argc) {
            m.role = SweepMode::Role::Join;
            m.join_results = argv[i + 1] != nullptr ? argv[i + 1] : "";
            ++i;
        } else {
            m.passthrough.push_back(arg);
        }
    }

    if (m.role == SweepMode::Role::Coordinator && m.workers < 2) {
        // One worker re-running the whole batch is pure overhead.
        m.role = SweepMode::Role::Serial;
    }
    if (m.role == SweepMode::Role::Worker &&
        (m.workers == 0 || m.worker_index >= m.workers)) {
        dice_warn("sweep: bad --worker i/M spec; running serially");
        m.role = SweepMode::Role::Serial;
    }
    if (m.role == SweepMode::Role::Join && m.join_results.empty()) {
        dice_warn("sweep: --join needs a results directory; "
                  "running serially");
        m.role = SweepMode::Role::Serial;
    }
#ifdef _WIN32
    if (m.role != SweepMode::Role::Serial) {
        dice_warn("sweep: --serve/--worker/--join are POSIX-only; "
                  "running serially");
        m.role = SweepMode::Role::Serial;
    }
#else
    if (m.role == SweepMode::Role::Coordinator && !cacheEnabled()) {
        dice_warn("sweep: --serve shares work through the persistent "
                  "cache; unset DICE_BENCH_NO_CACHE. Running serially");
        m.role = SweepMode::Role::Serial;
    }
    if (m.role == SweepMode::Role::Join) {
        // The attached sweep's claim queue lives in its results
        // directory; point this process's sweep plumbing there.
        setenv("DICE_SWEEP_RESULTS", m.join_results.c_str(), 1);
        // Participants exchange results through the persistent bench
        // cache; an attaching worker must share the sweep's cache. By
        // default the results dir is <cache>/results, so infer the
        // cache from the parent unless the caller said otherwise.
        if (std::getenv("DICE_BENCH_CACHE_DIR") == nullptr) {
            const std::filesystem::path parent =
                std::filesystem::path(m.join_results).parent_path();
            if (!parent.empty())
                setenv("DICE_BENCH_CACHE_DIR",
                       parent.string().c_str(), 1);
        }
        if (!cacheEnabled()) {
            dice_warn("sweep: --join shares work through the "
                      "persistent cache; unset DICE_BENCH_NO_CACHE. "
                      "Running serially");
            m.role = SweepMode::Role::Serial;
        } else if (std::freopen("/dev/null", "w", stdout) == nullptr) {
            // The owning coordinator prints the tables; a join worker
            // duplicating them would corrupt redirected sweep output.
            dice_warn("sweep: cannot silence --join stdout");
        }
    }
    if (m.role == SweepMode::Role::Worker ||
        m.role == SweepMode::Role::Join) {
        // Per-participant Chrome trace documents; initSweepMode runs
        // before anything constructs the TraceLog, so the env is
        // still live.
        const char *env = std::getenv("DICE_TRACE_OUT");
        if (env != nullptr && env[0] != '\0') {
            const std::string path =
                std::string(env) +
                (m.role == SweepMode::Role::Worker
                     ? ".worker" + std::to_string(m.worker_index)
                     : ".join" + std::to_string(claimPid()));
            setenv("DICE_TRACE_OUT", path.c_str(), 1);
        }
    }
#endif
}

void
runCells(const std::vector<SimCell> &cells)
{
    // Dedupe by memo key so a racing pair never simulates twice. The
    // resulting first-appearance order is the batch's canonical cell
    // order, shared by every role of a distributed sweep.
    std::unordered_set<std::string> seen;
    std::vector<const SimCell *> work;
    work.reserve(cells.size());
    for (const SimCell &c : cells) {
        if (seen.insert(c.workload + "|" + c.cache_key).second)
            work.push_back(&c);
    }
    registerCells(work);
    const unsigned long batch = g_batch_counter.fetch_add(1);
    maybeOpenSweepJournal();

    const SweepMode &m = sweepMode();
#ifndef _WIN32
    if (m.role == SweepMode::Role::Worker) {
        runCellsWorker(work, batch); // exits after its target batch
        return;
    }
    if (m.role == SweepMode::Role::Join) {
        // The owning coordinator writes the merged document and the
        // sweep summary; a join worker only feeds the queue.
        runCellsJoin(work, batch);
        return;
    }
    if (m.role == SweepMode::Role::Coordinator)
        runCellsCoordinator(work, batch);
    else
        runCellsSerial(work, /*progress_allowed=*/true);
#else
    (void)batch;
    runCellsSerial(work, /*progress_allowed=*/true);
#endif
    writeSweepOutputs();
}

void
runSweep(const std::vector<std::string> &workloads,
         const std::vector<OrgCell> &orgs)
{
    std::vector<SimCell> cells;
    cells.reserve(workloads.size() * orgs.size());
    for (const OrgCell &org : orgs) {
        for (const std::string &w : workloads)
            cells.push_back(SimCell{w, org.config, org.cache_key});
    }
    runCells(cells);
    // Make the Chrome trace durable after every sweep, not only at
    // process exit: each flush appends the new events and re-closes
    // the document, so the file stays valid at every point.
    if (TraceLog::instance().enabled())
        TraceLog::instance().flush();
}

double
speedupOver(const std::string &workload, const SystemConfig &base_cfg,
            const std::string &base_key, const SystemConfig &test_cfg,
            const std::string &test_key)
{
    const RunResult &base = runWorkload(workload, base_cfg, base_key);
    const RunResult &test = runWorkload(workload, test_cfg, test_key);
    return weightedSpeedup(base, test);
}

const std::vector<std::string> &
rateNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : specRateSuite())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
mixNames()
{
    static const std::vector<std::string> names = {"mix1", "mix2", "mix3",
                                                   "mix4"};
    return names;
}

const std::vector<std::string> &
gapNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : gapSuite())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> all;
    for (const auto *group : {&rateNames(), &mixNames(), &gapNames()})
        all.insert(all.end(), group->begin(), group->end());
    return all;
}

double
geomeanOver(const std::vector<std::string> &names,
            const std::map<std::string, double> &values)
{
    std::vector<double> vals;
    for (const auto &n : names) {
        const auto it = values.find(n);
        dice_assert(it != values.end(), "missing value for %s",
                    n.c_str());
        vals.push_back(it->second);
    }
    return geomean(vals);
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================"
                "============================\n");
}

void
printColumns(const std::vector<std::string> &names)
{
    std::printf("%-12s", "workload");
    for (const auto &n : names)
        std::printf(" %12s", n.c_str());
    std::printf("\n");
}

void
printRow(const std::string &name, const std::vector<double> &values,
         const std::vector<std::string> &suffix)
{
    std::printf("%-12s", name.c_str());
    for (double v : values)
        std::printf(" %12.3f", v);
    for (const auto &s : suffix)
        std::printf(" %s", s.c_str());
    std::printf("\n");
}

} // namespace dice::bench
