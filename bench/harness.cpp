#include "harness.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <unordered_set>

#include <chrono>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "common/trace_events.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace dice::bench
{

namespace
{

/** Bump when simulator or cache-file format changes invalidate
 *  cached results (v6: trailing checksum field). */
constexpr int kCacheVersion = 6;

/** Scale knob: DICE_BENCH_REFS overrides refs per core. */
std::uint64_t
refsPerCore()
{
    if (const char *env = std::getenv("DICE_BENCH_REFS"))
        return std::strtoull(env, nullptr, 10);
    return 40'000;
}

/**
 * Directory for cross-binary result caching. Every bench binary needs
 * many of the same (workload, organization) simulations; persisting
 * them lets the whole table suite run each simulation exactly once.
 * Disable with DICE_BENCH_NO_CACHE=1.
 */
std::filesystem::path
cacheDir()
{
    if (const char *env = std::getenv("DICE_BENCH_CACHE_DIR"))
        return env;
    return "bench_cache";
}

bool
cacheEnabled()
{
    return std::getenv("DICE_BENCH_NO_CACHE") == nullptr;
}

/**
 * Reference streams depend only on (workload, seed, cores, capacity,
 * length), never on the L4 organization, so freshly-simulated cells
 * pull their traces from the process-wide TraceArena: a sweep
 * generates each stream once and every organization column replays
 * it. DICE_TRACE_ARENA=0 falls back to live per-cell generation.
 */
bool
arenaEnabled()
{
    const char *env = std::getenv("DICE_TRACE_ARENA");
    return env == nullptr || std::string(env) != "0";
}

std::string
resultFileName(const std::string &workload, const SystemConfig &config,
               const std::string &cache_key)
{
    std::ostringstream key;
    key << kCacheVersion << '|' << workload << '|' << cache_key << '|'
        << config.refs_per_core << '|' << config.warmup_refs_per_core
        << '|' << config.seed << '|' << config.reference_capacity;
    return std::to_string(mix64(std::hash<std::string>{}(key.str()))) +
           ".result";
}

/** Stable (cross-process, cross-build) FNV-1a hash of the payload. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Serialize a result into the cache-file payload (no checksum). */
std::string
serializeResult(const RunResult &r)
{
    std::ostringstream out;
    out.precision(17);
    out << r.cycles << ' ' << r.instructions << ' ' << r.ipc << ' '
        << r.l3_hit_rate << ' ' << r.l4_hit_rate << ' ' << r.l4_reads
        << ' ' << r.l4_extra_lines << ' ' << r.l4_second_probes << ' '
        << r.cip_read_accuracy << ' ' << r.cip_write_accuracy << ' '
        << r.mapi_accuracy << ' ' << r.frac_invariant << ' '
        << r.frac_bai << ' ' << r.frac_tsi << ' ' << r.avg_valid_lines
        << ' ' << r.l4_bytes << ' ' << r.mem_bytes << ' '
        << r.avg_miss_latency << ' ' << r.energy.l4_nj << ' '
        << r.energy.mem_nj << ' ' << r.energy.background_nj << ' '
        << r.energy.total_nj << ' ' << r.energy.avg_power_w << ' '
        << r.energy.edp << ' ' << r.energy.seconds << ' '
        << r.core_cycles.size();
    for (const Cycle c : r.core_cycles)
        out << ' ' << c;
    return out.str();
}

/** Inverse of serializeResult(); false on malformed payloads. */
bool
parseResult(const std::string &payload, RunResult &r)
{
    std::istringstream in(payload);
    std::size_t n_cores = 0;
    in >> r.cycles >> r.instructions >> r.ipc >> r.l3_hit_rate >>
        r.l4_hit_rate >> r.l4_reads >> r.l4_extra_lines >>
        r.l4_second_probes >> r.cip_read_accuracy >>
        r.cip_write_accuracy >> r.mapi_accuracy >> r.frac_invariant >>
        r.frac_bai >> r.frac_tsi >> r.avg_valid_lines >> r.l4_bytes >>
        r.mem_bytes >> r.avg_miss_latency >> r.energy.l4_nj >>
        r.energy.mem_nj >> r.energy.background_nj >> r.energy.total_nj >>
        r.energy.avg_power_w >> r.energy.edp >> r.energy.seconds >>
        n_cores;
    if (!in || n_cores == 0 || n_cores > 1024)
        return false;
    r.core_cycles.resize(n_cores);
    for (std::size_t i = 0; i < n_cores; ++i)
        in >> r.core_cycles[i];
    return static_cast<bool>(in);
}

/**
 * In-process result memo. Guarded by a shared mutex so parallel sweep
 * workers can look up and publish results concurrently; std::map node
 * stability makes the returned references permanently valid.
 */
struct ResultCache
{
    std::shared_mutex mu;
    std::map<std::string, RunResult> results;
};

ResultCache &
resultCache()
{
    static ResultCache cache;
    return cache;
}

/** References actually simulated this process (fresh cells only;
 *  cache-loaded cells do no simulation work). Feeds the heartbeat's
 *  refs/sec figure. */
std::atomic<std::uint64_t> g_simulated_refs{0};

/** Rendered trace-event args for a cell span. */
std::string
cellArgsJson(const std::string &workload, const std::string &cache_key)
{
    std::string args = "{\"workload\": \"";
    appendJsonEscaped(args, workload);
    args += "\", \"org\": \"";
    appendJsonEscaped(args, cache_key);
    args += "\"}";
    return args;
}

/**
 * Export one freshly-simulated cell's stat registry when
 * DICE_STATS_JSON / DICE_STATS_CSV name output directories. Called
 * with the System still alive (the registry reads live counters).
 */
void
exportCellStats(const System &sys, const std::string &workload,
                const std::string &cache_key)
{
    const std::string json_dir = statsJsonDir();
    const std::string csv_dir = statsCsvDir();
    if (json_dir.empty() && csv_dir.empty())
        return;
    const std::string stem =
        sanitizeFileStem(workload + "_" + cache_key);
    std::error_code ec;
    if (!json_dir.empty()) {
        std::filesystem::create_directories(json_dir, ec);
        const auto path =
            std::filesystem::path(json_dir) / (stem + ".json");
        if (!sys.statRegistry().writeJson(path.string()))
            dice_warn("cannot write stats JSON %s", path.c_str());
    }
    if (!csv_dir.empty()) {
        std::filesystem::create_directories(csv_dir, ec);
        const auto path =
            std::filesystem::path(csv_dir) / (stem + ".csv");
        if (!sys.statRegistry().writeCsv(path.string()))
            dice_warn("cannot write stats CSV %s", path.c_str());
    }
}

/**
 * DICE_PROGRESS=1 heartbeat: one line per completed cell with the
 * sweep position, cumulative simulation throughput, and the arena's
 * residency. Serialized by its own mutex so parallel workers never
 * interleave; on a tty the line redraws in place.
 */
void
printProgress(std::size_t done, std::size_t total, double elapsed_s)
{
    const TraceArena::Stats arena = TraceArena::instance().stats();
    const double refs =
        static_cast<double>(g_simulated_refs.load(std::memory_order_relaxed));
    const double mrefs_per_s =
        elapsed_s > 0.0 ? refs / elapsed_s / 1e6 : 0.0;
#ifdef _WIN32
    const bool tty = false;
#else
    const bool tty = isatty(fileno(stderr)) != 0;
#endif
    static std::mutex mu;
    std::lock_guard lock(mu);
    std::fprintf(stderr,
                 "%s[progress] %zu/%zu cells | %.2f Mref/s | arena "
                 "%.1f MiB, %llu entries%s",
                 tty ? "\r" : "", done, total, mrefs_per_s,
                 static_cast<double>(arena.resident_bytes) /
                     (1024.0 * 1024.0),
                 static_cast<unsigned long long>(arena.entries),
                 tty ? (done == total ? "\n" : "") : "\n");
    std::fflush(stderr);
}

} // namespace

namespace detail
{

void
saveResult(const std::filesystem::path &path, const RunResult &r)
{
    // Unique temp name per process and call: concurrent writers (other
    // threads or other bench binaries) never collide, and readers only
    // ever see fully-written files because rename() is atomic within a
    // directory.
    static std::atomic<std::uint64_t> counter{0};
    const std::string payload = serializeResult(r);
    std::filesystem::path tmp = path;
    tmp += ".tmp." + std::to_string(static_cast<long>(getpid())) + "." +
           std::to_string(counter.fetch_add(1));

    {
        std::ofstream out(tmp);
        if (!out)
            return;
        out << payload << ' ' << fnv1a(payload) << '\n';
        if (!out)
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

bool
loadResult(const std::filesystem::path &path, RunResult &r)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    while (!content.empty() &&
           (content.back() == '\n' || content.back() == '\r'))
        content.pop_back();

    // The file is "<payload> <checksum>"; a truncated, stale (pre-v6),
    // or partially-written file fails the checksum and is a cache miss.
    const std::size_t sep = content.rfind(' ');
    if (sep == std::string::npos || sep + 1 >= content.size())
        return false;
    const std::string payload = content.substr(0, sep);
    errno = 0;
    char *end = nullptr;
    const std::uint64_t stored =
        std::strtoull(content.c_str() + sep + 1, &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    if (stored != fnv1a(payload))
        return false;
    return parseResult(payload, r);
}

} // namespace detail

SystemConfig
defaultBase()
{
    SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.refs_per_core = refsPerCore();
    cfg.warmup_refs_per_core = refsPerCore() / 2;
    // 1/128-scale machine: an 8-MiB L4 stands in for the paper's
    // 1 GiB and a 64-KiB shared L3 for the paper's 8 MiB. Footprints
    // scale with reference_capacity so footprint/capacity pressure
    // matches Table 3, and the smaller caches reach steady state
    // within the scaled instruction budget.
    cfg.reference_capacity = 8_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4_base.capacity = 8_MiB;
    cfg.l4_comp.base.capacity = 8_MiB;
    cfg.core.mshrs = 16;
    cfg.seed = 2017;
    return cfg;
}

SystemConfig
configureBaseline(SystemConfig base)
{
    base.l4_kind = L4Kind::Alloy;
    return base;
}

SystemConfig
configureCompressed(SystemConfig base, CompressionPolicy policy)
{
    base.l4_kind = L4Kind::Compressed;
    base.l4_comp.policy = policy;
    return base;
}

SystemConfig
configureDice(SystemConfig base)
{
    return configureCompressed(std::move(base), CompressionPolicy::Dice);
}

SystemConfig
configure2xCapacity(SystemConfig base)
{
    base.l4_kind = L4Kind::Alloy;
    base.l4_base.capacity *= 2;
    return base;
}

SystemConfig
configure2xBandwidth(SystemConfig base)
{
    base.l4_kind = L4Kind::Alloy;
    base.l4_base.timing.channels *= 2;
    return base;
}

SystemConfig
configure2xBoth(SystemConfig base)
{
    return configure2xBandwidth(configure2xCapacity(std::move(base)));
}

std::vector<WorkloadProfile>
workloadProfiles(const std::string &name, std::uint32_t cores)
{
    if (name.rfind("mix", 0) == 0 && name.size() == 4) {
        const std::size_t idx =
            static_cast<std::size_t>(name[3] - '1');
        dice_assert(idx < mixSuite().size(), "bad mix name %s",
                    name.c_str());
        std::vector<WorkloadProfile> profiles = mixSuite()[idx];
        dice_assert(!profiles.empty(), "mix suite %s has no profiles",
                    name.c_str());
        // Copy the fill value out first: resize may reallocate, and
        // passing a reference into the vector being resized would
        // read a dangling element.
        const WorkloadProfile fill = profiles.front();
        profiles.resize(cores, fill);
        return profiles;
    }
    return std::vector<WorkloadProfile>(cores, profileByName(name));
}

unsigned
benchJobs()
{
    return jobsFromEnv("DICE_BENCH_JOBS");
}

const RunResult &
runWorkload(const std::string &workload, const SystemConfig &config,
            const std::string &cache_key)
{
    ResultCache &rc = resultCache();
    const std::string key = workload + "|" + cache_key;
    {
        std::shared_lock lock(rc.mu);
        const auto it = rc.results.find(key);
        if (it != rc.results.end())
            return it->second;
    }

    const std::filesystem::path file =
        cacheDir() / resultFileName(workload, config, cache_key);
    RunResult computed;
    bool loaded = false;
    if (cacheEnabled()) {
        std::error_code ec;
        std::filesystem::create_directories(cacheDir(), ec);
        loaded = detail::loadResult(file, computed);
    }
    if (!loaded) {
        // The per-cell announcement honors DICE_LOG_LEVEL=quiet and
        // yields to the heartbeat line when DICE_PROGRESS is set.
        if (logLevel() >= LogLevel::Warn && !progressEnabled()) {
            std::fprintf(stderr, "[sim] %s / %s ...\n", workload.c_str(),
                         cache_key.c_str());
        }
        TraceSpan cell_span("cell", workload + "/" + cache_key,
                            cellArgsJson(workload, cache_key));
        std::vector<WorkloadProfile> profiles =
            workloadProfiles(workload, config.num_cores);
        std::shared_ptr<const TraceSet> replay;
        if (arenaEnabled()) {
            TraceSpan gen_span("generate", workload);
            // +1: the simulator primes one reference ahead of the
            // warmup + measurement budget.
            replay = TraceArena::instance().acquire(
                workload, config.seed, config.num_cores,
                config.reference_capacity,
                config.warmup_refs_per_core + config.refs_per_core + 1,
                profiles, benchJobs());
        }
        System sys(config, std::move(profiles), std::move(replay));
        {
            TraceSpan sim_span("simulate", workload + "/" + cache_key);
            computed = sys.run();
        }
        exportCellStats(sys, workload, cache_key);
        g_simulated_refs.fetch_add(
            (config.warmup_refs_per_core + config.refs_per_core) *
                config.num_cores,
            std::memory_order_relaxed);
    }

    std::pair<std::map<std::string, RunResult>::iterator, bool> pub;
    {
        std::unique_lock lock(rc.mu);
        // First publisher wins; a racing duplicate computed the same
        // bits anyway (the simulation is deterministic).
        pub = rc.results.emplace(key, std::move(computed));
    }
    if (pub.second && !loaded && cacheEnabled())
        detail::saveResult(file, pub.first->second);
    return pub.first->second;
}

void
runCells(const std::vector<SimCell> &cells)
{
    // Dedupe by memo key so a racing pair never simulates twice.
    std::unordered_set<std::string> seen;
    std::vector<const SimCell *> work;
    work.reserve(cells.size());
    for (const SimCell &c : cells) {
        if (seen.insert(c.workload + "|" + c.cache_key).second)
            work.push_back(&c);
    }
    const bool progress = progressEnabled();
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> done{0};
    parallelFor(work.size(), benchJobs(),
                [&work, &done, progress, t0](std::size_t i) {
        runWorkload(work[i]->workload, work[i]->config,
                    work[i]->cache_key);
        if (progress) {
            const std::size_t d =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            printProgress(d, work.size(), elapsed);
        }
    });
}

void
runSweep(const std::vector<std::string> &workloads,
         const std::vector<OrgCell> &orgs)
{
    std::vector<SimCell> cells;
    cells.reserve(workloads.size() * orgs.size());
    for (const OrgCell &org : orgs) {
        for (const std::string &w : workloads)
            cells.push_back(SimCell{w, org.config, org.cache_key});
    }
    runCells(cells);
    // Make the Chrome trace durable after every sweep, not only at
    // process exit: each flush rewrites the complete document.
    if (TraceLog::instance().enabled())
        TraceLog::instance().flush();
}

double
speedupOver(const std::string &workload, const SystemConfig &base_cfg,
            const std::string &base_key, const SystemConfig &test_cfg,
            const std::string &test_key)
{
    const RunResult &base = runWorkload(workload, base_cfg, base_key);
    const RunResult &test = runWorkload(workload, test_cfg, test_key);
    return weightedSpeedup(base, test);
}

const std::vector<std::string> &
rateNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : specRateSuite())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

const std::vector<std::string> &
mixNames()
{
    static const std::vector<std::string> names = {"mix1", "mix2", "mix3",
                                                   "mix4"};
    return names;
}

const std::vector<std::string> &
gapNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : gapSuite())
            v.push_back(p.name);
        return v;
    }();
    return names;
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> all;
    for (const auto *group : {&rateNames(), &mixNames(), &gapNames()})
        all.insert(all.end(), group->begin(), group->end());
    return all;
}

double
geomeanOver(const std::vector<std::string> &names,
            const std::map<std::string, double> &values)
{
    std::vector<double> vals;
    for (const auto &n : names) {
        const auto it = values.find(n);
        dice_assert(it != values.end(), "missing value for %s",
                    n.c_str());
        vals.push_back(it->second);
    }
    return geomean(vals);
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================"
                "============================\n");
}

void
printColumns(const std::vector<std::string> &names)
{
    std::printf("%-12s", "workload");
    for (const auto &n : names)
        std::printf(" %12s", n.c_str());
    std::printf("\n");
}

void
printRow(const std::string &name, const std::vector<double> &values,
         const std::vector<std::string> &suffix)
{
    std::printf("%-12s", name.c_str());
    for (double v : values)
        std::printf(" %12.3f", v);
    for (const auto &s : suffix)
        std::printf(" %s", s.c_str());
    std::printf("\n");
}

} // namespace dice::bench
