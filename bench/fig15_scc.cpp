/**
 * @file
 * Figure 15: Skewed Compressed Cache (SCC) transplanted onto the DRAM
 * cache vs DICE. SCC's multi-location tag lookups — cheap in SRAM —
 * cost three extra DRAM accesses per request here, so it loses badly
 * despite its generous hit rate.
 *
 * Paper result: SCC 0.78 (22% slowdown) vs DICE 1.19.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("SCC on a DRAM cache vs DICE",
                "DICE (ISCA'17) Figure 15");

    const SystemConfig base = configureBaseline(defaultBase());
    SystemConfig scc = defaultBase();
    scc.l4.organization = "scc";
    const SystemConfig dice_cfg = configureDice(defaultBase());

    runSweep(allNames(),
             {{base, "base"}, {scc, "scc-v2"}, {dice_cfg, "dice"}});

    std::map<std::string, double> s_scc, s_dice;
    std::vector<std::string> all;
    printColumns({"SCC", "DICE"});
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            s_scc[name] = speedupOver(name, base, "base", scc, "scc-v2");
            s_dice[name] =
                speedupOver(name, base, "base", dice_cfg, "dice");
            printRow(name, {s_scc[name], s_dice[name]});
            all.push_back(name);
        }
    }
    std::printf("\n");
    printRow("ALL26",
             {geomeanOver(all, s_scc), geomeanOver(all, s_dice)});
    std::printf("\nPaper: SCC 0.78 average vs DICE 1.19.\n");
    return 0;
}
