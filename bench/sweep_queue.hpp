/**
 * @file
 * Work-stealing cell claim queue for distributed sweeps.
 *
 * The PR-7 engine sharded a batch statically (worker i owns canonical
 * indices ≡ i mod M), so sweep wall-clock was bounded by the
 * unluckiest shard and a crashed worker degraded to coordinator-local
 * serial simulation. This module replaces that with a shared-
 * filesystem claim queue: every participant — spawned workers, the
 * coordinator, and `--join` workers attached from other processes or
 * other hosts sharing the filesystem — loops "claim the next unowned
 * cell, simulate it, publish its per-cell document, release the
 * lease" until every cell of the batch is published.
 *
 * Coordination is exactly the claim/lease protocol the arena store
 * proved out (src/common/claim_file.hpp), promoted from the trace
 * layer to the cell layer:
 *
 *  - A cell is *claimed* by creating `leases/<stem>.lease` with
 *    O_EXCL. A background thread refreshes every held lease's mtime,
 *    so a live holder never goes stale no matter how long its cell
 *    simulates.
 *  - A cell is *done* when `<stem>.cell.json` exists in the results
 *    directory (written via temp + atomic rename, so a torn document
 *    is never observed). Publishing is idempotent: a cell reclaimed
 *    after a lease expiry may be simulated twice, but both claimants
 *    render identical bytes (the simulation is deterministic) and the
 *    atomic rename makes the second publish harmless.
 *  - A lease whose holder died (same-host pid probe) or went stale
 *    (mtime beyond DICE_SWEEP_LEASE_STALE_S) is silently broken and
 *    the cell is *requeued* — any peer reclaims it. This is the whole
 *    retry/requeue policy: a crashed or wedged worker's cells return
 *    to the queue instead of falling back to serial absorption.
 *
 * Cells are handed out longest-expected-first (cost estimated from
 * trace length × cores × an organization weight), which shrinks the
 * makespan tail: the expensive cells start immediately instead of
 * landing late on an already-loaded worker.
 *
 * The queue never touches result *values* — workers publish
 * RunResults through the shared persistent bench cache exactly as
 * before, and the coordinator still merges in canonical cell order,
 * so stdout, golden digests, and the merged document stay
 * byte-identical to a serial run no matter which worker computed
 * which cell or how many times a cell was reclaimed.
 */

#ifndef DICE_BENCH_SWEEP_QUEUE_HPP
#define DICE_BENCH_SWEEP_QUEUE_HPP

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/sweep_events.hpp"

namespace dice::bench
{

/** One queue entry: a batch cell's identity and expected cost. */
struct QueueCell
{
    /** Sanitized file stem (names the lease and the per-cell doc). */
    std::string stem;
    /** Index into the batch's canonical cell vector. */
    std::size_t canonical_index = 0;
    /** Expected simulation cost (arbitrary units; larger = longer). */
    double cost = 0.0;
};

/** What this participant did to the queue (its own work only). */
struct QueueStats
{
    std::uint64_t claimed = 0;   ///< Cells this participant claimed.
    std::uint64_t published = 0; ///< Cells it published documents for.
    /** Claims of cells outside this participant's nominal static
     *  shard (every claim, for participants with no shard — the
     *  coordinator and --join workers). */
    std::uint64_t stolen = 0;
    /** Claims acquired by breaking an expired/dead-holder lease. */
    std::uint64_t requeued = 0;
};

/**
 * One participant's view of a batch's shared claim queue. Thread-safe
 * in-process: a worker runs one claim loop per bench job, all against
 * the same SweepQueue instance.
 */
class SweepQueue
{
  public:
    /**
     * Attach to the queue for a batch whose canonical cells are
     * @p cells, under @p results_dir (shared by every participant).
     * @p home_shard / @p shard_count name this participant's nominal
     * static shard for steal accounting; shard_count == 0 means "no
     * home shard" (coordinator, --join workers) and every claim
     * counts as stolen.
     */
    SweepQueue(std::filesystem::path results_dir,
               std::vector<QueueCell> cells, unsigned home_shard,
               unsigned shard_count);

    /** Stops the lease refresher and releases any still-held leases
     *  (abandoned cells return to the queue for peers). */
    ~SweepQueue();

    SweepQueue(const SweepQueue &) = delete;
    SweepQueue &operator=(const SweepQueue &) = delete;

    /**
     * Claim the most expensive cell not yet done or held by a live
     * peer. nullopt means nothing is claimable *right now* — either
     * the batch is complete() or every remaining cell is held by a
     * live holder (poll again: a holder may crash and requeue its
     * cells). Returns an index into cells().
     *
     * @p wait_us is how long the calling claim loop has been free
     * (since its last publish, or since it started); on a successful
     * claim it is recorded as the cell's claim-wait latency and
     * carried on the journal's claim event.
     */
    std::optional<std::size_t> claimNext(std::uint64_t wait_us = 0);

    /**
     * Publish @p idx's per-cell document and release its lease. Best
     * effort on I/O failure: the cell is still marked done locally
     * (the result also lives in the shared bench cache).
     */
    void publish(std::size_t idx, const std::string &doc);

    /** Cells of this batch with a published document (any publisher;
     *  rescans the filesystem, throttled to a few times per second). */
    std::size_t doneCount();

    /** Whether every cell of the batch is published. */
    bool complete() { return doneCount() == cells_.size(); }

    std::size_t size() const { return cells_.size(); }
    const QueueCell &cell(std::size_t idx) const { return cells_[idx]; }
    QueueStats stats() const;

    /** Paths (under the results dir) owned by @p stem. */
    static std::filesystem::path
    docPath(const std::filesystem::path &results_dir,
            const std::string &stem);
    static std::filesystem::path
    leasePath(const std::filesystem::path &results_dir,
              const std::string &stem);

    /**
     * Remove @p stem's document and lease, returning the cell to a
     * virgin state. The coordinator calls this for every cell at
     * batch start so documents from a previous run of the same
     * results directory never masquerade as this batch's work.
     */
    static void resetCell(const std::filesystem::path &results_dir,
                          const std::string &stem);

    /** Lease age beyond which its holder is presumed dead
     *  (DICE_SWEEP_LEASE_STALE_S, default 30 s). */
    static std::uint64_t leaseStaleSeconds();

  private:
    enum class State : std::uint8_t
    {
        Pending, ///< Not done, not held by this participant.
        Held,    ///< Leased by this participant, simulation running.
        Done     ///< Document observed (published by anyone).
    };

    void refresherLoop();
    void markDoneLocked(std::size_t idx);

    const std::filesystem::path results_dir_;
    const std::filesystem::path lease_dir_;
    const std::vector<QueueCell> cells_;
    const unsigned home_shard_;
    const unsigned shard_count_;

    mutable std::mutex mu_;
    std::vector<State> state_;
    std::vector<std::size_t> cost_order_; ///< Indices, cost-descending.
    std::size_t done_ = 0;
    QueueStats stats_;
    /** Last filesystem rescan for doneCount() (monotonic seconds). */
    double last_scan_s_ = -1.0;

    std::condition_variable refresher_cv_;
    bool stop_ = false;
    std::thread refresher_;
};

// ---------------------------------------------------------------------
// Participant heartbeat / summary files.
//
// Both are tiny text files atomically rewritten by each participant
// under the shared results directory; render* and parse* below are the
// one definition of their format, shared by the harness (writer and
// accumulator) and by read-only tools (bench/sweep_top).

/** One participant's heartbeat ("<name>.heartbeat"): its own progress
 *  and steal/requeue counters, rewritten after every published cell. */
struct HeartbeatRecord
{
    unsigned long batch = 0;
    std::size_t done = 0;
    std::size_t total = 0;
    std::uint64_t stolen = 0;
    std::uint64_t requeued = 0;
    std::uint64_t busy_ms = 0;
};

std::string renderHeartbeat(const HeartbeatRecord &hb);
bool parseHeartbeat(const std::string &content, HeartbeatRecord &out);

/**
 * One participant's batch summary ("<name>.summary"). Line 1 is the
 * legacy counters line; subsequent lines carry the participant's
 * phase-latency histograms ("hist <name> ...", exact-merge transport —
 * see appendHistText) and its slowest cell ("slowest <stem> <us>").
 * Unknown trailing lines are ignored so older readers survive newer
 * writers.
 */
struct SummaryRecord
{
    unsigned long batch = 0;
    std::uint64_t cells = 0;
    std::uint64_t stolen = 0;
    std::uint64_t requeued = 0;
    std::uint64_t busy_ms = 0;
    std::uint64_t span_ms = 0;
    unsigned jobs = 1;
    std::uint64_t generations = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t spills = 0;
    /** (phase name, histogram) pairs, e.g. ("cell_us", ...). */
    std::vector<std::pair<std::string, LogHistogram>> hists;
    std::string slowest_cell;
    std::uint64_t slowest_us = 0;
};

std::string renderSummary(const SummaryRecord &s);
bool parseSummary(const std::string &content, SummaryRecord &out);

/**
 * Read every "*<extension>" file directly under @p dir and hand its
 * (path, content) to @p consume. A file @p consume rejects (returns
 * false) is foreign garbage, not a torn write — both file kinds are
 * published atomically — so it is warned about (once per path per
 * process, not once per poll) and, when @p remove_garbled, removed so
 * it can never be silently folded into totals. The one shared
 * read-parse-warn-remove loop behind heartbeat aggregation, summary
 * accumulation, and the read-only status tools.
 */
void forEachParticipantFile(
    const std::filesystem::path &dir, const std::string &extension,
    bool remove_garbled,
    const std::function<bool(const std::filesystem::path &path,
                             const std::string &content)> &consume);

} // namespace dice::bench

#endif // DICE_BENCH_SWEEP_QUEUE_HPP
