/**
 * @file
 * Figure 12: DICE on a Knights-Landing-style DRAM cache (tags stored
 * in the ECC bits: 72-B accesses, no free neighbor tag, so misses on
 * non-invariant lines require merged probes of both candidate sets).
 *
 * Paper result: +17.5% average, within 2% of DICE on the Alloy
 * organization.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE on the KNL tags-in-ECC organization",
                "DICE (ISCA'17) Figure 12");

    const SystemConfig base = configureBaseline(defaultBase());
    SystemConfig knl = configureDice(defaultBase());
    knl.l4.comp.knl_mode = true;
    const SystemConfig alloy_dice = configureDice(defaultBase());

    runSweep(allNames(),
             {{base, "base"}, {knl, "knl"}, {alloy_dice, "dice"}});

    std::map<std::string, double> s_knl, s_alloy;
    std::vector<std::string> all;
    printColumns({"DICE-on-KNL", "DICE-on-Alloy"});
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            s_knl[name] = speedupOver(name, base, "base", knl, "knl");
            s_alloy[name] =
                speedupOver(name, base, "base", alloy_dice, "dice");
            printRow(name, {s_knl[name], s_alloy[name]});
            all.push_back(name);
        }
    }
    std::printf("\n");
    printRow("ALL26",
             {geomeanOver(all, s_knl), geomeanOver(all, s_alloy)});
    std::printf("\nPaper: KNL 1.175 vs Alloy 1.190 (within 2%%).\n");
    return 0;
}
