/**
 * @file
 * Table 5: effective DRAM-cache capacity under TSI, BAI, and DICE,
 * measured as the mean number of valid logical lines relative to the
 * physical line capacity.
 *
 * Paper result: TSI 1.24x, BAI 1.69x, DICE 1.62x (GAP up to ~5x).
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Effective capacity of the compressed DRAM cache",
                "DICE (ISCA'17) Table 5");

    const SystemConfig tsi =
        configureCompressed(defaultBase(), CompressionPolicy::TsiOnly);
    const SystemConfig bai =
        configureCompressed(defaultBase(), CompressionPolicy::BaiOnly);
    const SystemConfig dice_cfg = configureDice(defaultBase());
    const SystemConfig base = configureBaseline(defaultBase());

    const double physical_lines = static_cast<double>(
        defaultBase().l4.base.capacity / kLineSize);

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    runSweep(all, {{base, "base"},
                   {tsi, "tsi"},
                   {bai, "bai"},
                   {dice_cfg, "dice"}});

    // Normalize each workload's compressed occupancy by the baseline's
    // occupancy of the same physical cache (workloads whose footprint
    // does not fill the cache would otherwise understate the ratio).
    auto capacity_ratio = [&](const SystemConfig &cfg,
                              const std::string &key,
                              const std::string &name) {
        const RunResult &r = runWorkload(name, cfg, key);
        const RunResult &b = runWorkload(name, base, "base");
        const double denom =
            std::min(physical_lines,
                     std::max(b.avg_valid_lines, 1.0));
        return r.avg_valid_lines / denom;
    };

    std::map<std::string, double> c_tsi, c_bai, c_dice;
    printColumns({"TSI", "BAI", "DICE"});
    for (const auto &name : all) {
        c_tsi[name] = capacity_ratio(tsi, "tsi", name);
        c_bai[name] = capacity_ratio(bai, "bai", name);
        c_dice[name] = capacity_ratio(dice_cfg, "dice", name);
        printRow(name, {c_tsi[name], c_bai[name], c_dice[name]});
    }
    std::printf("\n");
    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"SPEC RATE", rateNames()},
             {"SPEC MIX", mixNames()},
             {"GAP", gapNames()},
             {"GMEAN26", all}}) {
        printRow(label, {geomeanOver(names, c_tsi),
                         geomeanOver(names, c_bai),
                         geomeanOver(names, c_dice)});
    }
    std::printf("\nPaper (GMEAN26): TSI 1.24x, BAI 1.69x, DICE 1.62x.\n");
    return 0;
}
