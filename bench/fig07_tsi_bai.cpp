/**
 * @file
 * Figure 7: speedup of compression with Traditional Set Indexing (TSI)
 * and Bandwidth-Aware Indexing (BAI) vs. doubling the cache capacity
 * and capacity+bandwidth. Shows BAI winning on compressible workloads
 * and thrashing on incompressible ones.
 *
 * Paper result: TSI +7% average; BAI ~0% average with big swings
 * (soplex/gcc/zeusmp/astar up, mcf/lbm/libq/sphinx down).
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("Static indexing: TSI vs BAI vs ideal 2x caches",
                "DICE (ISCA'17) Figure 7");

    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig tsi =
        configureCompressed(defaultBase(), CompressionPolicy::TsiOnly);
    const SystemConfig bai =
        configureCompressed(defaultBase(), CompressionPolicy::BaiOnly);
    const SystemConfig cap = configure2xCapacity(defaultBase());
    const SystemConfig both = configure2xBoth(defaultBase());

    runSweep(allNames(), {{base, "base"},
                          {tsi, "tsi"},
                          {bai, "bai"},
                          {cap, "2xcap"},
                          {both, "2x2x"}});

    std::map<std::string, double> s_tsi, s_bai, s_cap, s_both;
    std::vector<std::string> all;
    printColumns({"TSI", "BAI", "2xCapacity", "2xCap+2xBW"});
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group) {
            s_tsi[name] = speedupOver(name, base, "base", tsi, "tsi");
            s_bai[name] = speedupOver(name, base, "base", bai, "bai");
            s_cap[name] = speedupOver(name, base, "base", cap, "2xcap");
            s_both[name] = speedupOver(name, base, "base", both, "2x2x");
            printRow(name, {s_tsi[name], s_bai[name], s_cap[name],
                            s_both[name]});
            all.push_back(name);
        }
    }
    std::printf("\n");
    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"RATE", rateNames()},
             {"MIX", mixNames()},
             {"GAP", gapNames()},
             {"ALL26", all}}) {
        printRow(label,
                 {geomeanOver(names, s_tsi), geomeanOver(names, s_bai),
                  geomeanOver(names, s_cap), geomeanOver(names, s_both)});
    }
    std::printf("\nPaper (ALL26): TSI 1.07, BAI ~1.00.\n");
    return 0;
}
