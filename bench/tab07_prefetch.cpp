/**
 * @file
 * Table 7: DICE vs L3-side alternatives that merely fetch an extra
 * line — 128-B wide fetch (two 64-B requests) and next-line prefetch —
 * and the combination of DICE with next-line prefetch.
 *
 * Paper result: 128B-PF +1.9%, Nextline-PF +1.6%, DICE +19.0%,
 * DICE+NL +20.9%. Prefetches cost bandwidth; DICE's extra line is
 * free.
 */

#include <cstdio>
#include <map>

#include "harness.hpp"

using namespace dice;
using namespace dice::bench;

int
main(int argc, char **argv)
{
    initSweepMode(argc, argv);
    printHeader("DICE vs wider fetch and next-line prefetch",
                "DICE (ISCA'17) Table 7");

    const SystemConfig base = configureBaseline(defaultBase());

    SystemConfig wide = configureBaseline(defaultBase());
    wide.l3_wide_fetch = true;
    SystemConfig nl = configureBaseline(defaultBase());
    nl.l3_nextline_prefetch = true;
    const SystemConfig dice_cfg = configureDice(defaultBase());
    SystemConfig dice_nl = configureDice(defaultBase());
    dice_nl.l3_nextline_prefetch = true;

    std::vector<std::string> all;
    for (const auto &group : {rateNames(), mixNames(), gapNames()}) {
        for (const auto &name : group)
            all.push_back(name);
    }

    std::map<std::string, std::map<std::string, double>> s;
    const std::vector<std::pair<std::string, const SystemConfig *>>
        orgs = {{"128B-PF", &wide},
                {"NL-PF", &nl},
                {"DICE", &dice_cfg},
                {"DICE+NL", &dice_nl}};

    std::vector<OrgCell> sweep = {{base, "base"}};
    for (const auto &[tag, cfg] : orgs)
        sweep.push_back({*cfg, tag});
    runSweep(all, sweep);

    for (const auto &[tag, cfg] : orgs) {
        for (const auto &name : all)
            s[tag][name] = speedupOver(name, base, "base", *cfg, tag);
    }

    std::printf("%-12s %12s %12s %12s %12s\n", "group", "128B-PF",
                "NL-PF", "DICE", "DICE+NL");
    for (const auto &[label, names] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"SPEC RATE", rateNames()},
             {"SPEC MIX", mixNames()},
             {"GAP", gapNames()},
             {"GMEAN26", all}}) {
        printRow(label, {geomeanOver(names, s["128B-PF"]),
                         geomeanOver(names, s["NL-PF"]),
                         geomeanOver(names, s["DICE"]),
                         geomeanOver(names, s["DICE+NL"])});
    }
    std::printf("\nPaper (GMEAN26): 1.019 / 1.016 / 1.190 / 1.209.\n");
    return 0;
}
