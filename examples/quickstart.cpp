/**
 * @file
 * Quickstart: build an 8-core system with a DICE-compressed DRAM
 * cache, run a workload, and print the headline statistics. This is
 * the smallest end-to-end use of the public API.
 *
 *   $ ./quickstart [workload] [refs-per-core]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/system.hpp"

using namespace dice;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "soplex";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40'000;

    // 1. Describe the machine: the defaults mirror the paper's Table 2
    //    at 1/128 scale (8-MiB L4 standing in for 1 GiB).
    SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.refs_per_core = refs;
    cfg.warmup_refs_per_core = refs / 2;
    cfg.reference_capacity = 8_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4.organization = "dice";
    cfg.l4.base.capacity = 8_MiB;
    cfg.l4.comp.threshold_bytes = 36;

    // 2. Pick a workload: every benchmark of the paper's Table 3 is
    //    available by name; rate mode runs one copy per core.
    const WorkloadProfile &profile = profileByName(workload);
    std::vector<WorkloadProfile> per_core(cfg.num_cores, profile);

    // 3. Run.
    System system(cfg, std::move(per_core));
    const RunResult r = system.run();

    // 4. Report.
    std::printf("workload            : %s (x%u rate)\n", workload.c_str(),
                cfg.num_cores);
    std::printf("cycles              : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("IPC per core        : %.3f\n", r.ipc);
    std::printf("L3 hit rate         : %.1f%%\n", 100.0 * r.l3_hit_rate);
    std::printf("L4 hit rate         : %.1f%%\n", 100.0 * r.l4_hit_rate);
    std::printf("free neighbors to L3: %llu\n",
                static_cast<unsigned long long>(r.l4_extra_lines));
    std::printf("CIP read accuracy   : %.1f%%\n",
                100.0 * r.cip_read_accuracy);
    std::printf("index mix           : %.0f%% invariant / %.0f%% BAI / "
                "%.0f%% TSI\n",
                100.0 * r.frac_invariant, 100.0 * r.frac_bai,
                100.0 * r.frac_tsi);
    std::printf("avg miss latency    : %.0f cycles\n",
                r.avg_miss_latency);
    std::printf("off-chip energy     : %.2f mJ (EDP %.3g)\n",
                r.energy.total_nj * 1e-6, r.energy.edp);
    return 0;
}
