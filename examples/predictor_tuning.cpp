/**
 * @file
 * Predictor tuning: sweeps the CIP Last-Time-Table size and the DICE
 * insertion threshold on one workload, printing accuracy, second-probe
 * rate, and performance — the knobs of Sections 5.2/5.3.
 *
 *   $ ./predictor_tuning [workload]
 */

#include <cstdio>
#include <string>

#include "sim/system.hpp"

using namespace dice;

namespace
{

RunResult
runDice(const std::string &workload, std::uint32_t ltt_entries,
        std::uint32_t threshold)
{
    SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.refs_per_core = 30'000;
    cfg.warmup_refs_per_core = 15'000;
    cfg.reference_capacity = 8_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4.organization = "dice";
    cfg.l4.base.capacity = 8_MiB;
    cfg.l4.comp.cip_entries = ltt_entries;
    cfg.l4.comp.threshold_bytes = threshold;
    cfg.seed = 11;
    System sys(cfg, std::vector<WorkloadProfile>(
                        8, profileByName(workload)));
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "soplex";

    std::printf("CIP Last-Time-Table sweep on '%s':\n\n",
                workload.c_str());
    std::printf("%-10s %10s %12s %14s %12s\n", "entries", "bytes",
                "read acc %", "2nd probes", "cycles");
    for (const std::uint32_t entries : {256u, 512u, 2048u, 8192u}) {
        const RunResult r = runDice(workload, entries, 36);
        std::printf("%-10u %10u %12.1f %14llu %12llu\n", entries,
                    (entries + 7) / 8, 100.0 * r.cip_read_accuracy,
                    static_cast<unsigned long long>(r.l4_second_probes),
                    static_cast<unsigned long long>(r.cycles));
    }

    std::printf("\nInsertion-threshold sweep (Table 4's knob):\n\n");
    std::printf("%-10s %12s %10s %10s %12s\n", "threshold", "BAI frac %",
                "TSI frac %", "L4 hit%", "cycles");
    for (const std::uint32_t threshold : {0u, 24u, 32u, 36u, 40u, 64u}) {
        const RunResult r = runDice(workload, 2048, threshold);
        std::printf("%-10u %12.1f %10.1f %10.1f %12llu\n", threshold,
                    100.0 * r.frac_bai, 100.0 * r.frac_tsi,
                    100.0 * r.l4_hit_rate,
                    static_cast<unsigned long long>(r.cycles));
    }

    std::printf("\nThreshold 0 degenerates to always-TSI, 64 to "
                "always-BAI; 36 B tracks\nBDI's B4D2 mode (paper "
                "Section 6.2).\n");
    return 0;
}
