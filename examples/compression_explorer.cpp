/**
 * @file
 * Compression explorer: runs the FPC, BDI, and hybrid codecs over each
 * synthetic data class (and over adjacent pairs) and prints the
 * resulting sizes — a hands-on view of why 36 B is the magic insertion
 * threshold (BDI B4D2 singles are exactly 36 B; their shared-base
 * pairs are exactly 68 B, which fits a 72-B TAD with one shared tag).
 *
 *   $ ./compression_explorer
 */

#include <cstdio>

#include "compress/hybrid.hpp"
#include "core/tad.hpp"
#include "workloads/datagen.hpp"

using namespace dice;

namespace
{

void
exploreClass(CompClass cls)
{
    HybridCodec codec;
    const LineAddr base = 4096; // an even (pair-aligned) line
    const Line a = DataGenerator::synthesize(cls, base, 0);
    const Line b = DataGenerator::synthesize(cls, base + 1, 0);

    const Encoded fa = codec.fpc().compress(a);
    const Encoded ba = codec.bdi().compress(a);
    const Encoded best = codec.compress(a);
    const EncodedPair pair = codec.compressPair(a, b);

    const char *algo = best.algo == CompAlgo::Zca   ? "ZCA"
                       : best.algo == CompAlgo::Fpc ? "FPC"
                       : best.algo == CompAlgo::Bdi ? "BDI"
                                                    : "raw";

    const bool pair_fits =
        kTadTagBytes + pair.sizeBytes() <= kTadSetBytes;
    std::printf("%-6s fpc=%3u B  bdi=%3u B  best=%3u B (%s)  "
                "pair=%3u B (%s)  pair-in-TAD=%s\n",
                compClassName(cls), fa.sizeBytes(), ba.sizeBytes(),
                best.sizeBytes(), algo, pair.sizeBytes(),
                pair.scheme == PairScheme::SharedBdiBase ? "shared base"
                                                         : "independent",
                pair_fits ? "yes" : "no");

    // Verify the round trip really is lossless.
    if (codec.decompress(best) != a)
        std::printf("  !! round-trip mismatch\n");
}

} // namespace

int
main()
{
    std::printf("Per-class compression results (64-B lines):\n\n");
    for (const CompClass cls :
         {CompClass::Zero, CompClass::Ptr, CompClass::Int, CompClass::C36,
          CompClass::Half, CompClass::Rand}) {
        exploreClass(cls);
    }

    std::printf("\nDICE insertion rule: size <= 36 B -> install with "
                "BAI (spatial pairing);\n"
                "otherwise install with TSI. A shared-tag pair fits the "
                "72-B TAD when its\njoint payload is <= 68 B.\n");

    std::printf("\nCanonical BDI payload sizes:\n");
    for (const auto mode :
         {BdiCodec::Zeros, BdiCodec::Rep8, BdiCodec::B8D1, BdiCodec::B8D2,
          BdiCodec::B8D4, BdiCodec::B4D1, BdiCodec::B4D2,
          BdiCodec::B2D1}) {
        std::printf("  mode %u: %2u B\n", static_cast<unsigned>(mode),
                    BdiCodec::payloadBits(mode) / 8);
    }
    return 0;
}
