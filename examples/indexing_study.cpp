/**
 * @file
 * Indexing study: compares the four install policies (uncompressed
 * baseline, TSI, BAI, DICE) on one workload of your choice, and prints
 * the set-indexing math for a handful of lines so the BAI invariance
 * property is visible (Figure 6 of the paper, live).
 *
 *   $ ./indexing_study [workload]
 */

#include <cstdio>
#include <string>

#include "core/indexing.hpp"
#include "sim/system.hpp"

using namespace dice;

namespace
{

SystemConfig
makeConfig(const std::string &organization)
{
    SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.refs_per_core = 30'000;
    cfg.warmup_refs_per_core = 15'000;
    cfg.reference_capacity = 8_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4.organization = organization;
    cfg.l4.base.capacity = 8_MiB;
    cfg.seed = 7;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "omnetpp";

    // Part 1: the indexing math of Figure 6, on a tiny 8-set cache.
    std::printf("BAI on an 8-set cache (paper Figure 6):\n");
    SetIndexer idx(3);
    std::printf("%6s %4s %4s %4s %10s\n", "line", "TSI", "NSI", "BAI",
                "invariant");
    for (LineAddr l = 0; l < 16; ++l) {
        std::printf("%6llu %4llu %4llu %4llu %10s\n",
                    static_cast<unsigned long long>(l),
                    static_cast<unsigned long long>(idx.tsi(l)),
                    static_cast<unsigned long long>(idx.nsi(l)),
                    static_cast<unsigned long long>(idx.bai(l)),
                    idx.baiInvariant(l) ? "yes" : "no");
    }

    // Part 2: end-to-end policy comparison on a real workload.
    std::printf("\nPolicy comparison on '%s' (8-core rate):\n\n",
                workload.c_str());
    std::printf("%-10s %12s %10s %10s %10s\n", "policy", "cycles",
                "speedup", "L4 hit%", "L3 hit%");

    const std::vector<WorkloadProfile> profiles(
        8, profileByName(workload));

    Cycle base_cycles = 0;
    struct Org
    {
        const char *name;
        const char *organization;
    };
    for (const Org org : {Org{"baseline", "alloy"},
                          Org{"comp-TSI", "comp-tsi"},
                          Org{"comp-NSI", "comp-nsi"},
                          Org{"comp-BAI", "comp-bai"},
                          Org{"DICE", "dice"}}) {
        System sys(makeConfig(org.organization), profiles);
        const RunResult r = sys.run();
        if (base_cycles == 0)
            base_cycles = r.cycles;
        std::printf("%-10s %12llu %10.3f %10.1f %10.1f\n", org.name,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(base_cycles) /
                        static_cast<double>(r.cycles),
                    100.0 * r.l4_hit_rate, 100.0 * r.l3_hit_rate);
    }
    return 0;
}
