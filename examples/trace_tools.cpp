/**
 * @file
 * Trace tooling: export a synthetic workload slice to a portable text
 * trace, then read it back and report its statistics. The same reader
 * lets users replay real (converted) traces through the library.
 *
 *   $ ./trace_tools [workload] [refs] [path]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "workloads/trace_file.hpp"

using namespace dice;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/dice_" + workload + ".trace";

    const WorkloadProfile &prof = profileByName(workload);
    TraceGenerator gen(prof, 4096, 1 << 20, 1);

    {
        TraceFileWriter writer(path);
        writer.comment("DICE synthetic trace: workload=" + workload);
        writer.comment("format: R|W <line-hex> <gap-instr> <pc-hex>");
        for (std::uint64_t i = 0; i < refs; ++i)
            writer.append(gen.next());
        std::printf("wrote %llu references to %s\n",
                    static_cast<unsigned long long>(writer.written()),
                    path.c_str());
    }

    // Read it back and characterize the stream.
    TraceFileReader reader(path);
    MemRef ref;
    std::uint64_t writes = 0, adjacent = 0, instrs = 0;
    std::map<std::uint64_t, std::uint64_t> page_touches;
    LineAddr prev = ~LineAddr{0};
    while (reader.next(ref)) {
        writes += ref.is_write;
        adjacent += ref.line == prev + 1;
        instrs += ref.gap_instr + 1;
        ++page_touches[pageOfLine(ref.line)];
        prev = ref.line;
    }
    const double n = static_cast<double>(reader.consumed());
    std::printf("references          : %llu\n",
                static_cast<unsigned long long>(reader.consumed()));
    std::printf("write fraction      : %.1f%%\n", 100.0 * writes / n);
    std::printf("adjacent-line pairs : %.1f%%\n", 100.0 * adjacent / n);
    std::printf("distinct pages      : %zu\n", page_touches.size());
    std::printf("accesses / kilo-instr: %.1f\n",
                1000.0 * n / static_cast<double>(instrs));
    return 0;
}
