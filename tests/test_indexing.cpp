/**
 * @file
 * Indexing-scheme invariants (paper Section 4.5, Figure 6): spatial
 * pairing, the 50% TSI-invariance of BAI, the neighbor-set property,
 * and DRAM-row co-location of the two candidate sets.
 */

#include <gtest/gtest.h>

#include "core/indexing.hpp"

namespace dice
{
namespace
{

TEST(Indexing, PaperFigure6Example)
{
    // 8 sets, lines A0..A15 — exactly the paper's worked example.
    SetIndexer idx(3);

    // TSI: consecutive lines to consecutive sets.
    for (LineAddr l = 0; l < 16; ++l)
        EXPECT_EQ(idx.tsi(l), l % 8);

    // NSI: pairs share a set, sets walk sequentially.
    for (LineAddr l = 0; l < 16; ++l)
        EXPECT_EQ(idx.nsi(l), (l / 2) % 8);

    // BAI (Figure 6c): set0={A0,A1}, set1={A8,A9}, set2={A2,A3},
    // set3={A10,A11}, set4={A4,A5}, set5={A12,A13}, set6={A6,A7},
    // set7={A14,A15}.
    const std::uint64_t expected[16] = {0, 0, 2, 2, 4, 4, 6, 6,
                                        1, 1, 3, 3, 5, 5, 7, 7};
    for (LineAddr l = 0; l < 16; ++l)
        EXPECT_EQ(idx.bai(l), expected[l]) << "line " << l;
}

TEST(Indexing, BaiMapsSpatialPairsTogether)
{
    SetIndexer idx(14);
    for (LineAddr l = 0; l < 100000; l += 17) {
        const LineAddr even = l & ~LineAddr{1};
        EXPECT_EQ(idx.bai(even), idx.bai(even | 1));
    }
}

TEST(Indexing, ExactlyHalfTheLinesKeepTheirTsiSet)
{
    SetIndexer idx(10);
    std::uint64_t same = 0;
    const std::uint64_t n = 1u << 16; // full period of the relevant bits
    for (LineAddr l = 0; l < n; ++l) {
        if (idx.bai(l) == idx.tsi(l))
            ++same;
        EXPECT_EQ(idx.bai(l) == idx.tsi(l), idx.baiInvariant(l));
    }
    EXPECT_EQ(same, n / 2);
}

TEST(Indexing, BaiAndTsiDifferOnlyInSetBitZero)
{
    SetIndexer idx(12);
    for (LineAddr l = 0; l < 100000; l += 13) {
        const std::uint64_t t = idx.tsi(l);
        const std::uint64_t b = idx.bai(l);
        EXPECT_TRUE(t == b || (t ^ b) == 1) << "line " << l;
        if (t != b)
            EXPECT_EQ(SetIndexer::alternateSet(t), b);
    }
}

TEST(Indexing, NsiMovesNearlyEveryLine)
{
    // The motivation for BAI: NSI leaves almost no line in its TSI set.
    SetIndexer idx(10);
    std::uint64_t same = 0;
    const std::uint64_t n = 1u << 16;
    for (LineAddr l = 0; l < n; ++l) {
        if (idx.nsi(l) == idx.tsi(l))
            ++same;
    }
    EXPECT_LT(static_cast<double>(same) / n, 0.01);
}

TEST(Indexing, SchemeDispatch)
{
    SetIndexer idx(8);
    const LineAddr l = 0x12345;
    EXPECT_EQ(idx.set(l, IndexScheme::TSI), idx.tsi(l));
    EXPECT_EQ(idx.set(l, IndexScheme::NSI), idx.nsi(l));
    EXPECT_EQ(idx.set(l, IndexScheme::BAI), idx.bai(l));
}

TEST(Indexing, PairHelpers)
{
    EXPECT_EQ(SetIndexer::pairBase(7), 6u);
    EXPECT_EQ(SetIndexer::pairBase(6), 6u);
    EXPECT_EQ(SetIndexer::spatialNeighbor(6), 7u);
    EXPECT_EQ(SetIndexer::spatialNeighbor(7), 6u);
}

TEST(Indexing, MapperPacks28TadsPerRow)
{
    DramCacheAddressMapper mapper(DramTiming::stackedL4());
    EXPECT_EQ(mapper.tadsPerRow(), 28u); // 2048 / 72
}

TEST(Indexing, CandidateSetsShareADramRow)
{
    // The BAI/TSI alternate sets (s, s^1) must decode to the same
    // channel/bank/row so the second probe is a row-buffer hit.
    DramCacheAddressMapper mapper(DramTiming::stackedL4());
    for (std::uint64_t set = 0; set < 200000; set += 2) {
        const DramCoord a = mapper.coord(set);
        const DramCoord b = mapper.coord(set ^ 1);
        EXPECT_EQ(a.channel, b.channel);
        EXPECT_EQ(a.bank, b.bank);
        EXPECT_EQ(a.row, b.row);
    }
}

TEST(Indexing, MapperStripesRowGroupsAcrossChannels)
{
    DramCacheAddressMapper mapper(DramTiming::stackedL4());
    const DramCoord a = mapper.coord(0);
    const DramCoord b = mapper.coord(28); // next row group
    EXPECT_NE(a.channel, b.channel);
}

TEST(Indexing, IndexSchemeNames)
{
    EXPECT_STREQ(indexSchemeName(IndexScheme::TSI), "TSI");
    EXPECT_STREQ(indexSchemeName(IndexScheme::NSI), "NSI");
    EXPECT_STREQ(indexSchemeName(IndexScheme::BAI), "BAI");
}

/** Parameterized: the invariants hold at every cache size. */
class IndexingAtSize : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(IndexingAtSize, CoreInvariants)
{
    SetIndexer idx(GetParam());
    const std::uint64_t sets = idx.numSets();
    for (LineAddr l = 0; l < 4096; ++l) {
        EXPECT_LT(idx.tsi(l), sets);
        EXPECT_LT(idx.bai(l), sets);
        EXPECT_LT(idx.nsi(l), sets);
        EXPECT_EQ(idx.bai(l & ~LineAddr{1}), idx.bai(l | 1));
        const std::uint64_t t = idx.tsi(l);
        const std::uint64_t b = idx.bai(l);
        EXPECT_TRUE(t == b || (t ^ b) == 1);
    }
}

INSTANTIATE_TEST_SUITE_P(SetBits, IndexingAtSize,
                         ::testing::Values(3u, 6u, 10u, 14u, 20u, 24u));

} // namespace
} // namespace dice
