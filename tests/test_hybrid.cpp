/**
 * @file
 * Hybrid FPC+BDI codec: best-of selection, pair compression with a
 * shared BDI base, and the exact 36-B/68-B sizes the DICE threshold
 * depends on.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "compress/hybrid.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

TEST(Hybrid, ZeroLinePrefersZca)
{
    HybridCodec codec;
    const Line zero{};
    const Encoded enc = codec.compress(zero);
    EXPECT_EQ(enc.algo, CompAlgo::Zca);
    EXPECT_EQ(enc.sizeBytes(), 0u);
    EXPECT_EQ(codec.decompress(enc), zero);
}

TEST(Hybrid, PicksSmallerOfFpcAndBdi)
{
    HybridCodec codec;
    // Small 4-byte ints: FPC Sign8 = 22 B, BDI B4D1 = 20 B -> BDI.
    Line ints{};
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t v = static_cast<std::uint32_t>(i * 3);
        std::memcpy(ints.data() + 4 * i, &v, 4);
    }
    const Encoded enc = codec.compress(ints);
    EXPECT_EQ(enc.algo, CompAlgo::Bdi);
    EXPECT_EQ(enc.sizeBytes(), 20u);
    EXPECT_EQ(codec.decompress(enc), ints);
}

TEST(Hybrid, FpcWinsOnMixedSparseWords)
{
    HybridCodec codec;
    // Alternating zero / small words: FPC thrives, BDI's best is B4D1
    // (20 B) but FPC's zero-runs beat it.
    Line l{};
    for (int i = 0; i < 16; i += 2) {
        const std::uint32_t v = 3;
        std::memcpy(l.data() + 4 * i, &v, 4);
    }
    const Encoded enc = codec.compress(l);
    EXPECT_EQ(codec.decompress(enc), l);
    EXPECT_LE(enc.sizeBytes(), 20u);
}

TEST(Hybrid, IncompressibleStaysRaw)
{
    HybridCodec codec;
    const Line l =
        DataGenerator::synthesize(CompClass::Rand, 1234, 0);
    const Encoded enc = codec.compress(l);
    EXPECT_EQ(enc.algo, CompAlgo::None);
    EXPECT_EQ(enc.sizeBytes(), kLineSize);
    EXPECT_EQ(codec.decompress(enc), l);
}

TEST(Hybrid, C36ClassLandsExactlyOnThreshold)
{
    HybridCodec codec;
    const Line l = DataGenerator::synthesize(CompClass::C36, 512, 0);
    const Encoded enc = codec.compress(l);
    EXPECT_EQ(enc.algo, CompAlgo::Bdi);
    EXPECT_EQ(enc.sizeBytes(), 36u);
}

TEST(Hybrid, C36PairSharesBaseTo68Bytes)
{
    HybridCodec codec;
    // Adjacent lines of the same page: C36 pairs must encode to 68 B
    // (4-B base + 64 B of 2-B deltas) with the shared base.
    const LineAddr base_line = 64; // page-aligned pair
    const Line a =
        DataGenerator::synthesize(CompClass::C36, base_line, 0);
    const Line b =
        DataGenerator::synthesize(CompClass::C36, base_line + 1, 0);
    const EncodedPair pair = codec.compressPair(a, b);
    EXPECT_EQ(pair.scheme, PairScheme::SharedBdiBase);
    EXPECT_EQ(pair.sizeBytes(), 68u);
    const auto [da, db] = codec.decompressPair(pair);
    EXPECT_EQ(da, a);
    EXPECT_EQ(db, b);
}

TEST(Hybrid, PtrPairSharesBase)
{
    HybridCodec codec;
    const Line a = DataGenerator::synthesize(CompClass::Ptr, 128, 0);
    const Line b = DataGenerator::synthesize(CompClass::Ptr, 129, 0);
    const EncodedPair pair = codec.compressPair(a, b);
    EXPECT_EQ(pair.scheme, PairScheme::SharedBdiBase);
    EXPECT_EQ(pair.sizeBytes(), 24u); // 8-B base + 16 1-B deltas
    const auto [da, db] = codec.decompressPair(pair);
    EXPECT_EQ(da, a);
    EXPECT_EQ(db, b);
}

TEST(Hybrid, IncompatiblePairFallsBackToIndependent)
{
    HybridCodec codec;
    const Line a = DataGenerator::synthesize(CompClass::Int, 256, 0);
    const Line b = DataGenerator::synthesize(CompClass::Rand, 257, 0);
    const EncodedPair pair = codec.compressPair(a, b);
    EXPECT_EQ(pair.scheme, PairScheme::Independent);
    EXPECT_EQ(pair.sizeBytes(), codec.compress(a).sizeBytes() +
                                    codec.compress(b).sizeBytes());
    const auto [da, db] = codec.decompressPair(pair);
    EXPECT_EQ(da, a);
    EXPECT_EQ(db, b);
}

TEST(Hybrid, PairNeverBeatsTwoRawLines)
{
    HybridCodec codec;
    Rng rng(5);
    for (int iter = 0; iter < 100; ++iter) {
        Line a{}, b{};
        for (auto &x : a)
            x = static_cast<std::uint8_t>(rng.next());
        for (auto &x : b)
            x = static_cast<std::uint8_t>(rng.next());
        const EncodedPair pair = codec.compressPair(a, b);
        EXPECT_LE(pair.sizeBytes(), 2 * kLineSize);
        const auto [da, db] = codec.decompressPair(pair);
        EXPECT_EQ(da, a);
        EXPECT_EQ(db, b);
    }
}

TEST(Hybrid, FastSizePathMatchesFullEncoder)
{
    HybridCodec codec;
    Rng rng(77);
    for (int iter = 0; iter < 2000; ++iter) {
        const auto cls = static_cast<CompClass>(iter % 6);
        const Line l = DataGenerator::synthesize(
            cls, rng.below(1 << 20), iter % 4);
        EXPECT_EQ(codec.compressedSizeBytes(l),
                  codec.compress(l).sizeBytes())
            << compClassName(cls) << " iter " << iter;
    }
    // And on unstructured random data.
    for (int iter = 0; iter < 500; ++iter) {
        Line l{};
        for (auto &b : l)
            b = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(codec.compressedSizeBytes(l),
                  codec.compress(l).sizeBytes());
    }
}

TEST(Hybrid, FastPairSizeMatchesFullEncoder)
{
    HybridCodec codec;
    Rng rng(78);
    for (int iter = 0; iter < 1000; ++iter) {
        const auto cls_a = static_cast<CompClass>(iter % 6);
        const auto cls_b = static_cast<CompClass>((iter / 6) % 6);
        const LineAddr base = rng.below(1 << 20) & ~LineAddr{1};
        const Line a = DataGenerator::synthesize(cls_a, base, 0);
        const Line b = DataGenerator::synthesize(cls_b, base + 1, 0);
        EXPECT_EQ(codec.pairSizeBytes(a, b),
                  codec.compressPair(a, b).sizeBytes())
            << compClassName(cls_a) << "+" << compClassName(cls_b);
    }
}

TEST(Fpc, FastBitsMatchFullEncoder)
{
    FpcCodec fpc;
    Rng rng(79);
    for (int iter = 0; iter < 2000; ++iter) {
        const auto cls = static_cast<CompClass>(iter % 6);
        const Line l =
            DataGenerator::synthesize(cls, rng.below(1 << 20), 0);
        const Encoded enc = fpc.compress(l);
        EXPECT_EQ(fpc.compressedBits(l), enc.bits)
            << compClassName(cls);
    }
}

TEST(Bdi, FastBitsMatchFullEncoder)
{
    BdiCodec bdi;
    Rng rng(80);
    for (int iter = 0; iter < 2000; ++iter) {
        const auto cls = static_cast<CompClass>(iter % 6);
        const Line l =
            DataGenerator::synthesize(cls, rng.below(1 << 20), 0);
        const Encoded enc = bdi.compress(l);
        EXPECT_EQ(bdi.compressedBits(l), enc.bits)
            << compClassName(cls);
    }
}

/** Property sweep over the synthetic data classes. */
class HybridClassSizes
    : public ::testing::TestWithParam<std::pair<CompClass, std::uint32_t>>
{
};

TEST_P(HybridClassSizes, ClassLandsAtOrUnderTargetSize)
{
    const auto [cls, max_bytes] = GetParam();
    HybridCodec codec;
    for (LineAddr line = 0; line < 400; line += 7) {
        const Line data = DataGenerator::synthesize(cls, line, line % 3);
        const Encoded enc = codec.compress(data);
        EXPECT_LE(enc.sizeBytes(), max_bytes)
            << compClassName(cls) << " line " << line;
        EXPECT_EQ(codec.decompress(enc), data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, HybridClassSizes,
    ::testing::Values(std::make_pair(CompClass::Zero, 0u),
                      std::make_pair(CompClass::Ptr, 16u),
                      std::make_pair(CompClass::Int, 20u),
                      std::make_pair(CompClass::C36, 36u),
                      std::make_pair(CompClass::Half, 56u),
                      std::make_pair(CompClass::Rand, 64u)));

} // namespace
} // namespace dice
