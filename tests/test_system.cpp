/**
 * @file
 * Full-system integration tests: end-to-end data-version correctness
 * through L3 -> L4 -> memory, sane hit rates, the free-neighbor L3
 * benefit, determinism, and cross-organization sanity (DICE never
 * behind baseline on these small runs' hit rates).
 */

#include <gtest/gtest.h>

#include "sim/system.hpp"

namespace dice
{
namespace
{

SystemConfig
smallSystem(const std::string &organization)
{
    SystemConfig cfg;
    cfg.num_cores = 2;
    cfg.refs_per_core = 20000;
    cfg.reference_capacity = 4_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4.organization = organization;
    cfg.l4.base.capacity = 4_MiB;
    cfg.seed = 3;
    return cfg;
}

std::vector<WorkloadProfile>
rateProfiles(const std::string &name, std::uint32_t cores)
{
    return std::vector<WorkloadProfile>(cores, profileByName(name));
}

TEST(System, RunsToCompletionAndCountsInstructions)
{
    System sys(smallSystem("alloy"), rateProfiles("soplex", 2));
    const RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.core_cycles.size(), 2u);
    EXPECT_GT(r.instructions, 2u * 20000u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(System, Deterministic)
{
    const auto run = [] {
        System sys(smallSystem("dice"),
                   rateProfiles("gcc", 2));
        return sys.run();
    };
    const RunResult a = run(), b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l4_reads, b.l4_reads);
    EXPECT_DOUBLE_EQ(a.l3_hit_rate, b.l3_hit_rate);
}

TEST(System, L4HitRateIsReasonableForCacheFriendlyWorkload)
{
    // sphinx's scaled footprint fits in the L4.
    System sys(smallSystem("alloy"), rateProfiles("sphinx", 2));
    const RunResult r = sys.run();
    EXPECT_GT(r.l4_hit_rate, 0.5);
}

TEST(System, ThrashingWorkloadHasLowHitRate)
{
    // mcf's scaled footprint is ~13x the L4.
    System sys(smallSystem("alloy"), rateProfiles("mcf", 2));
    const RunResult r = sys.run();
    EXPECT_LT(r.l4_hit_rate, 0.6);
}

TEST(System, VersionsFlowEndToEnd)
{
    // After a run, every line's latest written version must be
    // somewhere coherent: L3 (if dirty there), else L4, else memory.
    SystemConfig cfg = smallSystem("dice");
    cfg.refs_per_core = 5000;
    System sys(cfg, rateProfiles("gcc", 2));
    sys.run();

    // Sample lines that were written: their expected version must be
    // retrievable from the hierarchy state (L3 payload wins, then L4,
    // then memory).
    std::uint32_t checked = 0, correct = 0;
    for (LineAddr line = 0; line < (1u << 18) && checked < 500; ++line) {
        const std::uint64_t expect = sys.expectedVersion(line);
        if (expect == 0)
            continue;
        ++checked;
        std::uint64_t got = ~0ull;
        if (const auto l3v = sys.l3().payloadOf(line)) {
            got = *l3v;
        } else if (sys.l4() && sys.l4()->contains(line)) {
            const L4ReadResult r = sys.l4()->read(line, 0);
            got = r.payload;
        } else {
            got = sys.memory().versionOf(line);
        }
        correct += got == expect;
    }
    EXPECT_GT(checked, 50u);
    EXPECT_EQ(correct, checked);
}

TEST(System, DiceSuppliesExtraLinesToL3)
{
    System dice_sys(smallSystem("dice"),
                    rateProfiles("soplex", 2));
    const RunResult r = dice_sys.run();
    EXPECT_GT(r.l4_extra_lines, 0u);

    // And that should lift the L3 hit rate vs. the uncompressed base.
    System base_sys(smallSystem("alloy"),
                    rateProfiles("soplex", 2));
    const RunResult b = base_sys.run();
    EXPECT_GT(r.l3_hit_rate, b.l3_hit_rate - 0.02);
}

TEST(System, ExtraLineForwardingCanBeDisabled)
{
    SystemConfig cfg = smallSystem("dice");
    cfg.extra_line_to_l3 = false;
    System sys(cfg, rateProfiles("soplex", 2));
    const RunResult r = sys.run();
    // L4 still produces extras; the system just does not install them.
    SystemConfig cfg_on = smallSystem("dice");
    System sys_on(cfg_on, rateProfiles("soplex", 2));
    const RunResult r_on = sys_on.run();
    EXPECT_LE(r.l3_hit_rate, r_on.l3_hit_rate + 0.02);
}

TEST(System, CipAccuracyIsHighOnUniformPages)
{
    System sys(smallSystem("dice"),
               rateProfiles("omnetpp", 2));
    const RunResult r = sys.run();
    EXPECT_GT(r.cip_read_accuracy, 0.85);
    EXPECT_GT(r.cip_write_accuracy, 0.85);
}

TEST(System, IndexDistributionSkewsWithCompressibility)
{
    System comp(smallSystem("dice"),
                rateProfiles("omnetpp", 2));
    const RunResult rc = comp.run();
    EXPECT_GT(rc.frac_bai, rc.frac_tsi); // compressible: mostly BAI

    System incomp(smallSystem("dice"),
                  rateProfiles("libq", 2));
    const RunResult ri = incomp.run();
    EXPECT_GT(ri.frac_tsi, ri.frac_bai); // incompressible: mostly TSI
}

TEST(System, EnergyIsPositiveAndTracksTraffic)
{
    System sys(smallSystem("alloy"), rateProfiles("milc", 2));
    const RunResult r = sys.run();
    EXPECT_GT(r.energy.total_nj, 0.0);
    EXPECT_GT(r.energy.l4_nj, 0.0);
    EXPECT_GT(r.energy.mem_nj, 0.0);
    EXPECT_GT(r.energy.edp, 0.0);
}

TEST(System, NoL4MeansMoreMemoryTraffic)
{
    System with(smallSystem("alloy"), rateProfiles("gcc", 2));
    System without(smallSystem("none"), rateProfiles("gcc", 2));
    const RunResult rw = with.run();
    const RunResult ro = without.run();
    EXPECT_GT(ro.mem_bytes, rw.mem_bytes);
}

TEST(System, MixedWorkloadRunsDistinctProfilesPerCore)
{
    SystemConfig cfg = smallSystem("dice");
    std::vector<WorkloadProfile> mix = {profileByName("mcf"),
                                        profileByName("libq")};
    System sys(cfg, std::move(mix));
    const RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
    // Cores run different workloads, so their cycle counts diverge.
    EXPECT_NE(r.core_cycles[0], r.core_cycles[1]);
}

TEST(System, WeightedSpeedupOfIdenticalRunsIsOne)
{
    System a(smallSystem("alloy"), rateProfiles("wrf", 2));
    System b(smallSystem("alloy"), rateProfiles("wrf", 2));
    const RunResult ra = a.run(), rb = b.run();
    EXPECT_NEAR(weightedSpeedup(ra, rb), 1.0, 1e-9);
}

TEST(System, FullHierarchyModeFiltersL3Traffic)
{
    SystemConfig l3_only = smallSystem("alloy");
    SystemConfig full = smallSystem("alloy");
    full.use_l1_l2 = true;
    System a(l3_only, rateProfiles("gcc", 2));
    System b(full, rateProfiles("gcc", 2));
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    // With L1/L2 in front, far fewer references reach L3.
    EXPECT_LT(rb.l4_reads + 1, ra.l4_reads + 1);
    EXPECT_GT(rb.cycles, 0u);
}

TEST(System, PrefetchKnobsRun)
{
    SystemConfig nl = smallSystem("alloy");
    nl.l3_nextline_prefetch = true;
    SystemConfig wide = smallSystem("alloy");
    wide.l3_wide_fetch = true;
    EXPECT_GT(System(nl, rateProfiles("lbm", 2)).run().cycles, 0u);
    EXPECT_GT(System(wide, rateProfiles("lbm", 2)).run().cycles, 0u);
}

TEST(System, AvgValidLinesTracksOccupancy)
{
    System sys(smallSystem("dice"),
               rateProfiles("omnetpp", 2));
    const RunResult r = sys.run();
    EXPECT_GT(r.avg_valid_lines, 0.0);
    // Compressible workload: more logical lines than physical sets
    // touched is possible; at minimum it is bounded by refs.
    EXPECT_LT(r.avg_valid_lines, 4e6);
}

TEST(System, SccRunsAndIsSlowerThanDice)
{
    System scc(smallSystem("scc"), rateProfiles("soplex", 2));
    System dice_sys(smallSystem("dice"),
                    rateProfiles("soplex", 2));
    const RunResult rs = scc.run();
    const RunResult rd = dice_sys.run();
    // SCC's 4-access requests burn bandwidth: more L4 bytes moved per
    // useful line, and (on this bandwidth-bound workload) more cycles.
    EXPECT_GT(rs.cycles, rd.cycles);
}

} // namespace
} // namespace dice
