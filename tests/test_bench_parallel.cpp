/**
 * @file
 * Tests of the parallel bench engine: a parallel sweep must produce
 * bit-identical results to a serial one, and the persistent result
 * cache must survive concurrent writers and reject corrupt files.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"

namespace dice::bench
{
namespace
{

/** Compare every field of two results with exact (bitwise) equality. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    ASSERT_EQ(a.core_cycles.size(), b.core_cycles.size());
    for (std::size_t i = 0; i < a.core_cycles.size(); ++i)
        EXPECT_EQ(a.core_cycles[i], b.core_cycles[i]);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l3_hit_rate, b.l3_hit_rate);
    EXPECT_EQ(a.l4_hit_rate, b.l4_hit_rate);
    EXPECT_EQ(a.l4_reads, b.l4_reads);
    EXPECT_EQ(a.l4_extra_lines, b.l4_extra_lines);
    EXPECT_EQ(a.l4_second_probes, b.l4_second_probes);
    EXPECT_EQ(a.cip_read_accuracy, b.cip_read_accuracy);
    EXPECT_EQ(a.cip_write_accuracy, b.cip_write_accuracy);
    EXPECT_EQ(a.mapi_accuracy, b.mapi_accuracy);
    EXPECT_EQ(a.frac_invariant, b.frac_invariant);
    EXPECT_EQ(a.frac_bai, b.frac_bai);
    EXPECT_EQ(a.frac_tsi, b.frac_tsi);
    EXPECT_EQ(a.avg_valid_lines, b.avg_valid_lines);
    EXPECT_EQ(a.l4_bytes, b.l4_bytes);
    EXPECT_EQ(a.mem_bytes, b.mem_bytes);
    EXPECT_EQ(a.avg_miss_latency, b.avg_miss_latency);
    EXPECT_EQ(a.energy.l4_nj, b.energy.l4_nj);
    EXPECT_EQ(a.energy.mem_nj, b.energy.mem_nj);
    EXPECT_EQ(a.energy.background_nj, b.energy.background_nj);
    EXPECT_EQ(a.energy.total_nj, b.energy.total_nj);
    EXPECT_EQ(a.energy.avg_power_w, b.energy.avg_power_w);
    EXPECT_EQ(a.energy.edp, b.energy.edp);
    EXPECT_EQ(a.energy.seconds, b.energy.seconds);
}

/** A recognizable result whose fields are functions of @p id. */
RunResult
resultFor(std::uint64_t id)
{
    RunResult r;
    r.instructions = id;
    r.cycles = 7 * id + 3;
    r.ipc = 0.5 * static_cast<double>(id);
    r.core_cycles = {id, id + 1};
    return r;
}

TEST(BenchParallel, ParallelSweepMatchesSerial)
{
    // Tiny runs, no persistent cache: every cell is freshly simulated,
    // once serially and once across the thread pool, under distinct
    // memo keys so the two sweeps cannot see each other's results.
    setenv("DICE_BENCH_REFS", "1500", 1);
    setenv("DICE_BENCH_NO_CACHE", "1", 1);

    const std::vector<std::string> workloads = {rateNames()[0],
                                                rateNames()[1]};
    const SystemConfig base = configureBaseline(defaultBase());
    const SystemConfig dice_cfg = configureDice(defaultBase());

    setenv("DICE_BENCH_JOBS", "1", 1);
    runSweep(workloads, {{base, "ser:base"}, {dice_cfg, "ser:dice"}});

    setenv("DICE_BENCH_JOBS", "4", 1);
    runSweep(workloads, {{base, "par:base"}, {dice_cfg, "par:dice"}});

    for (const std::string &w : workloads) {
        expectIdentical(runWorkload(w, base, "ser:base"),
                        runWorkload(w, base, "par:base"));
        expectIdentical(runWorkload(w, dice_cfg, "ser:dice"),
                        runWorkload(w, dice_cfg, "par:dice"));
    }
}

TEST(BenchCache, SaveLoadRoundTripsAllFields)
{
    const std::filesystem::path path =
        std::filesystem::path(::testing::TempDir()) /
        "dice_roundtrip.result";

    RunResult r = resultFor(42);
    r.l3_hit_rate = 0.123456789012345;
    r.avg_miss_latency = 987.654321;
    r.energy.total_nj = 1.0e9 / 3.0;
    detail::saveResult(path, r);

    RunResult loaded;
    ASSERT_TRUE(detail::loadResult(path, loaded));
    expectIdentical(r, loaded);
    std::filesystem::remove(path);
}

TEST(BenchCache, ConcurrentWritersNeverProduceTornReads)
{
    const std::filesystem::path path =
        std::filesystem::path(::testing::TempDir()) /
        "dice_concurrent.result";
    std::filesystem::remove(path);

    constexpr int kWriters = 4;
    constexpr int kRounds = 50;

    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&path, w] {
            for (int i = 0; i < kRounds; ++i)
                detail::saveResult(
                    path, resultFor(1 + static_cast<std::uint64_t>(
                                            w * kRounds + i)));
        });
    }
    // Readers race the writers; every successful load must be one
    // complete written result, never a torn or interleaved file.
    std::atomic<int> bad{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&path, &bad] {
            for (int i = 0; i < 200; ++i) {
                RunResult r;
                if (!detail::loadResult(path, r))
                    continue;
                const RunResult expect = resultFor(r.instructions);
                if (r.instructions == 0 ||
                    r.cycles != expect.cycles ||
                    r.ipc != expect.ipc ||
                    r.core_cycles != expect.core_cycles)
                    bad.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (std::thread &t : readers)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    // After the dust settles the file holds one intact result.
    RunResult last;
    ASSERT_TRUE(detail::loadResult(path, last));
    expectIdentical(last, resultFor(last.instructions));
    std::filesystem::remove(path);

    // No temp files leak.
    for (const auto &entry : std::filesystem::directory_iterator(
             std::filesystem::path(::testing::TempDir())))
        EXPECT_EQ(
            entry.path().filename().string().find("dice_concurrent"),
            std::string::npos)
            << entry.path();
}

TEST(BenchCache, CorruptOrTruncatedFileIsACacheMiss)
{
    const std::filesystem::path path =
        std::filesystem::path(::testing::TempDir()) /
        "dice_corrupt.result";
    detail::saveResult(path, resultFor(7));

    std::string content;
    {
        std::ifstream in(path);
        std::getline(in, content);
    }
    ASSERT_FALSE(content.empty());

    RunResult r;

    // Truncated mid-payload: checksum cannot match.
    {
        std::ofstream out(path, std::ios::trunc);
        out << content.substr(0, content.size() / 2);
    }
    EXPECT_FALSE(detail::loadResult(path, r));

    // Flipped payload byte under the original checksum.
    {
        std::string bad = content;
        bad[0] = bad[0] == '1' ? '2' : '1';
        std::ofstream out(path, std::ios::trunc);
        out << bad;
    }
    EXPECT_FALSE(detail::loadResult(path, r));

    // Pre-checksum format: payload with no trailing checksum field.
    {
        std::ofstream out(path, std::ios::trunc);
        out << content.substr(0, content.rfind(' '));
    }
    EXPECT_FALSE(detail::loadResult(path, r));

    // Empty and missing files.
    {
        std::ofstream out(path, std::ios::trunc);
    }
    EXPECT_FALSE(detail::loadResult(path, r));
    std::filesystem::remove(path);
    EXPECT_FALSE(detail::loadResult(path, r));

    // The intact file loads again (sanity that the fixture is valid).
    detail::saveResult(path, resultFor(7));
    EXPECT_TRUE(detail::loadResult(path, r));
    std::filesystem::remove(path);
}

} // namespace
} // namespace dice::bench
