/**
 * @file
 * Tests of the shared trace arena: packed-stream round-tripping,
 * replay/live equivalence, keying, LRU byte-budget eviction, and the
 * sweep-level guarantee that a cold-cache multi-organization sweep
 * generates each (workload, seed) stream exactly once.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace_events.hpp"
#include "harness.hpp"
#include "mini_json.hpp"
#include "workloads/packed_trace.hpp"
#include "workloads/region_plan.hpp"
#include "workloads/trace_arena.hpp"
#include "workloads/trace_source.hpp"

namespace dice
{
namespace
{

std::vector<WorkloadProfile>
rateProfiles(const std::string &name, std::uint32_t cores)
{
    return std::vector<WorkloadProfile>(cores, profileByName(name));
}

TEST(PackedTrace, RoundTripsGeneratorOutput)
{
    const WorkloadProfile &prof = profileByName("mcf");
    TraceGenerator gen(prof, 1024, 4096, 42);
    TraceGenerator verify(prof, 1024, 4096, 42);

    PackedTrace packed;
    packed.reserve(20'000);
    for (int i = 0; i < 20'000; ++i)
        packed.append(gen.next());
    packed.seal();

    ASSERT_EQ(packed.size(), 20'000u);
    for (std::size_t i = 0; i < packed.size(); ++i) {
        const MemRef want = verify.next();
        const MemRef got = packed.at(i);
        ASSERT_EQ(got.line, want.line) << "ref " << i;
        ASSERT_EQ(got.is_write, want.is_write) << "ref " << i;
        ASSERT_EQ(got.gap_instr, want.gap_instr) << "ref " << i;
        ASSERT_EQ(got.pc, want.pc) << "ref " << i;
    }
    // The point of the packed layout: well under MemRef's 24 B/ref.
    EXPECT_LT(static_cast<double>(packed.bytes()) /
                  static_cast<double>(packed.size()),
              14.0);
}

TEST(PackedTrace, OverflowPlanesRoundTrip)
{
    // Gaps at/above the 16-bit sentinel and more distinct PCs than the
    // index plane can name must spill to the side tables and still
    // read back exactly.
    PackedTrace packed;
    constexpr std::size_t kRefs = 70'000;
    packed.reserve(kRefs);
    for (std::size_t i = 0; i < kRefs; ++i) {
        MemRef ref;
        ref.line = i * 3 + 1;
        ref.is_write = i % 7 == 0;
        ref.gap_instr = i % 9 == 0
                            ? 0xFFFF + static_cast<std::uint32_t>(i)
                            : static_cast<std::uint32_t>(i % 1000);
        ref.pc = 0x1000 + i; // every PC distinct: overflows the table
        packed.append(ref);
    }
    packed.seal();

    EXPECT_EQ(packed.distinctPcs(), 0xFFFFu);
    for (std::size_t i = 0; i < kRefs; ++i) {
        const MemRef got = packed.at(i);
        ASSERT_EQ(got.line, i * 3 + 1);
        ASSERT_EQ(got.is_write, i % 7 == 0);
        ASSERT_EQ(got.gap_instr,
                  i % 9 == 0 ? 0xFFFF + static_cast<std::uint32_t>(i)
                             : static_cast<std::uint32_t>(i % 1000));
        ASSERT_EQ(got.pc, 0x1000 + i);
    }
}

TEST(TraceSource, ReplayMatchesLiveGeneration)
{
    const std::uint32_t cores = 2;
    const auto profiles = rateProfiles("lbm", cores);
    const std::uint64_t refs = 5'000;
    const std::uint64_t seed = 99;

    const auto set =
        generateTraceSet(profiles, cores, 8_MiB, seed, refs, 2);
    const auto regions = planCoreRegions(cores, 8_MiB, profiles);

    for (std::uint32_t cid = 0; cid < cores; ++cid) {
        LiveTraceSource live(profiles[cid], regions[cid].start,
                             regions[cid].lines, mix64(seed, cid));
        ReplayTraceSource replay(TraceSet::stream(set, cid));
        for (std::uint64_t i = 0; i < refs; ++i) {
            const MemRef want = live.next();
            const MemRef got = replay.next();
            ASSERT_EQ(got.line, want.line) << "core " << cid;
            ASSERT_EQ(got.is_write, want.is_write);
            ASSERT_EQ(got.gap_instr, want.gap_instr);
            ASSERT_EQ(got.pc, want.pc);
        }
    }
}

TEST(TraceArena, KeyedAcquireGeneratesOncePerKey)
{
    TraceArena &arena = TraceArena::instance();
    arena.clear();
    arena.setByteBudget(512_MiB);
    // Counter assertions below need real generations: a warm spill
    // directory would turn them into disk hits.
    arena.setStoreDirForTest("");
    const auto profiles = rateProfiles("mcf", 2);

    const auto a = arena.acquire("mcf", 7, 2, 8_MiB, 1'000, profiles, 2);
    const auto a2 =
        arena.acquire("mcf", 7, 2, 8_MiB, 1'000, profiles, 2);
    EXPECT_EQ(a.get(), a2.get()); // same immutable set, not a copy

    // Every key component is significant.
    arena.acquire("mcf", 8, 2, 8_MiB, 1'000, profiles, 2);   // seed
    arena.acquire("mcf", 7, 2, 16_MiB, 1'000, profiles, 2);  // capacity
    arena.acquire("mcf", 7, 2, 8_MiB, 2'000, profiles, 2);   // length

    const TraceArena::Stats s = arena.stats();
    EXPECT_EQ(s.generations, 4u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.entries, 4u);
    EXPECT_GT(s.resident_bytes, 0u);
}

TEST(TraceArena, LruEvictionUnderByteBudget)
{
    TraceArena &arena = TraceArena::instance();
    arena.clear();
    arena.setByteBudget(512_MiB);
    arena.setStoreDirForTest(""); // assertions count real generations
    const auto profiles = rateProfiles("milc", 2);
    const auto get = [&](std::uint64_t seed) {
        return arena.acquire("milc", seed, 2, 8_MiB, 2'000, profiles, 2);
    };

    get(1); // A
    get(2); // B
    const std::uint64_t two_sets = arena.stats().resident_bytes;
    // Room for two-and-a-half sets: the third insert must evict the
    // least-recently-used one.
    arena.setByteBudget(two_sets + two_sets / 4);

    get(1); // touch A so B is the LRU entry
    get(3); // C: evicts B
    EXPECT_EQ(arena.stats().evictions, 1u);
    EXPECT_EQ(arena.stats().entries, 2u);

    const std::uint64_t gens_before = arena.stats().generations;
    get(1); // still resident
    get(3); // still resident
    EXPECT_EQ(arena.stats().generations, gens_before);
    get(2); // was evicted: regenerated
    EXPECT_EQ(arena.stats().generations, gens_before + 1);
}

/**
 * Budget-driven evictions leave instant markers ("ph":"i") on the
 * trace-event timeline, carrying the evicted workload and its size, so
 * an arena thrash shows up right next to the regeneration spans it
 * causes.
 */
TEST(TraceArena, EvictionEmitsInstantTraceEvent)
{
    namespace fs = std::filesystem;
    const fs::path trace =
        fs::temp_directory_path() /
        ("dice_trace_arena_evict." + std::to_string(::getpid()) +
         ".json");
    TraceLog::instance().setOutputForTest(trace.string());

    TraceArena &arena = TraceArena::instance();
    arena.clear();
    arena.setByteBudget(512_MiB);
    arena.setStoreDirForTest(""); // keep spills out of the test cwd
    const auto profiles = rateProfiles("milc", 2);
    const auto get = [&](std::uint64_t seed) {
        return arena.acquire("milc", seed, 2, 8_MiB, 2'000, profiles, 2);
    };
    get(1);
    get(2);
    const std::uint64_t two_sets = arena.stats().resident_bytes;
    arena.setByteBudget(two_sets - 1); // forces one eviction now
    EXPECT_EQ(arena.stats().evictions, 1u);

    ASSERT_TRUE(TraceLog::instance().flush());
    TraceLog::instance().setOutputForTest("");

    std::ifstream in(trace);
    std::stringstream ss;
    ss << in.rdbuf();
    auto doc = testjson::parse(ss.str());
    fs::remove(trace);

    bool saw_evict = false;
    for (const auto &ev : doc->at("traceEvents").array) {
        if (ev->at("name").string != "arena_evict")
            continue;
        saw_evict = true;
        EXPECT_EQ(ev->at("ph").string, "i");
        EXPECT_EQ(ev->at("s").string, "t");
        EXPECT_EQ(ev->at("cat").string, "arena");
        EXPECT_EQ(ev->at("args").at("workload").string, "milc");
        EXPECT_GT(ev->at("args").at("bytes").number, 0.0);
        EXPECT_FALSE(ev->has("dur"));
    }
    EXPECT_TRUE(saw_evict);
}

/**
 * The sweep-level contract (and the CI hook for it): with the
 * persistent result cache disabled, a two-organization sweep still
 * generates each (workload, seed) reference stream exactly once — the
 * second organization column replays the arena's copy.
 */
TEST(TraceArena, ColdSweepGeneratesEachStreamOnce)
{
    setenv("DICE_BENCH_NO_CACHE", "1", 1);
    setenv("DICE_BENCH_REFS", "1200", 1);
    setenv("DICE_BENCH_JOBS", "4", 1);

    TraceArena &arena = TraceArena::instance();
    arena.clear();
    arena.setByteBudget(512_MiB);
    // Exercise the env gating: DICE_BENCH_NO_CACHE must disable the
    // persistent spill store too, or the counters below would see
    // disk hits on a warm machine.
    arena.setStoreDirForTest(std::nullopt);

    const std::vector<std::string> workloads = {bench::rateNames()[0],
                                                bench::rateNames()[1]};
    const SystemConfig base =
        bench::configureBaseline(bench::defaultBase());
    const SystemConfig dice_cfg = bench::configureDice(bench::defaultBase());
    bench::runSweep(workloads,
                    {{base, "arena:base"}, {dice_cfg, "arena:dice"}});

    const TraceArena::Stats s = arena.stats();
    // 4 cells asked for 2 distinct streams: one generation per stream,
    // every other request served from the arena.
    EXPECT_EQ(s.generations, workloads.size());
    EXPECT_EQ(s.hits, workloads.size());
    unsetenv("DICE_BENCH_NO_CACHE");
    unsetenv("DICE_BENCH_REFS");
    unsetenv("DICE_BENCH_JOBS");
}

} // namespace
} // namespace dice
