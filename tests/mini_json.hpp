/**
 * @file
 * Minimal recursive-descent JSON parser for test assertions.
 *
 * The telemetry layer emits JSON (stats registries, Chrome trace
 * events); tests must prove those documents actually parse and carry
 * the right values without growing a third-party dependency. This
 * parser covers the full JSON grammar the emitters use (objects,
 * arrays, strings with escapes, numbers, true/false/null) and fails
 * loudly on anything malformed — that failure *is* the assertion.
 *
 * Test-only: include from tests/, never from src/.
 */

#ifndef DICE_TESTS_MINI_JSON_HPP
#define DICE_TESTS_MINI_JSON_HPP

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dice::testjson
{

struct Value;
using ValuePtr = std::shared_ptr<Value>;

/** One parsed JSON value (tagged union, shared_ptr children). */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<ValuePtr> array;
    std::map<std::string, ValuePtr> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Object member access; throws when absent or not an object. */
    const Value &
    at(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("not an object");
        const auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return *it->second;
    }

    bool
    has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }
};

namespace detail
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }

    void
    expectWord(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p)
            expect(*p);
    }

    ValuePtr
    parseValue()
    {
        skipWs();
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't': {
            expectWord("true");
            auto v = std::make_shared<Value>();
            v->kind = Value::Kind::Bool;
            v->boolean = true;
            return v;
          }
          case 'f': {
            expectWord("false");
            auto v = std::make_shared<Value>();
            v->kind = Value::Kind::Bool;
            v->boolean = false;
            return v;
          }
          case 'n': {
            expectWord("null");
            return std::make_shared<Value>();
          }
          default:
            return parseNumber();
        }
    }

    ValuePtr
    parseObject()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            ValuePtr key = parseString();
            skipWs();
            expect(':');
            v->object[key->string] = parseValue();
            skipWs();
            const char c = next();
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    ValuePtr
    parseArray()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v->array.push_back(parseValue());
            skipWs();
            const char c = next();
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::String;
        expect('"');
        while (true) {
            const char c = next();
            if (c == '"')
                return v;
            if (c != '\\') {
                v->string += c;
                continue;
            }
            const char esc = next();
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                v->string += esc;
                break;
              case 'n':
                v->string += '\n';
                break;
              case 't':
                v->string += '\t';
                break;
              case 'r':
                v->string += '\r';
                break;
              case 'b':
                v->string += '\b';
                break;
              case 'f':
                v->string += '\f';
                break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The emitters only escape control characters, which
                // are single bytes; that is all the tests need.
                v->string += static_cast<char>(code & 0xFF);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    ValuePtr
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Number;
        try {
            v->number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("bad number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse @p text; throws std::runtime_error on malformed input. */
inline ValuePtr
parse(const std::string &text)
{
    return detail::Parser(text).parse();
}

} // namespace dice::testjson

#endif // DICE_TESTS_MINI_JSON_HPP
