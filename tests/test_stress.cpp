/**
 * @file
 * Randomized stress tests with reference oracles: the compressed cache
 * is driven with thousands of random install/read/writeback operations
 * against a simple map-based model, checking functional correctness
 * (payloads), the single-residency invariant, and writeback integrity
 * under every policy.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/compressed.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

/** Data whose class varies per line and per version (worst case). */
class ChaoticSource : public LineDataSource
{
  public:
    Line
    bytes(LineAddr line, std::uint64_t version) const override
    {
        const auto cls = static_cast<CompClass>(
            mix64(line >> 1, version) % 6);
        return DataGenerator::synthesize(cls, line, version);
    }
};

CompressedCacheConfig
config(CompressionPolicy policy, bool knl = false)
{
    CompressedCacheConfig c;
    c.base.capacity = 256_KiB; // 4096 sets: small enough to stress
    c.policy = policy;
    c.knl_mode = knl;
    return c;
}

/**
 * Oracle: tracks, for every line, the latest payload accepted by the
 * cache and whether the cache or memory owns the newest version.
 */
class Oracle
{
  public:
    void
    installed(LineAddr line, std::uint64_t payload, bool dirty)
    {
        resident_[line] = Entry{payload, dirty};
    }

    void
    evicted(const WritebackList &wbs)
    {
        for (const EvictedLine &wb : wbs) {
            const auto it = resident_.find(wb.line);
            ASSERT_NE(it, resident_.end())
                << "writeback of non-resident line " << wb.line;
            EXPECT_TRUE(it->second.dirty)
                << "writeback of clean line " << wb.line;
            EXPECT_EQ(wb.payload, it->second.payload);
            memory_[wb.line] = wb.payload;
            resident_.erase(it);
        }
    }

    struct Entry
    {
        std::uint64_t payload;
        bool dirty;
    };

    std::map<LineAddr, Entry> resident_;
    std::map<LineAddr, std::uint64_t> memory_;
};

class CompressedStress
    : public ::testing::TestWithParam<std::pair<CompressionPolicy, bool>>
{
};

TEST_P(CompressedStress, RandomOperationsAgainstOracle)
{
    const auto [policy, knl] = GetParam();
    ChaoticSource src;
    CompressedDramCache l4(config(policy, knl), src);
    Oracle oracle;
    Rng rng(static_cast<std::uint64_t>(policy) * 7 + (knl ? 3 : 0) + 1);

    std::map<LineAddr, std::uint64_t> versions;
    Cycle now = 0;

    for (int op = 0; op < 30000; ++op) {
        now += rng.between(1, 50);
        // Cluster lines so sets get contested.
        const LineAddr line = rng.below(3000) + (rng.below(4) << 16);

        // The oracle over-approximates residency: clean evictions are
        // legitimately silent, so a "resident" clean line may in fact
        // be gone. The checkable invariants are:
        //  - a hit never returns stale data;
        //  - a dirty line never disappears without a writeback;
        //  - a line the oracle never installed never hits.
        const int action = static_cast<int>(rng.below(10));
        if (action < 4) { // demand read
            const L4ReadResult r = l4.read(line, now);
            const auto it = oracle.resident_.find(line);
            if (it == oracle.resident_.end()) {
                EXPECT_FALSE(r.hit) << "line " << line;
            } else if (r.hit) {
                EXPECT_EQ(r.payload, it->second.payload)
                    << "line " << line;
                if (r.has_extra) {
                    const auto nb =
                        oracle.resident_.find(r.extra_line);
                    ASSERT_NE(nb, oracle.resident_.end());
                    EXPECT_EQ(r.extra_payload, nb->second.payload);
                }
            } else {
                EXPECT_FALSE(it->second.dirty)
                    << "dirty line " << line
                    << " vanished without a writeback";
                oracle.resident_.erase(it); // clean silent eviction
            }
        } else if (action < 7) { // clean fill (as after a miss)
            if (l4.contains(line))
                continue; // fills only happen for non-resident lines
            const std::uint64_t ver = versions[line];
            const L4WriteResult w =
                l4.install(line, ver, false, now, true);
            oracle.installed(line, ver, false);
            oracle.evicted(w.writebacks);
        } else { // dirty writeback from L3 (new version)
            const std::uint64_t ver = ++versions[line];
            const L4WriteResult w =
                l4.install(line, ver, true, now, false);
            oracle.installed(line, ver, true);
            oracle.evicted(w.writebacks);
        }

        if (op % 4096 == 0) {
            // The cache can only shrink relative to the oracle's
            // over-approximation.
            EXPECT_LE(l4.validLines(), oracle.resident_.size());
        }
    }

    // Final sweep: every hit agrees with the oracle, and every dirty
    // oracle line is still present (it could not leave silently).
    for (const auto &[line, entry] : oracle.resident_) {
        if (entry.dirty) {
            ASSERT_TRUE(l4.contains(line))
                << "dirty line " << line << " lost";
        }
        if (l4.contains(line)) {
            const L4ReadResult r = l4.read(line, now);
            ASSERT_TRUE(r.hit);
            EXPECT_EQ(r.payload, entry.payload);
        }
    }
    EXPECT_LE(l4.validLines(), oracle.resident_.size());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CompressedStress,
    ::testing::Values(
        std::make_pair(CompressionPolicy::TsiOnly, false),
        std::make_pair(CompressionPolicy::NsiOnly, false),
        std::make_pair(CompressionPolicy::BaiOnly, false),
        std::make_pair(CompressionPolicy::Dice, false),
        std::make_pair(CompressionPolicy::Dice, true)));

TEST(TadSetStress, RandomInsertRemoveKeepsAccountingExact)
{
    TadSet set;
    Rng rng(99);
    std::map<LineAddr, std::uint32_t> model; // line -> its share seen

    for (int op = 0; op < 20000; ++op) {
        const LineAddr line = rng.below(64);
        if (rng.chance(0.5) && !set.contains(line)) {
            const auto size =
                static_cast<std::uint32_t>(rng.below(65));
            if (set.fits(size, 1)) {
                set.insertSingle(line, size, rng.chance(0.3),
                                 rng.next(), rng.chance(0.5),
                                 static_cast<std::uint64_t>(op));
                model[line] = size;
            }
        } else if (set.contains(line)) {
            set.remove(line, 0);
            model.erase(line);
        }

        // Exact accounting: bytes = sum(tag + size), lines = count.
        std::uint32_t bytes = 0;
        for (const auto &[l, sz] : model)
            bytes += kTadTagBytes + sz;
        ASSERT_EQ(set.bytesUsed(), bytes);
        ASSERT_EQ(set.lineCount(), model.size());
        ASSERT_LE(bytes, kTadSetBytes);
    }
}

} // namespace
} // namespace dice
