/**
 * @file
 * BDI codec: canonical mode sizes, mode selection, and round trips.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "compress/bdi.hpp"

namespace dice
{
namespace
{

Line
lineOf64(const std::uint64_t (&elems)[8])
{
    Line l{};
    std::memcpy(l.data(), elems, sizeof elems);
    return l;
}

Line
lineOf32(const std::uint32_t (&elems)[16])
{
    Line l{};
    std::memcpy(l.data(), elems, sizeof elems);
    return l;
}

TEST(Bdi, CanonicalPayloadSizes)
{
    // The sizes the paper's 36-B threshold is built around.
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::Zeros), 0u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::Rep8), 64u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::B8D1) / 8, 16u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::B8D2) / 8, 24u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::B8D4) / 8, 40u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::B4D1) / 8, 20u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::B4D2) / 8, 36u);
    EXPECT_EQ(BdiCodec::payloadBits(BdiCodec::B2D1) / 8, 34u);
}

TEST(Bdi, ZeroLine)
{
    BdiCodec bdi;
    const Line zero{};
    const Encoded enc = bdi.compress(zero);
    ASSERT_EQ(enc.algo, CompAlgo::Bdi);
    EXPECT_EQ(enc.mode, BdiCodec::Zeros);
    EXPECT_EQ(enc.sizeBytes(), 0u);
    EXPECT_EQ(bdi.decompress(enc), zero);
}

TEST(Bdi, RepeatedValue)
{
    BdiCodec bdi;
    const std::uint64_t elems[8] = {
        0xDEADBEEFCAFEF00Dull, 0xDEADBEEFCAFEF00Dull,
        0xDEADBEEFCAFEF00Dull, 0xDEADBEEFCAFEF00Dull,
        0xDEADBEEFCAFEF00Dull, 0xDEADBEEFCAFEF00Dull,
        0xDEADBEEFCAFEF00Dull, 0xDEADBEEFCAFEF00Dull};
    const Line l = lineOf64(elems);
    const Encoded enc = bdi.compress(l);
    EXPECT_EQ(enc.mode, BdiCodec::Rep8);
    EXPECT_EQ(enc.sizeBytes(), 8u);
    EXPECT_EQ(bdi.decompress(enc), l);
}

TEST(Bdi, PointerArrayUsesB8D1)
{
    BdiCodec bdi;
    const std::uint64_t base = 0x00007F8812340000ull;
    std::uint64_t elems[8];
    for (int i = 0; i < 8; ++i)
        elems[i] = base + static_cast<std::uint64_t>(i * 13);
    const Line l = lineOf64(elems);
    const Encoded enc = bdi.compress(l);
    EXPECT_EQ(enc.mode, BdiCodec::B8D1);
    EXPECT_EQ(enc.sizeBytes(), 16u);
    EXPECT_EQ(bdi.decompress(enc), l);
}

TEST(Bdi, WideDeltasUseB4D2)
{
    BdiCodec bdi;
    std::uint32_t elems[16];
    for (int i = 0; i < 16; ++i) {
        elems[i] = 0x40000000u +
                   static_cast<std::uint32_t>(i * 1000 - 8000);
    }
    const Line l = lineOf32(elems);
    const Encoded enc = bdi.compress(l);
    EXPECT_EQ(enc.mode, BdiCodec::B4D2);
    EXPECT_EQ(enc.sizeBytes(), 36u);
    EXPECT_EQ(bdi.decompress(enc), l);
}

TEST(Bdi, ImmediateMaskMixesZeroBase)
{
    BdiCodec bdi;
    // Half the elements are small immediates, half sit near a big base.
    std::uint32_t elems[16];
    for (int i = 0; i < 16; ++i) {
        elems[i] = (i % 2 == 0)
                       ? static_cast<std::uint32_t>(i)
                       : 0x12345600u + static_cast<std::uint32_t>(i);
    }
    const Line l = lineOf32(elems);
    const Encoded enc = bdi.compress(l);
    ASSERT_EQ(enc.algo, CompAlgo::Bdi);
    EXPECT_EQ(enc.mode, BdiCodec::B4D1);
    EXPECT_EQ(bdi.decompress(enc), l);
}

TEST(Bdi, IncompressibleReturnsRaw)
{
    BdiCodec bdi;
    // High-entropy bytes: no base/delta mode can represent them.
    Line l{};
    Rng rng(99);
    for (auto &b : l)
        b = static_cast<std::uint8_t>(rng.next());
    const Encoded enc = bdi.compress(l);
    EXPECT_EQ(enc.algo, CompAlgo::None);
    EXPECT_EQ(bdi.decompress(enc), l);
}

TEST(Bdi, CompressInModeRejectsUnrepresentable)
{
    BdiCodec bdi;
    std::uint32_t elems[16];
    for (int i = 0; i < 16; ++i)
        elems[i] = 0x40000000u + static_cast<std::uint32_t>(i * 1000);
    const Line l = lineOf32(elems);
    EXPECT_FALSE(bdi.compressInMode(l, BdiCodec::B4D1).has_value());
    EXPECT_TRUE(bdi.compressInMode(l, BdiCodec::B4D2).has_value());
    EXPECT_FALSE(bdi.compressInMode(l, BdiCodec::Zeros).has_value());
    EXPECT_FALSE(bdi.compressInMode(l, BdiCodec::Rep8).has_value());
}

/** Property sweep: every mode's successful encodings round-trip. */
class BdiModeRoundTrip
    : public ::testing::TestWithParam<BdiCodec::Mode>
{
};

TEST_P(BdiModeRoundTrip, RandomRepresentableLines)
{
    const BdiCodec::Mode mode = GetParam();
    BdiCodec bdi;
    Rng rng(static_cast<std::uint64_t>(mode) + 123);

    for (int iter = 0; iter < 300; ++iter) {
        Line l{};
        if (mode == BdiCodec::Zeros) {
            // Already zero.
        } else if (mode == BdiCodec::Rep8) {
            const std::uint64_t v = rng.next();
            for (int i = 0; i < 8; ++i)
                std::memcpy(l.data() + 8 * i, &v, 8);
        } else {
            const std::uint32_t k = BdiCodec::baseBytes(mode);
            const std::uint32_t d = BdiCodec::deltaBytes(mode);
            const std::uint32_t n = kLineSize / k;
            // Keep the base away from the signed boundary so that
            // base + delta never wraps the k-byte two's-complement
            // range (a wrapped element is legitimately unrepresentable
            // and would make the mode fail).
            const std::uint64_t base_room =
                (k == 8 ? (1ull << 62) : (1ull << (8 * k - 2)));
            const std::uint64_t base = rng.below(base_room);
            const std::uint64_t half = 1ull << (8 * d - 1);
            for (std::uint32_t i = 0; i < n; ++i) {
                const std::uint64_t delta = rng.below(half);
                const std::uint64_t v = base + delta;
                std::memcpy(l.data() + k * i, &v, k);
            }
        }
        const Encoded enc = bdi.compress(l);
        ASSERT_EQ(enc.algo, CompAlgo::Bdi);
        EXPECT_EQ(bdi.decompress(enc), l)
            << "mode " << static_cast<int>(mode) << " iter " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BdiModeRoundTrip,
    ::testing::Values(BdiCodec::Zeros, BdiCodec::Rep8, BdiCodec::B8D1,
                      BdiCodec::B8D2, BdiCodec::B8D4, BdiCodec::B4D1,
                      BdiCodec::B4D2, BdiCodec::B2D1));

} // namespace
} // namespace dice
