/**
 * @file
 * L4 organization registry tests: factory round-trip for every
 * registered name, the unknown-name and mismatched-parameter error
 * paths, the cross-organization stat contract (every organization's
 * stats()/resetStats() behave identically with respect to the base
 * counters), and a polymorphic smoke simulation per organization
 * asserting structural invariants through the DramCache interface
 * alone.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/l4_registry.hpp"
#include "sim/system.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

/** Small config every test builds from (1 MiB keeps sets contended). */
L4Config
smallL4(const std::string &organization)
{
    L4Config cfg;
    cfg.organization = organization;
    cfg.base.capacity = 1_MiB;
    return cfg;
}

/** Mildly compressible data so compressed organizations exercise both
 *  index paths. */
class IntSource : public LineDataSource
{
  public:
    Line
    bytes(LineAddr line, std::uint64_t version) const override
    {
        return DataGenerator::synthesize(CompClass::Int, line, version);
    }
};

/** All registered organizations that build a cache (excludes "none"). */
std::vector<std::string>
cacheNames()
{
    std::vector<std::string> out;
    for (const std::string &name : L4Registry::instance().names()) {
        if (name != "none")
            out.push_back(name);
    }
    return out;
}

TEST(L4Registry, RoundTripsEveryRegisteredName)
{
    IntSource src;
    const std::vector<std::string> names =
        L4Registry::instance().names();
    // The zoo: baseline, four compressed policies, SCC, Banshee,
    // Touché, plus the disabled organization.
    EXPECT_GE(names.size(), 9u);
    for (const std::string &name : names) {
        ASSERT_TRUE(L4Registry::instance().known(name));
        const auto l4 = L4Registry::instance().create(smallL4(name), src);
        if (name == "none") {
            EXPECT_EQ(l4, nullptr);
            continue;
        }
        ASSERT_NE(l4, nullptr) << name;
        // The registry key IS the organization's self-reported name, so
        // reports and configs can never drift apart.
        EXPECT_EQ(std::string(l4->organization()), name);
    }
}

TEST(L4Registry, UnknownNameDies)
{
    IntSource src;
    EXPECT_DEATH(
        L4Registry::instance().create(smallL4("no-such-org"), src),
        "unknown L4 organization");
}

TEST(L4Registry, RejectsUnconsumedParameterGroups)
{
    IntSource src;
    // Alloy consumes no parameter group: any customized group is a
    // config bug.
    L4Config bad_alloy = smallL4("alloy");
    bad_alloy.comp.threshold_bytes = 24;
    EXPECT_DEATH(L4Registry::instance().create(bad_alloy, src),
                 "does not consume");

    // DICE consumes the compressed group but not Banshee's.
    L4Config bad_dice = smallL4("dice");
    bad_dice.banshee.ways = 8;
    EXPECT_DEATH(L4Registry::instance().create(bad_dice, src),
                 "does not consume");

    // Banshee consumes its own group but not Touché's.
    L4Config bad_banshee = smallL4("banshee");
    bad_banshee.touche.signature_bits = 4;
    EXPECT_DEATH(L4Registry::instance().create(bad_banshee, src),
                 "does not consume");
}

TEST(L4Registry, AcceptsConsumedParameterGroups)
{
    IntSource src;
    L4Config dice_cfg = smallL4("dice");
    dice_cfg.comp.threshold_bytes = 24;
    EXPECT_NE(L4Registry::instance().create(dice_cfg, src), nullptr);

    L4Config banshee_cfg = smallL4("banshee");
    banshee_cfg.banshee.ways = 8;
    EXPECT_NE(L4Registry::instance().create(banshee_cfg, src), nullptr);

    L4Config touche_cfg = smallL4("touche");
    touche_cfg.touche.signature_bits = 6;
    EXPECT_NE(L4Registry::instance().create(touche_cfg, src), nullptr);
}

/**
 * The stat contract every organization honors:
 *  - the stats() group is named after the organization and always
 *    exposes the base counters;
 *  - the exported values equal the white-box accessors;
 *  - resetStats() zeroes event counters but does not disturb contents
 *    (validLines is occupancy, not an event count).
 */
TEST(L4Registry, StatContractAcrossOrganizations)
{
    IntSource src;
    for (const std::string &name : cacheNames()) {
        SCOPED_TRACE(name);
        const auto l4 = L4Registry::instance().create(smallL4(name), src);

        for (LineAddr line = 0; line < 256; ++line) {
            if (!l4->read(line, 0).hit)
                l4->install(line, line + 1, (line & 3) == 0, 0, true);
        }
        for (LineAddr line = 0; line < 256; ++line)
            l4->read(line, 100);

        const StatGroup g = l4->stats();
        EXPECT_EQ(g.name(), name);
        EXPECT_EQ(g.get("read_hits"), double(l4->readHits()));
        EXPECT_EQ(g.get("read_misses"), double(l4->readMisses()));
        EXPECT_EQ(g.get("valid_lines"), double(l4->validLines()));
        EXPECT_GT(l4->readHits() + l4->readMisses(), 0u);
        EXPECT_GT(g.get("installs"), 0.0);

        const std::uint64_t occupancy = l4->validLines();
        l4->resetStats();
        EXPECT_EQ(l4->readHits(), 0u);
        EXPECT_EQ(l4->readMisses(), 0u);
        EXPECT_EQ(l4->stats().get("installs"), 0.0);
        EXPECT_EQ(l4->validLines(), occupancy);
    }
}

/**
 * Structural invariants through the polymorphic interface alone, on a
 * deterministic pseudo-random stream that overflows the 1-MiB cache:
 *  - a non-bypassed install makes the line resident;
 *  - re-installing a resident line never grows occupancy;
 *  - occupancy stays within the organization's physical bound (4x for
 *    compressed organizations, 1x for uncompressed ones).
 */
TEST(L4Registry, PolymorphicInvariantSmoke)
{
    IntSource src;
    for (const std::string &name : cacheNames()) {
        SCOPED_TRACE(name);
        const L4Config cfg = smallL4(name);
        const auto l4 = L4Registry::instance().create(cfg, src);
        const std::uint64_t max_lines =
            4 * cfg.base.capacity / kLineSize;

        for (std::uint64_t i = 0; i < 20'000; ++i) {
            const LineAddr line = mix64(i) % (1u << 16);
            const Cycle now = i * 4;
            if (l4->read(line, now).hit)
                continue;
            const L4WriteResult w =
                l4->install(line, i + 1, (i & 7) == 0, now, true);
            if (!w.bypassed) {
                EXPECT_TRUE(l4->contains(line)) << "line " << line;
            }
            for (const LineAddr fetch : w.fill_fetches)
                l4->completeFill(fetch, fetch + 1, now);
            EXPECT_LE(l4->validLines(), max_lines);

            // Duplicate install of a resident line must not grow
            // occupancy (no duplicate tags).
            if (!w.bypassed) {
                const std::uint64_t before = l4->validLines();
                const L4WriteResult dup =
                    l4->install(line, i + 2, false, now, true);
                EXPECT_TRUE(dup.fill_fetches.empty());
                EXPECT_EQ(l4->validLines(), before);
            }
        }
        EXPECT_GT(l4->validLines(), 0u);
    }
}

/** Every organization runs end-to-end under the unmodified System. */
TEST(L4Registry, EveryOrganizationRunsUnderSystem)
{
    for (const std::string &name : cacheNames()) {
        SCOPED_TRACE(name);
        SystemConfig cfg;
        cfg.num_cores = 2;
        cfg.refs_per_core = 5'000;
        cfg.reference_capacity = 4_MiB;
        cfg.l3.size_bytes = 64_KiB;
        cfg.l4.organization = name;
        cfg.l4.base.capacity = 4_MiB;
        cfg.seed = 3;
        System sys(cfg, std::vector<WorkloadProfile>(
                            2, profileByName("gcc")));
        const RunResult r = sys.run();
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.l4_reads, 0u);
        EXPECT_GE(r.l4_hit_rate, 0.0);
        EXPECT_LE(r.l4_hit_rate, 1.0);
    }
}

} // namespace
} // namespace dice
