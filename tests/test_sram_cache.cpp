/**
 * @file
 * SRAM cache model: hits/misses, LRU replacement, write-back state,
 * payload propagation, and occupancy accounting.
 */

#include <gtest/gtest.h>

#include "cache/sram_cache.hpp"

namespace dice
{
namespace
{

SramCacheConfig
smallConfig(std::uint32_t ways = 2)
{
    SramCacheConfig c;
    c.name = "t";
    c.size_bytes = 64 * 64; // 64 lines
    c.ways = ways;
    c.hit_latency = 4;
    return c;
}

TEST(SramCache, Geometry)
{
    SramCache c(smallConfig(2));
    EXPECT_EQ(c.numSets(), 32u);
    SramCache c8(smallConfig(8));
    EXPECT_EQ(c8.numSets(), 8u);
}

TEST(SramCache, MissThenHit)
{
    SramCache c(smallConfig());
    EXPECT_FALSE(c.access(100, AccessType::Read));
    EXPECT_FALSE(c.install(100, false, 7).has_value());
    EXPECT_TRUE(c.access(100, AccessType::Read));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.payloadOf(100), 7u);
}

TEST(SramCache, WriteMarksDirtyAndUpdatesPayload)
{
    SramCache c(smallConfig());
    c.install(100, false, 1);
    EXPECT_TRUE(c.access(100, AccessType::Write, 2));
    const auto ev = c.invalidate(100);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->payload, 2u);
}

TEST(SramCache, CleanInvalidateReturnsNothing)
{
    SramCache c(smallConfig());
    c.install(100, false, 1);
    EXPECT_FALSE(c.invalidate(100).has_value());
    EXPECT_FALSE(c.contains(100));
}

TEST(SramCache, LruEvictsLeastRecentlyUsed)
{
    SramCache c(smallConfig(2)); // 32 sets, 2 ways
    // Three lines in the same set (set 0): 0, 32, 64.
    c.install(0, false, 10);
    c.install(32, false, 20);
    c.access(0, AccessType::Read); // 0 becomes MRU
    const auto ev = c.install(64, false, 30);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->line, 32u); // LRU victim
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(64));
    EXPECT_FALSE(c.contains(32));
}

TEST(SramCache, DirtyEvictionCarriesPayload)
{
    SramCache c(smallConfig(1));
    c.install(0, true, 99);
    const auto ev = c.install(c.numSets(), false, 1); // same set, new tag
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->line, 0u);
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->payload, 99u);
    EXPECT_EQ(c.dirtyEvictions(), 1u);
}

TEST(SramCache, ReinstallRefreshesInPlace)
{
    SramCache c(smallConfig(1));
    c.install(0, false, 1);
    EXPECT_FALSE(c.install(0, true, 2).has_value());
    const auto ev = c.invalidate(0);
    ASSERT_TRUE(ev.has_value()); // dirty merged in
    EXPECT_EQ(ev->payload, 2u);
}

TEST(SramCache, EvictedLineAddressReconstruction)
{
    SramCache c(smallConfig(1)); // 64 sets... (64 lines, 1 way)
    const LineAddr big = (7ull << 20) | 5; // set 5 with a high tag
    c.install(big, true, 3);
    const auto ev = c.install(big + c.numSets(), false, 4);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->line, big);
}

TEST(SramCache, HitRateAndOccupancy)
{
    SramCache c(smallConfig(2));
    for (LineAddr l = 0; l < 16; ++l)
        c.install(l, false, 0);
    EXPECT_EQ(c.validLines(), 16u);
    for (LineAddr l = 0; l < 16; ++l)
        EXPECT_TRUE(c.access(l, AccessType::Read));
    EXPECT_FALSE(c.access(1000, AccessType::Read));
    EXPECT_NEAR(c.hitRate(), 16.0 / 17.0, 1e-12);
    c.resetStats();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.validLines(), 16u); // contents survive stat reset
}

TEST(SramCache, StatsGroup)
{
    SramCache c(smallConfig());
    c.access(5, AccessType::Read);
    c.install(5, false, 0);
    const StatGroup g = c.stats();
    EXPECT_DOUBLE_EQ(g.get("misses"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("installs"), 1.0);
}

/** Parameterized associativity sweep: LRU order holds at any width. */
class SramCacheWays : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SramCacheWays, FullSetEvictsExactlyInLruOrder)
{
    const std::uint32_t ways = GetParam();
    SramCacheConfig cfg;
    cfg.name = "w";
    cfg.size_bytes = static_cast<std::uint64_t>(ways) * 8 * kLineSize;
    cfg.ways = ways;
    SramCache c(cfg);
    const std::uint32_t sets = c.numSets();

    // Fill one set.
    for (std::uint32_t i = 0; i < ways; ++i)
        c.install(static_cast<LineAddr>(i) * sets, false, i);
    // Touch in reverse so line (ways-1)*sets is LRU... touch order:
    for (std::uint32_t i = 0; i < ways; ++i)
        c.access(static_cast<LineAddr>(i) * sets, AccessType::Read);
    // Now victims should come out in install order 0, 1, 2, ...
    for (std::uint32_t i = 0; i < ways; ++i) {
        const auto ev = c.install(
            static_cast<LineAddr>(ways + i) * sets, false, 0);
        ASSERT_TRUE(ev.has_value());
        EXPECT_EQ(ev->line, static_cast<LineAddr>(i) * sets);
    }
}

INSTANTIATE_TEST_SUITE_P(Ways, SramCacheWays,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace dice
