/**
 * @file
 * Sim-substrate tests: main memory, energy model, and the ROB/MLP
 * core model.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hpp"
#include "sim/energy.hpp"
#include "sim/memory.hpp"

namespace dice
{
namespace
{

TEST(MainMemory, ReadTiming)
{
    MainMemory mem;
    const DramResult r = mem.read(100, 50);
    // Closed row: tRCD + tCAS + 8 beats x 2 cycles.
    EXPECT_EQ(r.done, 50 + 44 + 44 + 16u);
}

TEST(MainMemory, VersionsDefaultToZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.versionOf(42), 0u);
    mem.write(42, 7, 0);
    EXPECT_EQ(mem.versionOf(42), 7u);
    EXPECT_EQ(mem.versionOf(43), 0u);
}

TEST(MainMemory, SequentialLinesHitTheRowBuffer)
{
    MainMemory mem;
    const DramResult a = mem.read(0, 0);
    const DramResult b = mem.read(1, a.done);
    EXPECT_TRUE(b.row_hit);
    const DramResult c = mem.read(32, b.done); // next row group
    EXPECT_FALSE(c.row_hit);
}

TEST(MainMemory, WritesConsumeBandwidth)
{
    MainMemory mem;
    mem.write(1, 1, 0);
    EXPECT_EQ(mem.device().writes(), 1u);
    EXPECT_EQ(mem.device().bytesMoved(), 64u);
}

TEST(Energy, ScalesWithTraffic)
{
    EnergyParams params;
    MainMemory quiet, busy;
    busy.read(0, 0);
    busy.read(100, 0);
    const EnergyBreakdown e_quiet =
        computeEnergy(params, nullptr, quiet.device(), 1000);
    const EnergyBreakdown e_busy =
        computeEnergy(params, nullptr, busy.device(), 1000);
    EXPECT_GT(e_busy.mem_nj, e_quiet.mem_nj);
    EXPECT_DOUBLE_EQ(e_quiet.mem_nj, 0.0);
}

TEST(Energy, BackgroundScalesWithTime)
{
    EnergyParams params;
    MainMemory mem;
    const EnergyBreakdown fast =
        computeEnergy(params, nullptr, mem.device(), 1000);
    const EnergyBreakdown slow =
        computeEnergy(params, nullptr, mem.device(), 2000);
    EXPECT_NEAR(slow.background_nj, 2 * fast.background_nj, 1e-9);
    // Same traffic, double time: EDP more than doubles.
    EXPECT_GT(slow.edp, 2 * fast.edp * 0.999);
}

TEST(Energy, EdpIsEnergyTimesDelay)
{
    EnergyParams params;
    MainMemory mem;
    mem.read(0, 0);
    const EnergyBreakdown e =
        computeEnergy(params, nullptr, mem.device(), 3200);
    EXPECT_NEAR(e.seconds, 1e-6, 1e-12); // 3200 cycles @ 3.2 GHz
    EXPECT_NEAR(e.edp, e.total_nj * e.seconds, 1e-12);
    EXPECT_GT(e.avg_power_w, 0.0);
}

TEST(TraceCore, UnstalledIssueFollowsWidth)
{
    TraceCore core(CoreConfig{4, 192, 8});
    const Cycle t1 = core.prepareIssue(7); // 8 instrs at width 4
    EXPECT_EQ(t1, 2u);
    const Cycle t2 = core.prepareIssue(3); // 4 more
    EXPECT_EQ(t2, 3u);
    EXPECT_EQ(core.instructions(), 12u);
}

TEST(TraceCore, MshrLimitStalls)
{
    TraceCore core(CoreConfig{4, 10000, 2});
    core.prepareIssue(0);
    core.completeLoad(1000);
    core.prepareIssue(0);
    core.completeLoad(2000);
    // Third load: both MSHRs busy; must wait for the first (1000).
    const Cycle t = core.prepareIssue(0);
    EXPECT_GE(t, 1000u);
    EXPECT_LT(t, 2000u);
}

TEST(TraceCore, RobLimitStalls)
{
    TraceCore core(CoreConfig{4, 16, 64});
    core.prepareIssue(0);
    core.completeLoad(5000); // load at instr ~1 blocks retirement
    // 16+ instructions later, the ROB is full of unretired work.
    const Cycle t = core.prepareIssue(20);
    EXPECT_GE(t, 5000u);
}

TEST(TraceCore, FastLoadsDontStall)
{
    TraceCore core(CoreConfig{4, 192, 8});
    for (int i = 0; i < 100; ++i) {
        const Cycle t = core.prepareIssue(3);
        core.completeLoad(t + 4); // L1-like latency
    }
    // 400 instructions at width 4 =~ 100 cycles; tiny load latency
    // never dominates.
    EXPECT_LE(core.cycle(), 120u);
}

TEST(TraceCore, SlowLoadsDominate)
{
    TraceCore core(CoreConfig{4, 192, 8});
    Cycle t = 0;
    for (int i = 0; i < 100; ++i) {
        t = core.prepareIssue(3);
        core.completeLoad(t + 300); // memory-like latency
    }
    core.finish();
    // With 8 MSHRs and 300-cycle loads, throughput is limited to
    // ~8 loads per 300 cycles.
    EXPECT_GE(core.cycle(), 100u / 8 * 300u);
}

TEST(TraceCore, MlpOverlapsMisses)
{
    // Same load latency, more MSHRs -> fewer total cycles.
    TraceCore narrow(CoreConfig{4, 192, 1});
    TraceCore wide(CoreConfig{4, 192, 8});
    for (int i = 0; i < 50; ++i) {
        const Cycle tn = narrow.prepareIssue(3);
        narrow.completeLoad(tn + 200);
        const Cycle tw = wide.prepareIssue(3);
        wide.completeLoad(tw + 200);
    }
    narrow.finish();
    wide.finish();
    EXPECT_LT(wide.cycle() * 3, narrow.cycle());
}

TEST(TraceCore, FinishDrainsOutstanding)
{
    TraceCore core(CoreConfig{4, 192, 8});
    const Cycle t = core.prepareIssue(0);
    core.completeLoad(t + 777);
    core.finish();
    EXPECT_GE(core.cycle(), t + 777);
}

TEST(TraceCore, CompletedLoadsAreNotTracked)
{
    TraceCore core(CoreConfig{4, 192, 1});
    const Cycle t = core.prepareIssue(0);
    core.completeLoad(t); // done == now: never outstanding
    const Cycle t2 = core.prepareIssue(0);
    EXPECT_LE(t2, t + 1);
}

} // namespace
} // namespace dice
