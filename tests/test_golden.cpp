/**
 * @file
 * Golden-result digests of the simulator.
 *
 * One representative (workload, organization) cell per L4 organization is run
 * at a fixed, environment-independent configuration and every field of
 * its RunResult (plus white-box L4 occupancy state) is folded into an
 * FNV-1a digest that must match the value recorded from the seed
 * model. The digests pin the simulation's *bit-exact* behavior: a
 * storage refactor (dense set arrays, open-addressed maps, bounded
 * size memos) must not change a single output bit, and any
 * intentional model change must consciously re-record them.
 *
 * To re-record after an intentional model change, run this binary and
 * copy the "actual" values from the failure messages.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "harness.hpp"
#include "sim/system.hpp"

namespace dice
{
namespace
{

/** FNV-1a over explicitly-fed 64-bit words (stable across builds). */
class Digest
{
public:
    void
    feed(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xFF;
            h_ *= 0x100000001B3ull;
        }
    }

    void
    feed(double v)
    {
        feed(std::bit_cast<std::uint64_t>(v));
    }

    std::uint64_t
    value() const
    {
        return h_;
    }

private:
    std::uint64_t h_ = 0xCBF29CE484222325ull;
};

/**
 * Fixed small-scale configuration. Mirrors the bench defaults but pins
 * the reference budget (the bench harness follows DICE_BENCH_REFS,
 * which would change the digests run-to-run).
 */
SystemConfig
goldenBase()
{
    SystemConfig cfg;
    cfg.num_cores = 8;
    cfg.refs_per_core = 20'000;
    cfg.warmup_refs_per_core = 10'000;
    cfg.reference_capacity = 8_MiB;
    cfg.l3.size_bytes = 64_KiB;
    cfg.l4.base.capacity = 8_MiB;
    cfg.core.mshrs = 16;
    cfg.seed = 2017;
    return cfg;
}

/**
 * Run one cell and digest everything observable. @p replay runs it
 * from an arena-style pre-generated packed stream instead of the live
 * generator; both modes must land on the same recorded digest — the
 * bit-identity contract that lets bench_cache result files be reused
 * across the arena change without a version bump.
 */
std::uint64_t
digestOf(const SystemConfig &cfg, const std::string &workload,
         bool replay = false)
{
    auto profiles = bench::workloadProfiles(workload, cfg.num_cores);
    std::shared_ptr<const TraceSet> set;
    if (replay) {
        set = generateTraceSet(
            profiles, cfg.num_cores, cfg.reference_capacity, cfg.seed,
            cfg.warmup_refs_per_core + cfg.refs_per_core + 1, 2);
    }
    System sys(cfg, std::move(profiles), std::move(set));
    const RunResult r = sys.run();

    Digest d;
    d.feed(r.cycles);
    d.feed(r.instructions);
    d.feed(r.ipc);
    d.feed(r.l3_hit_rate);
    d.feed(r.l4_hit_rate);
    d.feed(r.l4_reads);
    d.feed(r.l4_extra_lines);
    d.feed(r.l4_second_probes);
    d.feed(r.cip_read_accuracy);
    d.feed(r.cip_write_accuracy);
    d.feed(r.mapi_accuracy);
    d.feed(r.frac_invariant);
    d.feed(r.frac_bai);
    d.feed(r.frac_tsi);
    d.feed(r.avg_valid_lines);
    d.feed(r.l4_bytes);
    d.feed(r.mem_bytes);
    d.feed(r.avg_miss_latency);
    d.feed(r.energy.l4_nj);
    d.feed(r.energy.mem_nj);
    d.feed(r.energy.background_nj);
    d.feed(r.energy.total_nj);
    d.feed(r.energy.avg_power_w);
    d.feed(r.energy.edp);
    d.feed(r.energy.seconds);
    d.feed(static_cast<std::uint64_t>(r.core_cycles.size()));
    for (const Cycle c : r.core_cycles)
        d.feed(c);

    // White-box functional state: residency accounting must survive
    // the storage swap too, not just the timing outputs.
    if (DramCache *l4 = sys.l4()) {
        d.feed(l4->validLines());
        if (const auto *comp =
                dynamic_cast<const CompressedDramCache *>(l4))
            d.feed(comp->bytesUsed());
    }
    return d.value();
}

TEST(Golden, NoneMcf)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "none";
    EXPECT_EQ(digestOf(cfg, "mcf"), 542617003086962716ull);
}

TEST(Golden, AlloySoplex)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "alloy";
    EXPECT_EQ(digestOf(cfg, "soplex"), 1711844114032920024ull);
}

TEST(Golden, DiceMcf)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "dice";
    EXPECT_EQ(digestOf(cfg, "mcf"), 2815939932659681256ull);
}

TEST(Golden, TsiOmnetpp)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "comp-tsi";
    EXPECT_EQ(digestOf(cfg, "omnetpp"), 10533505985897564659ull);
}

TEST(Golden, KnlDiceMilc)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "dice";
    cfg.l4.comp.knl_mode = true;
    EXPECT_EQ(digestOf(cfg, "milc"), 6622506124237408117ull);
}

TEST(Golden, SccBcTwi)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "scc";
    EXPECT_EQ(digestOf(cfg, "bc_twi"), 3569515757373235560ull);
}

TEST(Golden, MixDice)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "dice";
    EXPECT_EQ(digestOf(cfg, "mix1"), 17532371284219348020ull);
}

TEST(Golden, BansheeMcf)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "banshee";
    EXPECT_EQ(digestOf(cfg, "mcf"), 4169444247172584837ull);
}

TEST(Golden, ToucheOmnetpp)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "touche";
    EXPECT_EQ(digestOf(cfg, "omnetpp"), 4413007869202590130ull);
}

// Arena replay must reproduce the live digests bit-for-bit, for every
// L4 organization the harness can instantiate.

TEST(GoldenReplay, NoneMcf)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "none";
    EXPECT_EQ(digestOf(cfg, "mcf", true), 542617003086962716ull);
}

TEST(GoldenReplay, AlloySoplex)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "alloy";
    EXPECT_EQ(digestOf(cfg, "soplex", true), 1711844114032920024ull);
}

TEST(GoldenReplay, DiceMcf)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "dice";
    EXPECT_EQ(digestOf(cfg, "mcf", true), 2815939932659681256ull);
}

TEST(GoldenReplay, TsiOmnetpp)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "comp-tsi";
    EXPECT_EQ(digestOf(cfg, "omnetpp", true), 10533505985897564659ull);
}

TEST(GoldenReplay, SccBcTwi)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "scc";
    EXPECT_EQ(digestOf(cfg, "bc_twi", true), 3569515757373235560ull);
}

TEST(GoldenReplay, MixDice)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "dice";
    EXPECT_EQ(digestOf(cfg, "mix1", true), 17532371284219348020ull);
}

TEST(GoldenReplay, BansheeMcf)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "banshee";
    EXPECT_EQ(digestOf(cfg, "mcf", true), 4169444247172584837ull);
}

TEST(GoldenReplay, ToucheOmnetpp)
{
    SystemConfig cfg = goldenBase();
    cfg.l4.organization = "touche";
    EXPECT_EQ(digestOf(cfg, "omnetpp", true), 4413007869202590130ull);
}

} // namespace
} // namespace dice
