/**
 * @file
 * Uncompressed Alloy cache baseline tests: direct-mapped behavior,
 * conflict eviction, writeback generation, and access accounting.
 */

#include <gtest/gtest.h>

#include "core/alloy.hpp"

namespace dice
{
namespace
{

DramCacheConfig
smallL4()
{
    DramCacheConfig c;
    c.capacity = 1_MiB; // 16384 sets
    return c;
}

TEST(Alloy, ReadMissThenHit)
{
    AlloyCache l4(smallL4());
    const L4ReadResult miss = l4.read(100, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.dram_accesses, 1u);
    EXPECT_GT(miss.done, 0u);

    l4.install(100, 7, false, miss.done, true);
    const L4ReadResult hit = l4.read(100, 1000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.payload, 7u);
    EXPECT_FALSE(hit.has_extra); // uncompressed: one line per access
    EXPECT_EQ(l4.readHits(), 1u);
    EXPECT_EQ(l4.readMisses(), 1u);
}

TEST(Alloy, DirectMappedConflictEvicts)
{
    AlloyCache l4(smallL4());
    const std::uint64_t sets = l4.indexer().numSets();
    l4.install(5, 1, false, 0, true);
    EXPECT_TRUE(l4.contains(5));
    l4.install(5 + sets, 2, false, 0, true);
    EXPECT_FALSE(l4.contains(5));
    EXPECT_TRUE(l4.contains(5 + sets));
}

TEST(Alloy, DirtyVictimIsWrittenBack)
{
    AlloyCache l4(smallL4());
    const std::uint64_t sets = l4.indexer().numSets();
    l4.install(5, 11, true, 0, true);
    const L4WriteResult r = l4.install(5 + sets, 2, false, 0, true);
    ASSERT_EQ(r.writebacks.size(), 1u);
    EXPECT_EQ(r.writebacks[0].line, 5u);
    EXPECT_EQ(r.writebacks[0].payload, 11u);
}

TEST(Alloy, CleanVictimSilentlyDropped)
{
    AlloyCache l4(smallL4());
    const std::uint64_t sets = l4.indexer().numSets();
    l4.install(5, 1, false, 0, true);
    const L4WriteResult r = l4.install(5 + sets, 2, false, 0, true);
    EXPECT_TRUE(r.writebacks.empty());
}

TEST(Alloy, WritebackToResidentLineMergesDirty)
{
    AlloyCache l4(smallL4());
    l4.install(5, 1, false, 0, true);
    l4.install(5, 9, true, 0, false); // L3 writeback
    const std::uint64_t sets = l4.indexer().numSets();
    const L4WriteResult r = l4.install(5 + sets, 0, false, 0, true);
    ASSERT_EQ(r.writebacks.size(), 1u);
    EXPECT_EQ(r.writebacks[0].payload, 9u);
}

TEST(Alloy, InstallAfterReadMissSkipsProbe)
{
    AlloyCache l4(smallL4());
    const L4WriteResult fill = l4.install(5, 1, false, 0, true);
    EXPECT_EQ(fill.dram_accesses, 1u); // just the TAD write
    const L4WriteResult wb = l4.install(6, 1, true, 0, false);
    EXPECT_EQ(wb.dram_accesses, 2u); // probe read + write
}

TEST(Alloy, ValidLinesCountsOccupancy)
{
    AlloyCache l4(smallL4());
    EXPECT_EQ(l4.validLines(), 0u);
    l4.install(1, 0, false, 0, true);
    l4.install(2, 0, false, 0, true);
    l4.install(1, 0, false, 0, true); // same set, same line
    EXPECT_EQ(l4.validLines(), 2u);
}

TEST(Alloy, HitRateAndStats)
{
    AlloyCache l4(smallL4());
    l4.install(1, 0, false, 0, true);
    l4.read(1, 0);
    l4.read(2, 0);
    EXPECT_DOUBLE_EQ(l4.hitRate(), 0.5);
    const StatGroup g = l4.stats();
    EXPECT_DOUBLE_EQ(g.get("read_hits"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("valid_lines"), 1.0);
}

TEST(Alloy, ReadConsumes80BytesWrite72)
{
    AlloyCache l4(smallL4());
    l4.read(1, 0);
    EXPECT_EQ(l4.device().bytesMoved(), 80u);
    l4.install(1, 0, false, 0, true);
    EXPECT_EQ(l4.device().bytesMoved(), 152u);
}

TEST(Alloy, IdealConfigFactories)
{
    DramCacheConfig base = smallL4();
    EXPECT_EQ(doubledCapacity(base).capacity, 2_MiB);
    EXPECT_EQ(doubledBandwidth(base).timing.channels, 8u);
    const DramCacheConfig half = halvedLatency(base);
    EXPECT_EQ(half.timing.tCAS, base.timing.tCAS / 2);
    EXPECT_EQ(half.timing.tRAS, base.timing.tRAS / 2);
}

TEST(Alloy, DoubledCapacityHoldsConflictingPair)
{
    AlloyCache small(smallL4());
    AlloyCache big(doubledCapacity(smallL4()));
    const std::uint64_t sets = small.indexer().numSets();
    // These two conflict in the small cache but not in the big one.
    big.install(5, 1, false, 0, true);
    big.install(5 + sets, 2, false, 0, true);
    EXPECT_TRUE(big.contains(5));
    EXPECT_TRUE(big.contains(5 + sets));
}

TEST(Alloy, ResetStatsClearsCountersAndDevice)
{
    AlloyCache l4(smallL4());
    l4.read(1, 0);
    l4.resetStats();
    EXPECT_EQ(l4.readMisses(), 0u);
    EXPECT_EQ(l4.device().bytesMoved(), 0u);
}

} // namespace
} // namespace dice
