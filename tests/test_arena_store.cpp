/**
 * @file
 * Tests of the persistent trace-arena store: on-disk round-trip
 * bit-identity, rejection (and regeneration) of corrupted, truncated,
 * and version-mismatched files, the O_EXCL claim protocol — including
 * stale-claim recovery and a real two-process generate-once race —
 * and the zero-generation guarantee of a warm store.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "workloads/arena_store.hpp"
#include "workloads/profile.hpp"
#include "workloads/trace_arena.hpp"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dice
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the system temp root. */
fs::path
scratchDir(const std::string &tag)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("dice_arena_store." + tag + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<WorkloadProfile>
profilesFor(const std::string &name, std::uint32_t cores)
{
    return std::vector<WorkloadProfile>(cores, profileByName(name));
}

ArenaStoreKey
keyFor(const std::string &workload, std::uint64_t seed = 7)
{
    return ArenaStoreKey{workload, seed, 2, 8_MiB, 2'000};
}

std::shared_ptr<const TraceSet>
makeSet(const std::string &workload, std::uint64_t seed = 7)
{
    return generateTraceSet(profilesFor(workload, 2), 2, 8_MiB, seed,
                            2'000, 2);
}

bool
streamsEqual(const TraceSet &a, const TraceSet &b)
{
    if (a.streams.size() != b.streams.size())
        return false;
    for (std::size_t s = 0; s < a.streams.size(); ++s) {
        const PackedTrace &x = a.streams[s];
        const PackedTrace &y = b.streams[s];
        if (x.size() != y.size())
            return false;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const MemRef mx = x.at(i);
            const MemRef my = y.at(i);
            if (mx.line != my.line || mx.is_write != my.is_write ||
                mx.gap_instr != my.gap_instr || mx.pc != my.pc)
                return false;
        }
    }
    return true;
}

TEST(ArenaStore, RoundTripsBitIdentically)
{
    const fs::path dir = scratchDir("roundtrip");
    ArenaStore store(dir);
    const auto set = makeSet("mcf");
    const ArenaStoreKey key = keyFor("mcf");

    ASSERT_TRUE(store.save(key, *set));
    ASSERT_TRUE(fs::exists(store.resultPath(key)));

    std::shared_ptr<const TraceSet> loaded;
    ASSERT_TRUE(store.load(key, loaded));
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(streamsEqual(*set, *loaded));
    fs::remove_all(dir);
}

TEST(ArenaStore, DistinctKeysGetDistinctFiles)
{
    const fs::path dir = scratchDir("keys");
    ArenaStore store(dir);
    const ArenaStoreKey base = keyFor("mcf");
    ArenaStoreKey seed = base;
    seed.seed = 8;
    ArenaStoreKey cap = base;
    cap.reference_capacity = 16_MiB;
    ArenaStoreKey len = base;
    len.refs_per_core = 4'000;
    ArenaStoreKey cores = base;
    cores.num_cores = 4;

    const std::string stem = ArenaStore::fileStem(base);
    EXPECT_NE(stem, ArenaStore::fileStem(seed));
    EXPECT_NE(stem, ArenaStore::fileStem(cap));
    EXPECT_NE(stem, ArenaStore::fileStem(len));
    EXPECT_NE(stem, ArenaStore::fileStem(cores));
    fs::remove_all(dir);
}

TEST(ArenaStore, RejectsCorruptedTruncatedAndVersionMismatch)
{
    const fs::path dir = scratchDir("reject");
    ArenaStore store(dir);
    const auto set = makeSet("lbm");
    const ArenaStoreKey key = keyFor("lbm");
    ASSERT_TRUE(store.save(key, *set));

    const fs::path path = store.resultPath(key);
    std::ifstream in(path, std::ios::binary);
    std::string good((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(good.size(), 64u);

    const auto rewrite = [&path](const std::string &content) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
    };
    std::shared_ptr<const TraceSet> loaded;

    // Flipped payload byte: checksum mismatch.
    std::string corrupt = good;
    corrupt[good.size() / 2] =
        static_cast<char>(corrupt[good.size() / 2] ^ 0x5A);
    rewrite(corrupt);
    EXPECT_FALSE(store.load(key, loaded));

    // Truncated file: payload size mismatch.
    rewrite(good.substr(0, good.size() / 2));
    EXPECT_FALSE(store.load(key, loaded));

    // Version mismatch (header byte 8 holds the low version byte).
    std::string version = good;
    version[8] = static_cast<char>(version[8] + 1);
    rewrite(version);
    EXPECT_FALSE(store.load(key, loaded));

    // Wrong magic.
    std::string magic = good;
    magic[0] = 'X';
    rewrite(magic);
    EXPECT_FALSE(store.load(key, loaded));

    // Empty file.
    rewrite("");
    EXPECT_FALSE(store.load(key, loaded));

    // A fresh save repairs all of it.
    ASSERT_TRUE(store.save(key, *set));
    ASSERT_TRUE(store.load(key, loaded));
    EXPECT_TRUE(streamsEqual(*set, *loaded));
    fs::remove_all(dir);
}

/** A corrupted spill file must be regenerated through the arena (the
 *  load fails, the miss falls back to generation, counter-verified). */
TEST(ArenaStore, ArenaRegeneratesOverCorruptedSpill)
{
    const fs::path dir = scratchDir("regen");
    TraceArena &arena = TraceArena::instance();
    arena.clear();
    arena.setByteBudget(512_MiB);
    arena.setStoreDirForTest(dir.string());

    const auto profiles = profilesFor("mcf", 2);
    arena.acquire("mcf", 7, 2, 8_MiB, 2'000, profiles, 2);
    EXPECT_EQ(arena.stats().generations, 1u);
    EXPECT_EQ(arena.stats().spills, 1u);

    // Corrupt the spilled file, then force a re-acquire by clearing
    // the resident cache.
    ArenaStore store(dir);
    const fs::path path = store.resultPath(keyFor("mcf"));
    ASSERT_TRUE(fs::exists(path));
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "garbage";
    }
    arena.clear();
    arena.setStoreDirForTest(dir.string());
    arena.acquire("mcf", 7, 2, 8_MiB, 2'000, profiles, 2);
    EXPECT_EQ(arena.stats().generations, 1u);
    EXPECT_EQ(arena.stats().disk_hits, 0u);
    // ... and the repaired spill satisfies the next cold acquire.
    arena.clear();
    arena.setStoreDirForTest(dir.string());
    arena.acquire("mcf", 7, 2, 8_MiB, 2'000, profiles, 2);
    EXPECT_EQ(arena.stats().generations, 0u);
    EXPECT_EQ(arena.stats().disk_hits, 1u);

    arena.setStoreDirForTest("");
    arena.clear();
    fs::remove_all(dir);
}

/** The warm-store contract the CI leg enforces at sweep scale: a
 *  process that finds every stream on disk generates nothing. */
TEST(ArenaStore, WarmStoreServesWithZeroGenerations)
{
    const fs::path dir = scratchDir("warm");
    TraceArena &arena = TraceArena::instance();
    arena.clear();
    arena.setByteBudget(512_MiB);
    arena.setStoreDirForTest(dir.string());

    const auto profiles = profilesFor("milc", 2);
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        arena.acquire("milc", seed, 2, 8_MiB, 2'000, profiles, 2);
    EXPECT_EQ(arena.stats().generations, 3u);
    EXPECT_EQ(arena.stats().spills, 3u);

    // "New process": resident entries dropped, store kept warm.
    arena.clear();
    arena.setStoreDirForTest(dir.string());
    std::vector<std::shared_ptr<const TraceSet>> warm;
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        warm.push_back(
            arena.acquire("milc", seed, 2, 8_MiB, 2'000, profiles, 2));
    EXPECT_EQ(arena.stats().generations, 0u);
    EXPECT_EQ(arena.stats().disk_hits, 3u);

    // Disk-loaded streams are the same bits a fresh generation makes.
    EXPECT_TRUE(streamsEqual(*warm[0], *makeSet("milc", 1)));

    arena.setStoreDirForTest("");
    arena.clear();
    fs::remove_all(dir);
}

#ifndef _WIN32

TEST(ArenaStore, ClaimIsExclusiveAndReleasable)
{
    const fs::path dir = scratchDir("claim");
    ArenaStore store(dir);
    const ArenaStoreKey key = keyFor("mcf");

    ArenaStore::Claim first;
    ASSERT_TRUE(store.tryClaim(key, first));
    ASSERT_TRUE(first.held());

    ArenaStore::Claim second;
    EXPECT_FALSE(store.tryClaim(key, second));
    EXPECT_FALSE(second.held());

    first.release();
    EXPECT_FALSE(first.held());
    ASSERT_TRUE(store.tryClaim(key, second));
    EXPECT_TRUE(second.held());
    second.release();
    fs::remove_all(dir);
}

TEST(ArenaStore, BreaksClaimOfDeadProcess)
{
    const fs::path dir = scratchDir("stale");
    ArenaStore store(dir);
    const ArenaStoreKey key = keyFor("mcf");

    // Forge a same-host claim from a pid that cannot be alive.
    fs::create_directories(dir);
    char host[256] = {0};
    ASSERT_EQ(gethostname(host, sizeof host - 1), 0);
    {
        std::ofstream out(dir / (ArenaStore::fileStem(key) + ".claim"));
        out << "pid 999999999 host " << host << "\n";
    }
    EXPECT_FALSE(store.claimHolderAlive(key));

    // tryClaim must break it and take over.
    ArenaStore::Claim claim;
    EXPECT_TRUE(store.tryClaim(key, claim));
    EXPECT_TRUE(claim.held());
    claim.release();
    fs::remove_all(dir);
}

/**
 * The cross-process exactly-once contract, for real: two forked
 * children race to acquire the same cold key through the same store
 * directory. Exactly one may generate; the other must wait out the
 * claim and load the winner's spill.
 */
TEST(ArenaStore, TwoProcessesGenerateOnce)
{
    const fs::path dir = scratchDir("race");

    const auto child = [&dir]() -> int {
        // Exit code = this child's generation count (0 or 1).
        TraceArena &arena = TraceArena::instance();
        arena.clear();
        arena.setStoreDirForTest(dir.string());
        const auto profiles = profilesFor("mcf", 2);
        const auto set =
            arena.acquire("mcf", 7, 2, 8_MiB, 2'000, profiles, 2);
        if (set == nullptr || set->streams.size() != 2)
            return 77; // sentinel: acquire itself failed
        return static_cast<int>(arena.stats().generations);
    };

    std::vector<pid_t> pids;
    for (int i = 0; i < 2; ++i) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0)
            _exit(child());
        pids.push_back(pid);
    }

    int total_generations = 0;
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_NE(WEXITSTATUS(status), 77);
        total_generations += WEXITSTATUS(status);
    }
    EXPECT_EQ(total_generations, 1);

    // The winner's spill is valid and loadable.
    ArenaStore store(dir);
    std::shared_ptr<const TraceSet> loaded;
    EXPECT_TRUE(store.load(keyFor("mcf"), loaded));
    fs::remove_all(dir);
}

#endif // !_WIN32

} // namespace
} // namespace dice
