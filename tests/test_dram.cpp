/**
 * @file
 * DRAM device timing model: row-buffer state machine, bank occupancy,
 * data-bus contention, and the bandwidth accounting the study turns on.
 */

#include <gtest/gtest.h>

#include "dram/dram.hpp"
#include "dram/timing.hpp"

namespace dice
{
namespace
{

DramTiming
tinyTiming()
{
    DramTiming t = DramTiming::stackedL4();
    return t;
}

TEST(DramTiming, Presets)
{
    const DramTiming l4 = DramTiming::stackedL4();
    EXPECT_EQ(l4.channels, 4u);
    EXPECT_EQ(l4.bus_bytes_per_beat, 16u);

    const DramTiming mem = DramTiming::mainMemoryDdr();
    EXPECT_EQ(mem.channels, 1u);
    EXPECT_EQ(mem.bus_bytes_per_beat, 8u);

    // Paper: stacked bandwidth = 8x DDR (4x channels, 2x bus width).
    EXPECT_DOUBLE_EQ(l4.peakBytesPerCycle() / mem.peakBytesPerCycle(),
                     8.0);
}

TEST(DramTiming, TransferCycles)
{
    const DramTiming l4 = DramTiming::stackedL4();
    // One 80-B TAD access = 5 beats x 2 cycles.
    EXPECT_EQ(l4.beatsFor(80), 5u);
    EXPECT_EQ(l4.transferCycles(80), 10u);
    // 72-B write = 5 beats (rounded up).
    EXPECT_EQ(l4.beatsFor(72), 5u);

    const DramTiming mem = DramTiming::mainMemoryDdr();
    EXPECT_EQ(mem.beatsFor(64), 8u);
    EXPECT_EQ(mem.transferCycles(64), 16u);
}

TEST(DramDevice, FirstAccessIsRowClosed)
{
    DramDevice dev("d", tinyTiming());
    const DramResult r = dev.access({0, 0, 5}, 80, 100, false);
    // tRCD + tCAS then 5 beats.
    EXPECT_EQ(r.done, 100 + 44 + 44 + 10u);
    EXPECT_FALSE(r.row_hit);
    EXPECT_EQ(dev.activations(), 1u);
}

TEST(DramDevice, SecondAccessSameRowIsRowHit)
{
    DramDevice dev("d", tinyTiming());
    const DramResult r1 = dev.access({0, 0, 5}, 80, 0, false);
    const DramResult r2 = dev.access({0, 0, 5}, 80, r1.done, false);
    EXPECT_TRUE(r2.row_hit);
    EXPECT_EQ(r2.done, r1.done + 44 + 10);
    EXPECT_EQ(dev.rowHits(), 1u);
}

TEST(DramDevice, RowConflictPaysPrechargeAndRas)
{
    DramDevice dev("d", tinyTiming());
    const DramResult r1 = dev.access({0, 0, 5}, 80, 0, false);
    const DramResult r2 = dev.access({0, 0, 9}, 80, r1.done, false);
    EXPECT_FALSE(r2.row_hit);
    EXPECT_EQ(dev.rowConflicts(), 1u);
    // tRAS from the first activation (cycle 0) is 112, already
    // elapsed by r1.done (98); so precharge starts at r1.done.
    EXPECT_EQ(r2.done, std::max<Cycle>(r1.done, 112) + 44 + 44 + 44 + 10);
}

TEST(DramDevice, DifferentBanksOverlap)
{
    DramDevice dev("d", tinyTiming());
    const DramResult a = dev.access({0, 0, 1}, 80, 0, false);
    const DramResult b = dev.access({0, 1, 1}, 80, 0, false);
    // Same access latency, but the shared data bus serializes beats.
    EXPECT_EQ(a.done, 98u);
    EXPECT_EQ(b.done, a.done + 10);
}

TEST(DramDevice, DifferentChannelsFullyOverlap)
{
    DramDevice dev("d", tinyTiming());
    const DramResult a = dev.access({0, 0, 1}, 80, 0, false);
    const DramResult b = dev.access({1, 0, 1}, 80, 0, false);
    EXPECT_EQ(a.done, b.done);
}

TEST(DramDevice, BusSerializesBackToBackRowHits)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, false); // open the row
    Cycle prev = 0;
    for (int i = 0; i < 10; ++i) {
        const DramResult r = dev.access({0, 0, 1}, 80, 0, false);
        EXPECT_GT(r.done, prev);
        prev = r.done;
    }
    // Steady state: one 10-cycle transfer per access on the bus.
    // (Bank ready also advances; the point is monotone serialization.)
    EXPECT_GE(dev.busBusyCycles(), 11u * 10u);
}

TEST(DramDevice, CountsReadsWritesBytes)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, false);
    dev.access({0, 0, 1}, 72, 0, true);
    EXPECT_EQ(dev.reads(), 1u);
    EXPECT_EQ(dev.writes(), 1u);
    EXPECT_EQ(dev.bytesMoved(), 152u);
}

TEST(DramDevice, UtilizationFractionOfPeak)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, false);
    // 10 busy cycles on one of 4 channels over 100 cycles.
    EXPECT_DOUBLE_EQ(dev.busUtilization(100), 10.0 / 400.0);
    EXPECT_DOUBLE_EQ(dev.busUtilization(0), 0.0);
}

TEST(DramDevice, ResetClearsStateAndStats)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, false);
    dev.access({0, 0, 1}, 80, 200, false);
    EXPECT_EQ(dev.rowHits(), 1u);
    dev.reset();
    EXPECT_EQ(dev.rowHits(), 0u);
    EXPECT_EQ(dev.reads(), 0u);
    const DramResult r = dev.access({0, 0, 1}, 80, 0, false);
    EXPECT_FALSE(r.row_hit); // rows closed again
}

TEST(DramDevice, FirstDataBeforeDone)
{
    DramDevice dev("d", tinyTiming());
    const DramResult r = dev.access({0, 0, 1}, 80, 0, false);
    EXPECT_LT(r.first_data, r.done);
}

TEST(DramDevice, StatsGroupExposesCounters)
{
    DramDevice dev("dev-x", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, false);
    const StatGroup g = dev.stats();
    EXPECT_DOUBLE_EQ(g.get("reads"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("bytes_moved"), 80.0);
}

TEST(DramDevice, HalfLatencyPresetSpeedsAccess)
{
    DramTiming fast = tinyTiming();
    fast.tCAS /= 2;
    fast.tRCD /= 2;
    fast.tRP /= 2;
    fast.tRAS /= 2;
    DramDevice slow("s", tinyTiming()), quick("q", fast);
    const Cycle ds = slow.access({0, 0, 1}, 80, 0, false).done;
    const Cycle dq = quick.access({0, 0, 1}, 80, 0, false).done;
    EXPECT_LT(dq, ds);
}

TEST(DramDevice, PostedWriteDoesNotBlockTheBank)
{
    DramDevice dev("d", tinyTiming());
    // A write posted far in the future must not delay a demand read
    // issued earlier in simulated time (read-priority controller).
    dev.access({0, 0, 1}, 72, 100000, AccessKind::PostedWrite);
    const DramResult r =
        dev.access({0, 0, 1}, 80, 0, AccessKind::DemandRead);
    EXPECT_EQ(r.done, 0 + 44 + 44 + 10u);
}

TEST(DramDevice, PostedReadIsWriteQueueTraffic)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, AccessKind::PostedRead);
    EXPECT_EQ(dev.postedReads(), 1u);
    EXPECT_EQ(dev.reads(), 0u);
    EXPECT_EQ(dev.bytesMoved(), 80u);
    // It charges bus-busy cycles (bandwidth) like a write.
    EXPECT_EQ(dev.busBusyCycles(), 10u);
}

TEST(DramDevice, BacklogDrainsIntoIdleSlotsWithoutDelayingReads)
{
    DramDevice dev("d", tinyTiming());
    // A couple of posted writes fit entirely in the idle time before
    // the read's data slot (tRCD+tCAS = 88 cycles of idle bus).
    dev.access({0, 0, 1}, 72, 0, AccessKind::PostedWrite);
    dev.access({0, 0, 1}, 72, 0, AccessKind::PostedWrite);
    const DramResult r =
        dev.access({0, 1, 1}, 80, 0, AccessKind::DemandRead);
    EXPECT_EQ(r.done, 44 + 44 + 10u); // read undisturbed
}

TEST(DramDevice, BacklogBeyondWatermarkStallsReads)
{
    DramTiming t = tinyTiming();
    t.write_queue_cycles = 40; // tiny queue so it overflows fast
    DramDevice dev("d", t);
    for (int i = 0; i < 30; ++i)
        dev.access({0, 0, 1}, 72, 0, AccessKind::PostedWrite);
    // 300 cycles of backlog against a 40-cycle watermark: the forced
    // drain lands ahead of the read and delays its data.
    const DramResult r =
        dev.access({0, 1, 1}, 80, 0, AccessKind::DemandRead);
    EXPECT_GT(r.done, 44u + 44 + 10);
}

TEST(DramDevice, RowHitsPipelineAtBurstRate)
{
    // Open-row column commands must pipeline (tCCD), not serialize at
    // full CAS latency: the steady-state gap between back-to-back
    // row hits equals the transfer time.
    DramDevice dev("d", tinyTiming());
    const DramResult first =
        dev.access({0, 0, 1}, 80, 0, AccessKind::DemandRead);
    const DramResult second =
        dev.access({0, 0, 1}, 80, 0, AccessKind::DemandRead);
    EXPECT_EQ(second.done - first.done, 10u);
}

TEST(DramDevice, BoolOverloadMapsToPostedWriteAndDemandRead)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 72, 0, true);
    dev.access({0, 0, 1}, 80, 0, false);
    EXPECT_EQ(dev.writes(), 1u);
    EXPECT_EQ(dev.reads(), 1u);
}

TEST(DramDevice, AvgReadLatencyTracksQueueing)
{
    DramDevice dev("d", tinyTiming());
    dev.access({0, 0, 1}, 80, 0, AccessKind::DemandRead);
    const double unloaded = dev.avgReadLatency();
    // Pile up ten more back-to-back reads: the average grows.
    for (int i = 0; i < 10; ++i)
        dev.access({0, 0, 1}, 80, 0, AccessKind::DemandRead);
    EXPECT_GT(dev.avgReadLatency(), unloaded);
}

} // namespace
} // namespace dice
