/**
 * @file
 * SCC-on-DRAM-cache baseline tests: associative hit behavior and the
 * four-access-per-request bandwidth cost (paper Section 7.3).
 */

#include <gtest/gtest.h>

#include "core/scc.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

class FixedClassSource : public LineDataSource
{
  public:
    explicit FixedClassSource(CompClass cls) : cls_(cls) {}

    Line
    bytes(LineAddr line, std::uint64_t version) const override
    {
        return DataGenerator::synthesize(cls_, line, version);
    }

  private:
    CompClass cls_;
};

DramCacheConfig
smallL4()
{
    DramCacheConfig c;
    c.capacity = 1_MiB;
    return c;
}

TEST(Scc, MissThenHit)
{
    FixedClassSource src(CompClass::Int);
    SccCache l4(smallL4(), src);
    EXPECT_FALSE(l4.read(100, 0).hit);
    l4.install(100, 7, false, 0, true);
    const L4ReadResult r = l4.read(100, 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.payload, 7u);
}

TEST(Scc, ReadHitCostsFourAccesses)
{
    FixedClassSource src(CompClass::Int);
    SccCache l4(smallL4(), src);
    l4.install(100, 7, false, 0, true);
    const L4ReadResult r = l4.read(100, 0);
    EXPECT_EQ(r.dram_accesses, 4u); // 3 tag probes + 1 data access
}

TEST(Scc, ReadMissCostsThreeTagProbes)
{
    FixedClassSource src(CompClass::Int);
    SccCache l4(smallL4(), src);
    const L4ReadResult r = l4.read(100, 0);
    EXPECT_EQ(r.dram_accesses, 3u);
}

TEST(Scc, DataAccessSerializesAfterTags)
{
    FixedClassSource src(CompClass::Int);
    SccCache l4(smallL4(), src);
    l4.install(100, 7, false, 0, true);
    l4.device().reset();
    const L4ReadResult hit = l4.read(100, 0);
    // Data cannot start until the slowest tag probe completed, so the
    // hit takes longer than a single-probe organization would.
    const Cycle one_probe =
        44 + 44 + l4.device().timing().transferCycles(72);
    EXPECT_GT(hit.done, one_probe);
}

TEST(Scc, AssociativityAbsorbsConflicts)
{
    // Superblock-indexed 8-way: lines that thrash a direct-mapped
    // cache co-reside here.
    FixedClassSource src(CompClass::Rand);
    SccCache l4(smallL4(), src);
    const std::uint64_t stride = 4 * (1_MiB / kLineSize / 8); // set period
    for (int i = 0; i < 4; ++i)
        l4.install(7 + stride * static_cast<std::uint64_t>(i), i, false,
                   0, true);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(
            l4.contains(7 + stride * static_cast<std::uint64_t>(i)));
    }
}

TEST(Scc, DirtyEvictionWritesBack)
{
    FixedClassSource src(CompClass::Rand);
    SccCache l4(smallL4(), src);
    const std::uint64_t stride = 4 * (1_MiB / kLineSize / 8);
    // Overfill one set's byte budget (8 x 72 B / 68 B-cost lines -> 8).
    std::size_t wrote_back = 0;
    for (int i = 0; i < 12; ++i) {
        const L4WriteResult r = l4.install(
            7 + stride * static_cast<std::uint64_t>(i), i, true, 0,
            true);
        wrote_back += r.writebacks.size();
    }
    EXPECT_GT(wrote_back, 0u);
}

TEST(Scc, CompressionRaisesEffectiveAssociativity)
{
    FixedClassSource src(CompClass::Ptr); // 16-B lines
    SccCache l4(smallL4(), src);
    const std::uint64_t stride = 4 * (1_MiB / kLineSize / 8);
    for (int i = 0; i < 16; ++i)
        l4.install(7 + stride * static_cast<std::uint64_t>(i), i, false,
                   0, true);
    std::uint64_t resident = 0;
    for (int i = 0; i < 16; ++i)
        resident +=
            l4.contains(7 + stride * static_cast<std::uint64_t>(i));
    EXPECT_GE(resident, 16u); // all fit compressed (budget 576 B)
}

TEST(Scc, OrganizationName)
{
    FixedClassSource src(CompClass::Int);
    SccCache l4(smallL4(), src);
    EXPECT_STREQ(l4.organization(), "scc");
}

} // namespace
} // namespace dice
