/**
 * @file
 * SIMD bit-identity enforcement (see common/simd.hpp's contract):
 *
 *  1. Kernel fuzz: every dispatched scan kernel against its scalar
 *     reference, under both DICE_FORCE_SCALAR settings.
 *  2. TadSet model check: randomized operation sequences against a
 *     plain array-of-structs reference model, with auditStorage() and
 *     byte accounting re-verified after every eviction (the per-set
 *     byte invariant regression pin).
 *  3. Codec batch fuzz: the batched compressedSizeBytes(span) route
 *     against both the single-line route and compress().sizeBytes(),
 *     for every codec.
 *
 * Everything here runs twice — wide kernels active and forced scalar —
 * so a divergence is attributed to the kernel, not the model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "compress/bdi.hpp"
#include "compress/cpack.hpp"
#include "compress/fpc.hpp"
#include "compress/hybrid.hpp"
#include "compress/zca.hpp"
#include "core/tad.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

/** Deterministic splitmix-style fuzz source. */
class Fuzz
{
  public:
    explicit Fuzz(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ += 0x9E3779B97F4A7C15ull;
        return mix64(state_);
    }

    /** Uniform in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    bool chance(std::uint32_t percent) { return below(100) < percent; }

  private:
    std::uint64_t state_;
};

/** Runs @p body under both force-scalar settings, restoring the env
 *  default afterwards. */
template <typename F>
void
underBothBackends(F body)
{
    simd::setForceScalarForTest(false);
    body(false);
    simd::setForceScalarForTest(true);
    body(true);
    simd::setForceScalarForTest(false);
}

// ---------------------------------------------------------------------
// 1. Kernel fuzz: dispatched vs scalar reference.
// ---------------------------------------------------------------------

TEST(SimdParity, FindAndMatchMaskMatchScalar)
{
    underBothBackends([](bool) {
        Fuzz fz(0xF1AD);
        for (int round = 0; round < 400; ++round) {
            const std::size_t n = fz.below(65); // mask kernels cap at 64
            std::vector<std::uint64_t> v(n);
            // A tiny alphabet forces frequent (and multiple) matches.
            for (auto &x : v)
                x = fz.below(8);
            const std::uint64_t key = fz.below(10);
            const std::size_t start = n != 0 ? fz.below(n + 1) : 0;

            EXPECT_EQ(simd::findU64(v.data(), n, key, start),
                      simd::scalar::findU64(v.data(), n, key, start));
            EXPECT_EQ(simd::matchMaskU64(v.data(), n, key),
                      simd::scalar::matchMaskU64(v.data(), n, key));
        }
    });
}

TEST(SimdParity, MinIndexMatchesScalarIncludingTiesAndSkip)
{
    underBothBackends([](bool) {
        Fuzz fz(0x317D);
        for (int round = 0; round < 400; ++round) {
            const std::size_t n = fz.below(40);
            std::vector<std::uint64_t> v(n);
            for (auto &x : v) {
                // Duplicated small values make first-index tie-breaks
                // load-bearing; occasional UINT64_MAX hits the
                // sentinel path.
                x = fz.chance(10) ? ~std::uint64_t{0} : fz.below(6);
            }
            // skip in range, out of range, and == n.
            const std::size_t skip = fz.below(n + 3);
            EXPECT_EQ(simd::minIndexU64(v.data(), n, skip),
                      simd::scalar::minIndexU64(v.data(), n, skip))
                << "n=" << n << " skip=" << skip;
        }
    });
}

TEST(SimdParity, SumAndAllZeroMatchScalar)
{
    underBothBackends([](bool) {
        Fuzz fz(0x50FA);
        for (int round = 0; round < 400; ++round) {
            const std::size_t n = fz.below(100);
            std::vector<std::uint16_t> v(n);
            for (auto &x : v)
                x = static_cast<std::uint16_t>(fz.next());
            EXPECT_EQ(simd::sumU16(v.data(), n),
                      simd::scalar::sumU16(v.data(), n));

            std::vector<std::uint8_t> bytes(fz.below(200), 0);
            if (!bytes.empty() && fz.chance(60))
                bytes[fz.below(bytes.size())] =
                    static_cast<std::uint8_t>(1 + fz.below(255));
            EXPECT_EQ(
                simd::allZero(bytes.data(), bytes.size()),
                simd::scalar::allZero(bytes.data(), bytes.size()));
        }
    });
}

TEST(SimdParity, DeltasFitMatchesScalar)
{
    underBothBackends([](bool) {
        Fuzz fz(0xDE17A);
        const std::uint32_t widths[] = {8, 16, 32};
        for (int round = 0; round < 600; ++round) {
            const std::uint32_t n = 4 * (1 + fz.below(4)); // 4..16
            const std::uint32_t bits = widths[fz.below(3)];
            std::vector<std::int64_t> elems(n);
            for (auto &e : elems) {
                // Mix immediates, near-base clusters, and outliers so
                // both accept and reject paths fire.
                switch (fz.below(3)) {
                  case 0:
                    e = static_cast<std::int64_t>(fz.below(100)) - 50;
                    break;
                  case 1:
                    e = 1'000'000 +
                        static_cast<std::int64_t>(fz.below(300)) - 150;
                    break;
                  default:
                    e = static_cast<std::int64_t>(fz.next());
                }
            }
            EXPECT_EQ(simd::deltasFitI64(elems.data(), n, bits),
                      simd::scalar::deltasFitI64(elems.data(), n, bits))
                << "n=" << n << " bits=" << bits;
        }
    });
}

// ---------------------------------------------------------------------
// 2. TadSet vs array-of-structs reference model.
// ---------------------------------------------------------------------

/** Transparent reference implementation of TadSet's contract. */
class RefTadSet
{
  public:
    RefTadSet(std::uint32_t budget, std::uint32_t max_lines,
              std::uint32_t tag_bytes)
        : budget_(budget), max_lines_(max_lines), tag_bytes_(tag_bytes)
    {
    }

    struct Item
    {
        std::uint64_t key;
        std::uint64_t lru;
        std::uint64_t payload[2];
        std::uint32_t data_bytes;
        bool pair;
        bool valid[2];
        bool dirty[2];
        bool bai;
        bool odd; // singles: line's low bit
    };

    std::uint32_t
    bytesUsed() const
    {
        std::uint32_t b = 0;
        for (const Item &it : items_)
            b += tag_bytes_ + it.data_bytes;
        return b;
    }

    std::uint32_t
    lineCount() const
    {
        std::uint32_t l = 0;
        for (const Item &it : items_)
            l += (it.valid[0] ? 1 : 0) + (it.valid[1] ? 1 : 0);
        return l;
    }

    std::uint32_t itemCount() const
    {
        return static_cast<std::uint32_t>(items_.size());
    }

    bool
    fits(std::uint32_t extra_data, std::uint32_t extra_lines) const
    {
        return bytesUsed() + tag_bytes_ + extra_data <= budget_ &&
               lineCount() + extra_lines <= max_lines_;
    }

    TadLookup
    lookup(LineAddr line) const
    {
        TadLookup res;
        const std::size_t it = holderOf(line);
        if (it == items_.size())
            return res;
        const Item &item = items_[it];
        const std::uint32_t slot =
            item.pair ? static_cast<std::uint32_t>(line & 1) : 0u;
        res.found = true;
        res.item = static_cast<std::uint32_t>(it);
        res.dirty = item.dirty[slot];
        res.bai = item.bai;
        res.in_pair = item.pair;
        res.payload = item.payload[slot];
        const std::size_t nb = holderOf(line ^ 1);
        if (nb != items_.size()) {
            const Item &nitem = items_[nb];
            const std::uint32_t nslot =
                nitem.pair ? static_cast<std::uint32_t>(~line & 1) : 0u;
            res.neighbor_present = true;
            res.neighbor_payload = nitem.payload[nslot];
        }
        return res;
    }

    void
    touch(LineAddr line, std::uint64_t stamp)
    {
        const std::size_t it = holderOf(line);
        if (it != items_.size())
            items_[it].lru = stamp;
    }

    bool
    markDirty(LineAddr line, std::uint64_t payload)
    {
        const std::size_t it = holderOf(line);
        if (it == items_.size())
            return false;
        Item &item = items_[it];
        const std::uint32_t slot =
            item.pair ? static_cast<std::uint32_t>(line & 1) : 0u;
        item.dirty[slot] = true;
        item.payload[slot] = payload;
        return true;
    }

    std::optional<EvictedLine>
    remove(LineAddr line, std::uint32_t remaining_bytes)
    {
        const std::size_t i = holderOf(line);
        if (i == items_.size())
            return std::nullopt;
        Item &item = items_[i];
        std::optional<EvictedLine> out;
        if (!item.pair) {
            if (item.dirty[0])
                out = EvictedLine{line, true, item.payload[0]};
            items_.erase(items_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            return out;
        }
        const auto slot = static_cast<std::uint32_t>(line & 1);
        if (item.dirty[slot])
            out = EvictedLine{line, true, item.payload[slot]};
        item.valid[slot] = false;
        item.dirty[slot] = false;
        const std::uint32_t other = slot ^ 1u;
        if (!item.valid[other]) {
            items_.erase(items_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            return out;
        }
        // Pair shrinks to a single holding the survivor.
        Item single = item;
        single.pair = false;
        single.odd = other != 0;
        single.valid[0] = true;
        single.valid[1] = false;
        single.dirty[0] = item.dirty[other];
        single.dirty[1] = false;
        single.payload[0] = item.payload[other];
        single.payload[1] = 0;
        single.data_bytes = remaining_bytes;
        items_[i] = single;
        return out;
    }

    bool
    evictLru(LineAddr protect, WritebackList &writebacks)
    {
        // The one unevictable item: first index whose key matches
        // protect and that is a pair or actually holds protect.
        std::size_t skip = items_.size();
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (items_[i].key != (protect >> 1))
                continue;
            if (items_[i].pair || holds(items_[i], protect)) {
                skip = i;
                break;
            }
        }
        std::size_t victim = items_.size();
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i == skip)
                continue;
            if (victim == items_.size() ||
                items_[i].lru < items_[victim].lru)
                victim = i;
        }
        if (victim == items_.size())
            return false;
        const Item &item = items_[victim];
        for (std::uint32_t slot = 0; slot < 2; ++slot) {
            if (item.valid[slot] && item.dirty[slot]) {
                writebacks.push_back(EvictedLine{
                    baseOf(item) | slot, true, item.payload[slot]});
            }
        }
        items_.erase(items_.begin() +
                     static_cast<std::ptrdiff_t>(victim));
        return true;
    }

    void
    insertSingle(LineAddr line, std::uint32_t data_bytes, bool dirty,
                 std::uint64_t payload, bool bai, std::uint64_t stamp)
    {
        Item it{};
        it.key = line >> 1;
        it.lru = stamp;
        it.payload[0] = payload;
        it.data_bytes = data_bytes;
        it.valid[0] = true;
        it.dirty[0] = dirty;
        it.bai = bai;
        it.odd = (line & 1) != 0;
        items_.push_back(it);
    }

    void
    insertPair(LineAddr base, std::uint32_t data_bytes, bool dirty0,
               std::uint64_t payload0, bool dirty1,
               std::uint64_t payload1, bool bai, std::uint64_t stamp)
    {
        Item it{};
        it.key = base >> 1;
        it.lru = stamp;
        it.payload[0] = payload0;
        it.payload[1] = payload1;
        it.data_bytes = data_bytes;
        it.pair = true;
        it.valid[0] = it.valid[1] = true;
        it.dirty[0] = dirty0;
        it.dirty[1] = dirty1;
        it.bai = bai;
        items_.push_back(it);
    }

    /** Data bytes of the item holding @p line (0 when absent). */
    std::uint32_t
    dataBytesOf(LineAddr line) const
    {
        const std::size_t it = holderOf(line);
        return it != items_.size() ? items_[it].data_bytes : 0;
    }

  private:
    static bool
    holds(const Item &it, LineAddr line)
    {
        if (it.key != (line >> 1))
            return false;
        if (it.pair)
            return it.valid[line & 1];
        return it.valid[0] && (it.odd == ((line & 1) != 0));
    }

    static LineAddr
    baseOf(const Item &it)
    {
        return (it.key << 1) | (it.odd ? 1 : 0);
    }

    std::size_t
    holderOf(LineAddr line) const
    {
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (holds(items_[i], line))
                return i;
        }
        return items_.size();
    }

    std::uint32_t budget_;
    std::uint32_t max_lines_;
    std::uint32_t tag_bytes_;
    std::vector<Item> items_;
};

void
expectSameLookup(const TadLookup &a, const TadLookup &b, LineAddr line)
{
    EXPECT_EQ(a.found, b.found) << "line " << line;
    if (!a.found || !b.found)
        return;
    EXPECT_EQ(a.dirty, b.dirty) << "line " << line;
    EXPECT_EQ(a.bai, b.bai) << "line " << line;
    EXPECT_EQ(a.in_pair, b.in_pair) << "line " << line;
    EXPECT_EQ(a.payload, b.payload) << "line " << line;
    EXPECT_EQ(a.neighbor_present, b.neighbor_present) << "line " << line;
    EXPECT_EQ(a.neighbor_payload, b.neighbor_payload) << "line " << line;
    EXPECT_EQ(a.item, b.item) << "line " << line;
}

void
expectSameEviction(const std::optional<EvictedLine> &a,
                   const std::optional<EvictedLine> &b)
{
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a)
        return;
    EXPECT_EQ(a->line, b->line);
    EXPECT_EQ(a->dirty, b->dirty);
    EXPECT_EQ(a->payload, b->payload);
}

/**
 * Random operation soup over one (set, model) pair. A small address
 * universe guarantees key collisions, pair/single interactions, and
 * constant eviction pressure.
 */
void
fuzzTadSetAgainstModel(std::uint32_t budget, std::uint32_t max_lines,
                       std::uint32_t tag_bytes, std::uint64_t seed)
{
    TadSet set(budget, max_lines, tag_bytes);
    RefTadSet model(budget, max_lines, tag_bytes);
    Fuzz fz(seed);
    std::uint64_t stamp = 0;
    WritebackList wb_set, wb_model;

    for (int op = 0; op < 3000; ++op) {
        const LineAddr line = fz.below(24); // 12 keys
        switch (fz.below(6)) {
          case 0: { // single install, cache-style make-room first
            const auto data =
                static_cast<std::uint32_t>(fz.below(65));
            set.remove(line, 0);
            model.remove(line, 0);
            bool ok = true;
            while (!set.fits(data, 1)) {
                wb_set.clear();
                wb_model.clear();
                const bool a = set.evictLru(line, wb_set);
                const bool b = model.evictLru(line, wb_model);
                ASSERT_EQ(a, b);
                ASSERT_EQ(wb_set.size(), wb_model.size());
                if (!a) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
            const std::uint64_t payload = fz.next();
            const bool dirty = fz.chance(40);
            const bool bai = fz.chance(30);
            ++stamp;
            set.insertSingle(line, data, dirty, payload, bai, stamp);
            model.insertSingle(line, data, dirty, payload, bai, stamp);
            break;
          }
          case 1: { // pair install over an even base
            const LineAddr base = line & ~LineAddr{1};
            const auto data =
                static_cast<std::uint32_t>(fz.below(129));
            set.remove(base, 0);
            model.remove(base, 0);
            set.remove(base | 1, 0);
            model.remove(base | 1, 0);
            bool ok = true;
            while (!set.fits(data, 2)) {
                wb_set.clear();
                wb_model.clear();
                const bool a = set.evictLru(base, wb_set);
                const bool b = model.evictLru(base, wb_model);
                ASSERT_EQ(a, b);
                if (!a) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                break;
            const std::uint64_t p0 = fz.next(), p1 = fz.next();
            const bool d0 = fz.chance(40), d1 = fz.chance(40);
            const bool bai = fz.chance(30);
            ++stamp;
            set.insertPair(base, data, d0, p0, d1, p1, bai, stamp);
            model.insertPair(base, data, d0, p0, d1, p1, bai, stamp);
            break;
          }
          case 2: { // removal (pairs shrink to the survivor's size)
            const std::uint32_t cur = model.dataBytesOf(line);
            const auto remaining = static_cast<std::uint32_t>(
                cur != 0 ? fz.below(cur + 1) : 0);
            expectSameEviction(set.remove(line, remaining),
                               model.remove(line, remaining));
            break;
          }
          case 3: { // LRU eviction under protection
            wb_set.clear();
            wb_model.clear();
            const bool a = set.evictLru(line, wb_set);
            const bool b = model.evictLru(line, wb_model);
            ASSERT_EQ(a, b);
            ASSERT_EQ(wb_set.size(), wb_model.size());
            for (std::size_t i = 0; i < wb_set.size(); ++i) {
                EXPECT_EQ(wb_set[i].line, wb_model[i].line);
                EXPECT_EQ(wb_set[i].dirty, wb_model[i].dirty);
                EXPECT_EQ(wb_set[i].payload, wb_model[i].payload);
            }
            // The regression this pins: eviction must leave the
            // incremental byte/line accounting exactly consistent
            // with the planes.
            ASSERT_TRUE(set.auditStorage());
            break;
          }
          case 4: { // LRU touch
            ++stamp;
            set.touch(line, stamp);
            model.touch(line, stamp);
            break;
          }
          default: { // dirty-mark with payload replacement
            const std::uint64_t payload = fz.next();
            EXPECT_EQ(set.markDirty(line, payload),
                      model.markDirty(line, payload));
            break;
          }
        }

        expectSameLookup(set.lookup(line), model.lookup(line), line);
        EXPECT_EQ(set.bytesUsed(), model.bytesUsed());
        EXPECT_EQ(set.lineCount(), model.lineCount());
        EXPECT_EQ(set.itemCount(), model.itemCount());
        if (op % 64 == 0) {
            ASSERT_TRUE(set.auditStorage());
            for (LineAddr probe = 0; probe < 24; ++probe) {
                expectSameLookup(set.lookup(probe),
                                 model.lookup(probe), probe);
            }
        }
    }
    ASSERT_TRUE(set.auditStorage());
}

TEST(TadSetModel, RandomOpsMatchReferenceModel)
{
    underBothBackends([](bool scalar) {
        const std::uint64_t base_seed = scalar ? 0x5CA1A4 : 0x51D4;
        // DICE TAD geometry, Alloy tag pricing, and a wide SCC-like
        // set so every capacity()/plane-offset case is exercised.
        fuzzTadSetAgainstModel(kTadSetBytes, kTadMaxLines, kTadTagBytes,
                               base_seed);
        fuzzTadSetAgainstModel(kTadSetBytes, kTadMaxLines,
                               kAlloyTagBytes, base_seed + 1);
        fuzzTadSetAgainstModel(4 * kTadSetBytes, 32, kAlloyTagBytes,
                               base_seed + 2);
    });
}

// ---------------------------------------------------------------------
// 3. Codec batched sizing vs single-line route vs compress().
// ---------------------------------------------------------------------

Line
randomLine(Fuzz &fz)
{
    Line line;
    switch (fz.below(4)) {
      case 0: { // synthesized class: hits real FPC/BDI encodings
        constexpr CompClass kClasses[] = {
            CompClass::Zero, CompClass::Ptr,  CompClass::Int,
            CompClass::C36,  CompClass::Half, CompClass::Rand,
        };
        return DataGenerator::synthesize(kClasses[fz.below(6)],
                                         fz.below(1 << 20), fz.next());
      }
      case 1: // random bytes (usually incompressible)
        for (auto &b : line)
            b = static_cast<std::uint8_t>(fz.next());
        return line;
      case 2: // all zero with occasional single set byte
        line.fill(0);
        if (fz.chance(50))
            line[fz.below(kLineSize)] =
                static_cast<std::uint8_t>(fz.next());
        return line;
      default: // small sign-extended words: FPC prefix classes
        for (std::uint32_t w = 0; w < kLineSize / 4; ++w) {
            const auto v = static_cast<std::int32_t>(
                static_cast<std::int64_t>(fz.below(512)) - 256);
            std::memcpy(line.data() + 4 * w, &v, 4);
        }
        return line;
    }
}

TEST(CodecBatchParity, BatchedSizingMatchesSingleAndCompress)
{
    const ZcaCodec zca;
    const FpcCodec fpc;
    const BdiCodec bdi;
    const CpackCodec cpack;
    const HybridCodec hybrid;
    const Codec *codecs[] = {&zca, &fpc, &bdi, &cpack, &hybrid};

    underBothBackends([&](bool scalar) {
        Fuzz fz(scalar ? 0xBA7C4 : 0xC0DEC);
        for (int round = 0; round < 24; ++round) {
            const std::size_t n = 1 + fz.below(33);
            std::vector<Line> lines(n);
            for (auto &line : lines)
                line = randomLine(fz);

            for (const Codec *codec : codecs) {
                std::vector<std::uint32_t> batched(n, ~0u);
                codec->compressedSizeBytes(lines.data(), n,
                                           batched.data());
                for (std::size_t i = 0; i < n; ++i) {
                    const std::uint32_t single =
                        codec->compressedSizeBytes(lines[i]);
                    EXPECT_EQ(batched[i], single)
                        << codec->name() << " line " << i;
                    EXPECT_EQ(single,
                              codec->compress(lines[i]).sizeBytes())
                        << codec->name() << " line " << i;
                }
            }
        }
    });
}

} // namespace
} // namespace dice
