/**
 * @file
 * Distributed sweep observability under test: the mergeable
 * LogHistogram (exact cross-process merge is the property the whole
 * summary transport rests on), the hist text transport and the
 * heartbeat/summary participant files, the event-journal line format,
 * and — the centerpiece — the cross-participant timeline merge with
 * skewed wall clocks, asserted causally consistent and round-tripped
 * through the mini JSON parser like a real chrome://tracing load.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/sweep_events.hpp"
#include "mini_json.hpp"
#include "sweep_queue.hpp"

namespace
{

using dice::JournalEvent;
using dice::LogHistogram;
using dice::ParticipantJournal;
using dice::SweepMetrics;
using dice::SweepPhase;

std::filesystem::path
freshDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

// ---------------------------------------------------------------------
// LogHistogram.

TEST(LogHistogram, BucketEdges)
{
    EXPECT_EQ(LogHistogram::bucketIndex(0), 0u);
    EXPECT_EQ(LogHistogram::bucketIndex(1), 1u);
    EXPECT_EQ(LogHistogram::bucketIndex(2), 2u);
    EXPECT_EQ(LogHistogram::bucketIndex(3), 2u);
    EXPECT_EQ(LogHistogram::bucketIndex(4), 3u);
    EXPECT_EQ(LogHistogram::bucketIndex(~std::uint64_t{0}), 64u);

    // Every value lands in [lo, hi) of its own bucket.
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{7}, std::uint64_t{4096},
                            std::uint64_t{1} << 40}) {
        const std::uint32_t i = LogHistogram::bucketIndex(v);
        EXPECT_GE(v, LogHistogram::bucketLo(i)) << v;
        if (i < 64) {
            EXPECT_LT(v, LogHistogram::bucketHi(i)) << v;
        }
    }
}

TEST(LogHistogram, MergeEqualsConcatenatedSampling)
{
    // The distributed-sweep property: per-worker histograms merged at
    // the coordinator must be bit-identical to one histogram that saw
    // every sample. Fixed bucket edges make this exact, not approximate.
    std::vector<std::uint64_t> a = {0, 1, 3, 900, 17, 1 << 20};
    std::vector<std::uint64_t> b = {2, 2, 64, 4095, 5};

    LogHistogram ha, hb, all;
    for (std::uint64_t v : a) {
        ha.sample(v);
        all.sample(v);
    }
    for (std::uint64_t v : b) {
        hb.sample(v);
        all.sample(v);
    }
    LogHistogram merged = ha;
    merged.merge(hb);

    EXPECT_EQ(merged.count(), all.count());
    EXPECT_EQ(merged.sum(), all.sum());
    EXPECT_EQ(merged.max(), all.max());
    EXPECT_EQ(merged.min(), all.min());
    for (std::uint32_t i = 0; i < LogHistogram::kBuckets; ++i)
        EXPECT_EQ(merged.bucket(i), all.bucket(i)) << "bucket " << i;
    EXPECT_DOUBLE_EQ(merged.percentile(0.5), all.percentile(0.5));
}

TEST(LogHistogram, SubtractedIsolatesTheWindow)
{
    LogHistogram h;
    h.sample(10);
    h.sample(20);
    const LogHistogram since = h; // snapshot
    h.sample(100);
    h.sample(200);

    const LogHistogram delta = h.subtracted(since);
    EXPECT_EQ(delta.count(), 2u);
    EXPECT_EQ(delta.sum(), 300u);
    // min/max stay cumulative by design (upper bounds, merge-safe).
    EXPECT_EQ(delta.max(), 200u);
}

TEST(LogHistogram, PercentilesClampedToObservedRange)
{
    LogHistogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(10); // all in bucket [8, 16)
    // Interpolation may wander inside the bucket, but the clamp pins
    // single-valued distributions exactly.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);

    LogHistogram empty;
    EXPECT_DOUBLE_EQ(empty.percentile(0.9), 0.0);

    LogHistogram spread;
    for (int i = 0; i < 99; ++i)
        spread.sample(8);
    spread.sample(1 << 20);
    EXPECT_LT(spread.percentile(0.5), 16.0);
    EXPECT_GT(spread.percentile(0.999), 1000.0);
}

TEST(LogHistogram, HistTextRoundTrip)
{
    LogHistogram h;
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{5},
                            std::uint64_t{5}, std::uint64_t{70000}})
        h.sample(v);

    std::string text;
    dice::appendHistText(text, "cell_us", h);
    ASSERT_FALSE(text.empty());
    ASSERT_EQ(text.back(), '\n');

    std::string name;
    LogHistogram back;
    ASSERT_TRUE(dice::parseHistLine(text.substr(0, text.size() - 1),
                                    name, back));
    EXPECT_EQ(name, "cell_us");
    EXPECT_EQ(back.count(), h.count());
    EXPECT_EQ(back.sum(), h.sum());
    EXPECT_EQ(back.max(), h.max());
    EXPECT_EQ(back.min(), h.min());
    for (std::uint32_t i = 0; i < LogHistogram::kBuckets; ++i)
        EXPECT_EQ(back.bucket(i), h.bucket(i)) << "bucket " << i;
}

TEST(LogHistogram, HistTextEmptyAndMalformed)
{
    std::string text;
    dice::appendHistText(text, "empty", LogHistogram{});
    std::string name;
    LogHistogram back;
    ASSERT_TRUE(dice::parseHistLine(text.substr(0, text.size() - 1),
                                    name, back));
    EXPECT_EQ(back.count(), 0u);

    // Bucket counts that do not add up to the header count are
    // rejected, as is anything structurally off.
    EXPECT_FALSE(dice::parseHistLine(
        "hist x count 5 sum 50 max 20 min 1 buckets 3:1", name, back));
    EXPECT_FALSE(dice::parseHistLine("hist", name, back));
    EXPECT_FALSE(dice::parseHistLine(
        "hist x count 1 sum 5 max 5 min 5 buckets 99:1", name, back));
}

// ---------------------------------------------------------------------
// SweepMetrics.

TEST(SweepMetrics, SlowestCellAndSnapshots)
{
    SweepMetrics &m = SweepMetrics::instance();
    m.resetForTest();
    m.sample(SweepPhase::Generate, 100);
    m.noteCell("mcf_dice", 5000);
    m.noteCell("lbm_alloy", 9000);
    m.noteCell("gcc_tsi", 1000);

    const auto [cell, us] = m.slowestCell();
    EXPECT_EQ(cell, "lbm_alloy");
    EXPECT_EQ(us, 9000u);
    EXPECT_EQ(m.snapshot(SweepPhase::Cell).count(), 3u);
    EXPECT_EQ(m.snapshot(SweepPhase::Generate).count(), 1u);
    EXPECT_EQ(m.snapshot(SweepPhase::Simulate).count(), 0u);
    m.resetForTest();
}

// ---------------------------------------------------------------------
// Journal line + file parsing.

TEST(SweepJournal, ParseJournalLine)
{
    JournalEvent e;
    ASSERT_TRUE(dice::parseJournalLine(
        R"({"ev":"claim","cell":"mcf_dice","stolen":1,"requeued":0,)"
        R"("wait_us":42,"wall_us":1000,"mono_us":7})",
        e));
    EXPECT_EQ(e.ev, "claim");
    EXPECT_EQ(e.cell, "mcf_dice");
    EXPECT_TRUE(e.stolen);
    EXPECT_FALSE(e.requeued);
    EXPECT_EQ(e.wait_us, 42u);
    EXPECT_EQ(e.mono_us, 7u);

    // Escapes unescape; unknown keys are ignored (forward compat).
    ASSERT_TRUE(dice::parseJournalLine(
        R"({"ev":"mark","name":"spawn","detail":"a\"b","future":1})",
        e));
    EXPECT_EQ(e.detail, "a\"b");

    EXPECT_FALSE(dice::parseJournalLine("", e));
    EXPECT_FALSE(dice::parseJournalLine("not json", e));
    EXPECT_FALSE(dice::parseJournalLine(R"({"ev":)", e));
    EXPECT_FALSE(dice::parseJournalLine(R"({"cell":"x"})", e)); // no ev
}

TEST(SweepJournal, ReadJournalSegmentsAndTornTail)
{
    const auto dir = freshDir("dice_test_journal_read");
    const auto path = dir / "worker0.jsonl";
    // Two process runs (epochs) in one journal, one garbage line in
    // the middle, one torn line at the end (SIGKILL between write and
    // flush) — all of which a reader must survive.
    writeFile(
        path,
        R"({"ev":"epoch","participant":"worker0","pid":11,"host":"h1",)"
        R"("wall_us":1000000,"mono_us":0})"
        "\n"
        R"({"ev":"claim","cell":"a","stolen":0,"requeued":0,)"
        R"("wait_us":1,"wall_us":1000500,"mono_us":500})"
        "\n"
        "garbage line\n"
        R"({"ev":"epoch","participant":"worker0","pid":12,"host":"h1",)"
        R"("wall_us":9000000,"mono_us":0})"
        "\n"
        R"({"ev":"publish","cell":"b","wall_us":9000100,"mono_us":100})"
        "\n"
        R"({"ev":"publish","cell":"c","wall)");

    ParticipantJournal p;
    ASSERT_TRUE(dice::readJournal(path, p));
    EXPECT_EQ(p.name, "worker0");
    EXPECT_EQ(p.host, "h1");
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.segments[0].pid, 11);
    EXPECT_EQ(p.segments[1].pid, 12);
    ASSERT_EQ(p.events.size(), 2u);
    EXPECT_EQ(p.events[0].segment, 0);
    EXPECT_EQ(p.events[1].segment, 1);

    // No epoch record at all -> not a journal.
    writeFile(dir / "junk.jsonl", "{\"ev\":\"claim\",\"cell\":\"x\"}\n");
    ParticipantJournal q;
    EXPECT_FALSE(dice::readJournal(dir / "junk.jsonl", q));
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Timeline merge with skewed clocks.

/**
 * Three participants whose wall clocks disagree wildly:
 *  - the coordinator (reference) spawns both workers and claims
 *    nothing itself;
 *  - worker0's clock runs ~0.5s behind: naive alignment would place
 *    its whole lane before it was spawned;
 *  - worker1's clock is ~0.9s behind AND it re-claims worker0's cell
 *    through a broken lease — the requeue must land after the first
 *    claim no matter what its wall clock says.
 */
std::filesystem::path
writeSkewedJournals()
{
    const auto dir = freshDir("dice_test_timeline_merge");
    const auto events = dir / "events";
    std::filesystem::create_directories(events);

    writeFile(
        events / "coordinator.jsonl",
        R"({"ev":"epoch","participant":"coordinator","pid":1,)"
        R"("host":"hub","wall_us":1000000,"mono_us":0})"
        "\n"
        R"({"ev":"mark","name":"spawn","detail":"worker0",)"
        R"("wall_us":1001000,"mono_us":1000})"
        "\n"
        R"({"ev":"mark","name":"spawn","detail":"worker1",)"
        R"("wall_us":1002000,"mono_us":2000})"
        "\n");

    // worker0: claims cell "a" (stolen), runs it, publishes, dies —
    // no release, journal just ends.
    writeFile(
        events / "worker0.jsonl",
        R"({"ev":"epoch","participant":"worker0","pid":2,)"
        R"("host":"h1","wall_us":500000,"mono_us":0})"
        "\n"
        R"({"ev":"claim","cell":"a","stolen":1,"requeued":0,)"
        R"("wait_us":10,"wall_us":501000,"mono_us":1000})"
        "\n"
        R"({"ev":"phase","phase":"cell","cell":"a",)"
        R"("start_us":1000,"dur_us":40000,"wall_us":541000,)"
        R"("mono_us":41000})"
        "\n");

    // worker1: re-claims "a" after worker0's lease went stale.
    writeFile(
        events / "worker1.jsonl",
        R"({"ev":"epoch","participant":"worker1","pid":3,)"
        R"("host":"h2","wall_us":100000,"mono_us":0})"
        "\n"
        R"({"ev":"claim","cell":"a","stolen":1,"requeued":1,)"
        R"("wait_us":0,"wall_us":100500,"mono_us":500})"
        "\n"
        R"({"ev":"publish","cell":"a","wall_us":160500,)"
        R"("mono_us":60500})"
        "\n");
    return dir;
}

TEST(SweepTimeline, SkewedClocksMergeCausallyConsistent)
{
    const auto dir = writeSkewedJournals();
    const auto out = dir / "timeline.json";
    std::string error;
    dice::TimelineStats stats;
    ASSERT_TRUE(dice::mergeSweepTimeline(dir / "events", out, &error,
                                         &stats))
        << error;
    EXPECT_EQ(stats.participants, 3u);
    EXPECT_GT(stats.events, 0u);

    // Round-trip through the same parser the other telemetry tests
    // use: the merged document must be a loadable Chrome trace.
    const auto root = dice::testjson::parse(readFile(out));
    EXPECT_EQ(root->at("displayTimeUnit").string, "ms");
    const auto &events = root->at("traceEvents");
    ASSERT_TRUE(events.isArray());

    // Lane metadata names every participant; remember name -> pid.
    std::map<std::string, double> lane_pid;
    double spawn0_ts = -1, spawn1_ts = -1;
    double first_claim_ts = -1, requeue_ts = -1, publish_ts = -1;
    double phase_ts = -1, phase_dur = -1;
    for (const auto &ev : events.array) {
        ASSERT_TRUE(ev->isObject());
        const std::string name = ev->at("name").string;
        if (name == "process_name") {
            lane_pid[ev->at("args").at("name").string] =
                ev->at("pid").number;
            continue;
        }
        EXPECT_GE(ev->at("ts").number, 0.0); // normalized to t0 = 0
        if (name == "spawn" &&
            ev->at("args").at("detail").string == "worker0")
            spawn0_ts = ev->at("ts").number;
        if (name == "spawn" &&
            ev->at("args").at("detail").string == "worker1")
            spawn1_ts = ev->at("ts").number;
        if (name == "steal" && ev->at("args").at("cell").string == "a")
            first_claim_ts = ev->at("ts").number;
        if (name == "requeue" &&
            ev->at("args").at("cell").string == "a")
            requeue_ts = ev->at("ts").number;
        if (name == "publish" &&
            ev->at("args").at("cell").string == "a")
            publish_ts = ev->at("ts").number;
        if (name == "cell" && ev->at("ph").string == "X") {
            phase_ts = ev->at("ts").number;
            phase_dur = ev->at("dur").number;
        }
    }

    ASSERT_EQ(lane_pid.size(), 3u);
    EXPECT_TRUE(lane_pid.count("coordinator (hub)"));
    EXPECT_TRUE(lane_pid.count("worker0 (h1)"));
    EXPECT_TRUE(lane_pid.count("worker1 (h2)"));

    // Causal consistency despite both workers' wall clocks reading
    // *before* the coordinator's: spawns precede the spawned workers'
    // first events, and the requeued claim lands after the original.
    ASSERT_GE(spawn0_ts, 0);
    ASSERT_GE(spawn1_ts, 0);
    ASSERT_GE(first_claim_ts, 0);
    ASSERT_GE(requeue_ts, 0);
    ASSERT_GE(publish_ts, 0);
    EXPECT_GE(first_claim_ts, spawn0_ts);
    EXPECT_GE(requeue_ts, spawn1_ts);
    EXPECT_GE(requeue_ts, first_claim_ts);
    EXPECT_GE(publish_ts, requeue_ts);

    // The phase span made it through as a complete "X" event.
    EXPECT_GE(phase_ts, 0);
    EXPECT_DOUBLE_EQ(phase_dur, 40000.0);

    // Determinism: merging again yields the identical document.
    const std::string once = readFile(out);
    ASSERT_TRUE(
        dice::mergeSweepTimeline(dir / "events", out, &error, &stats));
    EXPECT_EQ(readFile(out), once);
    std::filesystem::remove_all(dir);
}

TEST(SweepTimeline, EmptyDirFails)
{
    const auto dir = freshDir("dice_test_timeline_empty");
    std::string error;
    EXPECT_FALSE(dice::mergeSweepTimeline(dir / "events",
                                          dir / "t.json", &error));
    EXPECT_FALSE(error.empty());
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Anomaly detection.

TEST(SweepAnomalies, StragglerAndChurn)
{
    LogHistogram cell_us;
    for (int i = 0; i < 20; ++i)
        cell_us.sample(1000);
    cell_us.sample(500000); // one 500ms cell among 1ms cells

    const auto warns = dice::sweepAnomalyWarnings(
        cell_us, "lbm_dice", 500000, /*requeued=*/0, /*cells=*/21,
        /*k=*/4.0);
    ASSERT_EQ(warns.size(), 1u);
    EXPECT_NE(warns[0].find("straggler"), std::string::npos);
    EXPECT_NE(warns[0].find("lbm_dice"), std::string::npos);

    // Healthy uniform batch: silent.
    LogHistogram uniform;
    for (int i = 0; i < 20; ++i)
        uniform.sample(1000);
    EXPECT_TRUE(dice::sweepAnomalyWarnings(uniform, "x", 1000, 0, 20,
                                           4.0)
                    .empty());

    // Tiny batches never self-flag, however skewed.
    LogHistogram tiny;
    tiny.sample(1);
    tiny.sample(100000);
    EXPECT_TRUE(dice::sweepAnomalyWarnings(tiny, "x", 100000, 0, 2,
                                           4.0)
                    .empty());

    // Requeue storm: a quarter of the batch came back through dead
    // holders' leases.
    const auto churn = dice::sweepAnomalyWarnings(uniform, "x", 1000,
                                                  /*requeued=*/5,
                                                  /*cells=*/20, 4.0);
    ASSERT_EQ(churn.size(), 1u);
    EXPECT_NE(churn[0].find("churn"), std::string::npos);
}

// ---------------------------------------------------------------------
// Participant-file helpers (heartbeats, summaries).

TEST(ParticipantFiles, HeartbeatRoundTrip)
{
    dice::bench::HeartbeatRecord hb;
    hb.batch = 3;
    hb.done = 17;
    hb.total = 40;
    hb.stolen = 5;
    hb.requeued = 2;
    hb.busy_ms = 1234;

    dice::bench::HeartbeatRecord back;
    ASSERT_TRUE(dice::bench::parseHeartbeat(
        dice::bench::renderHeartbeat(hb), back));
    EXPECT_EQ(back.batch, hb.batch);
    EXPECT_EQ(back.done, hb.done);
    EXPECT_EQ(back.total, hb.total);
    EXPECT_EQ(back.stolen, hb.stolen);
    EXPECT_EQ(back.requeued, hb.requeued);
    EXPECT_EQ(back.busy_ms, hb.busy_ms);

    EXPECT_FALSE(dice::bench::parseHeartbeat("nonsense", back));
    // done > total is a corrupt file, not a heartbeat.
    dice::bench::HeartbeatRecord bad = hb;
    bad.done = 99;
    EXPECT_FALSE(dice::bench::parseHeartbeat(
        dice::bench::renderHeartbeat(bad), back));
}

TEST(ParticipantFiles, SummaryRoundTripWithHistograms)
{
    dice::bench::SummaryRecord s;
    s.batch = 2;
    s.cells = 12;
    s.stolen = 4;
    s.requeued = 1;
    s.busy_ms = 800;
    s.span_ms = 950;
    s.jobs = 3;
    s.generations = 6;
    s.disk_hits = 5;
    s.spills = 6;
    LogHistogram cell;
    cell.sample(1000);
    cell.sample(64000);
    s.hists.emplace_back("cell_us", cell);
    LogHistogram gen;
    gen.sample(300);
    s.hists.emplace_back("generate_us", gen);
    s.slowest_cell = "mcf_dice";
    s.slowest_us = 64000;

    dice::bench::SummaryRecord back;
    ASSERT_TRUE(
        dice::bench::parseSummary(dice::bench::renderSummary(s), back));
    EXPECT_EQ(back.batch, s.batch);
    EXPECT_EQ(back.cells, s.cells);
    EXPECT_EQ(back.stolen, s.stolen);
    EXPECT_EQ(back.requeued, s.requeued);
    EXPECT_EQ(back.jobs, s.jobs);
    EXPECT_EQ(back.generations, s.generations);
    EXPECT_EQ(back.disk_hits, s.disk_hits);
    EXPECT_EQ(back.spills, s.spills);
    ASSERT_EQ(back.hists.size(), 2u);
    EXPECT_EQ(back.hists[0].first, "cell_us");
    EXPECT_EQ(back.hists[0].second.count(), 2u);
    EXPECT_EQ(back.hists[0].second.sum(), 65000u);
    EXPECT_EQ(back.hists[1].first, "generate_us");
    EXPECT_EQ(back.slowest_cell, "mcf_dice");
    EXPECT_EQ(back.slowest_us, 64000u);

    // A garbled hist line poisons the whole summary (files are
    // written atomically, so a bad line is corruption, not tearing)…
    std::string text = dice::bench::renderSummary(s);
    text += "hist broken count 2 sum 5 max 5 min 0 buckets 1:1\n";
    EXPECT_FALSE(dice::bench::parseSummary(text, back));
    // …but unknown future record kinds are ignored.
    std::string ok = dice::bench::renderSummary(s);
    ok += "future_record 1 2 3\n";
    EXPECT_TRUE(dice::bench::parseSummary(ok, back));
}

TEST(ParticipantFiles, ForEachSkipsGarbledOnceAndOptionallyRemoves)
{
    const auto dir = freshDir("dice_test_participant_files");
    writeFile(dir / "a.heartbeat", "batch 1 done 1 total 2 stolen 0 "
                                   "requeued 0 busy_ms 5\n");
    writeFile(dir / "b.heartbeat", "garbage\n");
    writeFile(dir / "c.other", "not scanned\n");

    int seen = 0;
    dice::bench::forEachParticipantFile(
        dir, ".heartbeat", /*remove_garbled=*/false,
        [&seen](const std::filesystem::path &,
                const std::string &content) {
            ++seen;
            dice::bench::HeartbeatRecord hb;
            return dice::bench::parseHeartbeat(content, hb);
        });
    EXPECT_EQ(seen, 2);
    EXPECT_TRUE(std::filesystem::exists(dir / "b.heartbeat"));

    dice::bench::forEachParticipantFile(
        dir, ".heartbeat", /*remove_garbled=*/true,
        [](const std::filesystem::path &, const std::string &content) {
            dice::bench::HeartbeatRecord hb;
            return dice::bench::parseHeartbeat(content, hb);
        });
    EXPECT_FALSE(std::filesystem::exists(dir / "b.heartbeat"));
    EXPECT_TRUE(std::filesystem::exists(dir / "a.heartbeat"));
    std::filesystem::remove_all(dir);
}

} // namespace
