/**
 * @file
 * CIP (cache index predictor) and MAP-I (hit/miss predictor) tests.
 */

#include <gtest/gtest.h>

#include "core/cip.hpp"
#include "core/mapi.hpp"

namespace dice
{
namespace
{

TEST(Cip, DefaultPredictionIsTsi)
{
    Cip cip(64);
    EXPECT_EQ(cip.predictRead(123), IndexScheme::TSI);
}

TEST(Cip, LearnsLastOutcomePerPage)
{
    Cip cip(1024);
    const LineAddr line_a = 5;            // page 0
    const LineAddr line_b = 7;            // page 0 too
    cip.updateRead(line_a, IndexScheme::BAI);
    // Same page: prediction follows the page's last outcome.
    EXPECT_EQ(cip.predictRead(line_b), IndexScheme::BAI);
    cip.updateRead(line_b, IndexScheme::TSI);
    EXPECT_EQ(cip.predictRead(line_a), IndexScheme::TSI);
}

TEST(Cip, DistinctPagesUseDistinctEntries)
{
    Cip cip(4096);
    const LineAddr page0_line = 1;
    const LineAddr page9_line = 9 * kLinesPerPage + 3;
    cip.updateRead(page0_line, IndexScheme::BAI);
    // With 4096 entries these two pages almost surely do not collide.
    EXPECT_EQ(cip.predictRead(page9_line), IndexScheme::TSI);
}

TEST(Cip, AccuracyTracking)
{
    Cip cip(64);
    cip.updateRead(1, IndexScheme::TSI); // predicted TSI -> correct
    cip.updateRead(1, IndexScheme::BAI); // predicted TSI -> wrong
    cip.updateRead(1, IndexScheme::BAI); // predicted BAI -> correct
    EXPECT_EQ(cip.readPredictions(), 3u);
    EXPECT_EQ(cip.readMispredictions(), 1u);
    EXPECT_NEAR(cip.readAccuracy(), 2.0 / 3.0, 1e-12);
}

TEST(Cip, TrainDoesNotScore)
{
    Cip cip(64);
    cip.train(1, IndexScheme::BAI);
    EXPECT_EQ(cip.readPredictions(), 0u);
    EXPECT_EQ(cip.predictRead(1), IndexScheme::BAI);
}

TEST(Cip, WritePredictorFollowsThreshold)
{
    Cip cip(64);
    EXPECT_EQ(cip.predictWrite(36, 36), IndexScheme::BAI);
    EXPECT_EQ(cip.predictWrite(37, 36), IndexScheme::TSI);
    EXPECT_EQ(cip.predictWrite(0, 36), IndexScheme::BAI);
    EXPECT_EQ(cip.predictWrite(64, 36), IndexScheme::TSI);
}

TEST(Cip, WriteScoring)
{
    Cip cip(64);
    cip.scoreWrite(IndexScheme::BAI, IndexScheme::BAI);
    cip.scoreWrite(IndexScheme::BAI, IndexScheme::TSI);
    EXPECT_EQ(cip.writePredictions(), 2u);
    EXPECT_EQ(cip.writeMispredictions(), 1u);
    EXPECT_NEAR(cip.writeAccuracy(), 0.5, 1e-12);
}

TEST(Cip, StorageBudgetUnder1KB)
{
    // The paper's headline: <1 KB of SRAM for the default predictor.
    Cip cip(2048);
    EXPECT_EQ(cip.storageBytes(), 256u);
    EXPECT_LT(Cip(8192).storageBytes(), 1024u + 1u);
}

TEST(Cip, UnusedPredictorReportsPerfectAccuracy)
{
    Cip cip(64);
    EXPECT_DOUBLE_EQ(cip.readAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(cip.writeAccuracy(), 1.0);
}

TEST(Cip, StatsGroup)
{
    Cip cip(2048);
    cip.updateRead(1, IndexScheme::TSI);
    const StatGroup g = cip.stats();
    EXPECT_DOUBLE_EQ(g.get("read_predictions"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("storage_bytes"), 256.0);
}

TEST(MapI, StartsPredictingHit)
{
    MapI m(256);
    EXPECT_TRUE(m.predictHit(0x400123));
}

TEST(MapI, LearnsMissesPerPc)
{
    MapI m(256);
    const std::uint64_t pc = 0x400123;
    for (int i = 0; i < 8; ++i)
        m.update(pc, false);
    EXPECT_FALSE(m.predictHit(pc));
    // A different PC is unaffected (unless hashed together; 1/256).
    EXPECT_TRUE(m.predictHit(0x887766));
}

TEST(MapI, RecoverAfterHits)
{
    MapI m(256);
    const std::uint64_t pc = 0x1234;
    for (int i = 0; i < 8; ++i)
        m.update(pc, false);
    EXPECT_FALSE(m.predictHit(pc));
    for (int i = 0; i < 8; ++i)
        m.update(pc, true);
    EXPECT_TRUE(m.predictHit(pc));
}

TEST(MapI, CountersSaturate)
{
    MapI m(16);
    const std::uint64_t pc = 0x9;
    for (int i = 0; i < 100; ++i)
        m.update(pc, true);
    // One miss must not flip a saturated counter.
    m.update(pc, false);
    EXPECT_TRUE(m.predictHit(pc));
}

TEST(MapI, AccuracyTracking)
{
    MapI m(256);
    const std::uint64_t pc = 0x88;
    m.update(pc, true);  // predicted hit, was hit: correct
    m.update(pc, false); // predicted hit, was miss: wrong
    EXPECT_EQ(m.predictions(), 2u);
    EXPECT_EQ(m.mispredictions(), 1u);
    EXPECT_NEAR(m.accuracy(), 0.5, 1e-12);
}

} // namespace
} // namespace dice
