/**
 * @file
 * Bit-manipulation helper tests.
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace dice
{
namespace
{

TEST(Bitops, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, BitsExtraction)
{
    EXPECT_EQ(bits(0xABCD, 15, 8), 0xABu);
    EXPECT_EQ(bits(0xABCD, 7, 0), 0xCDu);
    EXPECT_EQ(bits(0xFF, 3, 2), 0x3u);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
    EXPECT_EQ(bit(0b100, 2), 1u);
    EXPECT_EQ(bit(0b100, 1), 0u);
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 4, 4, 0xF), 0xF0u);
    EXPECT_EQ(insertBits(0xFF, 0, 4, 0), 0xF0u);
    EXPECT_EQ(insertBits(0xF0F0, 4, 8, 0xAB), 0xFAB0u);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0xF, 4), -1);
    EXPECT_EQ(signExtend(0x7, 4), 7);
    EXPECT_EQ(signExtend(0x8, 4), -8);
    EXPECT_EQ(signExtend(0xFF, 8), -1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7FFF, 16), 32767);
    EXPECT_EQ(signExtend(0xFFFFFFFFFFFFFFFFull, 64), -1);
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(-1, 1));
    EXPECT_FALSE(fitsSigned(1, 1));
    EXPECT_TRUE(fitsSigned(127, 8));
    EXPECT_FALSE(fitsSigned(128, 8));
    EXPECT_TRUE(fitsSigned(-128, 8));
    EXPECT_FALSE(fitsSigned(-129, 8));
    EXPECT_TRUE(fitsSigned(INT64_MIN, 64));
}

TEST(Bitops, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(~0ull, 64));
}

TEST(Bitops, SignExtendRoundTripProperty)
{
    for (std::uint32_t n = 2; n <= 32; ++n) {
        for (std::int64_t v : {-5ll, -1ll, 0ll, 1ll, 5ll}) {
            if (!fitsSigned(v, n))
                continue;
            const std::uint64_t enc = static_cast<std::uint64_t>(v);
            EXPECT_EQ(signExtend(enc, n), v) << "n=" << n << " v=" << v;
        }
    }
}

} // namespace
} // namespace dice
