/**
 * @file
 * Tests of the hot-loop storage primitives: FlatMap (open-addressed
 * map with backward-shift erasure), BoundedMemo (fixed-footprint
 * generation-versioned memo), and SmallVector (inline-first writeback
 * buffer). The randomized FlatMap test cross-checks every operation
 * against std::unordered_map, with heavy erasure to exercise the
 * probe-chain repair paths.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/small_vector.hpp"

namespace dice
{
namespace
{

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, std::uint32_t> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);

    EXPECT_TRUE(m.insert_or_assign(7, 70));
    EXPECT_FALSE(m.insert_or_assign(7, 71)); // overwrite, not insert
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 71u);
    EXPECT_EQ(m.size(), 1u);

    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, OperatorIndexDefaultConstructs)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_EQ(m[42], 0u);
    m[42] += 5;
    m[42] += 5;
    EXPECT_EQ(m.valueOr(42, 0), 10u);
    EXPECT_EQ(m.valueOr(43, 99), 99u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowthPreservesContents)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 10'000; ++k)
        m.insert_or_assign(k, k * 3);
    EXPECT_EQ(m.size(), 10'000u);
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), k * 3);
    }
}

TEST(FlatMap, ReserveRunsInsertionsWithoutRehash)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    m.reserve(1000);
    const std::size_t cap = m.capacity();
    EXPECT_GE(cap * 3 / 4, 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.insert_or_assign(k, k);
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.insert_or_assign(k, k);
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(5), nullptr);
    m.insert_or_assign(5, 50);
    EXPECT_EQ(*m.find(5), 50u);
}

/** Identity hash forces adjacent keys into one probe chain. */
struct IdentityHash
{
    std::uint64_t operator()(std::uint64_t k) const { return k; }
};

TEST(FlatMap, BackwardShiftEraseRepairsProbeChains)
{
    // Keys 16, 32, 48... all hash (mod capacity 16.. after growth) to
    // clustered slots; erasing the head of the chain must keep the
    // displaced successors findable.
    FlatMap<std::uint64_t, std::uint64_t, IdentityHash> m;
    m.reserve(12);
    const std::size_t cap = m.capacity();
    // Three keys with the same home slot, plus neighbors.
    const std::uint64_t a = cap, b = 2 * cap, c = 3 * cap;
    m.insert_or_assign(a, 1);
    m.insert_or_assign(b, 2);
    m.insert_or_assign(c, 3);
    m.insert_or_assign(1, 10); // displaced by the chain above

    EXPECT_TRUE(m.erase(a));
    ASSERT_NE(m.find(b), nullptr);
    EXPECT_EQ(*m.find(b), 2u);
    ASSERT_NE(m.find(c), nullptr);
    EXPECT_EQ(*m.find(c), 3u);
    ASSERT_NE(m.find(1), nullptr);
    EXPECT_EQ(*m.find(1), 10u);

    EXPECT_TRUE(m.erase(b));
    EXPECT_TRUE(m.erase(c));
    ASSERT_NE(m.find(1), nullptr);
    EXPECT_EQ(*m.find(1), 10u);
}

TEST(FlatMap, RandomizedAgainstUnorderedMap)
{
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    std::uint64_t state = 12345;
    auto next = [&state] { return state = mix64(state); };

    for (int op = 0; op < 50'000; ++op) {
        const std::uint64_t r = next();
        const std::uint64_t key = (r >> 8) % 512; // dense → collisions
        switch (r % 3) {
          case 0: {
            const std::uint64_t val = next();
            flat.insert_or_assign(key, val);
            ref[key] = val;
            break;
          }
          case 1: {
            EXPECT_EQ(flat.erase(key), ref.erase(key) == 1) << key;
            break;
          }
          default: {
            const auto it = ref.find(key);
            const std::uint64_t *v = flat.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(v, nullptr) << key;
            } else {
                ASSERT_NE(v, nullptr) << key;
                EXPECT_EQ(*v, it->second) << key;
            }
            break;
          }
        }
        EXPECT_EQ(flat.size(), ref.size());
    }
    for (const auto &[k, v] : ref) {
        ASSERT_NE(flat.find(k), nullptr) << k;
        EXPECT_EQ(*flat.find(k), v) << k;
    }
}

TEST(BoundedMemo, MemoizesAndStaysBounded)
{
    using Memo = BoundedMemo<std::uint64_t, std::uint32_t>;
    Memo memo(4); // 16 buckets
    const std::size_t footprint = memo.capacityBytes();
    EXPECT_EQ(memo.slotCount(), (std::size_t{1} << 4) * Memo::kWays);

    memo.put(7, 70);
    ASSERT_NE(memo.find(7), nullptr);
    EXPECT_EQ(*memo.find(7), 70u);

    // Push far more distinct keys than slots: the memo must keep
    // serving lookups (possibly recomputing) at constant footprint.
    for (std::uint64_t k = 0; k < 10'000; ++k)
        memo.put(k, static_cast<std::uint32_t>(k));
    EXPECT_EQ(memo.capacityBytes(), footprint);

    // Whatever is found must be correct — collisions evict, never lie.
    std::size_t hits = 0;
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        if (const std::uint32_t *v = memo.find(k)) {
            EXPECT_EQ(*v, static_cast<std::uint32_t>(k));
            ++hits;
        }
    }
    EXPECT_GT(hits, 0u);
    EXPECT_LE(hits, memo.slotCount());
}

TEST(BoundedMemo, GenerationClearInvalidatesEverything)
{
    BoundedMemo<std::uint64_t, std::uint32_t> memo(4);
    for (std::uint64_t k = 0; k < 32; ++k)
        memo.put(k, 1);
    memo.clear();
    for (std::uint64_t k = 0; k < 32; ++k)
        EXPECT_EQ(memo.find(k), nullptr) << k;
    memo.put(3, 33);
    ASSERT_NE(memo.find(3), nullptr);
    EXPECT_EQ(*memo.find(3), 33u);
}

TEST(BoundedMemo, DeterministicReplacement)
{
    BoundedMemo<std::uint64_t, std::uint32_t> a(4);
    BoundedMemo<std::uint64_t, std::uint32_t> b(4);
    for (std::uint64_t k = 0; k < 5'000; ++k) {
        a.put(k * 17, static_cast<std::uint32_t>(k));
        b.put(k * 17, static_cast<std::uint32_t>(k));
    }
    for (std::uint64_t k = 0; k < 5'000; ++k) {
        const std::uint32_t *va = a.find(k * 17);
        const std::uint32_t *vb = b.find(k * 17);
        ASSERT_EQ(va == nullptr, vb == nullptr) << k;
        if (va)
            EXPECT_EQ(*va, *vb) << k;
    }
}

TEST(SmallVector, InlineThenSpill)
{
    SmallVector<int, 4> v;
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 4u);
    // Fifth element spills to the heap; earlier elements migrate.
    v.push_back(4);
    ASSERT_EQ(v.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(v[i], i) << i;

    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 10);

    v.clear();
    EXPECT_TRUE(v.empty());
    v.push_back(99);
    EXPECT_EQ(v[0], 99);
    EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVector, LargeGrowth)
{
    SmallVector<std::uint64_t, 6> v;
    for (std::uint64_t i = 0; i < 1'000; ++i)
        v.push_back(i * i);
    ASSERT_EQ(v.size(), 1'000u);
    for (std::uint64_t i = 0; i < 1'000; ++i)
        EXPECT_EQ(v[i], i * i) << i;
}

} // namespace
} // namespace dice
