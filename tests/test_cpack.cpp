/**
 * @file
 * C-PACK codec tests: per-pattern encodings, dictionary behavior,
 * round trips, and fast-size equivalence.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "compress/cpack.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

Line
lineOfWords(const std::uint32_t (&words)[16])
{
    Line l{};
    std::memcpy(l.data(), words, sizeof words);
    return l;
}

TEST(Cpack, ZeroLine)
{
    CpackCodec cpack;
    const Line zero{};
    const Encoded enc = cpack.compress(zero);
    EXPECT_EQ(enc.bits, 16u * 2u); // one zzzz token per word
    EXPECT_EQ(cpack.decompress(enc), zero);
}

TEST(Cpack, RepeatedWordUsesDictionary)
{
    CpackCodec cpack;
    std::uint32_t words[16];
    for (auto &w : words)
        w = 0xDEADBEEFu;
    const Line l = lineOfWords(words);
    // First word verbatim (34 b), remaining 15 full matches (6 b).
    const Encoded enc = cpack.compress(l);
    EXPECT_EQ(enc.bits, 34u + 15u * 6u);
    EXPECT_EQ(cpack.decompress(enc), l);
}

TEST(Cpack, SmallBytePattern)
{
    CpackCodec cpack;
    std::uint32_t words[16];
    for (std::uint32_t i = 0; i < 16; ++i)
        words[i] = i + 1; // 0x000000xx
    const Line l = lineOfWords(words);
    const Encoded enc = cpack.compress(l);
    EXPECT_EQ(enc.bits, 16u * 12u); // zzzx per word
    EXPECT_EQ(cpack.decompress(enc), l);
}

TEST(Cpack, PartialMatchHigh3)
{
    CpackCodec cpack;
    std::uint32_t words[16];
    for (std::uint32_t i = 0; i < 16; ++i)
        words[i] = 0xABCDEF00u | i; // same top 3 bytes
    const Line l = lineOfWords(words);
    // First verbatim, rest mmmx (16 b each).
    const Encoded enc = cpack.compress(l);
    EXPECT_EQ(enc.bits, 34u + 15u * 16u);
    EXPECT_EQ(cpack.decompress(enc), l);
}

TEST(Cpack, IncompressibleFallsBackToRaw)
{
    CpackCodec cpack;
    Line l{};
    Rng rng(5);
    for (auto &b : l)
        b = static_cast<std::uint8_t>(rng.next() | 1);
    const Encoded enc = cpack.compress(l);
    EXPECT_EQ(cpack.decompress(enc), l);
    EXPECT_LE(enc.sizeBytes(), kLineSize);
}

TEST(Cpack, FastBitsMatchFullEncoder)
{
    CpackCodec cpack;
    Rng rng(6);
    for (int iter = 0; iter < 1000; ++iter) {
        const auto cls = static_cast<CompClass>(iter % 6);
        const Line l =
            DataGenerator::synthesize(cls, rng.below(1 << 18), 0);
        const Encoded enc = cpack.compress(l);
        EXPECT_EQ(cpack.compressedBits(l), enc.bits)
            << compClassName(cls) << " iter " << iter;
    }
}

/** Property: everything round-trips across the data classes. */
class CpackRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(CpackRoundTrip, SynthClassesAndRandomData)
{
    CpackCodec cpack;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int iter = 0; iter < 300; ++iter) {
        Line l{};
        if (iter % 2 == 0) {
            l = DataGenerator::synthesize(
                static_cast<CompClass>(iter % 6), rng.below(1 << 18),
                iter % 3);
        } else {
            for (auto &b : l)
                b = static_cast<std::uint8_t>(rng.next());
        }
        const Encoded enc = cpack.compress(l);
        EXPECT_EQ(cpack.decompress(enc), l) << "iter " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpackRoundTrip,
                         ::testing::Values(1, 2, 3, 4));

TEST(Cpack, DictionaryCapacityIsBounded)
{
    // 17+ distinct words cycle the 16-entry FIFO; everything must
    // still round-trip.
    CpackCodec cpack;
    std::uint32_t words[16];
    for (std::uint32_t i = 0; i < 16; ++i)
        words[i] = 0x11110000u + i * 0x01010101u;
    const Line a = lineOfWords(words);
    const Encoded enc = cpack.compress(a);
    EXPECT_EQ(cpack.decompress(enc), a);
}

} // namespace
} // namespace dice
