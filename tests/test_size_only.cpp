/**
 * @file
 * Property tests for the allocation-free size-only codec routes: for
 * every codec and every line we can synthesize, compressedSizeBytes()
 * must equal the size of the fully-materialized encoding, and
 * pairSizeBytes() must equal compressPair().sizeBytes(). The cache
 * model steers placement with the size-only routes, so a divergence
 * would silently change simulation results.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "compress/cpack.hpp"
#include "compress/hybrid.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

constexpr CompClass kClasses[] = {CompClass::Zero, CompClass::Ptr,
                                  CompClass::Int,  CompClass::C36,
                                  CompClass::Half, CompClass::Rand};

/** Synthesized lines of every class plus random and edge patterns. */
std::vector<Line>
sampleLines()
{
    std::vector<Line> lines;
    for (const CompClass cls : kClasses) {
        for (LineAddr salt = 1; salt <= 40; ++salt)
            lines.push_back(DataGenerator::synthesize(cls, salt * 97, 0));
    }
    Rng rng(0xD1CEull);
    for (int i = 0; i < 200; ++i) {
        Line l{};
        for (std::size_t off = 0; off < kLineSize; off += 8) {
            const std::uint64_t v = rng.next();
            std::memcpy(l.data() + off, &v, 8);
        }
        lines.push_back(l);
    }
    // Edge patterns: all-zero, all-ones, single set bit, repeating.
    lines.emplace_back();
    Line ones;
    ones.fill(0xFF);
    lines.push_back(ones);
    for (std::size_t byte = 0; byte < kLineSize; byte += 7) {
        Line l{};
        l[byte] = 0x80;
        lines.push_back(l);
    }
    return lines;
}

template <typename CodecT>
void
expectSizeMatchesEncoding(const CodecT &codec)
{
    for (const Line &l : sampleLines()) {
        const Encoded enc = codec.compress(l);
        EXPECT_EQ(codec.compressedSizeBytes(l), enc.sizeBytes());
    }
}

TEST(SizeOnly, ZcaMatchesFullCompress)
{
    expectSizeMatchesEncoding(ZcaCodec{});
}

TEST(SizeOnly, FpcMatchesFullCompress)
{
    expectSizeMatchesEncoding(FpcCodec{});
}

TEST(SizeOnly, BdiMatchesFullCompress)
{
    expectSizeMatchesEncoding(BdiCodec{});
}

TEST(SizeOnly, CpackMatchesFullCompress)
{
    expectSizeMatchesEncoding(CpackCodec{});
}

TEST(SizeOnly, HybridMatchesFullCompress)
{
    expectSizeMatchesEncoding(HybridCodec{});
}

TEST(SizeOnly, PairSizeMatchesCompressPair)
{
    HybridCodec codec;
    // Same-class pairs (the common adjacent-line case) ...
    for (const CompClass cls : kClasses) {
        for (LineAddr salt = 1; salt <= 30; ++salt) {
            const Line a = DataGenerator::synthesize(cls, 2 * salt, 0);
            const Line b = DataGenerator::synthesize(cls, 2 * salt + 1, 0);
            EXPECT_EQ(codec.pairSizeBytes(a, b),
                      codec.compressPair(a, b).sizeBytes());
        }
    }
    // ... and every cross-class combination.
    for (const CompClass ca : kClasses) {
        for (const CompClass cb : kClasses) {
            const Line a = DataGenerator::synthesize(ca, 11, 0);
            const Line b = DataGenerator::synthesize(cb, 12, 0);
            EXPECT_EQ(codec.pairSizeBytes(a, b),
                      codec.compressPair(a, b).sizeBytes());
        }
    }
}

} // namespace
} // namespace dice
