/**
 * @file
 * Tests of the observability layer: decision-ring wrap semantics, the
 * StatRegistry (duplicate detection, interval snapshots, JSON/CSV
 * export round-tripped through a real parser), Chrome trace-event
 * output, level-filtered thread-safe logging, and the CIP / DICE
 * install decision traces.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/log.hpp"
#include "common/ring_trace.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "common/trace_events.hpp"
#include "core/cip.hpp"
#include "core/compressed.hpp"
#include "core/data_source.hpp"
#include "mini_json.hpp"

namespace dice
{
namespace
{

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Unique temp path; removed by the caller. */
fs::path
tempPath(const std::string &stem)
{
    return fs::temp_directory_path() /
           (stem + "." + std::to_string(::getpid()) + ".tmp");
}

// ---------------------------------------------------------------------
// DecisionRing

TEST(DecisionRing, FillsInOrderBeforeWrapping)
{
    DecisionRing<int, 4> ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);

    ring.push(10);
    ring.push(11);
    ring.push(12);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pushes(), 3u);
    EXPECT_EQ(ring.at(0), 10);
    EXPECT_EQ(ring.at(1), 11);
    EXPECT_EQ(ring.at(2), 12);
}

TEST(DecisionRing, WrapKeepsTheNewestWindowOldestFirst)
{
    DecisionRing<int, 4> ring;
    for (int i = 0; i < 10; ++i)
        ring.push(i);

    // 10 pushes through 4 slots: 6..9 survive, oldest first.
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushes(), 10u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i), static_cast<int>(6 + i));

    std::vector<int> seen;
    ring.forEach([&seen](int v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{6, 7, 8, 9}));
}

TEST(DecisionRing, WrapBoundaryExactlyFull)
{
    DecisionRing<int, 3> ring;
    ring.push(1);
    ring.push(2);
    ring.push(3); // exactly full, no wrap yet
    EXPECT_EQ(ring.at(0), 1);
    ring.push(4); // first overwrite
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.at(0), 2);
    EXPECT_EQ(ring.at(2), 4);
}

TEST(DecisionRing, ClearForgetsEverything)
{
    DecisionRing<int, 2> ring;
    ring.push(1);
    ring.push(2);
    ring.push(3);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.pushes(), 0u);
    ring.push(7);
    EXPECT_EQ(ring.at(0), 7);
}

TEST(DecisionRing, SingleSlotRingHoldsTheLatest)
{
    DecisionRing<int, 1> ring;
    ring.push(1);
    ring.push(2);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.at(0), 2);
}

// ---------------------------------------------------------------------
// StatGroup / Histogram guards (satellites)

TEST(StatsGuards, DuplicateStatNamePanics)
{
    StatGroup g("grp");
    Counter c;
    g.addCounter("hits", c);
    EXPECT_DEATH(g.addCounter("hits", c), "duplicate stat");
    EXPECT_DEATH(g.addFormula("hits", [] { return 0.0; }),
                 "duplicate stat");
}

TEST(StatsGuards, HistogramZeroBucketWidthPanics)
{
    EXPECT_DEATH(Histogram(4, 0), "bucket_width");
}

// ---------------------------------------------------------------------
// StatRegistry

TEST(StatRegistry, DuplicatePathPanics)
{
    StatRegistry reg;
    reg.add("l4", [] { return StatGroup("l4"); });
    EXPECT_DEATH(reg.add("l4", [] { return StatGroup("l4"); }),
                 "duplicate");
}

TEST(StatRegistry, FlattenReadsLiveCounters)
{
    Counter hits;
    StatRegistry reg;
    reg.add("l4", [&hits] {
        StatGroup g("l4");
        g.addCounter("hits", hits);
        return g;
    });

    ++hits;
    auto rows = reg.flatten();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].first, "l4.hits");
    EXPECT_EQ(rows[0].second, 1.0);

    // Providers re-materialize the group, so later reads see updates.
    ++hits;
    EXPECT_EQ(reg.flatten()[0].second, 2.0);
}

TEST(StatRegistry, JsonRoundTripMatchesGroupGet)
{
    Counter reads;
    reads += 41;
    ++reads;

    StatRegistry reg;
    reg.add("l4", [&reads] {
        StatGroup g("l4");
        g.addCounter("reads", reads);
        g.addFormula("hit_rate", [] { return 0.75; });
        return g;
    });
    reg.add("cip", [] {
        StatGroup g("cip");
        g.addFormula("accuracy", [] { return 0.5; });
        // Needs the quote/backslash escaping path in the emitter.
        g.addFormula("odd\"name\\here", [] { return 1.0; });
        // NaN must serialize as null, never as bare nan.
        g.addFormula("undefined",
                     [] { return std::nan(""); });
        return g;
    });

    const std::string json = reg.toJson();
    auto doc = testjson::parse(json);

    const auto &groups = doc->at("groups");
    const auto &l4 = groups.at("l4");
    // Every exported value must equal what StatGroup::get reports.
    StatGroup live("l4");
    live.addCounter("reads", reads);
    live.addFormula("hit_rate", [] { return 0.75; });
    EXPECT_EQ(l4.at("reads").number, live.get("reads"));
    EXPECT_EQ(l4.at("hit_rate").number, live.get("hit_rate"));

    const auto &cip = groups.at("cip");
    EXPECT_EQ(cip.at("accuracy").number, 0.5);
    EXPECT_EQ(cip.at("odd\"name\\here").number, 1.0);
    EXPECT_TRUE(cip.at("undefined").isNull());

    EXPECT_TRUE(doc->at("intervals").isArray());
    EXPECT_TRUE(doc->at("intervals").array.empty());
}

TEST(StatRegistry, IntervalSnapshotsAreMonotonicAndFrozen)
{
    Counter refs;
    StatRegistry reg;
    reg.add("sys", [&refs] {
        StatGroup g("sys");
        g.addCounter("refs", refs);
        return g;
    });

    refs += 100;
    reg.captureInterval("warmup", 100);
    refs += 150;
    reg.captureInterval("measure", 250);
    refs += 1;

    const auto &ivs = reg.intervals();
    ASSERT_EQ(ivs.size(), 2u);
    EXPECT_EQ(ivs[0].label, "warmup");
    EXPECT_EQ(ivs[1].label, "measure");
    EXPECT_LT(ivs[0].refs, ivs[1].refs);
    // A snapshot is a copy of the values at capture time; later counter
    // bumps must not leak into it.
    EXPECT_EQ(ivs[0].values[0].second, 100.0);
    EXPECT_EQ(ivs[1].values[0].second, 250.0);
    EXPECT_EQ(reg.flatten()[0].second, 251.0);

    // And they round-trip through the JSON export.
    auto doc = testjson::parse(reg.toJson());
    const auto &jiv = doc->at("intervals");
    ASSERT_EQ(jiv.array.size(), 2u);
    EXPECT_EQ(jiv.array[0]->at("label").string, "warmup");
    EXPECT_EQ(jiv.array[0]->at("refs").number, 100.0);
    EXPECT_EQ(jiv.array[1]->at("refs").number, 250.0);
    EXPECT_EQ(jiv.array[0]->at("values").at("sys.refs").number, 100.0);
}

TEST(StatRegistry, IntervalDeltasDifferenceConsecutiveSnapshots)
{
    Counter refs;
    Counter hits;
    StatRegistry reg;
    reg.add("sys", [&refs, &hits] {
        StatGroup g("sys");
        g.addCounter("refs", refs);
        g.addCounter("hits", hits);
        return g;
    });

    refs += 100;
    hits += 30;
    reg.captureInterval("warmup", 100);
    refs += 150;
    hits += 20;
    reg.captureInterval("measure", 250);

    // First interval differences against zero; later ones against the
    // immediately preceding snapshot.
    const auto d0 = reg.intervalDeltas(0);
    const auto d1 = reg.intervalDeltas(1);
    ASSERT_EQ(d0.size(), 2u);
    EXPECT_EQ(d0[0].first, "sys.refs");
    EXPECT_EQ(d0[0].second, 100.0);
    EXPECT_EQ(d0[1].second, 30.0);
    EXPECT_EQ(d1[0].second, 150.0);
    EXPECT_EQ(d1[1].second, 20.0);

    // JSON: every interval carries a "deltas" object alongside the
    // cumulative "values".
    auto doc = testjson::parse(reg.toJson());
    const auto &jiv = doc->at("intervals");
    ASSERT_EQ(jiv.array.size(), 2u);
    EXPECT_EQ(jiv.array[0]->at("deltas").at("sys.refs").number, 100.0);
    EXPECT_EQ(jiv.array[1]->at("deltas").at("sys.refs").number, 150.0);
    EXPECT_EQ(jiv.array[1]->at("deltas").at("sys.hits").number, 20.0);
    EXPECT_EQ(jiv.array[1]->at("values").at("sys.refs").number, 250.0);

    // CSV: "<name>.delta" rows scoped to the interval's label/refs.
    const std::string csv = reg.toCsv();
    EXPECT_NE(csv.find("warmup,100,sys.refs.delta,100"),
              std::string::npos);
    EXPECT_NE(csv.find("measure,250,sys.refs.delta,150"),
              std::string::npos);
    EXPECT_NE(csv.find("measure,250,sys.hits.delta,20"),
              std::string::npos);
}

TEST(StatRegistry, CsvHasHeaderFinalRowsAndIntervalRows)
{
    Counter c;
    c += 3;
    StatRegistry reg;
    reg.add("g", [&c] {
        StatGroup g("g");
        g.addCounter("count", c);
        return g;
    });
    reg.captureInterval("warmup", 10);

    const std::string csv = reg.toCsv();
    std::istringstream in(csv);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);

    ASSERT_GE(lines.size(), 3u);
    EXPECT_EQ(lines[0], "scope,refs,stat,value");
    EXPECT_NE(csv.find("warmup,10,g.count,3"), std::string::npos);
    EXPECT_NE(csv.find("final,"), std::string::npos);
}

TEST(StatRegistry, WriteJsonCreatesAParsableFile)
{
    StatRegistry reg;
    reg.add("g", [] {
        StatGroup g("g");
        g.addFormula("one", [] { return 1.0; });
        return g;
    });
    const fs::path path = tempPath("dice_reg");
    ASSERT_TRUE(reg.writeJson(path.string()));
    auto doc = testjson::parse(slurp(path));
    EXPECT_EQ(doc->at("groups").at("g").at("one").number, 1.0);
    fs::remove(path);

    EXPECT_FALSE(reg.writeJson("/nonexistent-dir/x/y.json"));
}

TEST(Telemetry, EnvKnobsAreReadPerCall)
{
    unsetenv("DICE_STATS_JSON");
    unsetenv("DICE_STATS_INTERVAL");
    unsetenv("DICE_DECISION_TRACE");
    unsetenv("DICE_PROGRESS");
    EXPECT_EQ(statsJsonDir(), "");
    EXPECT_EQ(statsIntervalRefs(), 0u);
    EXPECT_FALSE(decisionTraceEnabled());
    EXPECT_FALSE(progressEnabled());

    setenv("DICE_STATS_JSON", "/tmp/stats", 1);
    setenv("DICE_STATS_INTERVAL", "5000", 1);
    setenv("DICE_DECISION_TRACE", "1", 1);
    setenv("DICE_PROGRESS", "1", 1);
    EXPECT_EQ(statsJsonDir(), "/tmp/stats");
    EXPECT_EQ(statsIntervalRefs(), 5000u);
    EXPECT_TRUE(decisionTraceEnabled());
    EXPECT_TRUE(progressEnabled());

    unsetenv("DICE_STATS_JSON");
    unsetenv("DICE_STATS_INTERVAL");
    unsetenv("DICE_DECISION_TRACE");
    unsetenv("DICE_PROGRESS");
}

TEST(Telemetry, SanitizeFileStem)
{
    EXPECT_EQ(sanitizeFileStem("mix3_dice-2x.v1"), "mix3_dice-2x.v1");
    EXPECT_EQ(sanitizeFileStem("a/b:c d"), "a_b_c_d");
    EXPECT_EQ(sanitizeFileStem(""), "unnamed");
}

// ---------------------------------------------------------------------
// Chrome trace events

TEST(TraceEvents, SpansFromManyThreadsProduceAValidDocument)
{
    const fs::path path = tempPath("dice_trace");
    TraceLog::instance().setOutputForTest(path.string());
    ASSERT_TRUE(TraceLog::instance().enabled());

    {
        TraceSpan outer("sim", "sweep",
                        "{\"workload\": \"mix\\\"quoted\\\"\"}");
        std::vector<std::thread> workers;
        for (int t = 0; t < 4; ++t) {
            workers.emplace_back([t] {
                for (int i = 0; i < 8; ++i) {
                    std::string name = "w";
                    name += std::to_string(t);
                    name += '.';
                    name += std::to_string(i);
                    TraceSpan span("cell", std::move(name));
                }
            });
        }
        for (auto &w : workers)
            w.join();
    }

    ASSERT_TRUE(TraceLog::instance().flush());
    auto doc = testjson::parse(slurp(path));
    EXPECT_EQ(doc->at("displayTimeUnit").string, "ms");

    const auto &events = doc->at("traceEvents");
    ASSERT_TRUE(events.isArray());
    EXPECT_EQ(events.array.size(), 33u); // 4*8 cells + the outer span

    std::set<double> tids;
    bool saw_args = false;
    for (const auto &ev : events.array) {
        EXPECT_EQ(ev->at("ph").string, "X");
        EXPECT_TRUE(ev->at("ts").isNumber());
        EXPECT_TRUE(ev->at("dur").isNumber());
        EXPECT_TRUE(ev->at("pid").isNumber());
        tids.insert(ev->at("tid").number);
        if (ev->has("args")) {
            saw_args = true;
            EXPECT_EQ(ev->at("args").at("workload").string,
                      "mix\"quoted\"");
        }
    }
    // The four workers and the main thread land on distinct lanes.
    EXPECT_GE(tids.size(), 5u);
    EXPECT_TRUE(saw_args);

    // Re-flushing must rewrite the complete document, not truncate it
    // to events recorded since the previous flush.
    ASSERT_TRUE(TraceLog::instance().flush());
    auto doc2 = testjson::parse(slurp(path));
    EXPECT_EQ(doc2->at("traceEvents").array.size(), 33u);

    TraceLog::instance().setOutputForTest("");
    fs::remove(path);
}

TEST(TraceEvents, DisabledLogRecordsNothingAndFlushFails)
{
    TraceLog::instance().setOutputForTest("");
    EXPECT_FALSE(TraceLog::instance().enabled());
    {
        TraceSpan span("sim", "ignored");
    }
    EXPECT_EQ(TraceLog::instance().pendingEvents(), 0u);
    EXPECT_FALSE(TraceLog::instance().flush());
}

// ---------------------------------------------------------------------
// Logging (satellite: thread safety + level filter)

TEST(Log, LevelParsing)
{
    unsetenv("DICE_LOG_LEVEL");
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setenv("DICE_LOG_LEVEL", "quiet", 1);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setenv("DICE_LOG_LEVEL", "0", 1);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setenv("DICE_LOG_LEVEL", "debug", 1);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setenv("DICE_LOG_LEVEL", "2", 1);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setenv("DICE_LOG_LEVEL", "warn", 1);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setenv("DICE_LOG_LEVEL", "nonsense", 1);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    unsetenv("DICE_LOG_LEVEL");
}

TEST(Log, WarnIsSuppressedWhenQuietAndDebugNeedsDebug)
{
    setenv("DICE_LOG_LEVEL", "quiet", 1);
    testing::internal::CaptureStderr();
    dice_warn("should not appear");
    dice_debug("should not appear either");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setenv("DICE_LOG_LEVEL", "warn", 1);
    testing::internal::CaptureStderr();
    dice_warn("warn visible %d", 7);
    dice_debug("debug hidden");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn visible 7"), std::string::npos);
    EXPECT_EQ(out.find("debug hidden"), std::string::npos);

    setenv("DICE_LOG_LEVEL", "debug", 1);
    testing::internal::CaptureStderr();
    dice_debug("debug visible");
    out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("debug visible"), std::string::npos);
    unsetenv("DICE_LOG_LEVEL");
}

TEST(Log, ParallelWarnsNeverInterleaveMidLine)
{
    setenv("DICE_LOG_LEVEL", "warn", 1);
    testing::internal::CaptureStderr();
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([t] {
            for (int i = 0; i < 50; ++i)
                dice_warn("thread-%d-message-%d-end", t, i);
        });
    }
    for (auto &w : workers)
        w.join();
    const std::string out = testing::internal::GetCapturedStderr();
    unsetenv("DICE_LOG_LEVEL");

    // Every line that mentions a worker message must be a complete,
    // untorn "thread-T-message-I-end" record.
    std::istringstream in(out);
    std::string line;
    int complete = 0;
    while (std::getline(in, line)) {
        if (line.find("thread-") == std::string::npos)
            continue;
        EXPECT_NE(line.find("-end"), std::string::npos) << line;
        ++complete;
    }
    EXPECT_EQ(complete, 200);
}

// ---------------------------------------------------------------------
// CIP decision ring + burst dump

TEST(CipTrace, RingIsOffByDefaultAndOneBranchWhenOff)
{
    unsetenv("DICE_DECISION_TRACE");
    Cip cip(64);
    EXPECT_FALSE(cip.decisionTraceOn());
    cip.updateRead(1, IndexScheme::BAI);
    EXPECT_TRUE(cip.readRing().empty());
}

TEST(CipTrace, RingRecordsPredictedVsActual)
{
    Cip cip(64);
    cip.enableDecisionTrace(true);

    // Fresh LTT predicts TSI; feeding BAI is a scored misprediction.
    cip.updateRead(0x1000, IndexScheme::BAI);
    // Same page now predicts BAI; BAI again is a correct prediction.
    cip.updateRead(0x1001, IndexScheme::BAI);

    const auto &ring = cip.readRing();
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.at(0).line, 0x1000u);
    EXPECT_EQ(ring.at(0).predicted, IndexScheme::TSI);
    EXPECT_EQ(ring.at(0).actual, IndexScheme::BAI);
    EXPECT_EQ(ring.at(1).predicted, IndexScheme::BAI);
    EXPECT_EQ(ring.at(1).actual, IndexScheme::BAI);

    const std::string dump = cip.dumpReadRing();
    EXPECT_NE(dump.find("<-- miss"), std::string::npos);

    // Disabling clears all trace state.
    cip.enableDecisionTrace(false);
    EXPECT_TRUE(cip.readRing().empty());
}

TEST(CipTrace, MispredictionBurstTriggersOneDump)
{
    setenv("DICE_LOG_LEVEL", "warn", 1);
    Cip cip(64);
    cip.enableDecisionTrace(true);

    // Alternating actual schemes on one page defeat the last-time
    // predictor completely: every scored read is a misprediction.
    testing::internal::CaptureStderr();
    for (int i = 0; i < 130; ++i)
        cip.updateRead(0x2000,
                       i % 2 ? IndexScheme::BAI : IndexScheme::TSI);
    const std::string err = testing::internal::GetCapturedStderr();
    unsetenv("DICE_LOG_LEVEL");

    // 130 all-miss reads cover two full 64-read windows: one dump per
    // window, with the hysteresis preventing per-access dumping.
    EXPECT_EQ(cip.burstDumps(), 2u);
    EXPECT_NE(err.find("misprediction burst"), std::string::npos);
    EXPECT_EQ(cip.readRing().size(), 130u);
    EXPECT_EQ(cip.readRing().pushes(), 130u);
}

// ---------------------------------------------------------------------
// DICE install decision ring

CompressedCacheConfig
smallDiceConfig()
{
    CompressedCacheConfig cfg;
    cfg.base.capacity = 1_MiB;
    cfg.policy = CompressionPolicy::Dice;
    return cfg;
}

TEST(InstallTrace, RingRecordsSchemeSizeAndPairing)
{
    ZeroDataSource zeros;
    CompressedDramCache cache(smallDiceConfig(), zeros);
    cache.enableDecisionTrace(true);
    EXPECT_TRUE(cache.cipForTest().decisionTraceOn());

    // Zero lines compress far below the 36-B threshold, so installs
    // choose BAI whenever TSI and BAI differ; the even/odd neighbors
    // land as one shared-tag pair.
    Cycle now = 0;
    for (LineAddr line = 0; line < 32; ++line)
        cache.install(line, 0, false, now += 100, true);

    const auto &ring = cache.installRing();
    ASSERT_EQ(ring.size(), 32u);
    EXPECT_EQ(ring.pushes(), 32u);

    std::uint64_t paired = 0;
    ring.forEach([&paired](const InstallTrace &t) {
        // All-zero lines compress below the 36-B DICE threshold (the
        // codec encodes the zero line in metadata alone, size 0).
        EXPECT_LE(t.size_bytes, 36u);
        if (t.paired)
            ++paired;
    });
    EXPECT_EQ(paired, cache.pairInstalls());
    EXPECT_GT(paired, 0u);

    // The ring mirrors the install counters: every non-invariant
    // install of a zero line goes BAI.
    std::uint64_t bai = 0;
    ring.forEach([&bai](const InstallTrace &t) {
        if (!t.invariant && t.scheme == IndexScheme::BAI)
            ++bai;
    });
    EXPECT_EQ(bai, cache.installsBai());

    cache.enableDecisionTrace(false);
    EXPECT_TRUE(cache.installRing().empty());
    EXPECT_FALSE(cache.cipForTest().decisionTraceOn());
}

TEST(InstallTrace, OffByDefaultCostsNothing)
{
    ZeroDataSource zeros;
    unsetenv("DICE_DECISION_TRACE");
    CompressedDramCache cache(smallDiceConfig(), zeros);
    cache.install(1, 0, false, 100, true);
    EXPECT_TRUE(cache.installRing().empty());
}

} // namespace
} // namespace dice
