/**
 * @file
 * Tests for types, RNG, stats, and the bitstream reader/writer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "compress/bitstream.hpp"

namespace dice
{
namespace
{

TEST(Types, AddressSlicing)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(addrOf(1), 64u);
    EXPECT_EQ(pageOf(4095), 0u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(pageOfLine(63), 0u);
    EXPECT_EQ(pageOfLine(64), 1u);
    EXPECT_EQ(kLinesPerPage, 64u);
}

TEST(Types, SizeLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, Mix64IsStable)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
    EXPECT_NE(mix64(1, 2), mix64(2, 1)); // order-sensitive
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBucketsAndMoments)
{
    Histogram h(4, 10); // buckets [0,10) [10,20) [20,30) [30,40) +ovf
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 135.0 / 4);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, StatGroupDumpAndGet)
{
    Counter c;
    c += 3;
    StatGroup g("grp");
    g.addCounter("events", c);
    g.addFormula("ratio", [] { return 0.5; });
    EXPECT_DOUBLE_EQ(g.get("events"), 3.0);
    EXPECT_DOUBLE_EQ(g.get("ratio"), 0.5);
    EXPECT_TRUE(std::isnan(g.get("missing")));
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.events 3"), std::string::npos);
    EXPECT_NE(dump.find("grp.ratio 0.5"), std::string::npos);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Bitstream, WriteReadRoundTrip)
{
    BitWriter bw;
    bw.write(0b101, 3);
    bw.write(0xABCD, 16);
    bw.write(1, 1);
    bw.write(0x123456789ABCDEFull, 60);
    EXPECT_EQ(bw.bitSize(), 80u);
    EXPECT_EQ(bw.byteSize(), 10u);

    BitReader br(bw.bytes());
    EXPECT_EQ(br.read(3), 0b101u);
    EXPECT_EQ(br.read(16), 0xABCDu);
    EXPECT_EQ(br.read(1), 1u);
    EXPECT_EQ(br.read(60), 0x123456789ABCDEFull);
}

TEST(Bitstream, UnalignedSequences)
{
    // Several randomized streams, each filled to just under the
    // writer's fixed capacity (2x a line, the codec payload bound).
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed);
        BitWriter bw;
        std::vector<std::pair<std::uint64_t, std::uint32_t>> writes;
        std::uint32_t bits = 0;
        while (bits + 64 <= 8 * kMaxPayloadBytes) {
            const std::uint32_t n =
                static_cast<std::uint32_t>(rng.between(1, 64));
            const std::uint64_t v =
                rng.next() & (n == 64 ? ~0ull : ((1ull << n) - 1));
            writes.emplace_back(v, n);
            bw.write(v, n);
            bits += n;
        }
        EXPECT_EQ(bw.bitSize(), bits);
        BitReader br(bw.bytes());
        for (const auto &[v, n] : writes)
            EXPECT_EQ(br.read(n), v);
    }
}

TEST(Bitstream, ByteSizeRoundsUp)
{
    BitWriter bw;
    bw.write(1, 1);
    EXPECT_EQ(bw.byteSize(), 1u);
    bw.write(0, 7);
    EXPECT_EQ(bw.byteSize(), 1u);
    bw.write(0, 1);
    EXPECT_EQ(bw.byteSize(), 2u);
}

} // namespace
} // namespace dice
