/**
 * @file
 * End-to-end observability tests through the bench harness: a sweep
 * run with DICE_STATS_JSON / DICE_STATS_CSV must leave one valid,
 * complete stats document per fresh cell, DICE_TRACE_OUT must yield a
 * Perfetto-loadable trace with per-cell spans, and DICE_PROGRESS must
 * produce the heartbeat line.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/telemetry.hpp"
#include "common/trace_events.hpp"
#include "harness.hpp"
#include "mini_json.hpp"

namespace dice::bench
{
namespace
{

namespace fs = std::filesystem;

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Unique scratch dir under the system temp root; caller removes. */
fs::path
scratchDir(const std::string &stem)
{
    const fs::path dir = fs::temp_directory_path() /
                         (stem + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    return dir;
}

/** Tiny-run environment shared by every test in this binary. */
class StatsExportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Small fresh runs: the persistent cache is bypassed so every
        // cell actually simulates (a cache hit would skip the export).
        setenv("DICE_BENCH_REFS", "1200", 1);
        setenv("DICE_BENCH_NO_CACHE", "1", 1);
        setenv("DICE_BENCH_JOBS", "2", 1);
    }

    void
    TearDown() override
    {
        unsetenv("DICE_STATS_JSON");
        unsetenv("DICE_STATS_CSV");
        unsetenv("DICE_STATS_INTERVAL");
        unsetenv("DICE_PROGRESS");
    }
};

TEST_F(StatsExportTest, SweepWritesOneValidJsonPerCell)
{
    const fs::path dir = scratchDir("dice_stats_json");
    setenv("DICE_STATS_JSON", dir.c_str(), 1);
    setenv("DICE_STATS_CSV", dir.c_str(), 1);
    // Half-run snapshots: every cell gets at least one warmup and one
    // measurement interval at this refs budget.
    setenv("DICE_STATS_INTERVAL", "600", 1);

    const std::vector<std::string> workloads = {rateNames()[0],
                                                mixNames()[0]};
    const SystemConfig base = defaultBase();
    const std::vector<OrgCell> orgs = {
        {configureBaseline(base), "sx_base"},
        {configureDice(base), "sx_dice"},
    };
    runSweep(workloads, orgs);

    for (const std::string &workload : workloads) {
        for (const OrgCell &org : orgs) {
            const std::string stem =
                sanitizeFileStem(workload + "_" + org.cache_key);
            const fs::path json_path = dir / (stem + ".json");
            ASSERT_TRUE(fs::exists(json_path)) << json_path;

            auto doc = testjson::parse(slurp(json_path));
            const auto &groups = doc->at("groups");

            // Core groups every organization must export.
            for (const char *g :
                 {"system", "l3", "l4", "l4.dram", "mapi", "mem.dram",
                  "trace_arena"})
                EXPECT_TRUE(groups.has(g)) << stem << " missing " << g;

            EXPECT_GT(groups.at("system").at("refs").number, 0.0);

            // Arena counters: these cells replayed arena streams.
            const auto &arena = groups.at("trace_arena");
            EXPECT_TRUE(arena.has("hits"));
            EXPECT_TRUE(arena.has("evictions"));
            EXPECT_GT(arena.at("resident_bytes").number, 0.0);

            // The DICE organization additionally exports CIP accuracy
            // and the BAI/TSI install mix; the baseline must not.
            if (org.cache_key == "sx_dice") {
                ASSERT_TRUE(groups.has("cip")) << stem;
                const double acc =
                    groups.at("cip").at("read_accuracy").number;
                EXPECT_GE(acc, 0.0);
                EXPECT_LE(acc, 1.0);
                const auto &l4 = groups.at("l4");
                const double installs =
                    l4.at("installs_bai").number +
                    l4.at("installs_tsi").number +
                    l4.at("installs_invariant").number;
                EXPECT_GT(installs, 0.0);
            } else {
                EXPECT_FALSE(groups.has("cip")) << stem;
            }

            // Interval snapshots: labels cover both phases, refs are
            // strictly increasing.
            const auto &ivs = doc->at("intervals");
            ASSERT_GE(ivs.array.size(), 2u) << stem;
            double prev = 0.0;
            bool saw_warmup = false, saw_measure = false;
            for (const auto &iv : ivs.array) {
                EXPECT_GT(iv->at("refs").number, prev);
                prev = iv->at("refs").number;
                const std::string &label = iv->at("label").string;
                saw_warmup |= label == "warmup";
                saw_measure |= label == "measure";
            }
            EXPECT_TRUE(saw_warmup) << stem;
            EXPECT_TRUE(saw_measure) << stem;

            // The CSV twin exists and has the expected header.
            const std::string csv = slurp(dir / (stem + ".csv"));
            EXPECT_EQ(csv.rfind("scope,refs,stat,value", 0), 0u);
            EXPECT_NE(csv.find("final,"), std::string::npos);
        }
    }

    fs::remove_all(dir);
}

TEST_F(StatsExportTest, SweepEmitsAPerfettoLoadableTrace)
{
    const fs::path trace = fs::temp_directory_path() /
                           ("dice_trace_sweep." +
                            std::to_string(::getpid()) + ".json");
    TraceLog::instance().setOutputForTest(trace.string());

    const SystemConfig base = defaultBase();
    runSweep({rateNames()[1]}, {{configureDice(base), "sx_trace"}});

    // runSweep flushes on completion when tracing is enabled.
    auto doc = testjson::parse(slurp(trace));
    EXPECT_EQ(doc->at("displayTimeUnit").string, "ms");
    const auto &events = doc->at("traceEvents");
    ASSERT_TRUE(events.isArray());

    bool saw_cell = false, saw_sim = false, saw_measure = false;
    for (const auto &ev : events.array) {
        // Spans are "X"; point markers (e.g. arena evictions) are "i".
        const std::string &ph = ev->at("ph").string;
        EXPECT_TRUE(ph == "X" || ph == "i") << ph;
        const std::string &cat = ev->at("cat").string;
        if (cat == "cell") {
            saw_cell = true;
            EXPECT_EQ(ev->at("args").at("org").string, "sx_trace");
        }
        saw_sim |= cat == "simulate";
        saw_measure |= ev->at("name").string == "measure";
    }
    EXPECT_TRUE(saw_cell);
    EXPECT_TRUE(saw_sim);
    EXPECT_TRUE(saw_measure); // the System's per-phase span

    TraceLog::instance().setOutputForTest("");
    fs::remove(trace);
}

TEST_F(StatsExportTest, ProgressHeartbeatReportsEveryCell)
{
    setenv("DICE_PROGRESS", "1", 1);

    testing::internal::CaptureStderr();
    const SystemConfig base = defaultBase();
    runSweep({rateNames()[2], gapNames()[0]},
             {{configureBaseline(base), "sx_prog"}});
    const std::string err = testing::internal::GetCapturedStderr();

    // One heartbeat per completed cell, ending at 2/2; the [sim]
    // announcement yields to the heartbeat.
    EXPECT_NE(err.find("[progress] 1/2 cells"), std::string::npos) << err;
    EXPECT_NE(err.find("[progress] 2/2 cells"), std::string::npos) << err;
    EXPECT_NE(err.find("arena"), std::string::npos);
    EXPECT_EQ(err.find("[sim]"), std::string::npos);
}

} // namespace
} // namespace dice::bench
