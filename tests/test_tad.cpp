/**
 * @file
 * TAD set-layout tests: capacity accounting, shared-tag pairs, LRU
 * eviction, and the 72-B / 28-line invariants of Figure 5.
 */

#include <gtest/gtest.h>

#include "core/tad.hpp"

namespace dice
{
namespace
{

TEST(TadSet, EmptySet)
{
    TadSet s;
    EXPECT_EQ(s.bytesUsed(), 0u);
    EXPECT_EQ(s.lineCount(), 0u);
    EXPECT_FALSE(s.lookup(5).found);
    EXPECT_FALSE(s.contains(5));
}

TEST(TadSet, SingleInsertAccounting)
{
    TadSet s;
    s.insertSingle(10, 20, false, 1, true, 1);
    EXPECT_EQ(s.bytesUsed(), 24u); // 4-B tag + 20-B payload
    EXPECT_EQ(s.lineCount(), 1u);
    const TadLookup lk = s.lookup(10);
    EXPECT_TRUE(lk.found);
    EXPECT_FALSE(lk.dirty);
    EXPECT_TRUE(lk.bai);
    EXPECT_FALSE(lk.in_pair);
    EXPECT_EQ(lk.payload, 1u);
}

TEST(TadSet, UncompressedSingleFitsExactlyOnce)
{
    TadSet s;
    EXPECT_TRUE(s.fits(64, 1));
    s.insertSingle(10, 64, false, 0, false, 1);
    EXPECT_EQ(s.bytesUsed(), 68u);
    // 68 + 4 (tag) = 72 fits exactly; any payload byte would not.
    EXPECT_TRUE(s.fits(0, 1));
    EXPECT_FALSE(s.fits(1, 1));
}

TEST(TadSet, ZeroByteLineSharesTheLastFourBytes)
{
    TadSet s;
    s.insertSingle(10, 64, false, 0, false, 1);
    EXPECT_TRUE(s.fits(0, 1));
    s.insertSingle(42, 0, false, 0, false, 2);
    EXPECT_EQ(s.bytesUsed(), 72u);
    EXPECT_EQ(s.lineCount(), 2u);
}

TEST(TadSet, PairInsertAndLookup)
{
    TadSet s;
    s.insertPair(20, 68, true, 11, false, 22, true, 1);
    EXPECT_EQ(s.bytesUsed(), 72u);
    EXPECT_EQ(s.lineCount(), 2u);

    const TadLookup even = s.lookup(20);
    EXPECT_TRUE(even.found);
    EXPECT_TRUE(even.dirty);
    EXPECT_TRUE(even.in_pair);
    EXPECT_EQ(even.payload, 11u);
    EXPECT_TRUE(even.neighbor_present);
    EXPECT_EQ(even.neighbor_payload, 22u);

    const TadLookup odd = s.lookup(21);
    EXPECT_TRUE(odd.found);
    EXPECT_FALSE(odd.dirty);
    EXPECT_EQ(odd.payload, 22u);
}

TEST(TadSet, NeighborAcrossSeparateItems)
{
    TadSet s;
    s.insertSingle(30, 16, false, 5, true, 1);
    s.insertSingle(31, 16, false, 6, true, 2);
    const TadLookup lk = s.lookup(30);
    EXPECT_TRUE(lk.neighbor_present);
    EXPECT_EQ(lk.neighbor_payload, 6u);
    EXPECT_FALSE(lk.in_pair);
}

TEST(TadSet, RemoveSingle)
{
    TadSet s;
    s.insertSingle(10, 20, true, 9, false, 1);
    const auto wb = s.remove(10, 0);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->line, 10u);
    EXPECT_EQ(wb->payload, 9u);
    EXPECT_EQ(s.lineCount(), 0u);
    EXPECT_EQ(s.bytesUsed(), 0u);
}

TEST(TadSet, RemoveCleanReturnsNothing)
{
    TadSet s;
    s.insertSingle(10, 20, false, 9, false, 1);
    EXPECT_FALSE(s.remove(10, 0).has_value());
}

TEST(TadSet, RemoveHalfOfPairLeavesSurvivorSingle)
{
    TadSet s;
    s.insertPair(20, 68, false, 11, true, 22, true, 1);
    const auto wb = s.remove(20, 36); // survivor re-sized to 36 B
    EXPECT_FALSE(wb.has_value());     // even half was clean
    EXPECT_FALSE(s.contains(20));
    EXPECT_TRUE(s.contains(21));
    EXPECT_EQ(s.bytesUsed(), 40u); // 4 + 36
    const TadLookup lk = s.lookup(21);
    EXPECT_TRUE(lk.dirty);
    EXPECT_FALSE(lk.in_pair);
    EXPECT_EQ(lk.payload, 22u);
}

TEST(TadSet, RemoveDirtyHalfOfPairWritesBack)
{
    TadSet s;
    s.insertPair(20, 68, false, 11, true, 22, true, 1);
    const auto wb = s.remove(21, 36);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(wb->line, 21u);
    EXPECT_EQ(wb->payload, 22u);
}

TEST(TadSet, EvictLruPicksOldestWholeItem)
{
    TadSet s;
    s.insertSingle(10, 10, false, 0, false, /*lru=*/5);
    s.insertSingle(42, 10, true, 7, false, /*lru=*/2);
    WritebackList wbs;
    EXPECT_TRUE(s.evictLru(/*protect=*/10, wbs));
    EXPECT_FALSE(s.contains(42));
    ASSERT_EQ(wbs.size(), 1u);
    EXPECT_EQ(wbs[0].line, 42u);
    EXPECT_EQ(wbs[0].payload, 7u);
}

TEST(TadSet, EvictLruNeverEvictsProtectedLine)
{
    TadSet s;
    s.insertSingle(10, 10, false, 0, false, 1);
    WritebackList wbs;
    EXPECT_FALSE(s.evictLru(10, wbs));
    EXPECT_TRUE(s.contains(10));
}

TEST(TadSet, EvictLruProtectsThePairOfTheProtectedLine)
{
    TadSet s;
    s.insertPair(20, 30, false, 0, false, 0, true, 1);
    WritebackList wbs;
    // Protecting line 21 protects the whole (20,21) item.
    EXPECT_FALSE(s.evictLru(21, wbs));
}

TEST(TadSet, EvictingPairWritesBackBothDirtyHalves)
{
    TadSet s;
    s.insertPair(20, 30, true, 1, true, 2, true, 1);
    WritebackList wbs;
    EXPECT_TRUE(s.evictLru(99, wbs));
    ASSERT_EQ(wbs.size(), 2u);
    EXPECT_EQ(wbs[0].line, 20u);
    EXPECT_EQ(wbs[1].line, 21u);
}

TEST(TadSet, TouchUpdatesLruOrder)
{
    TadSet s;
    s.insertSingle(10, 10, false, 0, false, 1);
    s.insertSingle(42, 10, false, 0, false, 2);
    s.touch(10, 3); // 10 becomes MRU; 42 is now LRU
    WritebackList wbs;
    EXPECT_TRUE(s.evictLru(999, wbs));
    EXPECT_TRUE(s.contains(10));
    EXPECT_FALSE(s.contains(42));
}

TEST(TadSet, MarkDirtyReplacesPayload)
{
    TadSet s;
    s.insertSingle(10, 10, false, 1, false, 1);
    EXPECT_TRUE(s.markDirty(10, 99));
    EXPECT_FALSE(s.markDirty(11, 0));
    const TadLookup lk = s.lookup(10);
    EXPECT_TRUE(lk.dirty);
    EXPECT_EQ(lk.payload, 99u);
}

TEST(TadSet, ManyTinyLinesUpTo28)
{
    // 28 zero-byte (ZCA) lines cost 28 tags = 112 B > 72 B, so the
    // byte budget binds first; with 2-B... with 4-B tags 17 lines fit.
    TadSet s;
    std::uint32_t inserted = 0;
    for (LineAddr l = 0; l < 100; l += 2) {
        if (!s.fits(0, 1))
            break;
        s.insertSingle(l, 0, false, 0, false, l);
        ++inserted;
    }
    EXPECT_EQ(inserted, 18u); // 18 * 4 = 72
    EXPECT_EQ(s.bytesUsed(), 72u);
}

TEST(TadSet, LineCapBindsWithSharedTags)
{
    // With shared-tag pairs of ZCA lines (4 B per 2 lines), the
    // 28-line cap binds before the byte budget.
    TadSet s;
    std::uint32_t lines = 0;
    for (LineAddr base = 0; base < 200; base += 2) {
        if (!s.fits(0, 2))
            break;
        s.insertPair(base, 0, false, 0, false, 0, true, base);
        lines += 2;
    }
    EXPECT_EQ(lines, 28u);
    EXPECT_EQ(s.bytesUsed(), 14u * 4u);
}

TEST(TadSet, CustomBudgetForAssociativeOrganizations)
{
    TadSet s(8 * 72, 32, 2); // SCC-style set
    for (LineAddr l = 0; l < 64; l += 2) {
        if (!s.fits(16, 1))
            break;
        s.insertSingle(l, 16, false, 0, false, l);
    }
    EXPECT_EQ(s.lineCount(), 32u); // line cap binds
}

} // namespace
} // namespace dice
