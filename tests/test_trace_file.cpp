/**
 * @file
 * Trace-file round trips: writer/reader symmetry, comments, malformed
 * records, and rewind.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workloads/trace_file.hpp"

namespace dice
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "dice_trace_test.txt";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    const WorkloadProfile prof = profileByName("soplex");
    TraceGenerator gen(prof, 4096, 100000, 42);

    std::vector<MemRef> refs;
    {
        TraceFileWriter writer(path_);
        writer.comment("synthetic soplex slice");
        for (int i = 0; i < 2000; ++i) {
            const MemRef ref = gen.next();
            refs.push_back(ref);
            writer.append(ref);
        }
        EXPECT_EQ(writer.written(), 2000u);
    }

    TraceFileReader reader(path_);
    MemRef ref;
    for (const MemRef &expect : refs) {
        ASSERT_TRUE(reader.next(ref));
        EXPECT_EQ(ref.line, expect.line);
        EXPECT_EQ(ref.is_write, expect.is_write);
        EXPECT_EQ(ref.gap_instr, expect.gap_instr);
        EXPECT_EQ(ref.pc, expect.pc);
    }
    EXPECT_FALSE(reader.next(ref));
    EXPECT_EQ(reader.consumed(), 2000u);
}

TEST_F(TraceFileTest, RewindRestartsTheStream)
{
    {
        TraceFileWriter writer(path_);
        writer.append(MemRef{0xABC, true, 7, 0x400100});
        writer.append(MemRef{0xDEF, false, 9, 0x400200});
    }
    TraceFileReader reader(path_);
    MemRef a, b;
    ASSERT_TRUE(reader.next(a));
    ASSERT_TRUE(reader.next(b));
    ASSERT_FALSE(reader.next(a));
    reader.rewind();
    ASSERT_TRUE(reader.next(a));
    EXPECT_EQ(a.line, 0xABCu);
    EXPECT_TRUE(a.is_write);
    EXPECT_EQ(a.gap_instr, 7u);
    EXPECT_EQ(a.pc, 0x400100u);
}

TEST_F(TraceFileTest, SkipsCommentsAndMalformedLines)
{
    {
        std::ofstream out(path_);
        out << "# header\n";
        out << "R 10 5 400\n";
        out << "garbage line that is not a record\n";
        out << "X 11 5 400\n"; // bad kind
        out << "\n";
        out << "W 12 6 500\n";
    }
    TraceFileReader reader(path_);
    MemRef ref;
    ASSERT_TRUE(reader.next(ref));
    EXPECT_EQ(ref.line, 0x10u);
    EXPECT_FALSE(ref.is_write);
    ASSERT_TRUE(reader.next(ref));
    EXPECT_EQ(ref.line, 0x12u);
    EXPECT_TRUE(ref.is_write);
    EXPECT_FALSE(reader.next(ref));
    EXPECT_EQ(reader.consumed(), 2u);
}

} // namespace
} // namespace dice
