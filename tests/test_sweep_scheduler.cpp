/**
 * @file
 * Tests of the work-stealing sweep scheduler: the shared claim/lease
 * protocol (common/claim_file.hpp), the cell claim queue's cost
 * ordering and exactly-once claim handout — including a forked
 * two-claimant fuzz race — lease-expiry requeue of a SIGKILLed
 * holder's cells, and a --join-style participant attaching to a
 * half-drained batch. The byte-identity of distributed vs serial
 * sweep *output* is covered end-to-end by the CI sweep legs; these
 * tests pin the scheduling machinery itself.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sweep_queue.hpp"

#include "common/claim_file.hpp"

#ifndef _WIN32
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dice
{
namespace
{

namespace fs = std::filesystem;
using bench::QueueCell;
using bench::SweepQueue;

/** Fresh per-test scratch directory under the system temp root. */
fs::path
scratchDir(const std::string &tag)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("dice_sweep_sched." + tag + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** A batch of @p n cells with descending-index cost n-1, n-2, ... */
std::vector<QueueCell>
cellsAscendingCost(std::size_t n)
{
    std::vector<QueueCell> cells;
    for (std::size_t i = 0; i < n; ++i)
        cells.push_back(QueueCell{"cell" + std::to_string(i), i,
                                  static_cast<double>(i)});
    return cells;
}

TEST(ClaimFile, BodyRoundTripsAndSelfIsAlive)
{
    const fs::path dir = scratchDir("body");
    const fs::path path = dir / "probe.lease";

    ASSERT_EQ(createClaimFile(path), ClaimAttempt::Acquired);
    std::string content;
    {
        std::ifstream in(path);
        std::getline(in, content);
    }
    long pid = 0;
    std::string host;
    ASSERT_TRUE(parseClaimBody(content + "\n", pid, host));
    EXPECT_EQ(pid, claimPid());
    EXPECT_EQ(host, claimHost());
    EXPECT_TRUE(claimPidAlive(pid));

    // A live same-host claim is live regardless of mtime threshold.
    EXPECT_TRUE(claimFileLive(path, 3600));
    fs::remove_all(dir);
}

TEST(ClaimFile, SecondCreateIsBusyUntilRemoved)
{
    const fs::path dir = scratchDir("excl");
    const fs::path path = dir / "probe.lease";

    ASSERT_EQ(createClaimFile(path), ClaimAttempt::Acquired);
    EXPECT_EQ(createClaimFile(path), ClaimAttempt::Busy);
    fs::remove(path);
    EXPECT_EQ(createClaimFile(path), ClaimAttempt::Acquired);
    fs::remove_all(dir);
}

TEST(ClaimFile, GarbageBodiesAreRejected)
{
    long pid = 0;
    std::string host;
    EXPECT_FALSE(parseClaimBody("", pid, host));
    EXPECT_FALSE(parseClaimBody("pid", pid, host));
    EXPECT_FALSE(parseClaimBody("pid abc host x\n", pid, host));
    EXPECT_FALSE(parseClaimBody("owner 12 host x\n", pid, host));
}

#ifndef _WIN32

TEST(ClaimFile, DeadPidClaimIsNotLive)
{
    const fs::path dir = scratchDir("dead");
    const fs::path path = dir / "probe.lease";

    // Forge a same-host claim from a pid that cannot be alive.
    {
        std::ofstream out(path);
        out << "pid 999999999 host " << claimHost() << "\n";
    }
    EXPECT_FALSE(claimFileLive(path, 3600));
    fs::remove_all(dir);
}

TEST(ClaimFile, ForeignHostClaimGoesStaleByAge)
{
    const fs::path dir = scratchDir("foreign");
    const fs::path path = dir / "probe.lease";

    // A claim from another host cannot be pid-probed; only the mtime
    // threshold applies. Age 0 ⇒ everything is stale; huge ⇒ live.
    {
        std::ofstream out(path);
        out << "pid 1 host not-this-host-ever\n";
    }
    EXPECT_TRUE(claimFileLive(path, 3600));
    EXPECT_FALSE(claimFileLive(path, 0));

    // refreshClaimFile keeps it fresh without changing the body.
    EXPECT_TRUE(refreshClaimFile(path));
    std::string content;
    {
        std::ifstream in(path);
        std::getline(in, content);
    }
    EXPECT_EQ(content, "pid 1 host not-this-host-ever");
    fs::remove_all(dir);
}

#endif // !_WIN32

TEST(SweepQueue, ClaimsCostDescendingAndExactlyOnce)
{
    const fs::path dir = scratchDir("order");
    SweepQueue q(dir, cellsAscendingCost(8), 0, 1);

    std::vector<std::size_t> order;
    for (;;) {
        const std::optional<std::size_t> idx = q.claimNext();
        if (!idx)
            break;
        order.push_back(q.cell(*idx).canonical_index);
        q.publish(*idx, "{}\n");
    }
    // Cost == canonical index here, so the handout order is exactly
    // descending canonical index, each cell exactly once.
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], 7 - i);
    EXPECT_TRUE(q.complete());
    EXPECT_EQ(q.stats().claimed, 8u);
    EXPECT_EQ(q.stats().published, 8u);
    fs::remove_all(dir);
}

TEST(SweepQueue, StealAccountingFollowsHomeShard)
{
    const fs::path dir = scratchDir("steal");
    // Participant is shard 0 of 2: odd canonical indices are steals.
    SweepQueue q(dir, cellsAscendingCost(6), 0, 2);
    while (const std::optional<std::size_t> idx = q.claimNext())
        q.publish(*idx, "{}\n");
    EXPECT_EQ(q.stats().claimed, 6u);
    EXPECT_EQ(q.stats().stolen, 3u);
    fs::remove_all(dir);

    // No home shard (coordinator / --join): every claim is a steal.
    const fs::path dir2 = scratchDir("steal2");
    SweepQueue q2(dir2, cellsAscendingCost(4), 0, 0);
    while (const std::optional<std::size_t> idx = q2.claimNext())
        q2.publish(*idx, "{}\n");
    EXPECT_EQ(q2.stats().stolen, 4u);
    fs::remove_all(dir2);
}

TEST(SweepQueue, PublishedDocsAreDoneForLateAttachers)
{
    const fs::path dir = scratchDir("attach");
    {
        SweepQueue first(dir, cellsAscendingCost(5), 0, 1);
        while (const std::optional<std::size_t> idx = first.claimNext())
            first.publish(*idx, "{}\n");
        EXPECT_TRUE(first.complete());
    }
    // A second participant attaching afterwards claims nothing: every
    // cell's document already exists.
    SweepQueue second(dir, cellsAscendingCost(5), 0, 1);
    EXPECT_EQ(second.claimNext(), std::nullopt);
    EXPECT_TRUE(second.complete());
    EXPECT_EQ(second.stats().claimed, 0u);
    fs::remove_all(dir);
}

TEST(SweepQueue, ResetCellReturnsACellToVirginState)
{
    const fs::path dir = scratchDir("reset");
    {
        SweepQueue q(dir, cellsAscendingCost(2), 0, 1);
        const std::optional<std::size_t> idx = q.claimNext();
        ASSERT_TRUE(idx.has_value());
        q.publish(*idx, "{}\n");
    }
    const std::string stem = "cell1"; // the higher-cost, claimed first
    EXPECT_TRUE(fs::exists(SweepQueue::docPath(dir, stem)));
    SweepQueue::resetCell(dir, stem);
    EXPECT_FALSE(fs::exists(SweepQueue::docPath(dir, stem)));
    EXPECT_FALSE(fs::exists(SweepQueue::leasePath(dir, stem)));

    SweepQueue q(dir, cellsAscendingCost(2), 0, 1);
    const std::optional<std::size_t> idx = q.claimNext();
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(q.cell(*idx).stem, stem);
    q.publish(*idx, "{}\n");
    fs::remove_all(dir);
}

#ifndef _WIN32

/**
 * Claim exclusivity fuzz, cross-process: two forked children race
 * over the same 32-cell batch; each drops an O_EXCL marker per cell
 * it claims before "simulating" (a short sleep keeps both in flight).
 * With live holders and no expiries, every cell must end up with
 * exactly one claimant marker and one document.
 */
TEST(SweepQueue, TwoProcessesNeverClaimTheSameCell)
{
    const fs::path dir = scratchDir("race");
    constexpr std::size_t kCells = 32;

    const auto child = [&dir]() -> int {
        SweepQueue q(dir, cellsAscendingCost(kCells), 0, 1);
        int duplicates = 0;
        for (;;) {
            const std::optional<std::size_t> idx = q.claimNext();
            if (!idx) {
                if (q.complete())
                    return duplicates;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                continue;
            }
            const std::string &stem = q.cell(*idx).stem;
            if (createClaimFile(dir / (stem + ".claimant")) !=
                ClaimAttempt::Acquired)
                ++duplicates;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            q.publish(*idx, stem + "\n");
        }
    };

    std::vector<pid_t> pids;
    for (int i = 0; i < 2; ++i) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0)
            _exit(child());
        pids.push_back(pid);
    }
    for (const pid_t pid : pids) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0) << "duplicate claims";
    }
    for (std::size_t i = 0; i < kCells; ++i) {
        const std::string stem = "cell" + std::to_string(i);
        EXPECT_TRUE(fs::exists(dir / (stem + ".claimant"))) << stem;
        // The published document is the claimant's render of the
        // cell — deterministic, so any publisher wrote these bytes.
        std::ifstream in(SweepQueue::docPath(dir, stem));
        std::string content;
        std::getline(in, content);
        EXPECT_EQ(content, stem);
    }
    fs::remove_all(dir);
}

/**
 * Requeue-on-crash: a holder is SIGKILLed mid-cell. Its lease stops
 * refreshing, goes stale, and a surviving participant must break it,
 * reclaim the cell, and complete the batch — with the requeue visible
 * in its queue stats.
 */
TEST(SweepQueue, SigkilledHoldersCellsAreRequeuedAndCompleted)
{
    const fs::path dir = scratchDir("requeue");
    setenv("DICE_SWEEP_LEASE_STALE_S", "1", 1);
    constexpr std::size_t kCells = 4;

    // The victim claims one cell and then sleeps forever (its lease
    // refresher keeps running until the SIGKILL lands).
    const pid_t victim = fork();
    ASSERT_GE(victim, 0);
    if (victim == 0) {
        SweepQueue q(dir, cellsAscendingCost(kCells), 0, 1);
        (void)q.claimNext();
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(10));
    }
    // Wait until the victim's lease exists, then kill it mid-cell.
    const fs::path held = SweepQueue::leasePath(
        dir, "cell" + std::to_string(kCells - 1));
    for (int spin = 0; spin < 500 && !fs::exists(held); ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(fs::exists(held));
    ASSERT_EQ(kill(victim, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(victim, &status, 0), victim);

    // The survivor drains everything, breaking the stale lease. The
    // pid probe sees the reaped victim as dead immediately; the mtime
    // threshold (1 s) is the cross-host fallback bound.
    SweepQueue survivor(dir, cellsAscendingCost(kCells), 0, 1);
    std::size_t drained = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!survivor.complete()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "batch never completed";
        const std::optional<std::size_t> idx = survivor.claimNext();
        if (!idx) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            continue;
        }
        ++drained;
        survivor.publish(*idx, "{}\n");
    }
    EXPECT_EQ(drained, kCells);
    EXPECT_GE(survivor.stats().requeued, 1u);
    unsetenv("DICE_SWEEP_LEASE_STALE_S");
    fs::remove_all(dir);
}

/**
 * A --join-style participant attaches while a batch is half drained
 * and the two finish it together; the joiner (no home shard) counts
 * every claim as stolen.
 */
TEST(SweepQueue, JoinerAttachesMidBatchAndStealsRemainder)
{
    const fs::path dir = scratchDir("join");
    constexpr std::size_t kCells = 10;

    SweepQueue owner(dir, cellsAscendingCost(kCells), 0, 1);
    for (std::size_t i = 0; i < kCells / 2; ++i) {
        const std::optional<std::size_t> idx = owner.claimNext();
        ASSERT_TRUE(idx.has_value());
        owner.publish(*idx, "{}\n");
    }

    SweepQueue joiner(dir, cellsAscendingCost(kCells), 0, 0);
    std::size_t joined = 0;
    while (const std::optional<std::size_t> idx = joiner.claimNext()) {
        ++joined;
        joiner.publish(*idx, "{}\n");
    }
    EXPECT_EQ(joined, kCells / 2);
    EXPECT_EQ(joiner.stats().stolen, joined);
    EXPECT_TRUE(joiner.complete());
    EXPECT_TRUE(owner.complete());
    fs::remove_all(dir);
}

#endif // !_WIN32

} // namespace
} // namespace dice
