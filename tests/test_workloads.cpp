/**
 * @file
 * Workload substrate tests: profile suites, data-class synthesis sizes,
 * page-granularity compressibility correlation, trace-generator
 * statistics, and the address-space allocator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compress/hybrid.hpp"
#include "workloads/address_space.hpp"
#include "workloads/datagen.hpp"
#include "workloads/profile.hpp"
#include "workloads/tracegen.hpp"

namespace dice
{
namespace
{

TEST(Profiles, SuiteSizesMatchThePaper)
{
    EXPECT_EQ(specRateSuite().size(), 16u);
    EXPECT_EQ(gapSuite().size(), 6u);
    EXPECT_EQ(nonIntensiveSuite().size(), 13u);
    EXPECT_EQ(mixSuite().size(), 4u);
    for (const auto &mix : mixSuite())
        EXPECT_EQ(mix.size(), 8u);
    EXPECT_EQ(all26Names().size(), 26u);
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(profileByName("mcf").l3_mpki, 53.6);
    EXPECT_EQ(profileByName("pr_twi").footprint_gb, 23.1);
    EXPECT_EQ(profileByName("bwaves").name, "bwaves");
}

TEST(Profiles, IntensiveSuiteHasMpkiAtLeastTwo)
{
    for (const auto &p : specRateSuite())
        EXPECT_GE(p.l3_mpki, 2.0) << p.name;
    for (const auto &p : gapSuite())
        EXPECT_GE(p.l3_mpki, 2.0) << p.name;
}

TEST(Profiles, NonIntensiveSuiteHasMpkiUnderTwo)
{
    for (const auto &p : nonIntensiveSuite())
        EXPECT_LT(p.l3_mpki, 2.0) << p.name;
}

TEST(Profiles, WeightsArePositive)
{
    for (const auto &p : specRateSuite()) {
        EXPECT_GT(p.w_zero + p.w_ptr + p.w_int + p.w_c36 + p.w_half +
                      p.w_rand,
                  0.9)
            << p.name;
        EXPECT_GT(p.seq_frac + p.stride_frac + p.rand_frac, 0.9)
            << p.name;
    }
}

TEST(DataGen, ClassSizesMatchTargets)
{
    HybridCodec codec;
    const struct
    {
        CompClass cls;
        std::uint32_t lo, hi;
    } targets[] = {
        {CompClass::Zero, 0, 0},   {CompClass::Ptr, 16, 16},
        {CompClass::Int, 18, 22},  {CompClass::C36, 36, 36},
        {CompClass::Half, 40, 60}, {CompClass::Rand, 64, 64},
    };
    for (const auto &t : targets) {
        for (LineAddr l = 1000; l < 1040; ++l) {
            const std::uint32_t size =
                codec.compress(DataGenerator::synthesize(t.cls, l, 0))
                    .sizeBytes();
            EXPECT_GE(size, t.lo) << compClassName(t.cls);
            EXPECT_LE(size, t.hi) << compClassName(t.cls);
        }
    }
}

TEST(DataGen, DataIsDeterministic)
{
    DataGenerator gen;
    WorkloadProfile prof = profileByName("mcf");
    gen.addRegion(0, 1 << 20, prof);
    EXPECT_EQ(gen.bytes(12345, 3), gen.bytes(12345, 3));
    EXPECT_NE(gen.bytes(12345, 3), gen.bytes(12345, 4));
}

TEST(DataGen, PageClassIsUniformWithinAPage)
{
    DataGenerator gen;
    WorkloadProfile prof = profileByName("soplex");
    gen.addRegion(0, 1 << 20, prof);
    for (std::uint64_t page = 0; page < 50; ++page) {
        const CompClass cls = gen.pageClass(page * kLinesPerPage);
        for (std::uint32_t i = 1; i < kLinesPerPage; i += 7) {
            EXPECT_EQ(gen.pageClass(page * kLinesPerPage + i), cls);
        }
    }
}

TEST(DataGen, NoiseFractionIsSmall)
{
    DataGenerator gen;
    WorkloadProfile prof = profileByName("mcf");
    gen.addRegion(0, 1 << 22, prof);
    std::uint64_t noisy = 0, total = 0;
    for (LineAddr l = 0; l < (1 << 18); l += 3) {
        if (gen.lineClass(l) != gen.pageClass(l))
            ++noisy;
        ++total;
    }
    const double frac = static_cast<double>(noisy) / total;
    EXPECT_LT(frac, 0.06);
    EXPECT_GT(frac, 0.005);
}

TEST(DataGen, ClassMixTracksProfileWeights)
{
    DataGenerator gen;
    WorkloadProfile prof = profileByName("libq"); // almost all rand/half
    gen.addRegion(0, 1 << 22, prof);
    std::map<CompClass, int> counts;
    for (std::uint64_t page = 0; page < 4000; ++page)
        ++counts[gen.pageClass(page * kLinesPerPage)];
    const double frac_compressible =
        (counts[CompClass::Zero] + counts[CompClass::Ptr] +
         counts[CompClass::Int]) /
        4000.0;
    EXPECT_LT(frac_compressible, 0.12); // libq: ~5% target
}

TEST(DataGen, UnownedSpaceIsIncompressible)
{
    DataGenerator gen;
    EXPECT_EQ(gen.pageClass(999999), CompClass::Rand);
}

TEST(DataGen, PairsShareNoiseDecision)
{
    // Both halves of a spatial pair must deviate together, or pair
    // compressibility statistics would be destroyed.
    DataGenerator gen;
    WorkloadProfile prof = profileByName("mcf");
    gen.addRegion(0, 1 << 20, prof);
    for (LineAddr base = 0; base < (1 << 16); base += 2) {
        EXPECT_EQ(gen.lineClass(base) == gen.pageClass(base),
                  gen.lineClass(base + 1) == gen.pageClass(base + 1));
    }
}

TEST(AddressSpace, RegionsAreDisjointAndPageAligned)
{
    AddressSpace space;
    const LineAddr a = space.allocate(100);
    const LineAddr b = space.allocate(5000);
    const LineAddr c = space.allocate(1);
    EXPECT_EQ(a % kLinesPerPage, 0u);
    EXPECT_EQ(b % kLinesPerPage, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 5000);
    EXPECT_GT(a, 0u); // line 0 reserved
}

TEST(TraceGen, StaysInsideItsRegion)
{
    const WorkloadProfile prof = profileByName("mcf");
    TraceGenerator gen(prof, 1000, 100000, 42);
    for (int i = 0; i < 50000; ++i) {
        const MemRef ref = gen.next();
        EXPECT_GE(ref.line, 1000u);
        EXPECT_LT(ref.line, 101000u);
    }
}

TEST(TraceGen, Deterministic)
{
    const WorkloadProfile prof = profileByName("omnetpp");
    TraceGenerator a(prof, 0, 100000, 7), b(prof, 0, 100000, 7);
    for (int i = 0; i < 1000; ++i) {
        const MemRef ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.line, rb.line);
        EXPECT_EQ(ra.is_write, rb.is_write);
        EXPECT_EQ(ra.gap_instr, rb.gap_instr);
        EXPECT_EQ(ra.pc, rb.pc);
    }
}

TEST(TraceGen, WriteFractionMatchesProfile)
{
    const WorkloadProfile prof = profileByName("lbm"); // 45% writes
    TraceGenerator gen(prof, 0, 100000, 3);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += gen.next().is_write;
    EXPECT_NEAR(writes / double(n), prof.write_frac, 0.02);
}

namespace
{

/** Fraction of references that touch the previous line's successor. */
double
adjacencyOf(const char *workload)
{
    const WorkloadProfile prof = profileByName(workload);
    TraceGenerator gen(prof, 0, 1 << 20, 5);
    LineAddr prev = ~0ull;
    int adjacent = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const MemRef ref = gen.next();
        if (ref.line == prev + 1)
            ++adjacent;
        prev = ref.line;
    }
    return adjacent / double(n);
}

} // namespace

TEST(TraceGen, StreamingWorkloadTouchesNeighbors)
{
    // lbm is 85% sequential: even with the L3-reuse draws interleaved,
    // a large fraction of references are spatial successors.
    EXPECT_GT(adjacencyOf("lbm"), 0.4);
}

TEST(TraceGen, PointerChasingIsLessAdjacentThanStreaming)
{
    // mcf's random pointer chasing (2-line objects) is markedly less
    // sequential than lbm's streaming.
    EXPECT_LT(adjacencyOf("mcf"), adjacencyOf("lbm") - 0.1);
}

TEST(TraceGen, GapTracksMpki)
{
    // Higher MPKI -> smaller instruction gaps between references.
    const WorkloadProfile heavy = profileByName("pr_twi"); // 112.9
    const WorkloadProfile light = profileByName("xalanc"); // 2.2
    TraceGenerator hg(heavy, 0, 1 << 18, 1);
    TraceGenerator lg(light, 0, 1 << 18, 1);
    double hsum = 0, lsum = 0;
    for (int i = 0; i < 20000; ++i) {
        hsum += hg.next().gap_instr;
        lsum += lg.next().gap_instr;
    }
    EXPECT_LT(hsum, lsum / 10);
}

TEST(TraceGen, UsesBoundedPcSet)
{
    const WorkloadProfile prof = profileByName("gcc");
    TraceGenerator gen(prof, 0, 1 << 18, 9);
    std::set<std::uint64_t> pcs;
    for (int i = 0; i < 50000; ++i)
        pcs.insert(gen.next().pc);
    EXPECT_LE(pcs.size(), 3u * prof.num_pcs); // 3 burst kinds
    EXPECT_GE(pcs.size(), 8u);
}

TEST(TraceGen, HotRegionGetsMostAccesses)
{
    WorkloadProfile prof = profileByName("omnetpp");
    prof.hot_frac = 0.1;
    prof.hot_bias = 0.9;
    TraceGenerator gen(prof, 0, 100000, 11);
    std::uint64_t hot = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        const MemRef ref = gen.next();
        hot += ref.line < 10000 + 64;
        ++total;
    }
    EXPECT_GT(static_cast<double>(hot) / total, 0.6);
}

} // namespace
} // namespace dice
