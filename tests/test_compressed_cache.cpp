/**
 * @file
 * Compressed DRAM cache tests: every policy, pair formation, CIP-driven
 * reads, duplicate scrubbing, capacity behavior, and the KNL variant.
 */

#include <gtest/gtest.h>

#include "core/compressed.hpp"
#include "workloads/datagen.hpp"

namespace dice
{
namespace
{

/** Data source with a fixed class for every line. */
class FixedClassSource : public LineDataSource
{
  public:
    explicit FixedClassSource(CompClass cls) : cls_(cls) {}

    Line
    bytes(LineAddr line, std::uint64_t version) const override
    {
        return DataGenerator::synthesize(cls_, line, version);
    }

  private:
    CompClass cls_;
};

CompressedCacheConfig
smallConfig(CompressionPolicy policy)
{
    CompressedCacheConfig c;
    c.base.capacity = 1_MiB; // 16384 sets
    c.policy = policy;
    return c;
}

TEST(CompressedCache, ReadMissThenHitDice)
{
    FixedClassSource src(CompClass::Int);
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    EXPECT_FALSE(l4.read(100, 0).hit);
    l4.install(100, 1, false, 0, true);
    const L4ReadResult r = l4.read(100, 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.payload, 1u);
}

TEST(CompressedCache, CompressibleLinesGoBai)
{
    FixedClassSource src(CompClass::Int); // 20 B <= 36 B threshold
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    // Pick a non-invariant line so an actual decision is made.
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;
    l4.install(line, 0, false, 0, true);
    EXPECT_EQ(l4.installsBai(), 1u);
    EXPECT_EQ(l4.installsTsi(), 0u);
    // The line sits in its BAI set.
    EXPECT_TRUE(l4.contains(line));
}

TEST(CompressedCache, IncompressibleLinesGoTsi)
{
    FixedClassSource src(CompClass::Rand);
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;
    l4.install(line, 0, false, 0, true);
    EXPECT_EQ(l4.installsTsi(), 1u);
    EXPECT_EQ(l4.installsBai(), 0u);
}

TEST(CompressedCache, InvariantLinesNeedNoDecision)
{
    FixedClassSource src(CompClass::Int);
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    LineAddr line = 2;
    while (!l4.indexer().baiInvariant(line))
        ++line;
    l4.install(line, 0, false, 0, true);
    EXPECT_EQ(l4.installsInvariant(), 1u);
}

TEST(CompressedCache, SpatialPairFormsSharedTagItem)
{
    FixedClassSource src(CompClass::C36); // pair -> exactly 68 B
    CompressedDramCache l4(smallConfig(CompressionPolicy::BaiOnly), src);
    l4.install(200, 0, false, 0, true);
    l4.install(201, 0, false, 0, true);
    EXPECT_EQ(l4.pairInstalls(), 1u);
    EXPECT_TRUE(l4.contains(200));
    EXPECT_TRUE(l4.contains(201));
}

TEST(CompressedCache, PairedHitReturnsFreeNeighbor)
{
    FixedClassSource src(CompClass::C36);
    CompressedDramCache l4(smallConfig(CompressionPolicy::BaiOnly), src);
    l4.install(200, 5, false, 0, true);
    l4.install(201, 6, false, 0, true);
    const L4ReadResult r = l4.read(200, 0);
    ASSERT_TRUE(r.hit);
    EXPECT_TRUE(r.has_extra);
    EXPECT_EQ(r.extra_line, 201u);
    EXPECT_EQ(r.extra_payload, 6u);
    EXPECT_EQ(l4.extraLinesSupplied(), 1u);
}

TEST(CompressedCache, TsiNeverSeesSpatialNeighbors)
{
    FixedClassSource src(CompClass::C36);
    CompressedDramCache l4(smallConfig(CompressionPolicy::TsiOnly), src);
    l4.install(200, 5, false, 0, true);
    l4.install(201, 6, false, 0, true);
    const L4ReadResult r = l4.read(200, 0);
    ASSERT_TRUE(r.hit);
    EXPECT_FALSE(r.has_extra); // neighbors live in different sets
    EXPECT_EQ(l4.pairInstalls(), 0u);
}

TEST(CompressedCache, TsiCompressionStillAddsCapacity)
{
    // Far-apart lines mapping to the same TSI set co-reside when
    // compressed — the capacity-only benefit of Figure 1(b).
    FixedClassSource src(CompClass::Int); // 20 B each
    CompressedDramCache l4(smallConfig(CompressionPolicy::TsiOnly), src);
    const std::uint64_t sets = l4.indexer().numSets();
    l4.install(5, 1, false, 0, true);
    l4.install(5 + sets, 2, false, 0, true);
    EXPECT_TRUE(l4.contains(5));
    EXPECT_TRUE(l4.contains(5 + sets));
    EXPECT_EQ(l4.validLines(), 2u);
}

TEST(CompressedCache, IncompressibleLimitsSetToOneLine)
{
    FixedClassSource src(CompClass::Rand);
    CompressedDramCache l4(smallConfig(CompressionPolicy::TsiOnly), src);
    const std::uint64_t sets = l4.indexer().numSets();
    l4.install(5, 1, false, 0, true);
    l4.install(5 + sets, 2, false, 0, true);
    EXPECT_FALSE(l4.contains(5)); // evicted: 64-B lines cannot share
    EXPECT_TRUE(l4.contains(5 + sets));
}

TEST(CompressedCache, BaiThrashingWithIncompressibleNeighbors)
{
    // Figure 6: under BAI, incompressible neighbors fight for one set.
    FixedClassSource src(CompClass::Rand);
    CompressedDramCache l4(smallConfig(CompressionPolicy::BaiOnly), src);
    l4.install(200, 1, false, 0, true);
    l4.install(201, 2, false, 0, true);
    EXPECT_FALSE(l4.contains(200));
    EXPECT_TRUE(l4.contains(201));
}

TEST(CompressedCache, DirtyEvictionWritesBack)
{
    FixedClassSource src(CompClass::Rand);
    CompressedDramCache l4(smallConfig(CompressionPolicy::BaiOnly), src);
    l4.install(200, 9, true, 0, false);
    const L4WriteResult r = l4.install(201, 2, false, 0, true);
    ASSERT_EQ(r.writebacks.size(), 1u);
    EXPECT_EQ(r.writebacks[0].line, 200u);
    EXPECT_EQ(r.writebacks[0].payload, 9u);
}

TEST(CompressedCache, UpdateOfResidentLineNeverWritesBackStaleCopy)
{
    FixedClassSource src(CompClass::Int);
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    l4.install(100, 1, true, 0, false);
    const L4WriteResult r = l4.install(100, 2, true, 0, false);
    EXPECT_TRUE(r.writebacks.empty()); // superseded, not written back
    EXPECT_EQ(l4.read(100, 0).payload, 2u);
    EXPECT_EQ(l4.validLines(), 1u);
}

TEST(CompressedCache, DuplicateScrubOnSchemeFlip)
{
    // A line whose compressibility changes sides of the threshold
    // must never be valid under both indexings.
    class FlippingSource : public LineDataSource
    {
      public:
        Line
        bytes(LineAddr line, std::uint64_t version) const override
        {
            return DataGenerator::synthesize(
                version == 0 ? CompClass::Int : CompClass::Rand, line,
                version);
        }
    } src;

    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;

    l4.install(line, 0, false, 0, true); // compressible -> BAI
    EXPECT_EQ(l4.installsBai(), 1u);
    l4.install(line, 1, true, 0, false); // now incompressible -> TSI
    EXPECT_EQ(l4.installsTsi(), 1u);
    EXPECT_EQ(l4.duplicateScrubs(), 1u);
    EXPECT_EQ(l4.validLines(), 1u);
    const L4ReadResult r = l4.read(line, 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.payload, 1u);
}

TEST(CompressedCache, MispredictedReadProbesTwiceAndStillHits)
{
    // A page with mixed compressibility defeats the page-granularity
    // LTT: install a compressible line (BAI, trains the page to BAI),
    // then an incompressible one in the same page (TSI, re-trains to
    // TSI); reading the first line now mispredicts.
    class MixedPageSource : public LineDataSource
    {
      public:
        Line
        bytes(LineAddr line, std::uint64_t version) const override
        {
            return DataGenerator::synthesize(
                (line & 2) ? CompClass::Rand : CompClass::Int, line,
                version);
        }
    } src;

    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    LineAddr line_a = 0;
    while (l4.indexer().baiInvariant(line_a) || (line_a & 2))
        ++line_a;
    LineAddr line_b = line_a;
    while (l4.indexer().baiInvariant(line_b) || !(line_b & 2))
        ++line_b;
    ASSERT_EQ(pageOfLine(line_a), pageOfLine(line_b));

    l4.install(line_a, 3, false, 0, true); // Int -> BAI, LTT := BAI
    l4.install(line_b, 4, false, 0, true); // Rand -> TSI, LTT := TSI

    const L4ReadResult r1 = l4.read(line_a, 0); // predicts TSI, is BAI
    EXPECT_TRUE(r1.hit);
    EXPECT_EQ(r1.dram_accesses, 2u);
    EXPECT_EQ(l4.secondProbes(), 1u);
    EXPECT_EQ(r1.payload, 3u);
    // CIP learned the page's last outcome: next read takes one access.
    const L4ReadResult r2 = l4.read(line_a, 0);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.dram_accesses, 1u);
}

TEST(CompressedCache, MissNeedsOnlyOneAccessInAlloyMode)
{
    FixedClassSource src(CompClass::Int);
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;
    const L4ReadResult r = l4.read(line, 0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.dram_accesses, 1u); // neighbor tag rules out the alt set
}

TEST(CompressedCache, KnlMissProbesBothCandidates)
{
    FixedClassSource src(CompClass::Int);
    CompressedCacheConfig cfg = smallConfig(CompressionPolicy::Dice);
    cfg.knl_mode = true;
    CompressedDramCache l4(cfg, src);
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;
    const L4ReadResult miss = l4.read(line, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.dram_accesses, 2u); // no free neighbor tag

    LineAddr inv = 2;
    while (!l4.indexer().baiInvariant(inv))
        ++inv;
    EXPECT_EQ(l4.read(inv, 0).dram_accesses, 1u); // single candidate
}

TEST(CompressedCache, NsiPolicyCoLocatesPairs)
{
    FixedClassSource src(CompClass::C36);
    CompressedDramCache l4(smallConfig(CompressionPolicy::NsiOnly), src);
    l4.install(200, 0, false, 0, true);
    l4.install(201, 0, false, 0, true);
    EXPECT_EQ(l4.pairInstalls(), 1u);
    EXPECT_TRUE(l4.read(200, 0).has_extra);
}

TEST(CompressedCache, EffectiveCapacityExceedsPhysicalLines)
{
    FixedClassSource src(CompClass::Ptr); // 16 B singles, 24-B pairs
    CompressedDramCache l4(smallConfig(CompressionPolicy::BaiOnly), src);
    // Fill a handful of sets with several compressed lines each.
    for (LineAddr l = 0; l < 64; ++l)
        l4.install(l, 0, false, 0, true);
    EXPECT_EQ(l4.validLines(), 64u);
    // 64 lines of Ptr data occupy only 32 BAI sets; an uncompressed
    // direct-mapped cache would hold 32 at most in those sets.
    EXPECT_LE(l4.bytesUsed(), 32u * 72u);
}

TEST(CompressedCache, PairCompressionCanBeDisabled)
{
    FixedClassSource src(CompClass::C36);
    CompressedCacheConfig cfg = smallConfig(CompressionPolicy::BaiOnly);
    cfg.pair_compression = false;
    CompressedDramCache l4(cfg, src);
    // Two 36-B neighbors need 2 x (4 + 36) = 80 B as singles: they do
    // not fit one 72-B set without the shared-tag pair encoding.
    l4.install(200, 0, false, 0, true);
    l4.install(201, 0, false, 0, true);
    EXPECT_EQ(l4.pairInstalls(), 0u);
    EXPECT_FALSE(l4.contains(200)); // evicted: no pair sharing
    EXPECT_TRUE(l4.contains(201));
}

TEST(CompressedCache, OrganizationNames)
{
    FixedClassSource src(CompClass::Int);
    EXPECT_STREQ(
        CompressedDramCache(smallConfig(CompressionPolicy::Dice), src)
            .organization(),
        "dice");
    EXPECT_STREQ(
        CompressedDramCache(smallConfig(CompressionPolicy::TsiOnly), src)
            .organization(),
        "comp-tsi");
}

TEST(CompressedCache, ThresholdZeroDegeneratesToTsi)
{
    FixedClassSource src(CompClass::Int);
    CompressedCacheConfig cfg = smallConfig(CompressionPolicy::Dice);
    cfg.threshold_bytes = 0;
    CompressedDramCache l4(cfg, src);
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;
    l4.install(line, 0, false, 0, true);
    EXPECT_EQ(l4.installsTsi(), 1u); // 20 B > 0 B threshold
}

TEST(CompressedCache, ThresholdSixtyFourDegeneratesToBai)
{
    FixedClassSource src(CompClass::Rand);
    CompressedCacheConfig cfg = smallConfig(CompressionPolicy::Dice);
    cfg.threshold_bytes = 64;
    CompressedDramCache l4(cfg, src);
    LineAddr line = 2;
    while (l4.indexer().baiInvariant(line))
        ++line;
    l4.install(line, 0, false, 0, true);
    EXPECT_EQ(l4.installsBai(), 1u);
}

/** Parameterized: basic read-your-install across every policy. */
class CompressedPolicy
    : public ::testing::TestWithParam<CompressionPolicy>
{
};

TEST_P(CompressedPolicy, InstallThenReadAcrossClasses)
{
    for (const CompClass cls :
         {CompClass::Zero, CompClass::Ptr, CompClass::Int, CompClass::C36,
          CompClass::Half, CompClass::Rand}) {
        FixedClassSource src(cls);
        CompressedDramCache l4(smallConfig(GetParam()), src);
        for (LineAddr l = 100; l < 140; ++l) {
            l4.install(l, l, false, 0, true);
            const L4ReadResult r = l4.read(l, 0);
            EXPECT_TRUE(r.hit) << compClassName(cls) << " line " << l;
            EXPECT_EQ(r.payload, l);
        }
    }
}

TEST_P(CompressedPolicy, LineNeverResidentInTwoSets)
{
    FixedClassSource src(CompClass::Int);
    CompressedDramCache l4(smallConfig(GetParam()), src);
    for (LineAddr l = 0; l < 200; ++l) {
        l4.install(l, 0, (l % 3) == 0, 0, false);
        // validLines counts every copy; <= #installs distinct lines.
    }
    EXPECT_LE(l4.validLines(), 200u);
    std::uint64_t found = 0;
    for (LineAddr l = 0; l < 200; ++l)
        found += l4.contains(l) ? 1 : 0;
    EXPECT_EQ(found, l4.validLines());
}

TEST(CompressedCache, SizeMemoFootprintFlatOverLongRuns)
{
    // Regression test for the unbounded size-cache growth the memo
    // replaced: every (line, version) pair is a fresh memo key, so a
    // run with 10x the references must leave the memo footprint — the
    // only storage that scales with distinct keys — exactly constant.
    FixedClassSource src(CompClass::C36);
    CompressedDramCache l4(smallConfig(CompressionPolicy::Dice), src);
    const std::size_t footprint = l4.sizeMemoCapacityBytes();
    ASSERT_GT(footprint, 0u);

    std::uint64_t version = 0;
    auto churn = [&](std::uint64_t installs) {
        for (std::uint64_t i = 0; i < installs; ++i)
            l4.install(i % 4096, ++version, true, i, false);
    };

    churn(2'000);
    EXPECT_EQ(l4.sizeMemoCapacityBytes(), footprint);
    churn(20'000);
    EXPECT_EQ(l4.sizeMemoCapacityBytes(), footprint);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CompressedPolicy,
    ::testing::Values(CompressionPolicy::TsiOnly,
                      CompressionPolicy::NsiOnly,
                      CompressionPolicy::BaiOnly,
                      CompressionPolicy::Dice));

} // namespace
} // namespace dice
