/**
 * @file
 * FPC codec: per-pattern encodings, exact sizes, and round trips.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "compress/fpc.hpp"

namespace dice
{
namespace
{

Line
lineOfWords(const std::uint32_t (&words)[16])
{
    Line l{};
    std::memcpy(l.data(), words, sizeof words);
    return l;
}

Line
fillWords(std::uint32_t v)
{
    std::uint32_t w[16];
    for (auto &x : w)
        x = v;
    return lineOfWords(w);
}

TEST(Fpc, ZeroLineCompressesToOneToken)
{
    FpcCodec fpc;
    const Line zero{};
    const Encoded enc = fpc.compress(zero);
    ASSERT_EQ(enc.algo, CompAlgo::Fpc);
    // 16 zero words = two runs of 8 = 2 x (3+3) bits = 12 bits.
    EXPECT_EQ(enc.bits, 12u);
    EXPECT_EQ(fpc.decompress(enc), zero);
}

TEST(Fpc, Sign4Pattern)
{
    FpcCodec fpc;
    const Line l = fillWords(0xFFFFFFF9u); // -7 fits 4 bits
    const Encoded enc = fpc.compress(l);
    ASSERT_EQ(enc.algo, CompAlgo::Fpc);
    EXPECT_EQ(enc.bits, 16u * 7u);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, Sign8Pattern)
{
    FpcCodec fpc;
    const Line l = fillWords(100); // needs 8 bits
    const Encoded enc = fpc.compress(l);
    EXPECT_EQ(enc.bits, 16u * 11u);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, Sign16Pattern)
{
    FpcCodec fpc;
    const Line l = fillWords(0xFFFF8000u); // -32768 needs 16 bits
    const Encoded enc = fpc.compress(l);
    EXPECT_EQ(enc.bits, 16u * 19u);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, HalfwordPaddedWithZeros)
{
    FpcCodec fpc;
    const Line l = fillWords(0xABCD0000u); // low half zero
    const Encoded enc = fpc.compress(l);
    EXPECT_EQ(enc.bits, 16u * 19u);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, TwoSignedBytes)
{
    FpcCodec fpc;
    const Line l = fillWords(0x007F00FFu); // halves 0x007F, 0x00FF
    // 0x00FF as signed-16 is 255, does not fit int8: falls elsewhere.
    const Line l2 = fillWords(0x0011FFF6u); // 0x0011=17, 0xFFF6=-10
    const Encoded enc = fpc.compress(l2);
    EXPECT_EQ(enc.bits, 16u * 19u);
    EXPECT_EQ(fpc.decompress(enc), l2);
    EXPECT_EQ(fpc.decompress(fpc.compress(l)), l);
}

TEST(Fpc, RepeatedBytes)
{
    FpcCodec fpc;
    const Line l = fillWords(0x5A5A5A5Au);
    const Encoded enc = fpc.compress(l);
    EXPECT_EQ(enc.bits, 16u * 11u);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, IncompressibleFallsBackToRaw)
{
    FpcCodec fpc;
    Line l{};
    Rng rng(7);
    for (auto &b : l)
        b = static_cast<std::uint8_t>(rng.between(1, 255)) | 0x81;
    // High-entropy words: each costs 35 bits, 16*35 = 560 > 512.
    const Encoded enc = fpc.compress(l);
    EXPECT_EQ(enc.algo, CompAlgo::None);
    EXPECT_EQ(enc.sizeBytes(), kLineSize);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, MixedPatternsRoundTrip)
{
    FpcCodec fpc;
    const std::uint32_t words[16] = {
        0,          0,          5,          0xFFFFFF80u,
        0x12340000u, 0x00050003u, 0x77777777u, 0xDEADBEEFu,
        0,          1,          0xFFFFFFFFu, 0x7FFF0000u,
        0x01020304u, 0x40u,      0xFFFF8001u, 0,
    };
    const Line l = lineOfWords(words);
    const Encoded enc = fpc.compress(l);
    EXPECT_EQ(fpc.decompress(enc), l);
}

TEST(Fpc, ZeroRunLongerThanEightSplits)
{
    FpcCodec fpc;
    std::uint32_t words[16] = {};
    words[15] = 0xDEADBEEFu;
    const Line l = lineOfWords(words);
    const Encoded enc = fpc.compress(l);
    // 15 zeros = run(8) + run(7) = 12 bits, plus 35 for the tail word.
    EXPECT_EQ(enc.bits, 12u + 35u);
    EXPECT_EQ(fpc.decompress(enc), l);
}

/** Property sweep: random lines of several entropy classes round-trip. */
class FpcRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(FpcRoundTrip, RandomLinesRoundTrip)
{
    FpcCodec fpc;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int iter = 0; iter < 200; ++iter) {
        Line l{};
        const int mode = iter % 4;
        for (std::uint32_t w = 0; w < 16; ++w) {
            std::uint32_t v;
            switch (mode) {
              case 0:
                v = static_cast<std::uint32_t>(rng.next());
                break;
              case 1:
                v = static_cast<std::uint32_t>(rng.between(0, 255));
                break;
              case 2:
                v = rng.chance(0.5)
                        ? 0
                        : static_cast<std::uint32_t>(rng.next());
                break;
              default:
                v = static_cast<std::uint32_t>(
                    static_cast<std::int32_t>(rng.between(0, 60000)) -
                    30000);
                break;
            }
            std::memcpy(l.data() + 4 * w, &v, 4);
        }
        const Encoded enc = fpc.compress(l);
        EXPECT_EQ(fpc.decompress(enc), l) << "seed " << GetParam()
                                          << " iter " << iter;
        EXPECT_LE(enc.sizeBytes(), kLineSize);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpcRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace dice
