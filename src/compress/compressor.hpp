/**
 * @file
 * Common types and the abstract interface for line compressors.
 *
 * DICE uses low-latency compressors (FPC + BDI, with ZCA as the trivial
 * all-zero special case). Each codec produces a real encoded bitstream;
 * the byte size of that stream — plus per-line metadata kept in the tag,
 * which the TAD layout accounts for separately — is what the cache model
 * consumes.
 *
 * The cache model's hot path never needs the bitstream itself, only its
 * size, so every codec also implements compressedSizeBytes(): a
 * size-only route that touches no heap memory. Encoded payloads are
 * stored in a fixed-capacity inline buffer (PayloadBuf) for the same
 * reason: compressing a line performs zero heap allocations.
 */

#ifndef DICE_COMPRESS_COMPRESSOR_HPP
#define DICE_COMPRESS_COMPRESSOR_HPP

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/log.hpp"
#include "common/types.hpp"

namespace dice
{

/** Raw bytes of one 64-B cache line. */
using Line = std::array<std::uint8_t, kLineSize>;

/** Raw bytes of a pair of adjacent lines (128 B), for pair compression. */
using LinePair = std::array<std::uint8_t, 2 * kLineSize>;

/**
 * Upper bound on any encoded payload: a raw 64-B line, or the joint
 * stream of a shared-base pair (<= 72 B for BDI's largest delta mode).
 */
inline constexpr std::uint32_t kMaxPayloadBytes = 2 * kLineSize;

/**
 * Fixed-capacity inline byte buffer for encoded payloads. A drop-in
 * for the small-vector uses the codecs need (append, assign, iterate)
 * without ever touching the heap.
 */
class PayloadBuf
{
  public:
    PayloadBuf() = default;

    std::uint8_t *data() { return bytes_.data(); }
    const std::uint8_t *data() const { return bytes_.data(); }
    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    void clear() { size_ = 0; }

    void
    push_back(std::uint8_t b)
    {
        dice_assert(size_ < kMaxPayloadBytes, "PayloadBuf overflow");
        bytes_[size_++] = b;
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        clear();
        for (; first != last; ++first)
            push_back(static_cast<std::uint8_t>(*first));
    }

    std::uint8_t &operator[](std::uint32_t i) { return bytes_[i]; }
    const std::uint8_t &operator[](std::uint32_t i) const
    {
        return bytes_[i];
    }

    const std::uint8_t *begin() const { return data(); }
    const std::uint8_t *end() const { return data() + size_; }

  private:
    std::array<std::uint8_t, kMaxPayloadBytes> bytes_;
    std::uint32_t size_ = 0;
};

/** Compression algorithm identifiers (stored in tag metadata). */
enum class CompAlgo : std::uint8_t
{
    None,   ///< Stored uncompressed (64 B).
    Zca,    ///< Zero-content line (data size 0; tag bit suffices).
    Fpc,    ///< Frequent Pattern Compression.
    Bdi,    ///< Base-Delta-Immediate (mode in the meta bits).
};

/** An encoded line: algorithm, mode metadata, and the bitstream. */
struct Encoded
{
    CompAlgo algo = CompAlgo::None;
    /** Algorithm-specific mode (BDI mode index; unused for FPC/ZCA). */
    std::uint8_t mode = 0;
    /**
     * Side metadata that lives in the tag's metadata bits rather than
     * the data payload (the BDI immediate mask). Not charged against
     * the payload size, matching the paper's size accounting where
     * compression metadata occupies tag bits.
     */
    std::uint64_t meta = 0;
    /** The encoded payload. Empty for ZCA; raw line for None. */
    PayloadBuf payload;
    /** Exact encoded size in bits (payload only, excluding tag/meta). */
    std::uint32_t bits = 0;

    /** Payload size rounded up to whole bytes. */
    std::uint32_t sizeBytes() const { return (bits + 7) / 8; }
};

/** Interface implemented by every codec. */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Human-readable codec name. */
    virtual const char *name() const = 0;

    /**
     * Compress @p line. Codecs that cannot represent the line return an
     * Encoded with algo == CompAlgo::None and bits == 8 * kLineSize.
     */
    virtual Encoded compress(const Line &line) const = 0;

    /** Invert compress(); @p enc must come from the same codec. */
    virtual Line decompress(const Encoded &enc) const = 0;

    /**
     * Byte size of compress(line)'s payload without materializing a
     * bitstream and without heap allocation — the route the cache
     * model's install path takes. Always equals
     * compress(line).sizeBytes().
     */
    virtual std::uint32_t compressedSizeBytes(const Line &line) const = 0;

    /**
     * Batched size-only route: out[i] = compressedSizeBytes(lines[i])
     * for i in [0, n). One virtual call sizes a whole set or packed
     * span; the default walks the single-line route, and codecs whose
     * classification vectorizes override it. Result values are always
     * identical to n single-line calls.
     */
    virtual void compressedSizeBytes(const Line *lines, std::size_t n,
                                     std::uint32_t *out) const;
};

/** Convenience: an Encoded that stores @p line verbatim. */
Encoded encodeRaw(const Line &line);

/** Convenience: recover the raw line from a CompAlgo::None encoding. */
Line decodeRaw(const Encoded &enc);

} // namespace dice

#endif // DICE_COMPRESS_COMPRESSOR_HPP
