/**
 * @file
 * Common types and the abstract interface for line compressors.
 *
 * DICE uses low-latency compressors (FPC + BDI, with ZCA as the trivial
 * all-zero special case). Each codec produces a real encoded bitstream;
 * the byte size of that stream — plus per-line metadata kept in the tag,
 * which the TAD layout accounts for separately — is what the cache model
 * consumes.
 */

#ifndef DICE_COMPRESS_COMPRESSOR_HPP
#define DICE_COMPRESS_COMPRESSOR_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dice
{

/** Raw bytes of one 64-B cache line. */
using Line = std::array<std::uint8_t, kLineSize>;

/** Raw bytes of a pair of adjacent lines (128 B), for pair compression. */
using LinePair = std::array<std::uint8_t, 2 * kLineSize>;

/** Compression algorithm identifiers (stored in tag metadata). */
enum class CompAlgo : std::uint8_t
{
    None,   ///< Stored uncompressed (64 B).
    Zca,    ///< Zero-content line (data size 0; tag bit suffices).
    Fpc,    ///< Frequent Pattern Compression.
    Bdi,    ///< Base-Delta-Immediate (mode in the meta bits).
};

/** An encoded line: algorithm, mode metadata, and the bitstream. */
struct Encoded
{
    CompAlgo algo = CompAlgo::None;
    /** Algorithm-specific mode (BDI mode index; unused for FPC/ZCA). */
    std::uint8_t mode = 0;
    /**
     * Side metadata that lives in the tag's metadata bits rather than
     * the data payload (the BDI immediate mask). Not charged against
     * the payload size, matching the paper's size accounting where
     * compression metadata occupies tag bits.
     */
    std::uint64_t meta = 0;
    /** The encoded payload. Empty for ZCA; raw line for None. */
    std::vector<std::uint8_t> payload;
    /** Exact encoded size in bits (payload only, excluding tag/meta). */
    std::uint32_t bits = 0;

    /** Payload size rounded up to whole bytes. */
    std::uint32_t sizeBytes() const { return (bits + 7) / 8; }
};

/** Interface implemented by every codec. */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Human-readable codec name. */
    virtual const char *name() const = 0;

    /**
     * Compress @p line. Codecs that cannot represent the line return an
     * Encoded with algo == CompAlgo::None and bits == 8 * kLineSize.
     */
    virtual Encoded compress(const Line &line) const = 0;

    /** Invert compress(); @p enc must come from the same codec. */
    virtual Line decompress(const Encoded &enc) const = 0;
};

/** Convenience: an Encoded that stores @p line verbatim. */
Encoded encodeRaw(const Line &line);

/** Convenience: recover the raw line from a CompAlgo::None encoding. */
Line decodeRaw(const Encoded &enc);

} // namespace dice

#endif // DICE_COMPRESS_COMPRESSOR_HPP
