/**
 * @file
 * C-PACK: Cache Packer compression (Chen et al., TVLSI 2010), the
 * dictionary-based alternative the DICE paper lists among applicable
 * codecs (Section 7.1). DICE itself is codec-agnostic; this
 * implementation demonstrates that claim and lets users swap it in.
 *
 * The line is processed as 32-bit words against a small FIFO
 * dictionary. Each word emits one of six patterns:
 *
 *   zzzz (00)       : all-zero word                      -> 2 bits
 *   xxxx (01)+B     : no match, verbatim word            -> 34 bits
 *   mmmm (10)+idx   : full dictionary match              -> 6 bits
 *   mmxx (1100)+... : high-half match, low half verbatim -> 24 bits
 *   zzzx (1101)+B   : three zero bytes, low byte literal -> 12 bits
 *   mmmx (1110)+... : 3-byte match, low byte verbatim    -> 16 bits
 *
 * Unmatched words (xxxx / mmxx) are pushed into the dictionary.
 */

#ifndef DICE_COMPRESS_CPACK_HPP
#define DICE_COMPRESS_CPACK_HPP

#include "compress/compressor.hpp"

namespace dice
{

/** C-PACK codec over 64-B lines with a 16-entry FIFO dictionary. */
class CpackCodec : public Codec
{
  public:
    const char *name() const override { return "C-PACK"; }

    Encoded compress(const Line &line) const override;
    Line decompress(const Encoded &enc) const override;

    /** Size-only fast path (no bitstream materialized). */
    std::uint32_t compressedBits(const Line &line) const;

    /** compressedBits() rounded up to whole bytes. */
    std::uint32_t compressedSizeBytes(const Line &line) const override;

    /** Batched sizing (sequential inside; see the .cpp note). */
    void compressedSizeBytes(const Line *lines, std::size_t n,
                             std::uint32_t *out) const override;

    /** Dictionary entries (4 bits of index per full/partial match). */
    static constexpr std::uint32_t kDictEntries = 16;

  private:
    enum Pattern : std::uint8_t
    {
        Zzzz = 0, ///< 2-bit code 0b00
        Xxxx = 1, ///< 2-bit code 0b01 + 32-bit literal
        Mmmm = 2, ///< 2-bit code 0b10 + 4-bit index
        Mmxx = 3, ///< 4-bit code 0b1100 + index + 16-bit literal
        Zzzx = 4, ///< 4-bit code 0b1101 + 8-bit literal
        Mmmx = 5, ///< 4-bit code 0b1110 + index + 8-bit literal
    };
};

} // namespace dice

#endif // DICE_COMPRESS_CPACK_HPP
