#include "compressor.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dice
{

void
Codec::compressedSizeBytes(const Line *lines, std::size_t n,
                           std::uint32_t *out) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = compressedSizeBytes(lines[i]);
}

Encoded
encodeRaw(const Line &line)
{
    Encoded enc;
    enc.algo = CompAlgo::None;
    enc.payload.assign(line.begin(), line.end());
    enc.bits = 8 * kLineSize;
    return enc;
}

Line
decodeRaw(const Encoded &enc)
{
    dice_assert(enc.algo == CompAlgo::None, "decodeRaw on compressed line");
    dice_assert(enc.payload.size() == kLineSize, "raw payload size %u",
                enc.payload.size());
    Line line;
    std::copy(enc.payload.begin(), enc.payload.end(), line.begin());
    return line;
}

} // namespace dice
