#include "cpack.hpp"

#include <cstring>

#include "common/log.hpp"
#include "compress/bitstream.hpp"

namespace dice
{

namespace
{

constexpr std::uint32_t kWords = kLineSize / 4;

std::uint32_t
loadWord(const Line &line, std::uint32_t idx)
{
    std::uint32_t w;
    std::memcpy(&w, line.data() + 4 * idx, 4);
    return w;
}

void
storeWord(Line &line, std::uint32_t idx, std::uint32_t w)
{
    std::memcpy(line.data() + 4 * idx, &w, 4);
}

/** FIFO dictionary shared by the encoder and decoder. */
class Dictionary
{
  public:
    /** Find a full match; returns entry index or -1. */
    int
    findFull(std::uint32_t w) const
    {
        for (std::uint32_t i = 0; i < size_; ++i) {
            if (entries_[i] == w)
                return static_cast<int>(i);
        }
        return -1;
    }

    /** Find a 3-byte (bits 31:8) match; returns entry index or -1. */
    int
    findHigh3(std::uint32_t w) const
    {
        for (std::uint32_t i = 0; i < size_; ++i) {
            if ((entries_[i] & 0xFFFFFF00u) == (w & 0xFFFFFF00u))
                return static_cast<int>(i);
        }
        return -1;
    }

    /** Find a halfword (bits 31:16) match; returns entry index or -1. */
    int
    findHigh2(std::uint32_t w) const
    {
        for (std::uint32_t i = 0; i < size_; ++i) {
            if ((entries_[i] & 0xFFFF0000u) == (w & 0xFFFF0000u))
                return static_cast<int>(i);
        }
        return -1;
    }

    std::uint32_t at(std::uint32_t i) const { return entries_[i]; }

    /** FIFO insert. */
    void
    push(std::uint32_t w)
    {
        entries_[pos_] = w;
        pos_ = (pos_ + 1) % CpackCodec::kDictEntries;
        if (size_ < CpackCodec::kDictEntries)
            ++size_;
    }

  private:
    std::uint32_t entries_[CpackCodec::kDictEntries] = {};
    std::uint32_t pos_ = 0;
    std::uint32_t size_ = 0;
};

} // namespace

Encoded
CpackCodec::compress(const Line &line) const
{
    BitWriter bw;
    Dictionary dict;

    for (std::uint32_t i = 0; i < kWords; ++i) {
        const std::uint32_t w = loadWord(line, i);

        if (w == 0) {
            bw.write(0b00, 2);
            continue;
        }
        if ((w & 0xFFFFFF00u) == 0) {
            // zzzx: three zero bytes + literal low byte. (The 4-bit
            // codes are emitted selector-first to match the LSB-first
            // bitstream order the decoder reads.)
            bw.write(0b11, 2);
            bw.write(0b01, 2);
            bw.write(w & 0xFF, 8);
            continue;
        }
        int idx = dict.findFull(w);
        if (idx >= 0) {
            bw.write(0b10, 2);
            bw.write(static_cast<std::uint64_t>(idx), 4);
            continue;
        }
        idx = dict.findHigh3(w);
        if (idx >= 0) {
            // mmmx: 3-byte match + literal low byte.
            bw.write(0b11, 2);
            bw.write(0b10, 2);
            bw.write(static_cast<std::uint64_t>(idx), 4);
            bw.write(w & 0xFF, 8);
            continue;
        }
        idx = dict.findHigh2(w);
        if (idx >= 0) {
            // mmxx: halfword match + literal low half; learns the word.
            bw.write(0b11, 2);
            bw.write(0b00, 2);
            bw.write(static_cast<std::uint64_t>(idx), 4);
            bw.write(w & 0xFFFF, 16);
            dict.push(w);
            continue;
        }
        // xxxx: verbatim; learns the word.
        bw.write(0b01, 2);
        bw.write(w, 32);
        dict.push(w);
    }

    if (bw.byteSize() >= kLineSize)
        return encodeRaw(line);

    Encoded enc;
    enc.algo = CompAlgo::Fpc; // reuse the generic "pattern codec" tag
    enc.mode = 0xCA;          // marks C-PACK streams
    enc.payload = bw.bytes();
    enc.bits = bw.bitSize();
    return enc;
}

std::uint32_t
CpackCodec::compressedBits(const Line &line) const
{
    std::uint32_t bits = 0;
    Dictionary dict;
    for (std::uint32_t i = 0; i < kWords; ++i) {
        const std::uint32_t w = loadWord(line, i);
        if (w == 0) {
            bits += 2;
        } else if ((w & 0xFFFFFF00u) == 0) {
            bits += 12;
        } else if (dict.findFull(w) >= 0) {
            bits += 6;
        } else if (dict.findHigh3(w) >= 0) {
            bits += 16;
        } else if (dict.findHigh2(w) >= 0) {
            bits += 24;
            dict.push(w);
        } else {
            bits += 34;
            dict.push(w);
        }
    }
    return (bits + 7) / 8 >= kLineSize ? 8 * kLineSize : bits;
}

std::uint32_t
CpackCodec::compressedSizeBytes(const Line &line) const
{
    return (compressedBits(line) + 7) / 8;
}

void
CpackCodec::compressedSizeBytes(const Line *lines, std::size_t n,
                                std::uint32_t *out) const
{
    // C-PACK classification threads every word through the FIFO
    // dictionary, so there is no wide path to take — the batch entry
    // exists for interface uniformity and sizes the span serially.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = compressedSizeBytes(lines[i]);
}

Line
CpackCodec::decompress(const Encoded &enc) const
{
    if (enc.algo == CompAlgo::None)
        return decodeRaw(enc);
    dice_assert(enc.mode == 0xCA, "not a C-PACK stream");

    Line line{};
    BitReader br(enc.payload);
    Dictionary dict;

    for (std::uint32_t i = 0; i < kWords; ++i) {
        const std::uint64_t c2 = br.read(2);
        if (c2 == 0b00) {
            storeWord(line, i, 0);
            continue;
        }
        if (c2 == 0b01) {
            const auto w = static_cast<std::uint32_t>(br.read(32));
            storeWord(line, i, w);
            dict.push(w);
            continue;
        }
        if (c2 == 0b10) {
            const auto idx = static_cast<std::uint32_t>(br.read(4));
            storeWord(line, i, dict.at(idx));
            continue;
        }
        // 0b11: two more bits select the sub-pattern.
        const std::uint64_t c4 = br.read(2);
        if (c4 == 0b00) { // mmxx
            const auto idx = static_cast<std::uint32_t>(br.read(4));
            const auto lo = static_cast<std::uint32_t>(br.read(16));
            const std::uint32_t w =
                (dict.at(idx) & 0xFFFF0000u) | lo;
            storeWord(line, i, w);
            dict.push(w);
        } else if (c4 == 0b01) { // zzzx
            const auto b = static_cast<std::uint32_t>(br.read(8));
            storeWord(line, i, b);
        } else if (c4 == 0b10) { // mmmx
            const auto idx = static_cast<std::uint32_t>(br.read(4));
            const auto b = static_cast<std::uint32_t>(br.read(8));
            storeWord(line, i, (dict.at(idx) & 0xFFFFFF00u) | b);
        } else {
            dice_panic("C-PACK: bad pattern");
        }
    }
    return line;
}

} // namespace dice
