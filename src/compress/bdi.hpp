/**
 * @file
 * Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).
 *
 * The line is split into fixed-size elements; each element is stored as
 * either a small signed delta from one explicit base or a delta from the
 * implicit base zero ("immediate"), selected by a per-element mask bit.
 * Eight modes are tried and the smallest successful encoding wins.
 */

#ifndef DICE_COMPRESS_BDI_HPP
#define DICE_COMPRESS_BDI_HPP

#include <optional>

#include "compress/compressor.hpp"

namespace dice
{

/** BDI codec over 64-B lines. */
class BdiCodec : public Codec
{
  public:
    /** BDI modes; values are stored in the tag's 3 mode bits. */
    enum Mode : std::uint8_t
    {
        Zeros = 0, ///< All-zero line (no payload).
        Rep8 = 1,  ///< One repeated 8-byte value.
        B8D1 = 2,  ///< 8-byte base, 1-byte deltas.
        B8D2 = 3,  ///< 8-byte base, 2-byte deltas.
        B8D4 = 4,  ///< 8-byte base, 4-byte deltas.
        B4D1 = 5,  ///< 4-byte base, 1-byte deltas.
        B4D2 = 6,  ///< 4-byte base, 2-byte deltas.
        B2D1 = 7,  ///< 2-byte base, 1-byte deltas.
        NumModes = 8,
    };

    const char *name() const override { return "BDI"; }

    Encoded compress(const Line &line) const override;
    Line decompress(const Encoded &enc) const override;

    /** Base size in bytes for @p mode (0 for Zeros). */
    static std::uint32_t baseBytes(Mode mode);

    /** Delta size in bytes for @p mode (0 for Zeros/Rep8). */
    static std::uint32_t deltaBytes(Mode mode);

    /** Exact payload size in bits of a successful encoding in @p mode. */
    static std::uint32_t payloadBits(Mode mode);

    /**
     * Attempt to encode @p line in exactly @p mode; nullopt when the
     * line is not representable in that mode.
     */
    std::optional<Encoded> compressInMode(const Line &line,
                                          Mode mode) const;

    /** Representability check only — no bitstream is built. */
    bool representable(const Line &line, Mode mode) const;

    /**
     * Size of compress(line) in bits without materializing anything;
     * 8*kLineSize when no mode succeeds (hot path for the cache).
     */
    std::uint32_t compressedBits(const Line &line) const;

    /** compressedBits() rounded up to whole bytes. */
    std::uint32_t compressedSizeBytes(const Line &line) const override;

    /** Un-hide the inherited batched overload. */
    using Codec::compressedSizeBytes;
};

} // namespace dice

#endif // DICE_COMPRESS_BDI_HPP
