/**
 * @file
 * Zero-Content Augmented (ZCA) "codec": detects all-zero lines, which
 * need no data payload at all (a tag bit is enough).
 */

#ifndef DICE_COMPRESS_ZCA_HPP
#define DICE_COMPRESS_ZCA_HPP

#include "compress/compressor.hpp"

namespace dice
{

/** Trivial codec that compresses only all-zero lines (to zero bits). */
class ZcaCodec : public Codec
{
  public:
    const char *name() const override { return "ZCA"; }

    Encoded compress(const Line &line) const override;
    Line decompress(const Encoded &enc) const override;

    /** 0 for an all-zero line, kLineSize otherwise. */
    std::uint32_t compressedSizeBytes(const Line &line) const override;

    /** Un-hide the inherited batched overload. */
    using Codec::compressedSizeBytes;
};

} // namespace dice

#endif // DICE_COMPRESS_ZCA_HPP
