/**
 * @file
 * The FPC+BDI hybrid used by DICE (Section 4.2 of the paper): both
 * codecs run and the smaller encoding wins. Also implements pair
 * compression of two spatially-adjacent lines with a shared BDI base
 * (and shared tag, accounted for by the TAD layout), which is what lets
 * a pair fit in a 72-B TAD ("Double <= 68B" in Figure 4).
 */

#ifndef DICE_COMPRESS_HYBRID_HPP
#define DICE_COMPRESS_HYBRID_HPP

#include "compress/bdi.hpp"
#include "compress/fpc.hpp"
#include "compress/zca.hpp"

namespace dice
{

/** How a compressed pair of adjacent lines was encoded. */
enum class PairScheme : std::uint8_t
{
    Independent,   ///< Each line carries its own best encoding.
    SharedBdiBase, ///< One BDI base shared by both lines' elements.
};

/** Result of compressing two adjacent lines together. */
struct EncodedPair
{
    PairScheme scheme = PairScheme::Independent;
    /** BDI mode when scheme == SharedBdiBase. */
    std::uint8_t mode = 0;
    /** Shared immediate mask (tag metadata; see Encoded::meta). */
    std::uint64_t meta = 0;
    /** Exact total payload bits for both lines. */
    std::uint32_t bits = 0;
    /** Per-line encodings (Independent) or the joint stream (shared). */
    Encoded first;
    Encoded second;
    PayloadBuf joint;

    std::uint32_t sizeBytes() const { return (bits + 7) / 8; }
};

/**
 * Hybrid ZCA/FPC/BDI codec. This is the compressor instantiated in the
 * L4 cache controller.
 */
class HybridCodec : public Codec
{
  public:
    const char *name() const override { return "FPC+BDI"; }

    /** Best of ZCA, FPC, and BDI (ties break toward BDI, then FPC). */
    Encoded compress(const Line &line) const override;

    /** Dispatch on the encoding's algorithm tag. */
    Line decompress(const Encoded &enc) const override;

    /**
     * Compressed payload size of @p line in bytes, via the
     * allocation-free size-only codec paths (hot path of the cache
     * model; equals compress(line).sizeBytes()).
     */
    std::uint32_t compressedSizeBytes(const Line &line) const override;

    /** Un-hide the inherited batched overload. */
    using Codec::compressedSizeBytes;

    /**
     * Joint payload size of the pair (a, b) in bytes, again without
     * materializing a bitstream; equals compressPair(...).sizeBytes().
     */
    std::uint32_t pairSizeBytes(const Line &a, const Line &b) const;

    /**
     * Same, with the lines' independent compressed sizes supplied by
     * a caller that already knows them (e.g. from a memo) — the joint
     * pass then only evaluates the shared-base pair modes instead of
     * re-running both single-line codecs.
     */
    std::uint32_t pairSizeBytes(const Line &a, const Line &b,
                                std::uint32_t a_bytes,
                                std::uint32_t b_bytes) const;

    /**
     * Compress adjacent lines @p a and @p b together, sharing one BDI
     * base when that beats independent encodings.
     */
    EncodedPair compressPair(const Line &a, const Line &b) const;

    /** Invert compressPair(). */
    std::pair<Line, Line> decompressPair(const EncodedPair &enc) const;

    const ZcaCodec &zca() const { return zca_; }
    const FpcCodec &fpc() const { return fpc_; }
    const BdiCodec &bdi() const { return bdi_; }

  private:
    /**
     * Try to encode both lines in one BDI mode with a single shared
     * base; nullopt when some element of either line does not fit.
     */
    std::optional<EncodedPair> sharedBaseEncode(const Line &a,
                                                const Line &b,
                                                BdiCodec::Mode mode) const;

    ZcaCodec zca_;
    FpcCodec fpc_;
    BdiCodec bdi_;
};

} // namespace dice

#endif // DICE_COMPRESS_HYBRID_HPP
