#include "fpc.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "compress/bitstream.hpp"

namespace dice
{

namespace
{

std::uint32_t
loadWord(const Line &line, std::uint32_t idx)
{
    std::uint32_t w;
    std::memcpy(&w, line.data() + 4 * idx, 4);
    return w;
}

void
storeWord(Line &line, std::uint32_t idx, std::uint32_t w)
{
    std::memcpy(line.data() + 4 * idx, &w, 4);
}

bool
isRepeatedByte(std::uint32_t w)
{
    const std::uint32_t b = w & 0xFF;
    const std::uint32_t rep = b * 0x01010101u;
    return w == rep;
}

} // namespace

std::uint32_t
FpcCodec::compressedBits(const Line &line) const
{
    std::uint32_t bits = 0;
    std::uint32_t i = 0;
    while (i < kWords) {
        const std::uint32_t w = loadWord(line, i);
        if (w == 0) {
            std::uint32_t run = 1;
            while (run < 8 && i + run < kWords &&
                   loadWord(line, i + run) == 0) {
                ++run;
            }
            bits += 6;
            i += run;
            continue;
        }
        const auto sw = static_cast<std::int32_t>(w);
        const std::uint32_t hi = w >> 16;
        const std::uint32_t lo = w & 0xFFFF;
        if (fitsSigned(sw, 4)) {
            bits += 7;
        } else if (fitsSigned(sw, 8)) {
            bits += 11;
        } else if (fitsSigned(sw, 16)) {
            bits += 19;
        } else if (lo == 0) {
            bits += 19;
        } else if (fitsSigned(signExtend(hi, 16), 8) &&
                   fitsSigned(signExtend(lo, 16), 8)) {
            bits += 19;
        } else if (isRepeatedByte(w)) {
            bits += 11;
        } else {
            bits += 35;
        }
        ++i;
    }
    return (bits + 7) / 8 >= kLineSize ? 8 * kLineSize : bits;
}

std::uint32_t
FpcCodec::compressedSizeBytes(const Line &line) const
{
    return (compressedBits(line) + 7) / 8;
}

Encoded
FpcCodec::compress(const Line &line) const
{
    BitWriter bw;

    std::uint32_t i = 0;
    while (i < kWords) {
        const std::uint32_t w = loadWord(line, i);

        if (w == 0) {
            // Collapse up to 8 consecutive zero words into one token.
            std::uint32_t run = 1;
            while (run < 8 && i + run < kWords &&
                   loadWord(line, i + run) == 0) {
                ++run;
            }
            bw.write(ZeroRun, 3);
            bw.write(run - 1, 3);
            i += run;
            continue;
        }

        const auto sw = static_cast<std::int32_t>(w);
        const std::uint32_t hi = w >> 16;
        const std::uint32_t lo = w & 0xFFFF;

        if (fitsSigned(sw, 4)) {
            bw.write(Sign4, 3);
            bw.write(w & 0xF, 4);
        } else if (fitsSigned(sw, 8)) {
            bw.write(Sign8, 3);
            bw.write(w & 0xFF, 8);
        } else if (fitsSigned(sw, 16)) {
            bw.write(Sign16, 3);
            bw.write(w & 0xFFFF, 16);
        } else if (lo == 0) {
            bw.write(HalfZeroPad, 3);
            bw.write(hi, 16);
        } else if (fitsSigned(signExtend(hi, 16), 8) &&
                   fitsSigned(signExtend(lo, 16), 8)) {
            bw.write(TwoSignedBytes, 3);
            bw.write(hi & 0xFF, 8);
            bw.write(lo & 0xFF, 8);
        } else if (isRepeatedByte(w)) {
            bw.write(RepeatedByte, 3);
            bw.write(w & 0xFF, 8);
        } else {
            bw.write(Uncompressed, 3);
            bw.write(w, 32);
        }
        ++i;
    }

    // A line that expands past its raw size is left uncompressed.
    if (bw.byteSize() >= kLineSize)
        return encodeRaw(line);

    Encoded enc;
    enc.algo = CompAlgo::Fpc;
    enc.payload = bw.bytes();
    enc.bits = bw.bitSize();
    return enc;
}

Line
FpcCodec::decompress(const Encoded &enc) const
{
    if (enc.algo == CompAlgo::None)
        return decodeRaw(enc);
    dice_assert(enc.algo == CompAlgo::Fpc, "FPC decompress of wrong algo");

    Line line{};
    BitReader br(enc.payload);

    std::uint32_t i = 0;
    while (i < kWords) {
        const auto pattern = static_cast<Pattern>(br.read(3));
        switch (pattern) {
          case ZeroRun: {
            const std::uint32_t run =
                static_cast<std::uint32_t>(br.read(3)) + 1;
            dice_assert(i + run <= kWords, "FPC zero run overflows line");
            for (std::uint32_t k = 0; k < run; ++k)
                storeWord(line, i + k, 0);
            i += run;
            break;
          }
          case Sign4:
            storeWord(line, i++,
                      static_cast<std::uint32_t>(signExtend(br.read(4), 4)));
            break;
          case Sign8:
            storeWord(line, i++,
                      static_cast<std::uint32_t>(signExtend(br.read(8), 8)));
            break;
          case Sign16:
            storeWord(
                line, i++,
                static_cast<std::uint32_t>(signExtend(br.read(16), 16)));
            break;
          case HalfZeroPad:
            storeWord(line, i++,
                      static_cast<std::uint32_t>(br.read(16)) << 16);
            break;
          case TwoSignedBytes: {
            const auto hi = static_cast<std::uint32_t>(
                signExtend(br.read(8), 8)) & 0xFFFF;
            const auto lo = static_cast<std::uint32_t>(
                signExtend(br.read(8), 8)) & 0xFFFF;
            storeWord(line, i++, (hi << 16) | lo);
            break;
          }
          case RepeatedByte: {
            const auto b = static_cast<std::uint32_t>(br.read(8));
            storeWord(line, i++, b * 0x01010101u);
            break;
          }
          case Uncompressed:
            storeWord(line, i++, static_cast<std::uint32_t>(br.read(32)));
            break;
          default:
            dice_panic("FPC: bad pattern");
        }
    }
    return line;
}

} // namespace dice
