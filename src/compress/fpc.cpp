#include "fpc.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/simd.hpp"
#include "compress/bitstream.hpp"

namespace dice
{

namespace
{

std::uint32_t
loadWord(const Line &line, std::uint32_t idx)
{
    std::uint32_t w;
    std::memcpy(&w, line.data() + 4 * idx, 4);
    return w;
}

void
storeWord(Line &line, std::uint32_t idx, std::uint32_t w)
{
    std::memcpy(line.data() + 4 * idx, &w, 4);
}

bool
isRepeatedByte(std::uint32_t w)
{
    const std::uint32_t b = w & 0xFF;
    const std::uint32_t rep = b * 0x01010101u;
    return w == rep;
}

/** Scalar reference classifier (defines the size semantics). */
std::uint32_t
fpcBitsScalar(const Line &line)
{
    constexpr std::uint32_t kWords = kLineSize / 4;
    std::uint32_t bits = 0;
    std::uint32_t i = 0;
    while (i < kWords) {
        const std::uint32_t w = loadWord(line, i);
        if (w == 0) {
            std::uint32_t run = 1;
            while (run < 8 && i + run < kWords &&
                   loadWord(line, i + run) == 0) {
                ++run;
            }
            bits += 6;
            i += run;
            continue;
        }
        const auto sw = static_cast<std::int32_t>(w);
        const std::uint32_t hi = w >> 16;
        const std::uint32_t lo = w & 0xFFFF;
        if (fitsSigned(sw, 4)) {
            bits += 7;
        } else if (fitsSigned(sw, 8)) {
            bits += 11;
        } else if (fitsSigned(sw, 16)) {
            bits += 19;
        } else if (lo == 0) {
            bits += 19;
        } else if (fitsSigned(signExtend(hi, 16), 8) &&
                   fitsSigned(signExtend(lo, 16), 8)) {
            bits += 19;
        } else if (isRepeatedByte(w)) {
            bits += 11;
        } else {
            bits += 35;
        }
        ++i;
    }
    return (bits + 7) / 8 >= kLineSize ? 8 * kLineSize : bits;
}

#if defined(DICE_SIMD_X86)

/**
 * AVX2 twin of fpcBitsScalar: all sixteen words are classified at
 * once, with per-word costs selected by blends applied in reverse
 * priority order (so the scalar classifier's first match wins), then
 * summed; only the zero-run token loop stays scalar, walking a 16-bit
 * occupancy mask. Exactly matches fpcBitsScalar for every input.
 */
DICE_TARGET_AVX2 std::uint32_t
fpcBitsAvx2(const Line &line)
{
    const __m256i zero = _mm256_setzero_si256();
    // fitsSigned(w, b) == ((w + 2^(b-1)) & ~(2^b - 1)) == 0; the bias
    // add maps the representable range onto [0, 2^b) exactly.
    const __m256i shuf = _mm256_setr_epi8(
        0, 0, 0, 0, 4, 4, 4, 4, 8, 8, 8, 8, 12, 12, 12, 12, 0, 0, 0,
        0, 4, 4, 4, 4, 8, 8, 8, 8, 12, 12, 12, 12);

    std::uint32_t zmask = 0;
    __m256i cost_sum = _mm256_setzero_si256();
    for (std::uint32_t half = 0; half < 2; ++half) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(line.data() + 32 * half));
        const __m256i is_zero = _mm256_cmpeq_epi32(x, zero);
        zmask |= static_cast<std::uint32_t>(_mm256_movemask_ps(
                     _mm256_castsi256_ps(is_zero)))
                 << (8 * half);

        const __m256i s4 = _mm256_cmpeq_epi32(
            _mm256_and_si256(_mm256_add_epi32(x, _mm256_set1_epi32(8)),
                             _mm256_set1_epi32(~0xF)),
            zero);
        const __m256i s8 = _mm256_cmpeq_epi32(
            _mm256_and_si256(
                _mm256_add_epi32(x, _mm256_set1_epi32(128)),
                _mm256_set1_epi32(~0xFF)),
            zero);
        const __m256i s16 = _mm256_cmpeq_epi32(
            _mm256_and_si256(
                _mm256_add_epi32(x, _mm256_set1_epi32(0x8000)),
                _mm256_set1_epi32(~0xFFFF)),
            zero);
        const __m256i lo0 = _mm256_cmpeq_epi32(
            _mm256_and_si256(x, _mm256_set1_epi32(0xFFFF)), zero);
        // TwoSignedBytes: each halfword fits 8 signed bits — test the
        // 16-bit lanes, then require both lanes of the word to pass.
        const __m256i h8 = _mm256_cmpeq_epi16(
            _mm256_and_si256(
                _mm256_add_epi16(x, _mm256_set1_epi16(128)),
                _mm256_set1_epi16(static_cast<short>(0xFF00))),
            zero);
        const __m256i tsb =
            _mm256_cmpeq_epi32(h8, _mm256_set1_epi32(-1));
        // RepeatedByte: the word equals its byte 0 replicated.
        const __m256i rep =
            _mm256_cmpeq_epi32(x, _mm256_shuffle_epi8(x, shuf));

        __m256i cost = _mm256_set1_epi32(35);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(11), rep);
        const __m256i g19 =
            _mm256_or_si256(s16, _mm256_or_si256(lo0, tsb));
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(19), g19);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(11), s8);
        cost = _mm256_blendv_epi8(cost, _mm256_set1_epi32(7), s4);
        cost = _mm256_andnot_si256(is_zero, cost);
        cost_sum = _mm256_add_epi32(cost_sum, cost);
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), cost_sum);
    std::uint32_t bits = 0;
    for (const std::uint32_t lane : lanes)
        bits += lane;
    // Each maximal run of L zero words costs ceil(L/8) 6-bit tokens.
    while (zmask != 0) {
        zmask >>= __builtin_ctz(zmask);
        const std::uint32_t run =
            static_cast<std::uint32_t>(__builtin_ctz(~zmask));
        bits += 6 * ((run + 7) / 8);
        zmask >>= run;
    }
    return (bits + 7) / 8 >= kLineSize ? 8 * kLineSize : bits;
}

#endif // DICE_SIMD_X86

} // namespace

std::uint32_t
FpcCodec::compressedBits(const Line &line) const
{
#if defined(DICE_SIMD_X86)
    if (simd::active())
        return fpcBitsAvx2(line);
#endif
    return fpcBitsScalar(line);
}

std::uint32_t
FpcCodec::compressedSizeBytes(const Line &line) const
{
    return (compressedBits(line) + 7) / 8;
}

Encoded
FpcCodec::compress(const Line &line) const
{
    BitWriter bw;

    std::uint32_t i = 0;
    while (i < kWords) {
        const std::uint32_t w = loadWord(line, i);

        if (w == 0) {
            // Collapse up to 8 consecutive zero words into one token.
            std::uint32_t run = 1;
            while (run < 8 && i + run < kWords &&
                   loadWord(line, i + run) == 0) {
                ++run;
            }
            bw.write(ZeroRun, 3);
            bw.write(run - 1, 3);
            i += run;
            continue;
        }

        const auto sw = static_cast<std::int32_t>(w);
        const std::uint32_t hi = w >> 16;
        const std::uint32_t lo = w & 0xFFFF;

        if (fitsSigned(sw, 4)) {
            bw.write(Sign4, 3);
            bw.write(w & 0xF, 4);
        } else if (fitsSigned(sw, 8)) {
            bw.write(Sign8, 3);
            bw.write(w & 0xFF, 8);
        } else if (fitsSigned(sw, 16)) {
            bw.write(Sign16, 3);
            bw.write(w & 0xFFFF, 16);
        } else if (lo == 0) {
            bw.write(HalfZeroPad, 3);
            bw.write(hi, 16);
        } else if (fitsSigned(signExtend(hi, 16), 8) &&
                   fitsSigned(signExtend(lo, 16), 8)) {
            bw.write(TwoSignedBytes, 3);
            bw.write(hi & 0xFF, 8);
            bw.write(lo & 0xFF, 8);
        } else if (isRepeatedByte(w)) {
            bw.write(RepeatedByte, 3);
            bw.write(w & 0xFF, 8);
        } else {
            bw.write(Uncompressed, 3);
            bw.write(w, 32);
        }
        ++i;
    }

    // A line that expands past its raw size is left uncompressed.
    if (bw.byteSize() >= kLineSize)
        return encodeRaw(line);

    Encoded enc;
    enc.algo = CompAlgo::Fpc;
    enc.payload = bw.bytes();
    enc.bits = bw.bitSize();
    return enc;
}

Line
FpcCodec::decompress(const Encoded &enc) const
{
    if (enc.algo == CompAlgo::None)
        return decodeRaw(enc);
    dice_assert(enc.algo == CompAlgo::Fpc, "FPC decompress of wrong algo");

    Line line{};
    BitReader br(enc.payload);

    std::uint32_t i = 0;
    while (i < kWords) {
        const auto pattern = static_cast<Pattern>(br.read(3));
        switch (pattern) {
          case ZeroRun: {
            const std::uint32_t run =
                static_cast<std::uint32_t>(br.read(3)) + 1;
            dice_assert(i + run <= kWords, "FPC zero run overflows line");
            for (std::uint32_t k = 0; k < run; ++k)
                storeWord(line, i + k, 0);
            i += run;
            break;
          }
          case Sign4:
            storeWord(line, i++,
                      static_cast<std::uint32_t>(signExtend(br.read(4), 4)));
            break;
          case Sign8:
            storeWord(line, i++,
                      static_cast<std::uint32_t>(signExtend(br.read(8), 8)));
            break;
          case Sign16:
            storeWord(
                line, i++,
                static_cast<std::uint32_t>(signExtend(br.read(16), 16)));
            break;
          case HalfZeroPad:
            storeWord(line, i++,
                      static_cast<std::uint32_t>(br.read(16)) << 16);
            break;
          case TwoSignedBytes: {
            const auto hi = static_cast<std::uint32_t>(
                signExtend(br.read(8), 8)) & 0xFFFF;
            const auto lo = static_cast<std::uint32_t>(
                signExtend(br.read(8), 8)) & 0xFFFF;
            storeWord(line, i++, (hi << 16) | lo);
            break;
          }
          case RepeatedByte: {
            const auto b = static_cast<std::uint32_t>(br.read(8));
            storeWord(line, i++, b * 0x01010101u);
            break;
          }
          case Uncompressed:
            storeWord(line, i++, static_cast<std::uint32_t>(br.read(32)));
            break;
          default:
            dice_panic("FPC: bad pattern");
        }
    }
    return line;
}

} // namespace dice
