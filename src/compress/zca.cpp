#include "zca.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dice
{

Encoded
ZcaCodec::compress(const Line &line) const
{
    const bool all_zero =
        std::all_of(line.begin(), line.end(),
                    [](std::uint8_t b) { return b == 0; });
    if (!all_zero)
        return encodeRaw(line);

    Encoded enc;
    enc.algo = CompAlgo::Zca;
    enc.bits = 0;
    return enc;
}

std::uint32_t
ZcaCodec::compressedSizeBytes(const Line &line) const
{
    const bool all_zero =
        std::all_of(line.begin(), line.end(),
                    [](std::uint8_t b) { return b == 0; });
    return all_zero ? 0 : kLineSize;
}

Line
ZcaCodec::decompress(const Encoded &enc) const
{
    if (enc.algo == CompAlgo::None)
        return decodeRaw(enc);
    dice_assert(enc.algo == CompAlgo::Zca, "ZCA decompress of wrong algo");
    return Line{};
}

} // namespace dice
