#include "zca.hpp"

#include "common/log.hpp"
#include "common/simd.hpp"

namespace dice
{

Encoded
ZcaCodec::compress(const Line &line) const
{
    if (!simd::allZero(line.data(), kLineSize))
        return encodeRaw(line);

    Encoded enc;
    enc.algo = CompAlgo::Zca;
    enc.bits = 0;
    return enc;
}

std::uint32_t
ZcaCodec::compressedSizeBytes(const Line &line) const
{
    return simd::allZero(line.data(), kLineSize) ? 0 : kLineSize;
}

Line
ZcaCodec::decompress(const Encoded &enc) const
{
    if (enc.algo == CompAlgo::None)
        return decodeRaw(enc);
    dice_assert(enc.algo == CompAlgo::Zca, "ZCA decompress of wrong algo");
    return Line{};
}

} // namespace dice
