#include "hybrid.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/simd.hpp"
#include "compress/bitstream.hpp"

namespace dice
{

Encoded
HybridCodec::compress(const Line &line) const
{
    Encoded best = zca_.compress(line);
    if (best.algo == CompAlgo::Zca)
        return best; // Cannot be beaten (0 bits).

    const Encoded b = bdi_.compress(line);
    const Encoded f = fpc_.compress(line);

    best = encodeRaw(line);
    // Prefer BDI on ties: its 1-cycle decompression is cheaper, and tag
    // metadata is smaller.
    if (f.algo != CompAlgo::None && f.bits < best.bits)
        best = f;
    if (b.algo != CompAlgo::None && b.bits <= best.bits)
        best = b;
    return best;
}

Line
HybridCodec::decompress(const Encoded &enc) const
{
    switch (enc.algo) {
      case CompAlgo::None:
        return decodeRaw(enc);
      case CompAlgo::Zca:
        return zca_.decompress(enc);
      case CompAlgo::Fpc:
        return fpc_.decompress(enc);
      case CompAlgo::Bdi:
        return bdi_.decompress(enc);
      default:
        dice_panic("bad compression algo %u",
                   static_cast<unsigned>(enc.algo));
    }
}

std::uint32_t
HybridCodec::compressedSizeBytes(const Line &line) const
{
    std::uint64_t words[kLineSize / 8];
    std::memcpy(words, line.data(), sizeof(words));
    std::uint64_t any = 0;
    for (std::uint64_t w : words)
        any |= w;
    if (any == 0)
        return 0;

    const std::uint32_t best_bits =
        std::min(bdi_.compressedBits(line), fpc_.compressedBits(line));
    return (best_bits + 7) / 8;
}

namespace
{

std::uint64_t
loadElem(const Line &line, std::uint32_t k, std::uint32_t idx)
{
    std::uint64_t v = 0;
    std::memcpy(&v, line.data() + k * idx, k);
    return v;
}

/** Sign-extended k-byte elements of @p a then @p b. */
void
extractPairElems(const Line &a, const Line &b, std::uint32_t k,
                 std::int64_t *out)
{
    const std::uint32_t n = kLineSize / k;
    for (std::uint32_t i = 0; i < n; ++i)
        out[i] = signExtend(loadElem(a, k, i), 8 * k);
    for (std::uint32_t i = 0; i < n; ++i)
        out[n + i] = signExtend(loadElem(b, k, i), 8 * k);
}

/** Joint payload bits of a shared-base pair encoding. */
std::uint32_t
pairPayloadBits(BdiCodec::Mode mode)
{
    const std::uint32_t k = BdiCodec::baseBytes(mode);
    const std::uint32_t d = BdiCodec::deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / k;
    return 8 * k + 2 * n_elem * 8 * d;
}

} // namespace

std::uint32_t
HybridCodec::pairSizeBytes(const Line &a, const Line &b) const
{
    return pairSizeBytes(a, b, compressedSizeBytes(a),
                         compressedSizeBytes(b));
}

std::uint32_t
HybridCodec::pairSizeBytes(const Line &a, const Line &b,
                           std::uint32_t a_bytes,
                           std::uint32_t b_bytes) const
{
    std::uint32_t best_bits = 8 * (a_bytes + b_bytes);
    // Same mode set and min rule as compressPair(), with the pair's
    // elements extracted once per base size and shared across modes.
    static constexpr BdiCodec::Mode kDeltaModes[] = {
        BdiCodec::B8D1, BdiCodec::B4D1, BdiCodec::B8D2,
        BdiCodec::B4D2, BdiCodec::B2D1, BdiCodec::B8D4,
    };
    std::int64_t e8[2 * kLineSize / 8];
    std::int64_t e4[2 * kLineSize / 4];
    std::int64_t e2[2 * kLineSize / 2];
    bool have8 = false, have4 = false, have2 = false;
    for (auto mode : kDeltaModes) {
        const std::uint32_t bits = pairPayloadBits(mode);
        if (bits >= best_bits)
            continue;
        const std::uint32_t k = BdiCodec::baseBytes(mode);
        const std::int64_t *elems;
        if (k == 8) {
            if (!have8)
                extractPairElems(a, b, 8, e8);
            have8 = true;
            elems = e8;
        } else if (k == 4) {
            if (!have4)
                extractPairElems(a, b, 4, e4);
            have4 = true;
            elems = e4;
        } else {
            if (!have2)
                extractPairElems(a, b, 2, e2);
            have2 = true;
            elems = e2;
        }
        // Same representability rule sharedBaseEncode() applies,
        // size-only, vectorized on AVX2.
        if (simd::deltasFitI64(elems, 2 * kLineSize / k,
                               8 * BdiCodec::deltaBytes(mode)))
            best_bits = bits;
    }
    return (best_bits + 7) / 8;
}

namespace
{

void
storeElem(Line &line, std::uint32_t k, std::uint32_t idx, std::uint64_t v)
{
    std::memcpy(line.data() + k * idx, &v, k);
}

} // namespace

std::optional<EncodedPair>
HybridCodec::sharedBaseEncode(const Line &a, const Line &b,
                              BdiCodec::Mode mode) const
{
    if (mode == BdiCodec::Zeros || mode == BdiCodec::Rep8)
        return std::nullopt; // Pair sharing only applies to delta modes.

    const std::uint32_t k = BdiCodec::baseBytes(mode);
    const std::uint32_t d = BdiCodec::deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / k;
    const std::uint32_t delta_bits = 8 * d;

    std::uint64_t base = 0;
    bool base_set = false;
    std::uint64_t mask = 0; // 2*n_elem mask bits across both lines
    std::array<std::int64_t, kLineSize> deltas{}; // 2*n_elem <= 64

    for (std::uint32_t i = 0; i < 2 * n_elem; ++i) {
        const Line &src = i < n_elem ? a : b;
        const std::uint32_t idx = i < n_elem ? i : i - n_elem;
        const std::uint64_t raw = loadElem(src, k, idx);
        const std::int64_t val = signExtend(raw, 8 * k);
        if (fitsSigned(val, delta_bits)) {
            mask |= std::uint64_t{1} << i;
            deltas[i] = val;
            continue;
        }
        if (!base_set) {
            base = raw;
            base_set = true;
        }
        const std::int64_t delta = val - signExtend(base, 8 * k);
        if (!fitsSigned(delta, delta_bits))
            return std::nullopt;
        deltas[i] = delta;
    }

    BitWriter bw;
    bw.write(base, 8 * k);
    for (std::uint32_t i = 0; i < 2 * n_elem; ++i)
        bw.write(static_cast<std::uint64_t>(deltas[i]), delta_bits);

    EncodedPair enc;
    enc.scheme = PairScheme::SharedBdiBase;
    enc.mode = mode;
    enc.meta = mask;
    enc.joint = bw.bytes();
    enc.bits = bw.bitSize();
    return enc;
}

EncodedPair
HybridCodec::compressPair(const Line &a, const Line &b) const
{
    EncodedPair best;
    best.scheme = PairScheme::Independent;
    best.first = compress(a);
    best.second = compress(b);
    // Independently-encoded lines are stored byte-aligned.
    best.bits = 8 * (best.first.sizeBytes() + best.second.sizeBytes());

    static constexpr BdiCodec::Mode kDeltaModes[] = {
        BdiCodec::B8D1, BdiCodec::B4D1, BdiCodec::B8D2,
        BdiCodec::B4D2, BdiCodec::B2D1, BdiCodec::B8D4,
    };
    for (auto mode : kDeltaModes) {
        if (auto shared = sharedBaseEncode(a, b, mode)) {
            if (shared->bits < best.bits)
                best = std::move(*shared);
        }
    }
    return best;
}

std::pair<Line, Line>
HybridCodec::decompressPair(const EncodedPair &enc) const
{
    if (enc.scheme == PairScheme::Independent)
        return {decompress(enc.first), decompress(enc.second)};

    const auto mode = static_cast<BdiCodec::Mode>(enc.mode);
    const std::uint32_t k = BdiCodec::baseBytes(mode);
    const std::uint32_t d = BdiCodec::deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / k;

    BitReader br(enc.joint);
    const std::uint64_t base = br.read(8 * k);
    const std::int64_t base_val = signExtend(base, 8 * k);
    const std::uint64_t mask = enc.meta;

    Line a{}, b{};
    for (std::uint32_t i = 0; i < 2 * n_elem; ++i) {
        const std::int64_t delta = signExtend(br.read(8 * d), 8 * d);
        const bool immediate = (mask >> i) & 1;
        const std::int64_t val = immediate ? delta : base_val + delta;
        Line &dst = i < n_elem ? a : b;
        const std::uint32_t idx = i < n_elem ? i : i - n_elem;
        storeElem(dst, k, idx, static_cast<std::uint64_t>(val));
    }
    return {a, b};
}

} // namespace dice
