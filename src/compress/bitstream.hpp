/**
 * @file
 * Bit-granular serialization used by the compression codecs.
 *
 * The codecs produce real bitstreams (not just size estimates) so that
 * round-trip correctness can be tested; the cache model then uses the
 * bit-exact encoded sizes. Both the writer and the reader operate on
 * fixed-capacity inline storage (PayloadBuf) so that encoding a line
 * never allocates.
 */

#ifndef DICE_COMPRESS_BITSTREAM_HPP
#define DICE_COMPRESS_BITSTREAM_HPP

#include <cstdint>

#include "common/log.hpp"
#include "compress/compressor.hpp"

namespace dice
{

/** Append-only bit vector writer (LSB-first within each byte). */
class BitWriter
{
  public:
    /** Append the low @p n_bits of @p value (n_bits <= 64). */
    void
    write(std::uint64_t value, std::uint32_t n_bits)
    {
        dice_assert(n_bits <= 64, "BitWriter::write of %u bits", n_bits);
        for (std::uint32_t i = 0; i < n_bits; ++i) {
            const std::uint32_t byte = bit_pos_ >> 3;
            const std::uint32_t off = bit_pos_ & 7;
            if (byte >= bytes_.size())
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_[byte] |= static_cast<std::uint8_t>(1u << off);
            ++bit_pos_;
        }
    }

    /** Total bits written so far. */
    std::uint32_t bitSize() const { return bit_pos_; }

    /** Size in whole bytes (rounded up). */
    std::uint32_t byteSize() const { return (bit_pos_ + 7) / 8; }

    /** The backing bytes (final byte may be partially used). */
    const PayloadBuf &bytes() const { return bytes_; }

  private:
    PayloadBuf bytes_;
    std::uint32_t bit_pos_ = 0;
};

/** Sequential reader over a bitstream produced by BitWriter. */
class BitReader
{
  public:
    explicit BitReader(const PayloadBuf &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {
    }

    BitReader(const std::uint8_t *data, std::uint32_t size)
        : data_(data), size_(size)
    {
    }

    /** Read @p n_bits (<= 64), LSB-first. */
    std::uint64_t
    read(std::uint32_t n_bits)
    {
        dice_assert(n_bits <= 64, "BitReader::read of %u bits", n_bits);
        std::uint64_t v = 0;
        for (std::uint32_t i = 0; i < n_bits; ++i) {
            const std::uint32_t byte = bit_pos_ >> 3;
            const std::uint32_t off = bit_pos_ & 7;
            dice_assert(byte < size_, "BitReader past end");
            if ((data_[byte] >> off) & 1)
                v |= std::uint64_t{1} << i;
            ++bit_pos_;
        }
        return v;
    }

    /** Bits consumed so far. */
    std::uint32_t bitPos() const { return bit_pos_; }

  private:
    const std::uint8_t *data_;
    std::uint32_t size_;
    std::uint32_t bit_pos_ = 0;
};

} // namespace dice

#endif // DICE_COMPRESS_BITSTREAM_HPP
