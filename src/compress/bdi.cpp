#include "bdi.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/simd.hpp"
#include "compress/bitstream.hpp"

namespace dice
{

namespace
{

/** Load the little-endian @p k-byte element @p idx of the line. */
std::uint64_t
loadElem(const Line &line, std::uint32_t k, std::uint32_t idx)
{
    std::uint64_t v = 0;
    std::memcpy(&v, line.data() + k * idx, k);
    return v;
}

void
storeElem(Line &line, std::uint32_t k, std::uint32_t idx, std::uint64_t v)
{
    std::memcpy(line.data() + k * idx, &v, k);
}

} // namespace

std::uint32_t
BdiCodec::baseBytes(Mode mode)
{
    switch (mode) {
      case Zeros:
        return 0;
      case Rep8:
      case B8D1:
      case B8D2:
      case B8D4:
        return 8;
      case B4D1:
      case B4D2:
        return 4;
      case B2D1:
        return 2;
      default:
        dice_panic("bad BDI mode %u", mode);
    }
}

std::uint32_t
BdiCodec::deltaBytes(Mode mode)
{
    switch (mode) {
      case Zeros:
      case Rep8:
        return 0;
      case B8D1:
      case B4D1:
      case B2D1:
        return 1;
      case B8D2:
      case B4D2:
        return 2;
      case B8D4:
        return 4;
      default:
        dice_panic("bad BDI mode %u", mode);
    }
}

std::uint32_t
BdiCodec::payloadBits(Mode mode)
{
    if (mode == Zeros)
        return 0;
    if (mode == Rep8)
        return 64;
    const std::uint32_t base = baseBytes(mode);
    const std::uint32_t delta = deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / base;
    // Base + per-element deltas. The per-element immediate-mask bits
    // travel in the tag's metadata (Encoded::meta), matching the
    // paper's canonical BDI sizes (e.g. Base4-Delta2 = 36 B).
    return 8 * base + n_elem * 8 * delta;
}

std::optional<Encoded>
BdiCodec::compressInMode(const Line &line, Mode mode) const
{
    if (mode == Zeros) {
        for (std::uint8_t b : line) {
            if (b != 0)
                return std::nullopt;
        }
        Encoded enc;
        enc.algo = CompAlgo::Bdi;
        enc.mode = Zeros;
        enc.bits = 0;
        return enc;
    }

    if (mode == Rep8) {
        const std::uint64_t v = loadElem(line, 8, 0);
        for (std::uint32_t i = 1; i < kLineSize / 8; ++i) {
            if (loadElem(line, 8, i) != v)
                return std::nullopt;
        }
        BitWriter bw;
        bw.write(v, 64);
        Encoded enc;
        enc.algo = CompAlgo::Bdi;
        enc.mode = Rep8;
        enc.payload = bw.bytes();
        enc.bits = bw.bitSize();
        return enc;
    }

    const std::uint32_t k = baseBytes(mode);
    const std::uint32_t d = deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / k;
    const std::uint32_t delta_bits = 8 * d;

    // Pass 1: pick the explicit base (first element that is not a small
    // immediate) and verify every element is representable.
    std::uint64_t base = 0;
    bool base_set = false;
    std::uint64_t mask = 0; // bit i set => element i uses the zero base
    std::array<std::int64_t, kLineSize / 2> deltas{}; // n_elem <= 32

    for (std::uint32_t i = 0; i < n_elem; ++i) {
        const std::uint64_t raw = loadElem(line, k, i);
        const std::int64_t val = signExtend(raw, 8 * k);
        if (fitsSigned(val, delta_bits)) {
            mask |= std::uint64_t{1} << i;
            deltas[i] = val;
            continue;
        }
        if (!base_set) {
            base = raw;
            base_set = true;
        }
        const std::int64_t delta =
            val - signExtend(base, 8 * k);
        if (!fitsSigned(delta, delta_bits))
            return std::nullopt;
        deltas[i] = delta;
    }

    BitWriter bw;
    bw.write(base, 8 * k);
    for (std::uint32_t i = 0; i < n_elem; ++i)
        bw.write(static_cast<std::uint64_t>(deltas[i]), delta_bits);

    dice_assert(bw.bitSize() == payloadBits(mode),
                "BDI size mismatch: %u vs %u", bw.bitSize(),
                payloadBits(mode));

    Encoded enc;
    enc.algo = CompAlgo::Bdi;
    enc.mode = mode;
    enc.meta = mask;
    enc.payload = bw.bytes();
    enc.bits = bw.bitSize();
    return enc;
}

bool
BdiCodec::representable(const Line &line, Mode mode) const
{
    if (mode == Zeros) {
        for (std::uint8_t b : line) {
            if (b != 0)
                return false;
        }
        return true;
    }
    if (mode == Rep8) {
        const std::uint64_t v = loadElem(line, 8, 0);
        for (std::uint32_t i = 1; i < kLineSize / 8; ++i) {
            if (loadElem(line, 8, i) != v)
                return false;
        }
        return true;
    }

    const std::uint32_t k = baseBytes(mode);
    const std::uint32_t d = deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / k;
    const std::uint32_t delta_bits = 8 * d;

    std::int64_t base_val = 0;
    bool base_set = false;
    for (std::uint32_t i = 0; i < n_elem; ++i) {
        const std::int64_t val = signExtend(loadElem(line, k, i), 8 * k);
        if (fitsSigned(val, delta_bits))
            continue;
        if (!base_set) {
            base_val = val;
            base_set = true;
        }
        if (!fitsSigned(val - base_val, delta_bits))
            return false;
    }
    return true;
}

std::uint32_t
BdiCodec::compressedBits(const Line &line) const
{
    // Size-only hot path. Modes are tried in the same
    // smallest-encoding-first order as compress() (Zeros, Rep8, B8D1,
    // B4D1, B8D2, B2D1, B4D2, B8D4), but the line is loaded once and
    // the sign-extended element arrays are shared across the modes
    // with the same base size instead of re-read per mode.
    std::uint64_t w[kLineSize / 8];
    std::memcpy(w, line.data(), sizeof(w));

    std::uint64_t any = 0;
    for (std::uint64_t v : w)
        any |= v;
    if (any == 0)
        return payloadBits(Zeros);

    bool repeated = true;
    for (std::uint32_t i = 1; i < kLineSize / 8; ++i) {
        if (w[i] != w[0]) {
            repeated = false;
            break;
        }
    }
    if (repeated)
        return payloadBits(Rep8);

    // The per-mode delta-width checks dispatch through
    // simd::deltasFitI64 (vectorized on AVX2, identical semantics to
    // the scalar rule representable() applies).
    std::int64_t e8[kLineSize / 8];
    for (std::uint32_t i = 0; i < kLineSize / 8; ++i)
        e8[i] = static_cast<std::int64_t>(w[i]);
    if (simd::deltasFitI64(e8, kLineSize / 8, 8))
        return payloadBits(B8D1);

    std::int64_t e4[kLineSize / 4];
    for (std::uint32_t i = 0; i < kLineSize / 4; ++i) {
        std::uint32_t v;
        std::memcpy(&v, line.data() + 4 * i, 4);
        e4[i] = static_cast<std::int32_t>(v);
    }
    if (simd::deltasFitI64(e4, kLineSize / 4, 8))
        return payloadBits(B4D1);
    if (simd::deltasFitI64(e8, kLineSize / 8, 16))
        return payloadBits(B8D2);

    std::int64_t e2[kLineSize / 2];
    for (std::uint32_t i = 0; i < kLineSize / 2; ++i) {
        std::uint16_t v;
        std::memcpy(&v, line.data() + 2 * i, 2);
        e2[i] = static_cast<std::int16_t>(v);
    }
    if (simd::deltasFitI64(e2, kLineSize / 2, 8))
        return payloadBits(B2D1);
    if (simd::deltasFitI64(e4, kLineSize / 4, 16))
        return payloadBits(B4D2);
    if (simd::deltasFitI64(e8, kLineSize / 8, 32))
        return payloadBits(B8D4);
    return 8 * kLineSize;
}

std::uint32_t
BdiCodec::compressedSizeBytes(const Line &line) const
{
    return (compressedBits(line) + 7) / 8;
}

Encoded
BdiCodec::compress(const Line &line) const
{
    // Try modes from smallest encoded size to largest (16, 20, 24,
    // 34, 36, 40 bytes).
    static constexpr Mode kOrder[] = {Zeros, Rep8, B8D1, B4D1,
                                      B8D2,  B2D1, B4D2, B8D4};
    for (Mode mode : kOrder) {
        if (payloadBits(mode) >= 8 * kLineSize)
            continue;
        if (auto enc = compressInMode(line, mode))
            return *enc;
    }
    return encodeRaw(line);
}

Line
BdiCodec::decompress(const Encoded &enc) const
{
    if (enc.algo == CompAlgo::None)
        return decodeRaw(enc);
    dice_assert(enc.algo == CompAlgo::Bdi, "BDI decompress of wrong algo");

    const auto mode = static_cast<Mode>(enc.mode);
    Line line{};

    if (mode == Zeros)
        return line;

    BitReader br(enc.payload);

    if (mode == Rep8) {
        const std::uint64_t v = br.read(64);
        for (std::uint32_t i = 0; i < kLineSize / 8; ++i)
            storeElem(line, 8, i, v);
        return line;
    }

    const std::uint32_t k = baseBytes(mode);
    const std::uint32_t d = deltaBytes(mode);
    const std::uint32_t n_elem = kLineSize / k;

    const std::uint64_t base = br.read(8 * k);
    const std::int64_t base_val = signExtend(base, 8 * k);
    const std::uint64_t mask = enc.meta;

    for (std::uint32_t i = 0; i < n_elem; ++i) {
        const std::int64_t delta = signExtend(br.read(8 * d), 8 * d);
        const bool immediate = (mask >> i) & 1;
        const std::int64_t val = immediate ? delta : base_val + delta;
        storeElem(line, k, i, static_cast<std::uint64_t>(val));
    }
    return line;
}

} // namespace dice
