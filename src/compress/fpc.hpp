/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood, 2004).
 *
 * The line is treated as sixteen 32-bit words; each word is encoded as a
 * 3-bit prefix plus a variable-size payload. Runs of zero words collapse
 * into a single prefix with a 3-bit run length.
 */

#ifndef DICE_COMPRESS_FPC_HPP
#define DICE_COMPRESS_FPC_HPP

#include "compress/compressor.hpp"

namespace dice
{

/** FPC codec over 64-B lines. */
class FpcCodec : public Codec
{
  public:
    const char *name() const override { return "FPC"; }

    Encoded compress(const Line &line) const override;
    Line decompress(const Encoded &enc) const override;

    /**
     * Size of compress(line) in bits without materializing the
     * bitstream (hot path for the cache model). Returns 8*kLineSize
     * when FPC would fall back to raw storage.
     */
    std::uint32_t compressedBits(const Line &line) const;

    /** compressedBits() rounded up to whole bytes. */
    std::uint32_t compressedSizeBytes(const Line &line) const override;

    /** Un-hide the inherited batched overload. */
    using Codec::compressedSizeBytes;

    /** Word-level patterns, in prefix order. */
    enum Pattern : std::uint8_t
    {
        ZeroRun = 0,      ///< 1-8 consecutive all-zero words.
        Sign4 = 1,        ///< Word fits in 4 sign-extended bits.
        Sign8 = 2,        ///< Word fits in 8 sign-extended bits.
        Sign16 = 3,       ///< Word fits in 16 sign-extended bits.
        HalfZeroPad = 4,  ///< Low halfword is zero; store high half.
        TwoSignedBytes = 5, ///< Each halfword fits in 8 signed bits.
        RepeatedByte = 6, ///< Four identical bytes; store one.
        Uncompressed = 7, ///< Verbatim 32 bits.
    };

  private:
    static constexpr std::uint32_t kWords = kLineSize / 4;
};

} // namespace dice

#endif // DICE_COMPRESS_FPC_HPP
