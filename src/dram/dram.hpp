/**
 * @file
 * Event-ordered DRAM device model.
 *
 * Rather than ticking every cycle, each resource (bank, channel data
 * bus) tracks the cycle at which it next becomes free; a request's
 * service time is the max of its arrival and the resources it needs,
 * with row-buffer state deciding between row-hit (tCAS), row-closed
 * (tRCD+tCAS) and row-conflict (tRP+tRCD+tCAS) access latencies. This
 * captures exactly the two effects the DICE study turns on: data-bus
 * occupancy (bandwidth) and bank/row locality.
 */

#ifndef DICE_DRAM_DRAM_HPP
#define DICE_DRAM_DRAM_HPP

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/timing.hpp"

namespace dice
{

/** Physical coordinates of an access, as decoded by the owner. */
struct DramCoord
{
    std::uint32_t channel = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
};

/** How an access interacts with the channel's scheduling. */
enum class AccessKind : std::uint8_t
{
    /**
     * Demand read on the latency-critical path: occupies bank and bus
     * and returns real completion times.
     */
    DemandRead,
    /**
     * Read issued by the write path (e.g. the TAD read-modify-write
     * probe before an install): buffered with the write queue and
     * drained into idle slots, charging bandwidth without blocking
     * later demand reads.
     */
    PostedRead,
    /** Posted write, drained from the write queue. */
    PostedWrite,
};

/** Result of one device access. */
struct DramResult
{
    /** Cycle at which the last data beat has transferred. */
    Cycle done = 0;
    /** Cycle at which the *first* data beat arrives (critical word). */
    Cycle first_data = 0;
    /** True when the access hit the open row. */
    bool row_hit = false;
};

/**
 * One DRAM device: a set of channels, each with banks and a shared data
 * bus. Used for the stacked L4 substrate and the DDR main memory.
 */
class DramDevice
{
  public:
    DramDevice(std::string name, const DramTiming &timing);

    /**
     * Perform an access of @p bytes at @p coord, arriving at cycle
     * @p when. Returns completion times and updates resource state.
     */
    DramResult access(const DramCoord &coord, std::uint32_t bytes,
                      Cycle when, AccessKind kind);

    /** Convenience overload: write -> PostedWrite, read -> DemandRead. */
    DramResult
    access(const DramCoord &coord, std::uint32_t bytes, Cycle when,
           bool is_write)
    {
        return access(coord, bytes, when,
                      is_write ? AccessKind::PostedWrite
                               : AccessKind::DemandRead);
    }

    const DramTiming &timing() const { return timing_; }

    /** Number of row-buffer hits observed. */
    std::uint64_t rowHits() const { return row_hits_; }
    std::uint64_t rowConflicts() const { return row_conflicts_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t postedReads() const { return posted_reads_; }
    std::uint64_t bytesMoved() const { return bytes_moved_; }
    std::uint64_t activations() const { return activations_; }
    /** Total cycles the data buses were occupied (all channels). */
    std::uint64_t busBusyCycles() const { return bus_busy_cycles_; }

    /** Mean read latency (arrival to last beat), in cycles. */
    double
    avgReadLatency() const
    {
        return reads_ == 0 ? 0.0
                           : static_cast<double>(read_latency_sum_) /
                                 static_cast<double>(reads_);
    }

    /** Fraction of peak bandwidth used over @p elapsed cycles. */
    double busUtilization(Cycle elapsed) const;

    /** Reset timing state and statistics (fresh device). */
    void reset();

    /**
     * Clear statistics only, preserving bank/bus/backlog timing state
     * (used at the warmup/measurement boundary).
     */
    void resetStats();

    /** Expose counters to harnesses. */
    StatGroup stats() const;

    const std::string &name() const { return name_; }

  private:
    struct Bank
    {
        std::uint64_t open_row = kNoRow;
        /** Cycle at which the bank can accept a new column command. */
        Cycle ready = 0;
        /** Earliest cycle a precharge may complete (tRAS). */
        Cycle ras_done = 0;
    };

    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

    std::string name_;
    DramTiming timing_;
    std::vector<Bank> banks_;         // channels * banks_per_channel
    std::vector<Cycle> bus_free_;     // per channel
    std::vector<Cycle> write_backlog_; // per channel, in bus cycles

    std::uint64_t row_hits_ = 0;
    std::uint64_t row_conflicts_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t posted_reads_ = 0;
    std::uint64_t bytes_moved_ = 0;
    std::uint64_t activations_ = 0;
    std::uint64_t bus_busy_cycles_ = 0;
    std::uint64_t read_latency_sum_ = 0;
};

} // namespace dice

#endif // DICE_DRAM_DRAM_HPP
