/**
 * @file
 * DRAM device timing/geometry parameters, with presets matching the
 * paper's Table 2 (all times in CPU cycles at 3.2 GHz).
 *
 * Both the stacked-DRAM L4 substrate (HBM-like: 4 channels, 128-bit bus)
 * and the DDR main memory (1 channel, 64-bit bus) instantiate the same
 * model with different parameters; per the paper, access latencies are
 * identical and only bandwidth differs (8x).
 */

#ifndef DICE_DRAM_TIMING_HPP
#define DICE_DRAM_TIMING_HPP

#include <cstdint>

#include "common/types.hpp"

namespace dice
{

/** Timing and geometry of one DRAM device (stacked or DIMM). */
struct DramTiming
{
    /** Column access strobe latency (CPU cycles). */
    Cycle tCAS = 44;
    /** RAS-to-CAS delay (CPU cycles). */
    Cycle tRCD = 44;
    /** Row precharge (CPU cycles). */
    Cycle tRP = 44;
    /** Row-active minimum (CPU cycles). */
    Cycle tRAS = 112;

    /** Independent channels. */
    std::uint32_t channels = 4;
    /** Banks per channel. */
    std::uint32_t banks_per_channel = 16;
    /** Data-bus width in bytes per beat (16 = 128-bit). */
    std::uint32_t bus_bytes_per_beat = 16;
    /**
     * CPU cycles per data beat. The 800 MHz DDR bus transfers at
     * 1.6 GT/s; with a 3.2 GHz core that is 2 CPU cycles per beat.
     */
    Cycle cpu_cycles_per_beat = 2;
    /** Write-queue high watermark, in cycles of buffered data-bus
     *  transfer per channel (~96 writes of 72 B at 5 beats each). */
    Cycle write_queue_cycles = 640;
    /** Row-buffer size in bytes (per bank). */
    std::uint32_t row_bytes = 2048;

    /** Stacked-DRAM L4 preset (Table 2: 4ch x 128-bit @ DDR-1.6). */
    static DramTiming
    stackedL4()
    {
        return DramTiming{};
    }

    /** DDR main-memory preset (Table 2: 1ch x 64-bit @ DDR-1.6). */
    static DramTiming
    mainMemoryDdr()
    {
        DramTiming t;
        t.channels = 1;
        t.bus_bytes_per_beat = 8;
        return t;
    }

    /** Beats needed to move @p bytes. */
    std::uint32_t
    beatsFor(std::uint32_t bytes) const
    {
        return (bytes + bus_bytes_per_beat - 1) / bus_bytes_per_beat;
    }

    /** Data-bus occupancy in CPU cycles for a @p bytes transfer. */
    Cycle
    transferCycles(std::uint32_t bytes) const
    {
        return static_cast<Cycle>(beatsFor(bytes)) * cpu_cycles_per_beat;
    }

    /** Peak bandwidth in bytes per CPU cycle, across all channels. */
    double
    peakBytesPerCycle() const
    {
        return static_cast<double>(channels) * bus_bytes_per_beat /
               static_cast<double>(cpu_cycles_per_beat);
    }
};

} // namespace dice

#endif // DICE_DRAM_TIMING_HPP
