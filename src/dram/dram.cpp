#include "dram.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dice
{

DramDevice::DramDevice(std::string name, const DramTiming &timing)
    : name_(std::move(name)), timing_(timing),
      banks_(timing.channels * timing.banks_per_channel),
      bus_free_(timing.channels, 0), write_backlog_(timing.channels, 0)
{
    dice_assert(timing.channels > 0 && timing.banks_per_channel > 0,
                "DRAM device %s has no banks", name_.c_str());
}

DramResult
DramDevice::access(const DramCoord &coord, std::uint32_t bytes, Cycle when,
                   AccessKind kind)
{
    dice_assert(coord.channel < timing_.channels, "channel %u out of range",
                coord.channel);
    dice_assert(coord.bank < timing_.banks_per_channel,
                "bank %u out of range", coord.bank);

    Bank &bank = banks_[coord.channel * timing_.banks_per_channel +
                        coord.bank];
    Cycle &bus_free = bus_free_[coord.channel];

    const Cycle xfer_w = timing_.transferCycles(bytes);

    if (kind != AccessKind::DemandRead) {
        // Posted traffic under a read-priority controller: it enters
        // the per-channel write queue (installs' read-modify-write
        // probes included) and drains into idle bus slots. Its
        // bandwidth is charged when a later demand read finds the
        // backlog (opportunistic drain below) or immediately once the
        // queue exceeds its high watermark — at which point posted
        // traffic steals read slots, which is exactly the saturation
        // behavior the compression-for-bandwidth study measures.
        write_backlog_[coord.channel] += xfer_w;
        bus_busy_cycles_ += xfer_w;
        if (bank.open_row != coord.row)
            ++activations_; // energy accounting
        bytes_moved_ += bytes;
        if (kind == AccessKind::PostedWrite)
            ++writes_;
        else
            ++posted_reads_;
        DramResult res;
        res.done = when + xfer_w;
        res.first_data = when + timing_.cpu_cycles_per_beat;
        res.row_hit = bank.open_row == coord.row;
        return res;
    }

    // The next command cannot start before the request arrives or
    // before the bank can accept another column command.
    Cycle start = std::max(when, bank.ready);

    // Column commands to an open row pipeline at the burst rate
    // (tCCD ~= the data-transfer time); activations serialize behind
    // tRCD, and conflicts additionally pay precharge honoring tRAS.
    const Cycle xfer = xfer_w;
    Cycle cas_at;
    Cycle activate_at = 0;
    bool row_hit = false;
    if (bank.open_row == coord.row) {
        cas_at = start;
        row_hit = true;
        ++row_hits_;
    } else if (bank.open_row == kNoRow) {
        activate_at = start;
        cas_at = activate_at + timing_.tRCD;
        ++activations_;
    } else {
        const Cycle pre_at = std::max(start, bank.ras_done);
        activate_at = pre_at + timing_.tRP;
        cas_at = activate_at + timing_.tRCD;
        ++activations_;
        ++row_conflicts_;
    }

    // Opportunistically drain the write backlog into the idle bus
    // time before this read's data slot; once the backlog exceeds the
    // write-queue watermark, the excess drains ahead of the read and
    // delays it.
    Cycle &backlog = write_backlog_[coord.channel];
    const Cycle ready_time = cas_at + timing_.tCAS;
    if (bus_free < ready_time) {
        const Cycle drained = std::min(backlog, ready_time - bus_free);
        backlog -= drained;
        bus_free += drained;
    }
    if (backlog > timing_.write_queue_cycles) {
        const Cycle forced = backlog - timing_.write_queue_cycles;
        backlog = timing_.write_queue_cycles;
        bus_free += forced;
    }

    // Data transfer needs the channel bus; it begins when the column
    // access completes and the bus is free.
    const Cycle data_start = std::max(ready_time, bus_free);
    const Cycle data_end = data_start + xfer;

    bus_free = data_end;
    bus_busy_cycles_ += xfer;

    if (!row_hit) {
        bank.open_row = coord.row;
        bank.ras_done = activate_at + timing_.tRAS;
    }
    // The bank can take its next column command one burst slot later;
    // channel-level serialization is enforced by the data bus.
    bank.ready = cas_at + xfer;

    bytes_moved_ += bytes;
    ++reads_;
    read_latency_sum_ += data_end - when;

    DramResult res;
    res.done = data_end;
    res.first_data = data_start + timing_.cpu_cycles_per_beat;
    res.row_hit = row_hit;
    return res;
}

double
DramDevice::busUtilization(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(bus_busy_cycles_) /
           (static_cast<double>(elapsed) * timing_.channels);
}

void
DramDevice::reset()
{
    std::fill(banks_.begin(), banks_.end(), Bank{});
    std::fill(bus_free_.begin(), bus_free_.end(), Cycle{0});
    std::fill(write_backlog_.begin(), write_backlog_.end(), Cycle{0});
    resetStats();
}

void
DramDevice::resetStats()
{
    row_hits_ = row_conflicts_ = 0;
    reads_ = writes_ = posted_reads_ = 0;
    bytes_moved_ = activations_ = bus_busy_cycles_ = 0;
    read_latency_sum_ = 0;
}

StatGroup
DramDevice::stats() const
{
    StatGroup g(name_);
    g.addFormula("reads", [this]() { return double(reads_); });
    g.addFormula("writes", [this]() { return double(writes_); });
    g.addFormula("row_hits", [this]() { return double(row_hits_); });
    g.addFormula("row_conflicts",
                 [this]() { return double(row_conflicts_); });
    g.addFormula("activations", [this]() { return double(activations_); });
    g.addFormula("bytes_moved", [this]() { return double(bytes_moved_); });
    g.addFormula("bus_busy_cycles",
                 [this]() { return double(bus_busy_cycles_); });
    return g;
}

} // namespace dice
