/**
 * @file
 * Cache Index Prediction (paper Section 5.3, Figure 9).
 *
 * Lines whose TSI and BAI sets differ could be in either location; CIP
 * predicts which one to probe first.
 *
 *  - Reads use a Last-Time Table (LTT): one bit per entry, indexed by a
 *    hash of the page number, recording the index scheme that last
 *    satisfied an access to that page (compressibility is strongly
 *    page-correlated). Default 2048 entries = 256 B of SRAM.
 *  - Writes predict from the compressed size of the data being written
 *    (the same <= threshold rule the insertion policy uses).
 */

#ifndef DICE_CORE_CIP_HPP
#define DICE_CORE_CIP_HPP

#include <string>
#include <vector>

#include "common/ring_trace.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/indexing.hpp"

namespace dice
{

/** One scored read prediction (decision-trace ring record). */
struct CipReadTrace
{
    LineAddr line = 0;
    IndexScheme predicted = IndexScheme::TSI;
    IndexScheme actual = IndexScheme::TSI;
};

/** History-based read predictor + size-based write predictor. */
class Cip
{
  public:
    /** Scored read predictions the decision ring retains. */
    static constexpr std::size_t kTraceDepth = 256;
    /** Sliding outcome window examined for misprediction bursts. */
    static constexpr std::uint32_t kBurstWindowBits = 64;
    /** Mispredictions within the window that trigger a ring dump. */
    static constexpr std::uint32_t kBurstThreshold = 48;

    /**
     * @param ltt_entries Number of 1-bit LTT entries (default 2048).
     *
     * The decision-trace ring starts in the state DICE_DECISION_TRACE
     * requests; enableDecisionTrace() overrides (tests, white-box
     * debugging).
     */
    explicit Cip(std::uint32_t ltt_entries = 2048);

    /** Predicted scheme for a read of @p line. */
    IndexScheme predictRead(LineAddr line) const;

    /**
     * Record the scheme that actually held (or received) the line, and
     * score the last prediction.
     */
    void updateRead(LineAddr line, IndexScheme actual);

    /** Train the LTT without scoring (used on installs). */
    void train(LineAddr line, IndexScheme actual);

    /** Predicted scheme for a write compressing to @p size_bytes. */
    IndexScheme predictWrite(std::uint32_t size_bytes,
                             std::uint32_t threshold_bytes) const;

    /** Score a write prediction against the line's actual location. */
    void scoreWrite(IndexScheme predicted, IndexScheme actual);

    /** Zero the accuracy counters; the LTT's training is preserved. */
    void resetStats();

    /** SRAM cost of the predictor in bytes (LTT bits / 8). */
    std::uint32_t storageBytes() const;

    std::uint64_t readPredictions() const { return read_predictions_; }
    std::uint64_t readMispredictions() const { return read_mispredicts_; }
    std::uint64_t writePredictions() const { return write_predictions_; }
    std::uint64_t writeMispredictions() const { return write_mispredicts_; }

    /** Read-prediction accuracy in [0,1] (1.0 when unused). */
    double readAccuracy() const;
    double writeAccuracy() const;

    StatGroup stats() const;

    /** Turn per-access decision tracing on/off (ring cleared on off). */
    void enableDecisionTrace(bool enabled);

    bool decisionTraceOn() const { return trace_enabled_; }

    /** The scored-read ring, oldest record first (white-box access). */
    const DecisionRing<CipReadTrace, kTraceDepth> &readRing() const
    {
        return read_ring_;
    }

    /** Ring dumps emitted after misprediction bursts. */
    std::uint64_t burstDumps() const { return burst_dumps_; }

    /** Render the ring as "line predicted actual" text lines. */
    std::string dumpReadRing() const;

  private:
    std::uint32_t indexOf(LineAddr line) const;

    /** Ring bookkeeping + burst detection for one scored read. */
    void traceRead(LineAddr line, IndexScheme predicted,
                   IndexScheme actual);

    std::vector<std::uint8_t> ltt_; // 1 bit per entry: 1 = BAI
    std::uint64_t read_predictions_ = 0;
    std::uint64_t read_mispredicts_ = 0;
    std::uint64_t write_predictions_ = 0;
    std::uint64_t write_mispredicts_ = 0;

    /** Decision trace (off by default: one branch per scored read). */
    bool trace_enabled_ = false;
    DecisionRing<CipReadTrace, kTraceDepth> read_ring_;
    /** Bit i set = i-th most recent scored read mispredicted. */
    std::uint64_t burst_window_ = 0;
    /** read_predictions_ value at the last dump (hysteresis). */
    std::uint64_t last_dump_at_ = 0;
    std::uint64_t burst_dumps_ = 0;
};

} // namespace dice

#endif // DICE_CORE_CIP_HPP
