#include "alloy.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace dice
{

namespace
{

/** Bytes streamed per Alloy access: one 72-B TAD + 8-B neighbor tag. */
constexpr std::uint32_t kReadBytes = 80;
/** Bytes written when a TAD is (re)filled. */
constexpr std::uint32_t kWriteBytes = 72;

} // namespace

AlloyCache::AlloyCache(const DramCacheConfig &config, std::string name)
    : DramCache(config, std::move(name)),
      indexer_(floorLog2(config.capacity / kLineSize)),
      mapper_(config.timing), sets_(config.capacity / kLineSize)
{
    dice_assert(isPowerOfTwo(config.capacity / kLineSize),
                "Alloy capacity must give a power-of-two set count");
}

L4ReadResult
AlloyCache::read(LineAddr line, Cycle now)
{
    const std::uint64_t set = indexer_.tsi(line);
    const DramResult dram =
        device_.access(mapper_.coord(set), kReadBytes, now, false);

    L4ReadResult res;
    res.dram_accesses = 1;
    res.done = dram.done + config_.controller_latency;

    const Entry &e = sets_[set];
    if (e.valid && e.line == line) {
        res.hit = true;
        res.payload = e.payload;
        ++read_hits_;
    } else {
        ++read_misses_;
    }
    return res;
}

L4WriteResult
AlloyCache::install(LineAddr line, std::uint64_t payload, bool dirty,
                    Cycle now, bool after_read_miss)
{
    ++installs_;
    const std::uint64_t set = indexer_.tsi(line);

    L4WriteResult res;
    res.dram_accesses = 0;
    Cycle when = now;

    // A writeback (or an install not preceded by a demand probe) must
    // first read the TAD to learn the victim's tag/dirty state.
    if (!after_read_miss) {
        const DramResult probe =
            device_.access(mapper_.coord(set), kReadBytes, when,
                           AccessKind::PostedRead);
        when = probe.done;
        ++res.dram_accesses;
    }

    Entry &e = sets_[set];
    if (e.valid && e.line == line) {
        e.dirty = e.dirty || dirty;
        e.payload = payload;
    } else {
        if (e.valid && e.dirty) {
            res.writebacks.push_back(
                EvictedLine{e.line, true, e.payload});
        }
        if (!e.valid)
            ++valid_count_;
        e = Entry{line, payload, true, dirty};
    }

    device_.access(mapper_.coord(set), kWriteBytes, when, true);
    ++res.dram_accesses;
    return res;
}

bool
AlloyCache::contains(LineAddr line) const
{
    const Entry &e = sets_[indexer_.tsi(line)];
    return e.valid && e.line == line;
}

std::uint64_t
AlloyCache::validLines() const
{
    return valid_count_;
}

DramCacheConfig
doubledCapacity(DramCacheConfig config)
{
    config.capacity *= 2;
    return config;
}

DramCacheConfig
doubledBandwidth(DramCacheConfig config)
{
    config.timing.channels *= 2;
    return config;
}

DramCacheConfig
halvedLatency(DramCacheConfig config)
{
    config.timing.tCAS /= 2;
    config.timing.tRCD /= 2;
    config.timing.tRP /= 2;
    config.timing.tRAS /= 2;
    return config;
}

} // namespace dice
