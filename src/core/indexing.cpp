#include "indexing.hpp"

#include "common/log.hpp"

namespace dice
{

const char *
indexSchemeName(IndexScheme scheme)
{
    switch (scheme) {
      case IndexScheme::TSI:
        return "TSI";
      case IndexScheme::NSI:
        return "NSI";
      case IndexScheme::BAI:
        return "BAI";
      default:
        return "?";
    }
}

std::uint64_t
SetIndexer::set(LineAddr line, IndexScheme scheme) const
{
    switch (scheme) {
      case IndexScheme::TSI:
        return tsi(line);
      case IndexScheme::NSI:
        return nsi(line);
      case IndexScheme::BAI:
        return bai(line);
      default:
        dice_panic("bad index scheme");
    }
}

DramCacheAddressMapper::DramCacheAddressMapper(const DramTiming &timing,
                                               std::uint32_t tad_bytes)
    : channels_(timing.channels), banks_(timing.banks_per_channel),
      tads_per_row_(timing.row_bytes / tad_bytes)
{
    dice_assert(tads_per_row_ > 0, "row smaller than one TAD");
}

DramCoord
DramCacheAddressMapper::coord(std::uint64_t set) const
{
    const std::uint64_t row_group = set / tads_per_row_;
    DramCoord c;
    c.channel = static_cast<std::uint32_t>(row_group % channels_);
    c.bank = static_cast<std::uint32_t>((row_group / channels_) % banks_);
    c.row = row_group / (static_cast<std::uint64_t>(channels_) * banks_);
    return c;
}

} // namespace dice
