/**
 * @file
 * Interface through which the compressed DRAM cache obtains the raw
 * bytes of a line so it can *really* compress them.
 *
 * The simulator does not store 64 B of data per cached line; instead a
 * line's contents are a deterministic function of (line address, version)
 * where the version is bumped by stores. The workloads library provides
 * the concrete generator; the cache only sees this interface.
 */

#ifndef DICE_CORE_DATA_SOURCE_HPP
#define DICE_CORE_DATA_SOURCE_HPP

#include "common/types.hpp"
#include "compress/compressor.hpp"

namespace dice
{

/** Produces the current bytes of any line in the simulated PA space. */
class LineDataSource
{
  public:
    virtual ~LineDataSource() = default;

    /** Bytes of @p line at data version @p version. */
    virtual Line bytes(LineAddr line, std::uint64_t version) const = 0;

    /**
     * Bytes of the spatial pair (@p base, @p base|1) in one call;
     * @p base must be even. Always identical to two bytes() calls —
     * sources whose pair halves share derivation work may override
     * this to do that work once (the pair-sizing path's batch entry).
     */
    virtual void
    bytesPair(LineAddr base, std::uint64_t even_version,
              std::uint64_t odd_version, Line out[2]) const
    {
        out[0] = bytes(base, even_version);
        out[1] = bytes(base | 1, odd_version);
    }
};

/** A trivial source: every line is all zeroes (maximally compressible). */
class ZeroDataSource : public LineDataSource
{
  public:
    Line
    bytes(LineAddr, std::uint64_t) const override
    {
        return Line{};
    }
};

/** A trivial source: every line is incompressible random-looking data. */
class RandomDataSource : public LineDataSource
{
  public:
    Line bytes(LineAddr line, std::uint64_t version) const override;
};

} // namespace dice

#endif // DICE_CORE_DATA_SOURCE_HPP
