/**
 * @file
 * Name-keyed factory registry for L4 DRAM-cache organizations.
 *
 * The system model knows nothing about concrete organizations: it
 * carries one tagged L4Config (a shared DramCacheConfig plus one
 * parameter group per organization family) and asks the registry to
 * build whatever the `organization` name selects. Adding an
 * organization means registering a name + factory here — no switch in
 * System, no new SystemConfig fields.
 *
 * The config is *tagged*: each registered organization declares which
 * parameter groups it consumes, and create() rejects a config whose
 * unconsumed groups were changed from their defaults (a mismatched
 * kind/config combo used to be silently ignored).
 */

#ifndef DICE_CORE_L4_REGISTRY_HPP
#define DICE_CORE_L4_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dram_cache.hpp"

namespace dice
{

class LineDataSource;

/** Parameters of the compressed-cache family (TSI/NSI/BAI/DICE/KNL). */
struct CompressedL4Params
{
    /** BAI-vs-TSI insertion threshold (Table 4; default 36 B). */
    std::uint32_t threshold_bytes = 36;
    /** CIP Last-Time-Table entries (Section 5.3; default 2048). */
    std::uint32_t cip_entries = 2048;
    /** Model the KNL tags-in-ECC organization instead of Alloy. */
    bool knl_mode = false;
    /** Merge co-resident spatial neighbors into shared-tag pairs. */
    bool pair_compression = true;

    friend bool operator==(const CompressedL4Params &,
                           const CompressedL4Params &) = default;
};

/** Parameters of the Banshee-style page-granularity organization. */
struct BansheeL4Params
{
    /** Caching granularity (bytes); must be a multiple of 64 covering
     *  at most 64 lines. */
    std::uint32_t page_bytes = kPageSize;
    /** Page-frame associativity. */
    std::uint32_t ways = 4;
    /** A candidate page replaces the coldest resident way only when
     *  its frequency counter exceeds the victim's by more than this
     *  (bandwidth-aware replacement: a page fill is expensive). */
    std::uint32_t replace_margin = 1;
    /** Saturation value of the frequency counters; a resident counter
     *  reaching it halves its whole set (aging). */
    std::uint32_t counter_max = 255;

    friend bool operator==(const BansheeL4Params &,
                           const BansheeL4Params &) = default;
};

/** Parameters of the Touché-style signature-tag organization. */
struct ToucheL4Params
{
    /** Signature width (bits) of the hashed per-item tags. */
    std::uint32_t signature_bits = 8;

    friend bool operator==(const ToucheL4Params &,
                           const ToucheL4Params &) = default;
};

/**
 * Tagged organization config. `organization` selects the registered
 * factory; `base` is shared by every organization; exactly one of the
 * parameter groups below is consumed (the factory's declaration says
 * which), and the others must stay at their defaults.
 */
struct L4Config
{
    /** Registered organization name ("none" disables the L4). */
    std::string organization = "alloy";
    DramCacheConfig base;

    CompressedL4Params comp;
    BansheeL4Params banshee;
    ToucheL4Params touche;
};

/** Registry of L4 organization factories, keyed by name. */
class L4Registry
{
  public:
    /** Parameter groups of L4Config an organization consumes. */
    enum : std::uint32_t
    {
        kUsesComp = 1u << 0,
        kUsesBanshee = 1u << 1,
        kUsesTouche = 1u << 2,
    };

    using Factory = std::function<std::unique_ptr<DramCache>(
        const L4Config &, const LineDataSource &)>;

    /** The process-wide registry, built-ins pre-registered. */
    static L4Registry &instance();

    /**
     * Register an organization. @p param_groups is a kUses* mask of
     * the L4Config groups the factory reads; create() rejects configs
     * that set any other group. Registering a duplicate name panics.
     */
    void add(std::string name, std::uint32_t param_groups,
             Factory factory);

    bool known(const std::string &name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /**
     * Build the organization @p config selects. Returns null for
     * "none". Panics (with the list of registered names) on an
     * unknown name, and on a config whose unconsumed parameter groups
     * differ from their defaults.
     */
    std::unique_ptr<DramCache> create(const L4Config &config,
                                      const LineDataSource &source) const;

  private:
    struct Entry
    {
        std::string name;
        std::uint32_t param_groups;
        Factory factory;
    };

    const Entry *findEntry(const std::string &name) const;

    std::vector<Entry> entries_;
};

} // namespace dice

#endif // DICE_CORE_L4_REGISTRY_HPP
