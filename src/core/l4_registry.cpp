#include "l4_registry.hpp"

#include "common/log.hpp"
#include "core/alloy.hpp"
#include "core/banshee.hpp"
#include "core/compressed.hpp"
#include "core/scc.hpp"
#include "core/touche.hpp"

namespace dice
{

namespace
{

/** CompressedCacheConfig for one of the compressed-family policies. */
CompressedCacheConfig
compressedConfig(const L4Config &config, CompressionPolicy policy)
{
    CompressedCacheConfig c;
    c.base = config.base;
    c.policy = policy;
    c.threshold_bytes = config.comp.threshold_bytes;
    c.cip_entries = config.comp.cip_entries;
    c.knl_mode = config.comp.knl_mode;
    c.pair_compression = config.comp.pair_compression;
    return c;
}

L4Registry::Factory
compressedFactory(CompressionPolicy policy)
{
    return [policy](const L4Config &config, const LineDataSource &source) {
        return std::make_unique<CompressedDramCache>(
            compressedConfig(config, policy), source);
    };
}

void
registerBuiltins(L4Registry &r)
{
    r.add("none", 0,
          [](const L4Config &, const LineDataSource &)
              -> std::unique_ptr<DramCache> { return nullptr; });
    r.add("alloy", 0,
          [](const L4Config &config, const LineDataSource &)
              -> std::unique_ptr<DramCache> {
              return std::make_unique<AlloyCache>(config.base);
          });
    r.add("comp-tsi", L4Registry::kUsesComp,
          compressedFactory(CompressionPolicy::TsiOnly));
    r.add("comp-nsi", L4Registry::kUsesComp,
          compressedFactory(CompressionPolicy::NsiOnly));
    r.add("comp-bai", L4Registry::kUsesComp,
          compressedFactory(CompressionPolicy::BaiOnly));
    r.add("dice", L4Registry::kUsesComp,
          compressedFactory(CompressionPolicy::Dice));
    r.add("scc", 0,
          [](const L4Config &config, const LineDataSource &source)
              -> std::unique_ptr<DramCache> {
              return std::make_unique<SccCache>(config.base, source);
          });
    r.add("banshee", L4Registry::kUsesBanshee,
          [](const L4Config &config, const LineDataSource &)
              -> std::unique_ptr<DramCache> {
              return std::make_unique<BansheeCache>(config.base,
                                                    config.banshee);
          });
    r.add("touche", L4Registry::kUsesTouche,
          [](const L4Config &config, const LineDataSource &source)
              -> std::unique_ptr<DramCache> {
              return std::make_unique<ToucheCache>(config.base,
                                                   config.touche, source);
          });
}

} // namespace

L4Registry &
L4Registry::instance()
{
    // Magic-static init is thread-safe; afterwards the registry is
    // effectively read-only (tests that add() do so before spawning
    // simulation threads).
    static L4Registry registry = [] {
        L4Registry r;
        registerBuiltins(r);
        return r;
    }();
    return registry;
}

const L4Registry::Entry *
L4Registry::findEntry(const std::string &name) const
{
    for (const Entry &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

void
L4Registry::add(std::string name, std::uint32_t param_groups,
                Factory factory)
{
    dice_assert(findEntry(name) == nullptr,
                "L4 organization '%s' registered twice", name.c_str());
    entries_.push_back(
        Entry{std::move(name), param_groups, std::move(factory)});
}

bool
L4Registry::known(const std::string &name) const
{
    return findEntry(name) != nullptr;
}

std::vector<std::string>
L4Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

std::unique_ptr<DramCache>
L4Registry::create(const L4Config &config,
                   const LineDataSource &source) const
{
    const Entry *entry = findEntry(config.organization);
    if (entry == nullptr) {
        std::string known_names;
        for (const Entry &e : entries_) {
            if (!known_names.empty())
                known_names += ", ";
            known_names += e.name;
        }
        dice_panic("unknown L4 organization '%s' (registered: %s)",
                   config.organization.c_str(), known_names.c_str());
    }

    // Tagged-config validation: a parameter group the organization
    // does not consume must stay at its defaults — a tweak there is a
    // config bug that the old L4Kind+dual-config scheme ignored.
    if (!(entry->param_groups & kUsesComp) &&
        !(config.comp == CompressedL4Params{})) {
        dice_panic("L4 organization '%s' does not consume the "
                   "compressed-cache parameters, but l4.comp was "
                   "changed from its defaults",
                   entry->name.c_str());
    }
    if (!(entry->param_groups & kUsesBanshee) &&
        !(config.banshee == BansheeL4Params{})) {
        dice_panic("L4 organization '%s' does not consume the Banshee "
                   "parameters, but l4.banshee was changed from its "
                   "defaults",
                   entry->name.c_str());
    }
    if (!(entry->param_groups & kUsesTouche) &&
        !(config.touche == ToucheL4Params{})) {
        dice_panic("L4 organization '%s' does not consume the Touché "
                   "parameters, but l4.touche was changed from its "
                   "defaults",
                   entry->name.c_str());
    }

    return entry->factory(config, source);
}

} // namespace dice
