#include "cip.hpp"

#include <cstdio>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace dice
{

Cip::Cip(std::uint32_t ltt_entries)
    : ltt_(ltt_entries, 0), trace_enabled_(decisionTraceEnabled())
{
    dice_assert(ltt_entries > 0, "CIP with empty LTT");
}

std::uint32_t
Cip::indexOf(LineAddr line) const
{
    const std::uint64_t page = pageOfLine(line);
    return static_cast<std::uint32_t>(mix64(page) % ltt_.size());
}

IndexScheme
Cip::predictRead(LineAddr line) const
{
    return ltt_[indexOf(line)] ? IndexScheme::BAI : IndexScheme::TSI;
}

void
Cip::updateRead(LineAddr line, IndexScheme actual)
{
    const IndexScheme predicted = predictRead(line);
    ++read_predictions_;
    if (predicted != actual)
        ++read_mispredicts_;
    ltt_[indexOf(line)] = actual == IndexScheme::BAI ? 1 : 0;
    if (trace_enabled_)
        traceRead(line, predicted, actual);
}

void
Cip::traceRead(LineAddr line, IndexScheme predicted, IndexScheme actual)
{
    read_ring_.push(CipReadTrace{line, predicted, actual});
    burst_window_ = (burst_window_ << 1) |
                    (predicted != actual ? 1u : 0u);

    // Dump when mispredictions dominate the last kBurstWindowBits
    // scored reads, at most once per full window (otherwise a long
    // pathological phase would dump on every access).
    if (read_predictions_ - last_dump_at_ < kBurstWindowBits)
        return;
    if (popcount64(burst_window_) < kBurstThreshold)
        return;
    last_dump_at_ = read_predictions_;
    ++burst_dumps_;
    dice_warn("cip: misprediction burst (%u of last %u reads); ring:\n%s",
              popcount64(burst_window_), kBurstWindowBits,
              dumpReadRing().c_str());
}

void
Cip::enableDecisionTrace(bool enabled)
{
    trace_enabled_ = enabled;
    if (!enabled) {
        read_ring_.clear();
        burst_window_ = 0;
        last_dump_at_ = 0;
    }
}

std::string
Cip::dumpReadRing() const
{
    std::string out;
    char buf[96];
    read_ring_.forEach([&out, &buf](const CipReadTrace &t) {
        std::snprintf(buf, sizeof buf,
                      "  line %#llx predicted %s actual %s%s\n",
                      static_cast<unsigned long long>(t.line),
                      indexSchemeName(t.predicted),
                      indexSchemeName(t.actual),
                      t.predicted != t.actual ? "  <-- miss" : "");
        out += buf;
    });
    return out;
}

void
Cip::train(LineAddr line, IndexScheme actual)
{
    ltt_[indexOf(line)] = actual == IndexScheme::BAI ? 1 : 0;
}

IndexScheme
Cip::predictWrite(std::uint32_t size_bytes,
                  std::uint32_t threshold_bytes) const
{
    return size_bytes <= threshold_bytes ? IndexScheme::BAI
                                         : IndexScheme::TSI;
}

void
Cip::scoreWrite(IndexScheme predicted, IndexScheme actual)
{
    ++write_predictions_;
    if (predicted != actual)
        ++write_mispredicts_;
}

void
Cip::resetStats()
{
    read_predictions_ = read_mispredicts_ = 0;
    write_predictions_ = write_mispredicts_ = 0;
}

std::uint32_t
Cip::storageBytes() const
{
    return static_cast<std::uint32_t>((ltt_.size() + 7) / 8);
}

double
Cip::readAccuracy() const
{
    if (read_predictions_ == 0)
        return 1.0;
    return 1.0 - static_cast<double>(read_mispredicts_) /
                     static_cast<double>(read_predictions_);
}

double
Cip::writeAccuracy() const
{
    if (write_predictions_ == 0)
        return 1.0;
    return 1.0 - static_cast<double>(write_mispredicts_) /
                     static_cast<double>(write_predictions_);
}

StatGroup
Cip::stats() const
{
    StatGroup g("cip");
    g.addFormula("read_predictions",
                 [this]() { return double(read_predictions_); });
    g.addFormula("read_accuracy", [this]() { return readAccuracy(); });
    g.addFormula("write_predictions",
                 [this]() { return double(write_predictions_); });
    g.addFormula("write_accuracy", [this]() { return writeAccuracy(); });
    g.addFormula("storage_bytes",
                 [this]() { return double(storageBytes()); });
    return g;
}

} // namespace dice
