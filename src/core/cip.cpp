#include "cip.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace dice
{

Cip::Cip(std::uint32_t ltt_entries) : ltt_(ltt_entries, 0)
{
    dice_assert(ltt_entries > 0, "CIP with empty LTT");
}

std::uint32_t
Cip::indexOf(LineAddr line) const
{
    const std::uint64_t page = pageOfLine(line);
    return static_cast<std::uint32_t>(mix64(page) % ltt_.size());
}

IndexScheme
Cip::predictRead(LineAddr line) const
{
    return ltt_[indexOf(line)] ? IndexScheme::BAI : IndexScheme::TSI;
}

void
Cip::updateRead(LineAddr line, IndexScheme actual)
{
    const IndexScheme predicted = predictRead(line);
    ++read_predictions_;
    if (predicted != actual)
        ++read_mispredicts_;
    ltt_[indexOf(line)] = actual == IndexScheme::BAI ? 1 : 0;
}

void
Cip::train(LineAddr line, IndexScheme actual)
{
    ltt_[indexOf(line)] = actual == IndexScheme::BAI ? 1 : 0;
}

IndexScheme
Cip::predictWrite(std::uint32_t size_bytes,
                  std::uint32_t threshold_bytes) const
{
    return size_bytes <= threshold_bytes ? IndexScheme::BAI
                                         : IndexScheme::TSI;
}

void
Cip::scoreWrite(IndexScheme predicted, IndexScheme actual)
{
    ++write_predictions_;
    if (predicted != actual)
        ++write_mispredicts_;
}

void
Cip::resetStats()
{
    read_predictions_ = read_mispredicts_ = 0;
    write_predictions_ = write_mispredicts_ = 0;
}

std::uint32_t
Cip::storageBytes() const
{
    return static_cast<std::uint32_t>((ltt_.size() + 7) / 8);
}

double
Cip::readAccuracy() const
{
    if (read_predictions_ == 0)
        return 1.0;
    return 1.0 - static_cast<double>(read_mispredicts_) /
                     static_cast<double>(read_predictions_);
}

double
Cip::writeAccuracy() const
{
    if (write_predictions_ == 0)
        return 1.0;
    return 1.0 - static_cast<double>(write_mispredicts_) /
                     static_cast<double>(write_predictions_);
}

StatGroup
Cip::stats() const
{
    StatGroup g("cip");
    g.addFormula("read_predictions",
                 [this]() { return double(read_predictions_); });
    g.addFormula("read_accuracy", [this]() { return readAccuracy(); });
    g.addFormula("write_predictions",
                 [this]() { return double(write_predictions_); });
    g.addFormula("write_accuracy", [this]() { return writeAccuracy(); });
    g.addFormula("storage_bytes",
                 [this]() { return double(storageBytes()); });
    return g;
}

} // namespace dice
