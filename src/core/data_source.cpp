#include "data_source.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace dice
{

Line
RandomDataSource::bytes(LineAddr line, std::uint64_t version) const
{
    Line out;
    for (std::uint32_t i = 0; i < kLineSize / 8; ++i) {
        const std::uint64_t w = mix64(mix64(line, version), i);
        std::memcpy(out.data() + 8 * i, &w, 8);
    }
    return out;
}

} // namespace dice
