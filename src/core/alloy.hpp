/**
 * @file
 * Uncompressed Alloy Cache baseline (Qureshi & Loh, MICRO 2012;
 * paper Figure 2): direct-mapped, one 72-B TAD per set, accessed as an
 * 80-B burst that also streams the neighboring set's tag. All speedups
 * in the study are normalized to this organization.
 *
 * Ideal variants for the motivation/limit studies (Figure 1f, 7, 10 and
 * Table 8) are plain configuration changes: doubled capacity, doubled
 * channel count, halved latency.
 */

#ifndef DICE_CORE_ALLOY_HPP
#define DICE_CORE_ALLOY_HPP

#include <vector>

#include "core/dram_cache.hpp"
#include "core/indexing.hpp"

namespace dice
{

/** Direct-mapped uncompressed Alloy DRAM cache. */
class AlloyCache : public DramCache
{
  public:
    explicit AlloyCache(const DramCacheConfig &config,
                        std::string name = "alloy_l4");

    L4ReadResult read(LineAddr line, Cycle now) override;
    L4WriteResult install(LineAddr line, std::uint64_t payload, bool dirty,
                          Cycle now, bool after_read_miss) override;
    bool contains(LineAddr line) const override;
    std::uint64_t validLines() const override;
    const char *organization() const override { return "alloy"; }

    const SetIndexer &indexer() const { return indexer_; }

  private:
    struct Entry
    {
        LineAddr line = 0;
        std::uint64_t payload = 0;
        bool valid = false;
        bool dirty = false;
    };

    SetIndexer indexer_;
    DramCacheAddressMapper mapper_;
    /** Dense direct-mapped array indexed by set: one resident TAD. */
    std::vector<Entry> sets_;
    std::uint64_t valid_count_ = 0;
};

/** Convenience factories for the ideal limit-study configurations. */
DramCacheConfig doubledCapacity(DramCacheConfig config);
DramCacheConfig doubledBandwidth(DramCacheConfig config);
DramCacheConfig halvedLatency(DramCacheConfig config);

} // namespace dice

#endif // DICE_CORE_ALLOY_HPP
