/**
 * @file
 * Touché-style signature tags over the compressed Alloy layout (Hong
 * et al. — see PAPERS.md).
 *
 * Touché's observation: a compressed DRAM-cache set can hold many
 * lines, but full tags eat the space the compression freed. Storing a
 * short *hashed signature* per resident item instead makes tags nearly
 * free (1 B here vs the 4-B full tag of the DICE TAD format), so more
 * compressed lines fit per 72-B set — at the price of aliasing:
 *
 *  - A probe whose signature matches a resident item may be a false
 *    positive. Confirming a match needs the full residual tag, which
 *    lives in the per-set ECC/metadata region and costs an extra
 *    narrow DRAM burst. That aliasing-check traffic is charged to
 *    this device's timing model — signature collisions literally
 *    consume cache bandwidth, which is the trade-off the organization
 *    exists to study.
 *
 *  - A miss whose signature matches nothing is known from the 80-B
 *    probe alone (like Alloy).
 *
 * Model: direct-mapped TSI sets of 72 B, singles-only compressed
 * items (HybridCodec sizes, 1-B signature tags), LRU within the set.
 * The functional truth (which lines are resident) stays exact; the
 * signatures only inject verification *traffic*, never wrong data.
 */

#ifndef DICE_CORE_TOUCHE_HPP
#define DICE_CORE_TOUCHE_HPP

#include <vector>

#include "common/flat_map.hpp"
#include "compress/hybrid.hpp"
#include "core/data_source.hpp"
#include "core/dram_cache.hpp"
#include "core/indexing.hpp"
#include "core/l4_registry.hpp"
#include "core/tad.hpp"

namespace dice
{

/** Signature-tagged compressed DRAM cache. */
class ToucheCache : public DramCache
{
  public:
    /** Bytes charged per signature tag. */
    static constexpr std::uint32_t kSignatureTagBytes = 1;
    /** Bytes of the aliasing-verification burst (residual tags). */
    static constexpr std::uint32_t kVerifyBytes = 16;

    ToucheCache(const DramCacheConfig &config,
                const ToucheL4Params &params, const LineDataSource &source,
                std::string name = "touche_l4");

    L4ReadResult read(LineAddr line, Cycle now) override;
    L4WriteResult install(LineAddr line, std::uint64_t payload, bool dirty,
                          Cycle now, bool after_read_miss) override;
    bool contains(LineAddr line) const override;
    std::uint64_t validLines() const override;
    std::uint64_t bytesUsed() const override;
    const char *organization() const override { return "touche"; }

    void resetStats() override;
    StatGroup stats() const override;

    /** Probes that needed a verification burst (white-box for tests). */
    std::uint64_t aliasChecks() const { return alias_checks_; }
    /** Verifications that turned out to be misses (pure waste). */
    std::uint64_t falsePositives() const { return false_positives_; }

  private:
    std::uint32_t signatureOf(LineAddr line) const;

    /**
     * True when any resident item of @p set other than @p line itself
     * carries @p line's signature (an aliasing candidate).
     */
    bool aliased(const TadSet &set, LineAddr line) const;

    /** Compressed size (bytes) of the current data of @p line. */
    std::uint32_t sizeOf(LineAddr line, std::uint64_t payload) const;

    ToucheL4Params params_;
    SetIndexer indexer_;
    DramCacheAddressMapper mapper_;
    const LineDataSource &source_;
    HybridCodec codec_;
    std::uint32_t sig_mask_;

    /** Dense per-set state, directly indexed by TSI set number. */
    std::vector<TadSet> sets_;
    mutable BoundedMemo<std::uint64_t, std::uint32_t, true> size_cache_{
        14};
    std::uint64_t lru_clock_ = 0;
    /** Resident logical lines, maintained across install's mutations. */
    std::uint64_t valid_lines_ = 0;

    std::uint64_t alias_checks_ = 0;
    std::uint64_t false_positives_ = 0;
};

} // namespace dice

#endif // DICE_CORE_TOUCHE_HPP
