/**
 * @file
 * The compressed DRAM cache (paper Sections 4 and 5).
 *
 * One class implements the whole design space via its policy knob:
 *
 *  - TsiOnly: compression for capacity only (Figure 1b / "TSI" bars).
 *  - NsiOnly: naive spatial indexing (Section 4.5's strawman).
 *  - BaiOnly: static bandwidth-aware indexing ("BAI" bars).
 *  - Dice:    dynamic TSI/BAI selection by compressed size at insertion
 *             (threshold 36 B) with CIP index prediction on access.
 *
 * The KNL mode models Intel Knights Landing's tags-in-ECC organization
 * (Section 6.6): 72-B accesses with no free neighbor tag, so when the
 * two candidate sets differ a miss (or mispredicted hit) must probe
 * both; the controller merges the two probes (same DRAM row).
 */

#ifndef DICE_CORE_COMPRESSED_HPP
#define DICE_CORE_COMPRESSED_HPP

#include <vector>

#include "common/flat_map.hpp"
#include "common/ring_trace.hpp"
#include "compress/hybrid.hpp"
#include "core/cip.hpp"
#include "core/data_source.hpp"
#include "core/dram_cache.hpp"
#include "core/indexing.hpp"
#include "core/tad.hpp"

namespace dice
{

/** Which install-indexing policy the compressed cache runs. */
enum class CompressionPolicy : std::uint8_t
{
    TsiOnly,
    NsiOnly,
    BaiOnly,
    Dice,
};

/** Printable policy name. */
const char *policyName(CompressionPolicy policy);

/** Configuration of the compressed cache. */
struct CompressedCacheConfig
{
    DramCacheConfig base;
    CompressionPolicy policy = CompressionPolicy::Dice;
    /** BAI-vs-TSI insertion threshold (Table 4; default 36 B). */
    std::uint32_t threshold_bytes = 36;
    /** CIP Last-Time-Table entries (Section 5.3; default 2048). */
    std::uint32_t cip_entries = 2048;
    /** Model the KNL tags-in-ECC organization instead of Alloy. */
    bool knl_mode = false;
    /**
     * Merge co-resident spatial neighbors into shared-tag pair items
     * (Section 4.2/4.3). Disable for ablation: lines then pack as
     * independent singles with private tags.
     */
    bool pair_compression = true;
};

/** One install decision (decision-trace ring record). */
struct InstallTrace
{
    LineAddr line = 0;
    std::uint32_t size_bytes = 0;      ///< Compressed single-line size.
    IndexScheme scheme = IndexScheme::TSI;
    bool invariant = false; ///< TSI == BAI for this line (no choice).
    bool paired = false;    ///< Merged with its neighbor into a pair.
};

/** Compressed Alloy-style DRAM cache with dynamic indexing. */
class CompressedDramCache : public DramCache
{
  public:
    /** Install decisions the decision-trace ring retains. */
    static constexpr std::size_t kInstallTraceDepth = 256;
    CompressedDramCache(const CompressedCacheConfig &config,
                        const LineDataSource &source,
                        std::string name = "comp_l4");

    L4ReadResult read(LineAddr line, Cycle now) override;
    L4WriteResult install(LineAddr line, std::uint64_t payload, bool dirty,
                          Cycle now, bool after_read_miss) override;
    bool contains(LineAddr line) const override;
    std::uint64_t validLines() const override;
    const char *organization() const override;
    L4Metrics metrics() const override;
    void registerExtraStats(StatRegistry &registry) const override;

    const SetIndexer &indexer() const { return indexer_; }
    const Cip &cip() const { return cip_; }
    const CompressedCacheConfig &compressedConfig() const { return cfg_; }

    /** Install-decision counters (Figure 11). */
    std::uint64_t installsInvariant() const { return installs_invariant_; }
    std::uint64_t installsBai() const { return installs_bai_; }
    std::uint64_t installsTsi() const { return installs_tsi_; }
    /** Pair (shared-tag) installs. */
    std::uint64_t pairInstalls() const { return pair_installs_; }
    /** Reads needing a second DRAM access (CIP misprediction). */
    std::uint64_t secondProbes() const { return second_probes_; }
    /** Stale alternate-location copies removed on scheme flips. */
    std::uint64_t duplicateScrubs() const { return duplicate_scrubs_; }

    /** Bytes of compressed payload + tags currently resident. */
    std::uint64_t bytesUsed() const override;

    /**
     * Combined storage footprint of the compressed-size memos
     * (constant for the cache's lifetime — both are bounded, see
     * BoundedMemo).
     */
    std::size_t sizeMemoCapacityBytes() const
    {
        return size_cache_.capacityBytes() +
               pair_size_cache_.capacityBytes();
    }

    void resetStats() override;

    StatGroup stats() const override;

    /** Turn the install decision-trace ring on/off (cleared on off). */
    void enableDecisionTrace(bool enabled);

    /** CIP trace control shares the same switch (tests). */
    Cip &cipForTest() { return cip_; }

    /** The install-decision ring, oldest record first. */
    const DecisionRing<InstallTrace, kInstallTraceDepth> &
    installRing() const
    {
        return install_ring_;
    }

  private:
    /** Candidate sets a line may occupy under the current policy. */
    struct Candidates
    {
        std::uint64_t primary;   ///< Set probed first.
        std::uint64_t secondary; ///< Alternate set (== primary if none).
        IndexScheme primary_scheme;
        bool single; ///< True when only one location is possible.
    };

    Candidates readCandidates(LineAddr line) const;

    /** Scheme the install policy picks for a line of @p size bytes. */
    IndexScheme installScheme(LineAddr line, std::uint32_t size,
                              bool &invariant) const;

    /** Compressed size (bytes) of the current data of @p line. */
    std::uint32_t sizeOf(LineAddr line, std::uint64_t payload) const;

    /** Compressed size (bytes) of the joint pair (base, base|1). */
    std::uint32_t pairSizeOf(LineAddr base, std::uint64_t even_payload,
                             std::uint64_t odd_payload) const;

    /**
     * Remove @p line from @p set, recomputing the surviving half's
     * single-line size when the line was in a pair.
     */
    void removeResident(TadSet &set, LineAddr line);

    /**
     * removeResident() with @p line's lookup in @p set already in hand
     * (and still valid — no mutation of @p set since): skips the
     * re-scan install's membership probes already paid for.
     */
    void removeResident(TadSet &set, LineAddr line, const TadLookup &lk);

    std::uint32_t readBytes() const { return cfg_.knl_mode ? 72 : 80; }

    CompressedCacheConfig cfg_;
    SetIndexer indexer_;
    DramCacheAddressMapper mapper_;
    const LineDataSource &source_;
    HybridCodec codec_;
    Cip cip_;

    /** Dense per-set state, directly indexed by set number. */
    std::vector<TadSet> sets_;
    /**
     * Memoized compressed sizes keyed by mix64(line, version) (already
     * mixed, hence PreHashed). Bounded and generation-versioned: a
     * collision recomputes instead of growing, so the memo's footprint
     * stays flat over arbitrarily long runs (it used to be an unbounded
     * map that never evicted). Sizing note: with the batched/vectorized
     * codec sizing, a recompute (synthesize + size) costs about as much
     * as a DRAM-latency probe miss, so a huge memo no longer pays —
     * 2^14 buckets x 4 ways (1 MiB) keeps probes near-cache while
     * still absorbing the hot working set.
     */
    mutable BoundedMemo<std::uint64_t, std::uint32_t, true> size_cache_{
        14};
    /**
     * Same idea for joint pair sizes, keyed by a mix64 chain over
     * (pair base, even version, odd version). Without it every install
     * next to a resident neighbor re-synthesizes both lines and runs
     * the joint codec again.
     */
    mutable BoundedMemo<std::uint64_t, std::uint32_t, true>
        pair_size_cache_{12};
    std::uint64_t lru_clock_ = 0;
    /** Resident logical lines, maintained across install's mutations. */
    std::uint64_t valid_lines_ = 0;

    std::uint64_t installs_invariant_ = 0;
    std::uint64_t installs_bai_ = 0;
    std::uint64_t installs_tsi_ = 0;
    std::uint64_t pair_installs_ = 0;
    std::uint64_t second_probes_ = 0;
    std::uint64_t duplicate_scrubs_ = 0;

    /** Install decision trace (off by default; DICE_DECISION_TRACE). */
    bool trace_enabled_ = false;
    DecisionRing<InstallTrace, kInstallTraceDepth> install_ring_;
};

} // namespace dice

#endif // DICE_CORE_COMPRESSED_HPP
