/**
 * @file
 * MAP-I: instruction-based Memory Access Predictor (Qureshi & Loh,
 * MICRO 2012), used by the Alloy-style L4 to hide tag-lookup latency on
 * misses. Indexed by a hash of the requesting instruction's PC, each
 * entry is a saturating counter; a predicted miss lets the controller
 * start the main-memory access in parallel with the L4 probe.
 */

#ifndef DICE_CORE_MAPI_HPP
#define DICE_CORE_MAPI_HPP

#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace dice
{

/** PC-indexed hit/miss predictor with 3-bit saturating counters. */
class MapI
{
  public:
    /** @param entries Counter-table size (256 x 3 bits = 96 B). */
    explicit MapI(std::uint32_t entries = 256);

    /** True when a read from @p pc is predicted to *hit* in L4. */
    bool predictHit(std::uint64_t pc) const;

    /** Train with the observed outcome and score the prediction. */
    void update(std::uint64_t pc, bool was_hit);

    /** Zero the accuracy counters; counter training is preserved. */
    void resetStats();

    double accuracy() const;
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredicts_; }

    StatGroup stats() const;

  private:
    std::uint32_t indexOf(std::uint64_t pc) const;

    static constexpr std::uint8_t kMax = 7;
    static constexpr std::uint8_t kThreshold = 4;

    std::vector<std::uint8_t> table_;
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace dice

#endif // DICE_CORE_MAPI_HPP
