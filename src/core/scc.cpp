#include "scc.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace dice
{

SccCache::SccCache(const DramCacheConfig &config,
                   const LineDataSource &source, std::string name)
    : DramCache(config, std::move(name)),
      num_sets_(config.capacity / kLineSize / kWays),
      mapper_(config.timing), source_(source),
      sets_(config.capacity / kLineSize / kWays,
            TadSet(/*budget=*/kWays * kTadSetBytes,
                   /*max_lines=*/kWays * 4,
                   /*tag_bytes=*/2))
{
    dice_assert(num_sets_ > 0, "SCC cache too small");
}

std::uint64_t
SccCache::setOf(LineAddr line) const
{
    return (line / kSuperblockLines) % num_sets_;
}

Cycle
SccCache::probeTags(std::uint64_t set, Cycle now, std::uint32_t &accesses,
                    bool demand)
{
    // Three tag probes, issued in parallel. The tag arrays live in
    // contiguous DRAM regions, so a set's probes land in consecutive
    // locations of one row (row-buffer friendly) rather than scattering
    // activations. Install-side probes are posted (write-queue)
    // traffic; tag reads are narrow (a 16-B burst carries several
    // superblock tags) — only the data access moves a full TAD.
    const AccessKind kind =
        demand ? AccessKind::DemandRead : AccessKind::PostedRead;
    const std::uint64_t base = (mix64(set) % (num_sets_ * kWays)) &
                               ~std::uint64_t{3};
    Cycle done = now;
    for (std::uint32_t i = 0; i < kTagProbes; ++i) {
        const DramResult r =
            device_.access(mapper_.coord(base + i), 16, now, kind);
        done = std::max(done, r.done);
        ++accesses;
    }
    return done;
}

L4ReadResult
SccCache::read(LineAddr line, Cycle now)
{
    const std::uint64_t set = setOf(line);

    L4ReadResult res;
    res.dram_accesses = 0;
    const Cycle tags_done = probeTags(set, now, res.dram_accesses, true);

    TadSet &state = sets_[set];
    const TadLookup lk = state.lookup(line);
    if (!lk.found) {
        res.done = tags_done + config_.controller_latency;
        ++read_misses_;
        return res;
    }

    // Data access only after the tags identified the location.
    const DramResult data = device_.access(
        mapper_.coord(mix64(set, 7) % (num_sets_ * kWays)), 72,
        tags_done, false);
    ++res.dram_accesses;

    res.hit = true;
    res.done = data.done + config_.controller_latency +
               config_.decompression_latency;
    res.payload = lk.payload;
    state.touch(line, ++lru_clock_);
    ++read_hits_;
    return res;
}

L4WriteResult
SccCache::install(LineAddr line, std::uint64_t payload, bool dirty,
                  Cycle now, bool after_read_miss)
{
    ++installs_;
    const std::uint64_t set = setOf(line);

    L4WriteResult res;
    res.dram_accesses = 0;
    Cycle when = now;
    if (!after_read_miss)
        when = probeTags(set, now, res.dram_accesses, false);

    TadSet &state = sets_[set];
    const std::uint32_t lines_before = state.lineCount();
    const std::uint32_t size =
        codec_.compressedSizeBytes(source_.bytes(line, payload));

    if (state.contains(line))
        state.remove(line, 0);
    while (!state.fits(size, 1)) {
        if (!state.evictLru(line, res.writebacks))
            dice_panic("SCC set cannot make room");
    }
    state.insertSingle(line, size, dirty, payload, false, ++lru_clock_);

    device_.access(mapper_.coord(mix64(set, 7) % (num_sets_ * kWays)), 72,
                   when, true);
    ++res.dram_accesses;

    valid_lines_ += state.lineCount();
    valid_lines_ -= lines_before;
    return res;
}

bool
SccCache::contains(LineAddr line) const
{
    return sets_[setOf(line)].contains(line);
}

std::uint64_t
SccCache::validLines() const
{
    return valid_lines_;
}

} // namespace dice
