/**
 * @file
 * Cache set-indexing schemes (paper Section 4.5, Figure 6).
 *
 * For a cache with S = 2^k sets and line address L:
 *
 *  - TSI (Traditional Set Indexing):  set = L[k-1:0]
 *    consecutive lines -> consecutive sets.
 *  - NSI (Naive Spatial Indexing):    set = L[k:1]
 *    pairs map together, but nearly every line moves relative to TSI.
 *  - BAI (Bandwidth-Aware Indexing):  set = { L[k-1:1], L[k] }
 *    pairs (2m, 2m+1) map together, exactly half of all lines keep
 *    their TSI set (those with L[0] == L[k]), and a line's BAI set
 *    always differs from its TSI set in bit 0 only — i.e. it is the
 *    *neighboring* set, guaranteed to live in the same DRAM row.
 */

#ifndef DICE_CORE_INDEXING_HPP
#define DICE_CORE_INDEXING_HPP

#include <cstdint>

#include "common/bitops.hpp"
#include "common/types.hpp"
#include "dram/dram.hpp"
#include "dram/timing.hpp"

namespace dice
{

/** Which set-index function a line was (or should be) placed with. */
enum class IndexScheme : std::uint8_t
{
    TSI,
    NSI,
    BAI,
};

/** Printable name of an indexing scheme. */
const char *indexSchemeName(IndexScheme scheme);

/** Set-index math for a direct-mapped cache of 2^k sets. */
class SetIndexer
{
  public:
    /** @param set_bits k = log2(number of sets). */
    explicit SetIndexer(std::uint32_t set_bits) : set_bits_(set_bits) {}

    std::uint32_t setBits() const { return set_bits_; }
    std::uint64_t numSets() const { return std::uint64_t{1} << set_bits_; }

    /** Traditional set index. */
    std::uint64_t
    tsi(LineAddr line) const
    {
        return line & (numSets() - 1);
    }

    /** Naive spatial index. */
    std::uint64_t
    nsi(LineAddr line) const
    {
        return (line >> 1) & (numSets() - 1);
    }

    /** Bandwidth-aware index. */
    std::uint64_t
    bai(LineAddr line) const
    {
        const std::uint64_t high = bits(line, set_bits_ - 1, 1);
        return (high << 1) | bit(line, set_bits_);
    }

    /** Set for @p line under @p scheme. */
    std::uint64_t set(LineAddr line, IndexScheme scheme) const;

    /**
     * True when the line's TSI and BAI sets coincide (half of all
     * lines); such lines need no insertion decision or prediction.
     */
    bool
    baiInvariant(LineAddr line) const
    {
        return bit(line, 0) == bit(line, set_bits_);
    }

    /**
     * The alternate candidate set: TSI and BAI sets differ only in set
     * bit 0, so each is the other's neighbor.
     */
    static std::uint64_t
    alternateSet(std::uint64_t set)
    {
        return set ^ 1;
    }

    /**
     * The even line of the spatial pair that maps (under BAI) to the
     * same set as @p line.
     */
    static LineAddr
    pairBase(LineAddr line)
    {
        return line & ~LineAddr{1};
    }

    /** The spatial neighbor that BAI co-locates with @p line. */
    static LineAddr
    spatialNeighbor(LineAddr line)
    {
        return line ^ 1;
    }

  private:
    std::uint32_t set_bits_;
};

/**
 * Maps a DRAM-cache set index to device coordinates. Consecutive sets
 * are packed into the same row (28 x 72-B TADs per 2-KB row, Figure 2),
 * then row-groups are striped across channels and banks. Packing
 * neighbors into one row is what makes the BAI/TSI second probe a
 * row-buffer hit.
 */
class DramCacheAddressMapper
{
  public:
    DramCacheAddressMapper(const DramTiming &timing,
                           std::uint32_t tad_bytes = 72);

    /** TADs that fit in one row. */
    std::uint32_t tadsPerRow() const { return tads_per_row_; }

    /** Decode @p set into channel/bank/row coordinates. */
    DramCoord coord(std::uint64_t set) const;

  private:
    std::uint32_t channels_;
    std::uint32_t banks_;
    std::uint32_t tads_per_row_;
};

} // namespace dice

#endif // DICE_CORE_INDEXING_HPP
