/**
 * @file
 * Skewed Compressed Cache (SCC) applied to a DRAM cache — the
 * bandwidth-inefficiency baseline of paper Section 7.3 / Figure 15.
 *
 * SCC (Sardashti, Seznec & Wood, MICRO 2014) was designed for SRAM: an
 * 8-way skewed-associative cache whose superblock tags address up to 4x
 * compressed lines. Its lookups touch several skewed locations, which
 * is cheap in SRAM but, on a DRAM cache, turns every request into four
 * DRAM accesses (three for the distributed tag arrays, one for data).
 *
 * Model (documented in DESIGN.md): an 8-way set-associative compressed
 * structure indexed by 4-line superblock, with a per-set byte budget of
 * eight 72-B ways and shared superblock tags (2 B amortized per line).
 * Every read issues three parallel tag probes plus a data access on a
 * hit; every install issues the tag probes plus a data write. Hit rate
 * is therefore generous (associativity + compression) and the 22%
 * slowdown the paper reports emerges purely from tag bandwidth — the
 * effect the experiment exists to demonstrate.
 */

#ifndef DICE_CORE_SCC_HPP
#define DICE_CORE_SCC_HPP

#include <vector>

#include "compress/hybrid.hpp"
#include "core/data_source.hpp"
#include "core/dram_cache.hpp"
#include "core/indexing.hpp"
#include "core/tad.hpp"

namespace dice
{

/** SCC-on-DRAM-cache baseline. */
class SccCache : public DramCache
{
  public:
    SccCache(const DramCacheConfig &config, const LineDataSource &source,
             std::string name = "scc_l4");

    L4ReadResult read(LineAddr line, Cycle now) override;
    L4WriteResult install(LineAddr line, std::uint64_t payload, bool dirty,
                          Cycle now, bool after_read_miss) override;
    bool contains(LineAddr line) const override;
    std::uint64_t validLines() const override;
    const char *organization() const override { return "scc"; }

  private:
    static constexpr std::uint32_t kWays = 8;
    static constexpr std::uint32_t kSuperblockLines = 4;
    /** Tag probes per request (tags distributed over skewed arrays). */
    static constexpr std::uint32_t kTagProbes = 3;

    std::uint64_t setOf(LineAddr line) const;
    /** Issue the tag probes; returns the cycle all tags are known. */
    Cycle probeTags(std::uint64_t set, Cycle now, std::uint32_t &accesses,
                    bool demand);

    std::uint64_t num_sets_;
    DramCacheAddressMapper mapper_;
    const LineDataSource &source_;
    HybridCodec codec_;
    /** Dense per-set state, directly indexed by set number. */
    std::vector<TadSet> sets_;
    std::uint64_t lru_clock_ = 0;
    /** Resident logical lines, maintained across install's mutations. */
    std::uint64_t valid_lines_ = 0;
};

} // namespace dice

#endif // DICE_CORE_SCC_HPP
