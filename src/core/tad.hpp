/**
 * @file
 * Flexible tag-and-data (TAD) set layout for the compressed DRAM cache
 * (paper Figure 5).
 *
 * Each physical set provides 72 bytes that the controller may interpret
 * freely as tag or data. Every resident item pays one 4-B tag (18-b tag,
 * valid/dirty/BAI/shared-tag/next-tag-valid flags, and up to 9 bits of
 * FPC/BDI metadata) plus its compressed payload. A spatially-contiguous
 * pair compressed together shares a single tag ("shared tag" bit) and,
 * under BDI, a single base — that is what lets two lines fit when their
 * joint payload is <= 68 B. At most 28 logical lines fit in one set.
 *
 * Storage is structure-of-arrays in a single fixed-capacity arena
 * block per set: the per-item fields live in lockstep packed planes
 * (scan keys, LRU stamps, data-version payloads, payload byte counts,
 * flag bytes) at fixed offsets inside one allocation, so each
 * operation touches only the planes it needs and a probe stays within
 * one heap block — the tag probe scans keys + a flag byte per rare
 * key match, the LRU victim scan reads the lru plane alone, and the
 * byte audit sums the data_bytes plane. The dense planes are what the
 * simd::matchMaskU64 / simd::minIndexU64 kernels scan (see
 * common/simd.hpp); their scalar fallbacks keep behavior bit-identical.
 */

#ifndef DICE_CORE_TAD_HPP
#define DICE_CORE_TAD_HPP

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/sram_cache.hpp" // EvictedLine
#include "common/log.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace dice
{

/** Physical bytes available per set (the Alloy 72-B TAD). */
inline constexpr std::uint32_t kTadSetBytes = 72;

/** Bytes charged per (possibly shared) tag entry. */
inline constexpr std::uint32_t kTadTagBytes = 4;

/** Maximum logical lines one set may hold (Figure 5). */
inline constexpr std::uint32_t kTadMaxLines = 28;

/** Tag size of the baseline uncompressed Alloy TAD (Figure 2). */
inline constexpr std::uint32_t kAlloyTagBytes = 8;

/** Result of looking a line up within a set. */
struct TadLookup
{
    bool found = false;
    bool dirty = false;
    bool bai = false;
    /** True when the line lives inside a shared-tag pair item. */
    bool in_pair = false;
    std::uint64_t payload = 0;
    /** True when the spatial neighbor (line^1) is also in this set. */
    bool neighbor_present = false;
    std::uint64_t neighbor_payload = 0;
    /**
     * Index of the holding item when found. Valid until the set next
     * mutates; lets touchAt()/removeAt() skip a second key scan.
     */
    std::uint32_t item = 0;
};

/** One compressed DRAM-cache set: packed item planes + accounting. */
class TadSet
{
  public:
    /**
     * @param budget_bytes Physical bytes the set provides (72 for the
     *        Alloy TAD; larger for associative organizations like SCC).
     * @param max_lines Logical-line cap (28 for the Alloy TAD format).
     * @param tag_bytes Bytes charged per (possibly shared) tag.
     */
    explicit TadSet(std::uint32_t budget_bytes = kTadSetBytes,
                    std::uint32_t max_lines = kTadMaxLines,
                    std::uint32_t tag_bytes = kTadTagBytes)
        : budget_bytes_(budget_bytes), max_lines_(max_lines),
          tag_bytes_(tag_bytes)
    {
    }

    // The arena block makes the set move-only by default; SCC
    // fill-constructs its sets from a prototype, so deep-copy too.
    TadSet(const TadSet &other);
    TadSet &operator=(const TadSet &other);
    TadSet(TadSet &&) noexcept = default;
    TadSet &operator=(TadSet &&) noexcept = default;
    ~TadSet() = default;

    /**
     * Bytes currently consumed by tags + payloads. Maintained
     * incrementally: fits() runs inside every install's eviction loop,
     * so the answer must not cost a scan of the items.
     */
    std::uint32_t bytesUsed() const { return bytes_used_; }

    /** Valid logical lines resident (incremental, like bytesUsed). */
    std::uint32_t lineCount() const { return line_count_; }

    /** Resident items (a shared-tag pair counts once). */
    std::uint32_t itemCount() const { return n_; }

    /**
     * Base line address of resident item @p i (the even half for a
     * shared-tag pair). For organizations that scan resident tags —
     * e.g. signature-tag aliasing checks.
     */
    LineAddr
    itemLine(std::uint32_t i) const
    {
        dice_assert(i < n_, "itemLine past live items");
        return baseOf(i);
    }

    /**
     * True when an item with @p extra_data payload bytes (plus one
     * tag) holding @p extra_lines lines would still fit.
     */
    bool
    fits(std::uint32_t extra_data, std::uint32_t extra_lines) const
    {
        return bytesUsed() + tag_bytes_ + extra_data <= budget_bytes_ &&
               lineCount() + extra_lines <= max_lines_;
    }

    /**
     * Look up @p line; also reports a co-resident spatial neighbor.
     * Inline (with findIndex/contains below): these run on every cache
     * probe, and the scans are short enough that the call overhead
     * would rival the work.
     */
    TadLookup
    lookup(LineAddr line) const
    {
        // One key scan resolves both the line and its spatial
        // neighbor (they share a key; the neighbor is reported only
        // when the line itself is resident).
        TadLookup res;
        const std::uint32_t n = n_;
        std::uint64_t m = simd::matchMaskU64(keys(), n, keyOf(line));
        std::uint32_t it = n;
        std::uint32_t nb = n;
        for (; m != 0; m &= m - 1) {
            const auto i = static_cast<std::uint32_t>(
                __builtin_ctzll(m));
            if (it == n && holdsAt(i, line))
                it = i;
            if (nb == n && holdsAt(i, line ^ 1))
                nb = i;
            if (it != n && nb != n)
                break;
        }
        if (it == n)
            return res;

        const std::uint8_t f = flags()[it];
        const std::uint32_t slot =
            (f & kPair) ? static_cast<std::uint32_t>(line & 1) : 0u;
        res.found = true;
        res.item = it;
        res.dirty = (f & dirtyBit(slot)) != 0;
        res.bai = (f & kBai) != 0;
        res.in_pair = (f & kPair) != 0;
        res.payload = payloads()[it].p[slot];

        if (nb != n) {
            const std::uint8_t nf = flags()[nb];
            const std::uint32_t nslot =
                (nf & kPair) ? static_cast<std::uint32_t>(~line & 1)
                             : 0u;
            res.neighbor_present = true;
            res.neighbor_payload = payloads()[nb].p[nslot];
        }
        return res;
    }

    /** True when @p line is resident. */
    bool contains(LineAddr line) const { return findIndex(line) != n_; }

    /** Refresh LRU state of the item holding @p line. */
    void
    touch(LineAddr line, std::uint64_t lru_stamp)
    {
        const std::uint32_t i = findIndex(line);
        if (i != n_)
            lru()[i] = lru_stamp;
    }

    /**
     * Refresh LRU state of item @p item — a TadLookup::item from a
     * lookup with no intervening mutation; skips the key re-scan.
     */
    void
    touchAt(std::uint32_t item, std::uint64_t lru_stamp)
    {
        dice_assert(item < n_, "touchAt past live items");
        lru()[item] = lru_stamp;
    }

    /** Mark a resident line dirty and replace its payload. */
    bool
    markDirty(LineAddr line, std::uint64_t payload)
    {
        const std::uint32_t i = findIndex(line);
        if (i == n_)
            return false;
        const std::uint32_t slot =
            (flags()[i] & kPair) ? static_cast<std::uint32_t>(line & 1)
                                 : 0u;
        flags()[i] |= dirtyBit(slot);
        payloads()[i].p[slot] = payload;
        return true;
    }

    /**
     * Remove @p line. A pair containing it keeps its other half (the
     * item reverts to a single with @p remaining_bytes payload bytes).
     * @return the removed line's state when it was dirty.
     */
    std::optional<EvictedLine> remove(LineAddr line,
                                      std::uint32_t remaining_bytes);

    /**
     * remove() for a line whose item index is already known (a
     * TadLookup::item with no intervening mutation): skips the scan.
     */
    std::optional<EvictedLine> removeAt(std::uint32_t item, LineAddr line,
                                        std::uint32_t remaining_bytes);

    /**
     * Evict the least-recently-used whole item, never the item holding
     * @p protect. Dirty halves are appended to @p writebacks.
     * @return false when nothing evictable remains.
     */
    bool evictLru(LineAddr protect, WritebackList &writebacks);

    /** Insert a single-line item; caller must have made room. */
    void insertSingle(LineAddr line, std::uint32_t data_bytes, bool dirty,
                      std::uint64_t payload, bool bai,
                      std::uint64_t lru_stamp);

    /**
     * Insert (or replace the singles with) a shared-tag pair for lines
     * (base, base^1); caller must have made room *after* accounting for
     * the removal of any existing singles of the pair.
     */
    void insertPair(LineAddr base, std::uint32_t data_bytes,
                    bool dirty0, std::uint64_t payload0, bool dirty1,
                    std::uint64_t payload1, bool bai,
                    std::uint64_t lru_stamp);

    /**
     * Recompute byte/line accounting from the planes and check it
     * against the incremental counters (plus per-item flag sanity).
     * O(items) — for tests and debug sweeps, not the hot loop.
     */
    bool auditStorage() const;

  private:
    // flags_ bit layout. Singles keep their line in slot 0 and record
    // the address low bit in kOdd; pairs use slot = line & 1 and an
    // always-even base, so kOdd stays clear.
    static constexpr std::uint8_t kValid0 = 1u << 0;
    static constexpr std::uint8_t kValid1 = 1u << 1;
    static constexpr std::uint8_t kDirty0 = 1u << 2;
    static constexpr std::uint8_t kDirty1 = 1u << 3;
    static constexpr std::uint8_t kPair = 1u << 4;
    static constexpr std::uint8_t kBai = 1u << 5;
    static constexpr std::uint8_t kOdd = 1u << 6;

    static constexpr std::uint8_t
    validBit(std::uint32_t slot)
    {
        return slot != 0 ? kValid1 : kValid0;
    }

    static constexpr std::uint8_t
    dirtyBit(std::uint32_t slot)
    {
        return slot != 0 ? kDirty1 : kDirty0;
    }

    /** Data-version payloads of slots [0]=even and [1]=odd half. */
    struct PayloadPair
    {
        std::uint64_t p[2];
    };

    /**
     * Item capacity: every item consumes at least one tag and holds at
     * least one line, so this bound can never be exceeded.
     */
    std::uint32_t
    capacity() const
    {
        const std::uint32_t by_tags = budget_bytes_ / tag_bytes_;
        return by_tags < max_lines_ ? by_tags : max_lines_;
    }

    // Plane accessors into the arena block. Layout (c = capacity()):
    // [0, 8c) keys | [8c, 16c) lru | [16c, 32c) payloads |
    // [32c, 34c) data_bytes | [34c, 35c) flags. All plane starts are
    // 2-byte-aligned or better for their element type.
    std::uint64_t *keys() { return block_.get(); }
    const std::uint64_t *keys() const { return block_.get(); }
    std::uint64_t *lru() { return block_.get() + capacity(); }
    const std::uint64_t *lru() const
    {
        return block_.get() + capacity();
    }
    PayloadPair *
    payloads()
    {
        return reinterpret_cast<PayloadPair *>(block_.get() +
                                               2 * capacity());
    }
    const PayloadPair *
    payloads() const
    {
        return reinterpret_cast<const PayloadPair *>(block_.get() +
                                                     2 * capacity());
    }
    std::uint16_t *
    dataBytes()
    {
        return reinterpret_cast<std::uint16_t *>(block_.get() +
                                                 4 * capacity());
    }
    const std::uint16_t *
    dataBytes() const
    {
        return reinterpret_cast<const std::uint16_t *>(block_.get() +
                                                       4 * capacity());
    }
    std::uint8_t *
    flags()
    {
        return reinterpret_cast<std::uint8_t *>(dataBytes() +
                                                capacity());
    }
    const std::uint8_t *
    flags() const
    {
        return reinterpret_cast<const std::uint8_t *>(dataBytes() +
                                                      capacity());
    }

    /** 64-bit words the arena block spans (35 bytes per item). */
    std::size_t
    blockWords() const
    {
        return (35u * capacity() + 7u) / 8u;
    }

    /** Allocate the arena on first insert (empty sets stay heap-free). */
    void ensureStorage();

    /** True when item @p i (whose key already matched) holds @p line. */
    bool
    holdsAt(std::uint32_t i, LineAddr line) const
    {
        const std::uint8_t f = flags()[i];
        if (f & kPair)
            return (f & validBit(static_cast<std::uint32_t>(line & 1))) !=
                   0;
        return (f & kValid0) != 0 &&
               ((f & kOdd) != 0) == ((line & 1) != 0);
    }

    /** Index of the item holding @p line, or itemCount() when absent. */
    std::uint32_t
    findIndex(LineAddr line) const
    {
        const std::uint32_t n = n_;
        std::uint64_t m = simd::matchMaskU64(keys(), n, keyOf(line));
        for (; m != 0; m &= m - 1) {
            const auto i = static_cast<std::uint32_t>(
                __builtin_ctzll(m));
            if (holdsAt(i, line))
                return i;
        }
        return n;
    }

    /** Base line address of item @p i (even line for pairs). */
    LineAddr
    baseOf(std::uint32_t i) const
    {
        const LineAddr even = keys()[i] << 1;
        return (flags()[i] & kOdd) ? (even | 1) : even;
    }

    /** Scan key of an item: a line and its pair neighbor share one. */
    static std::uint64_t
    keyOf(LineAddr line)
    {
        return line >> 1;
    }

    void eraseAt(std::uint32_t i);

    std::uint32_t budget_bytes_;
    std::uint32_t max_lines_;
    std::uint32_t tag_bytes_;
    std::uint32_t bytes_used_ = 0;
    std::uint32_t line_count_ = 0;
    /** Resident item count (live prefix length of every plane). */
    std::uint32_t n_ = 0;
    /** One allocation holding all five planes (see plane accessors). */
    std::unique_ptr<std::uint64_t[]> block_;
};

} // namespace dice

#endif // DICE_CORE_TAD_HPP
