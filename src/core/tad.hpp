/**
 * @file
 * Flexible tag-and-data (TAD) set layout for the compressed DRAM cache
 * (paper Figure 5).
 *
 * Each physical set provides 72 bytes that the controller may interpret
 * freely as tag or data. Every resident item pays one 4-B tag (18-b tag,
 * valid/dirty/BAI/shared-tag/next-tag-valid flags, and up to 9 bits of
 * FPC/BDI metadata) plus its compressed payload. A spatially-contiguous
 * pair compressed together shares a single tag ("shared tag" bit) and,
 * under BDI, a single base — that is what lets two lines fit when their
 * joint payload is <= 68 B. At most 28 logical lines fit in one set.
 */

#ifndef DICE_CORE_TAD_HPP
#define DICE_CORE_TAD_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/sram_cache.hpp" // EvictedLine
#include "common/types.hpp"

namespace dice
{

/** Physical bytes available per set (the Alloy 72-B TAD). */
inline constexpr std::uint32_t kTadSetBytes = 72;

/** Bytes charged per (possibly shared) tag entry. */
inline constexpr std::uint32_t kTadTagBytes = 4;

/** Maximum logical lines one set may hold (Figure 5). */
inline constexpr std::uint32_t kTadMaxLines = 28;

/** Tag size of the baseline uncompressed Alloy TAD (Figure 2). */
inline constexpr std::uint32_t kAlloyTagBytes = 8;

/**
 * One resident item: either a single line or a shared-tag pair of
 * spatially-adjacent lines compressed together.
 */
struct TadItem
{
    /** The line itself (single), or the even line of the pair. */
    LineAddr base = 0;
    bool is_pair = false;
    /** Validity of [0]=base and [1]=base^1 (singles use slot 0 only). */
    bool valid[2] = {false, false};
    bool dirty[2] = {false, false};
    /** Data-version payloads (see LineDataSource). */
    std::uint64_t payload[2] = {0, 0};
    /** Total compressed payload bytes of the item. */
    std::uint16_t data_bytes = 0;
    /** True when the item was installed via BAI indexing. */
    bool bai = false;
    /** LRU timestamp (larger = more recent). */
    std::uint64_t lru = 0;

    /** Number of valid logical lines in the item. */
    std::uint32_t
    lineCount() const
    {
        return (valid[0] ? 1u : 0u) + (valid[1] ? 1u : 0u);
    }

    /** True when the item holds @p line. */
    bool
    holds(LineAddr line) const
    {
        if (is_pair)
            return (line | 1) == (base | 1) && valid[line & 1];
        return valid[0] && base == line;
    }
};

/** Result of looking a line up within a set. */
struct TadLookup
{
    bool found = false;
    bool dirty = false;
    bool bai = false;
    /** True when the line lives inside a shared-tag pair item. */
    bool in_pair = false;
    std::uint64_t payload = 0;
    /** True when the spatial neighbor (line^1) is also in this set. */
    bool neighbor_present = false;
    std::uint64_t neighbor_payload = 0;
};

/** One compressed DRAM-cache set: items + byte/line accounting. */
class TadSet
{
  public:
    /**
     * @param budget_bytes Physical bytes the set provides (72 for the
     *        Alloy TAD; larger for associative organizations like SCC).
     * @param max_lines Logical-line cap (28 for the Alloy TAD format).
     * @param tag_bytes Bytes charged per (possibly shared) tag.
     */
    explicit TadSet(std::uint32_t budget_bytes = kTadSetBytes,
                    std::uint32_t max_lines = kTadMaxLines,
                    std::uint32_t tag_bytes = kTadTagBytes)
        : budget_bytes_(budget_bytes), max_lines_(max_lines),
          tag_bytes_(tag_bytes)
    {
    }

    /**
     * Bytes currently consumed by tags + payloads. Maintained
     * incrementally: fits() runs inside every install's eviction loop,
     * so the answer must not cost a scan of the items.
     */
    std::uint32_t bytesUsed() const { return bytes_used_; }

    /** Valid logical lines resident (incremental, like bytesUsed). */
    std::uint32_t lineCount() const { return line_count_; }

    /**
     * True when an item with @p extra_data payload bytes (plus one
     * tag) holding @p extra_lines lines would still fit.
     */
    bool
    fits(std::uint32_t extra_data, std::uint32_t extra_lines) const
    {
        return bytesUsed() + tag_bytes_ + extra_data <= budget_bytes_ &&
               lineCount() + extra_lines <= max_lines_;
    }

    /**
     * Look up @p line; also reports a co-resident spatial neighbor.
     * Inline (with find/contains below): these run on every cache
     * probe, and the scans are short enough that the call overhead
     * would rival the work.
     */
    TadLookup
    lookup(LineAddr line) const
    {
        // One key scan resolves both the line and its spatial
        // neighbor (they share a key; the neighbor is reported only
        // when the line itself is resident).
        TadLookup res;
        const LineAddr neighbor = line ^ 1;
        const std::uint64_t key = keyOf(line);
        const TadItem *it = nullptr;
        const TadItem *nb = nullptr;
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != key)
                continue;
            const TadItem &cand = items_[i];
            if (!it && cand.holds(line))
                it = &cand;
            if (!nb && cand.holds(neighbor))
                nb = &cand;
            if (it && nb)
                break;
        }
        if (!it)
            return res;

        const std::uint32_t slot = it->is_pair ? (line & 1) : 0;
        res.found = true;
        res.dirty = it->dirty[slot];
        res.bai = it->bai;
        res.in_pair = it->is_pair;
        res.payload = it->payload[slot];

        if (nb) {
            const std::uint32_t nslot = nb->is_pair ? (neighbor & 1) : 0;
            res.neighbor_present = true;
            res.neighbor_payload = nb->payload[nslot];
        }
        return res;
    }

    /** True when @p line is resident. */
    bool contains(LineAddr line) const { return find(line) != nullptr; }

    /** Refresh LRU state of the item holding @p line. */
    void
    touch(LineAddr line, std::uint64_t lru_stamp)
    {
        if (TadItem *it = find(line))
            it->lru = lru_stamp;
    }

    /** Mark a resident line dirty and replace its payload. */
    bool
    markDirty(LineAddr line, std::uint64_t payload)
    {
        TadItem *it = find(line);
        if (!it)
            return false;
        const std::uint32_t slot = it->is_pair ? (line & 1) : 0;
        it->dirty[slot] = true;
        it->payload[slot] = payload;
        return true;
    }

    /**
     * Remove @p line. A pair containing it keeps its other half (the
     * item reverts to a single with @p remaining_bytes payload bytes).
     * @return the removed line's state when it was dirty.
     */
    std::optional<EvictedLine> remove(LineAddr line,
                                      std::uint32_t remaining_bytes);

    /**
     * Evict the least-recently-used whole item, never the item holding
     * @p protect. Dirty halves are appended to @p writebacks.
     * @return false when nothing evictable remains.
     */
    bool evictLru(LineAddr protect, WritebackList &writebacks);

    /** Insert a single-line item; caller must have made room. */
    void insertSingle(LineAddr line, std::uint32_t data_bytes, bool dirty,
                      std::uint64_t payload, bool bai,
                      std::uint64_t lru_stamp);

    /**
     * Insert (or replace the singles with) a shared-tag pair for lines
     * (base, base^1); caller must have made room *after* accounting for
     * the removal of any existing singles of the pair.
     */
    void insertPair(LineAddr base, std::uint32_t data_bytes,
                    bool dirty0, std::uint64_t payload0, bool dirty1,
                    std::uint64_t payload1, bool bai,
                    std::uint64_t lru_stamp);

    const std::vector<TadItem> &items() const { return items_; }

  private:
    TadItem *
    find(LineAddr line)
    {
        const std::uint64_t key = keyOf(line);
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == key && items_[i].holds(line))
                return &items_[i];
        }
        return nullptr;
    }

    const TadItem *
    find(LineAddr line) const
    {
        return const_cast<TadSet *>(this)->find(line);
    }

    /** Scan key of an item: a line and its pair neighbor share one. */
    static std::uint64_t
    keyOf(LineAddr line)
    {
        return line >> 1;
    }

    std::uint32_t budget_bytes_;
    std::uint32_t max_lines_;
    std::uint32_t tag_bytes_;
    std::uint32_t bytes_used_ = 0;
    std::uint32_t line_count_ = 0;
    std::vector<TadItem> items_;
    /**
     * items_[i].base >> 1, kept in lockstep with items_. Residency
     * scans run over this dense array (8 B per item, one compare per
     * item) instead of striding through 48-B TadItems; only the rare
     * key match touches the item itself.
     */
    std::vector<std::uint64_t> keys_;
};

} // namespace dice

#endif // DICE_CORE_TAD_HPP
