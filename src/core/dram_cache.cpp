#include "dram_cache.hpp"

namespace dice
{

void
DramCache::resetStats()
{
    read_hits_ = read_misses_ = extra_lines_ = installs_ = 0;
    device_.resetStats();
}

double
DramCache::hitRate() const
{
    const std::uint64_t total = read_hits_ + read_misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(read_hits_) /
                            static_cast<double>(total);
}

StatGroup
DramCache::stats() const
{
    StatGroup g(organization());
    g.addFormula("read_hits", [this]() { return double(read_hits_); });
    g.addFormula("read_misses", [this]() { return double(read_misses_); });
    g.addFormula("hit_rate", [this]() { return hitRate(); });
    g.addFormula("extra_lines", [this]() { return double(extra_lines_); });
    g.addFormula("installs", [this]() { return double(installs_); });
    g.addFormula("valid_lines", [this]() { return double(validLines()); });
    return g;
}

} // namespace dice
