#include "banshee.hpp"

#include "common/log.hpp"

namespace dice
{

BansheeCache::BansheeCache(const DramCacheConfig &config,
                           const BansheeL4Params &params, std::string name)
    : DramCache(config, std::move(name)), params_(params),
      page_lines_(params.page_bytes / kLineSize),
      rows_per_page_(params.page_bytes > config.timing.row_bytes
                         ? params.page_bytes / config.timing.row_bytes
                         : 1),
      lines_per_row_(config.timing.row_bytes / kLineSize),
      num_sets_(config.capacity / params.page_bytes / params.ways),
      candidates_(/*expected_keys=*/1 << 14)
{
    dice_assert(params.page_bytes % kLineSize == 0 && page_lines_ > 0,
                "page size %u is not a multiple of the line size",
                params.page_bytes);
    dice_assert(page_lines_ <= 64,
                "page of %u lines exceeds the 64-line dirty bitmask",
                page_lines_);
    dice_assert(params.ways > 0, "Banshee needs at least one way");
    dice_assert(num_sets_ > 0, "Banshee cache smaller than one set");

    const std::size_t frames = num_sets_ * params_.ways;
    tags_.assign(frames, 0);
    valid_.assign(frames, 0);
    counters_.assign(frames, 0);
    dirty_.assign(frames, 0);
    payloads_.assign(frames * page_lines_, 0);
}

std::uint32_t
BansheeCache::findWay(std::uint32_t set, std::uint64_t page) const
{
    for (std::uint32_t way = 0; way < params_.ways; ++way) {
        const std::uint32_t frame = frameOf(set, way);
        if (valid_[frame] && tags_[frame] == page)
            return way;
    }
    return params_.ways;
}

DramCoord
BansheeCache::frameCoord(std::uint32_t frame,
                         std::uint32_t row_in_page) const
{
    const DramTiming &t = device_.timing();
    const std::uint64_t global_row =
        std::uint64_t{frame} * rows_per_page_ + row_in_page;
    DramCoord c;
    c.channel = static_cast<std::uint32_t>(global_row % t.channels);
    c.bank = static_cast<std::uint32_t>((global_row / t.channels) %
                                        t.banks_per_channel);
    c.row = global_row /
            (static_cast<std::uint64_t>(t.channels) * t.banks_per_channel);
    return c;
}

void
BansheeCache::bumpResident(std::uint32_t set, std::uint32_t way)
{
    std::uint32_t &c = counters_[frameOf(set, way)];
    if (c < params_.counter_max) {
        ++c;
        return;
    }
    // Aging: a saturated set halves together, preserving relative heat
    // while letting new candidates catch up.
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        counters_[frameOf(set, w)] /= 2;
}

L4ReadResult
BansheeCache::read(LineAddr line, Cycle now)
{
    const std::uint64_t page = pageOf(line);
    const std::uint32_t set = setOf(page);
    const std::uint32_t way = findWay(set, page);

    L4ReadResult res;
    if (way == params_.ways) {
        // Tags live with the page tables (SRAM side): the miss verdict
        // is immediate and costs no DRAM-cache traffic.
        res.dram_accesses = 0;
        res.done = now + config_.controller_latency;
        ++read_misses_;
        return res;
    }

    const std::uint32_t frame = frameOf(set, way);
    const auto off = static_cast<std::uint32_t>(line % page_lines_);
    const DramResult dr =
        device_.access(frameCoord(frame, off / lines_per_row_), kLineSize,
                       now, AccessKind::DemandRead);
    bumpResident(set, way);

    res.hit = true;
    res.done = dr.done + config_.controller_latency;
    res.payload = payloads_[std::size_t{frame} * page_lines_ + off];
    ++read_hits_;
    return res;
}

L4WriteResult
BansheeCache::install(LineAddr line, std::uint64_t payload, bool dirty,
                      Cycle now, bool after_read_miss)
{
    (void)after_read_miss; // probes are SRAM-side: nothing was streamed
    ++installs_;

    const std::uint64_t page = pageOf(line);
    const std::uint32_t set = setOf(page);
    const auto off = static_cast<std::uint32_t>(line % page_lines_);

    L4WriteResult res;
    res.dram_accesses = 0;

    const std::uint32_t hit_way = findWay(set, page);
    if (hit_way != params_.ways) {
        // Resident page: in-place line update.
        const std::uint32_t frame = frameOf(set, hit_way);
        payloads_[std::size_t{frame} * page_lines_ + off] = payload;
        if (dirty)
            dirty_[frame] |= std::uint64_t{1} << off;
        device_.access(frameCoord(frame, off / lines_per_row_), kLineSize,
                       now, AccessKind::PostedWrite);
        res.dram_accesses = 1;
        bumpResident(set, hit_way);
        return res;
    }

    // Candidate heat: every touch of a missing page counts toward its
    // eventual admission.
    std::uint32_t cand_count;
    {
        std::uint32_t &c = candidates_[page];
        if (c < params_.counter_max)
            ++c;
        cand_count = c;
    }

    // Victim: any invalid way, else the coldest counter.
    std::uint32_t victim = 0;
    bool have_invalid = false;
    for (std::uint32_t way = 0; way < params_.ways; ++way) {
        const std::uint32_t frame = frameOf(set, way);
        if (!valid_[frame]) {
            victim = way;
            have_invalid = true;
            break;
        }
        if (counters_[frame] < counters_[frameOf(set, victim)])
            victim = way;
    }

    const std::uint32_t frame = frameOf(set, victim);
    const bool admit =
        have_invalid ||
        cand_count > counters_[frame] + params_.replace_margin;
    if (!admit) {
        // Bandwidth-aware bypass: the page is not hot enough to pay a
        // full page fill. A dirty line flows through to main memory.
        res.bypassed = true;
        ++fills_bypassed_;
        if (dirty)
            res.writebacks.push_back(EvictedLine{line, true, payload});
        return res;
    }

    if (!have_invalid) {
        const std::uint64_t old_page = tags_[frame];
        std::uint64_t d = dirty_[frame];
        for (; d != 0; d &= d - 1) {
            const auto o =
                static_cast<std::uint32_t>(__builtin_ctzll(d));
            res.writebacks.push_back(EvictedLine{
                old_page * page_lines_ + o, true,
                payloads_[std::size_t{frame} * page_lines_ + o]});
        }
        // The loser keeps half its heat so it can contend again
        // without immediately thrashing the set.
        candidates_[old_page] = counters_[frame] / 2;
        ++pages_evicted_;
        --resident_pages_;
    }

    candidates_.erase(page);
    tags_[frame] = page;
    valid_[frame] = 1;
    counters_[frame] = cand_count;
    dirty_[frame] = 0;
    ++resident_pages_;
    ++pages_admitted_;

    payloads_[std::size_t{frame} * page_lines_ + off] = payload;
    if (dirty)
        dirty_[frame] |= std::uint64_t{1} << off;

    // The demand line arrived with the install; the rest of the page
    // streams from main memory (the system charges that traffic and
    // calls completeFill per line) ...
    res.fill_fetches.reserve(page_lines_ - 1);
    const LineAddr base = page * page_lines_;
    for (std::uint32_t o = 0; o < page_lines_; ++o) {
        if (o != off)
            res.fill_fetches.push_back(base + o);
    }
    page_fill_lines_ += page_lines_ - 1;

    // ... and the whole page is written into the cache rows as posted
    // row-sized bursts — the fill bandwidth Banshee's filter rations.
    const std::uint32_t chunk_bytes =
        params_.page_bytes / rows_per_page_;
    for (std::uint32_t r = 0; r < rows_per_page_; ++r) {
        device_.access(frameCoord(frame, r), chunk_bytes, now,
                       AccessKind::PostedWrite);
        ++res.dram_accesses;
    }
    return res;
}

void
BansheeCache::completeFill(LineAddr line, std::uint64_t payload, Cycle now)
{
    (void)now;
    const std::uint64_t page = pageOf(line);
    const std::uint32_t way = findWay(setOf(page), page);
    dice_assert(way != params_.ways,
                "completeFill of a line whose page is not resident");
    const std::uint32_t frame = frameOf(setOf(page), way);
    const auto off = static_cast<std::uint32_t>(line % page_lines_);
    payloads_[std::size_t{frame} * page_lines_ + off] = payload;
}

bool
BansheeCache::contains(LineAddr line) const
{
    const std::uint64_t page = pageOf(line);
    return findWay(setOf(page), page) != params_.ways;
}

std::uint64_t
BansheeCache::validLines() const
{
    return resident_pages_ * page_lines_;
}

void
BansheeCache::resetStats()
{
    DramCache::resetStats();
    pages_admitted_ = pages_evicted_ = 0;
    fills_bypassed_ = page_fill_lines_ = 0;
}

StatGroup
BansheeCache::stats() const
{
    StatGroup g = DramCache::stats();
    g.addFormula("pages_admitted",
                 [this]() { return double(pages_admitted_); });
    g.addFormula("pages_evicted",
                 [this]() { return double(pages_evicted_); });
    g.addFormula("fills_bypassed",
                 [this]() { return double(fills_bypassed_); });
    g.addFormula("page_fill_lines",
                 [this]() { return double(page_fill_lines_); });
    g.addFormula("candidate_pages",
                 [this]() { return double(candidates_.size()); });
    return g;
}

} // namespace dice
