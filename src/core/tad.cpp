#include "tad.hpp"

#include <cstring>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace dice
{

TadSet::TadSet(const TadSet &other)
    : budget_bytes_(other.budget_bytes_), max_lines_(other.max_lines_),
      tag_bytes_(other.tag_bytes_), bytes_used_(other.bytes_used_),
      line_count_(other.line_count_), n_(other.n_)
{
    if (other.block_) {
        block_ = std::make_unique<std::uint64_t[]>(blockWords());
        std::memcpy(block_.get(), other.block_.get(),
                    blockWords() * sizeof(std::uint64_t));
    }
}

TadSet &
TadSet::operator=(const TadSet &other)
{
    if (this != &other) {
        TadSet copy(other);
        *this = std::move(copy);
    }
    return *this;
}

void
TadSet::ensureStorage()
{
    if (!block_)
        block_ = std::make_unique<std::uint64_t[]>(blockWords());
}

void
TadSet::eraseAt(std::uint32_t i)
{
    const std::uint32_t tail = n_ - i - 1;
    if (tail != 0) {
        std::memmove(keys() + i, keys() + i + 1,
                     tail * sizeof(std::uint64_t));
        std::memmove(lru() + i, lru() + i + 1,
                     tail * sizeof(std::uint64_t));
        std::memmove(payloads() + i, payloads() + i + 1,
                     tail * sizeof(PayloadPair));
        std::memmove(dataBytes() + i, dataBytes() + i + 1,
                     tail * sizeof(std::uint16_t));
        std::memmove(flags() + i, flags() + i + 1, tail);
    }
    --n_;
}

std::optional<EvictedLine>
TadSet::remove(LineAddr line, std::uint32_t remaining_bytes)
{
    const std::uint32_t i = findIndex(line);
    if (i == n_)
        return std::nullopt;
    return removeAt(i, line, remaining_bytes);
}

std::optional<EvictedLine>
TadSet::removeAt(std::uint32_t i, LineAddr line,
                 std::uint32_t remaining_bytes)
{
    dice_assert(i < n_ && holdsAt(i, line), "removeAt of absent line");

    std::optional<EvictedLine> out;
    const std::uint8_t f = flags()[i];
    if (!(f & kPair)) {
        if (f & kDirty0)
            out = EvictedLine{baseOf(i), true, payloads()[i].p[0]};
        bytes_used_ -= tag_bytes_ + dataBytes()[i];
        --line_count_;
        eraseAt(i);
        return out;
    }

    const auto slot = static_cast<std::uint32_t>(line & 1);
    if (f & dirtyBit(slot))
        out = EvictedLine{line, true, payloads()[i].p[slot]};
    flags()[i] &= static_cast<std::uint8_t>(
        ~(validBit(slot) | dirtyBit(slot)));
    --line_count_;

    const std::uint32_t other = slot ^ 1u;
    if (!(flags()[i] & validBit(other))) {
        bytes_used_ -= tag_bytes_ + dataBytes()[i];
        eraseAt(i);
        return out;
    }
    // The pair's payload shrinks to the survivor's single-line size.
    bytes_used_ += remaining_bytes;
    bytes_used_ -= dataBytes()[i];
    // The survivor becomes a single-line item (same key, same LRU).
    const bool survivor_dirty = (flags()[i] & dirtyBit(other)) != 0;
    std::uint8_t nf = kValid0;
    if (survivor_dirty)
        nf |= kDirty0;
    if (flags()[i] & kBai)
        nf |= kBai;
    if (other != 0)
        nf |= kOdd;
    flags()[i] = nf;
    payloads()[i].p[0] = payloads()[i].p[other];
    payloads()[i].p[1] = 0;
    dataBytes()[i] = static_cast<std::uint16_t>(remaining_bytes);
    return out;
}

bool
TadSet::evictLru(LineAddr protect, WritebackList &writebacks)
{
    const std::uint32_t n = n_;

    // At most one item is unevictable: the one holding `protect`, or
    // the pair over `protect`'s key (which may only be skipped, never
    // split). Those share one key, and a pair excludes co-resident
    // singles of its key, so a single key scan finds the one skip.
    std::uint32_t skip = n;
    std::uint64_t m = simd::matchMaskU64(keys(), n, keyOf(protect));
    for (; m != 0; m &= m - 1) {
        const auto i = static_cast<std::uint32_t>(__builtin_ctzll(m));
        if ((flags()[i] & kPair) || holdsAt(i, protect)) {
            skip = i;
            break;
        }
    }

    const std::size_t victim = simd::minIndexU64(lru(), n, skip);
    if (victim == n)
        return false;

    const std::uint8_t f = flags()[victim];
    const LineAddr base = baseOf(static_cast<std::uint32_t>(victim));
    std::uint32_t valid_lines = 0;
    for (std::uint32_t slot = 0; slot < 2; ++slot) {
        if (!(f & validBit(slot)))
            continue;
        ++valid_lines;
        if (f & dirtyBit(slot)) {
            writebacks.push_back(EvictedLine{
                base | slot, true, payloads()[victim].p[slot]});
        }
    }
    bytes_used_ -= tag_bytes_ + dataBytes()[victim];
    line_count_ -= valid_lines;
    eraseAt(static_cast<std::uint32_t>(victim));
    return true;
}

void
TadSet::insertSingle(LineAddr line, std::uint32_t data_bytes, bool dirty,
                     std::uint64_t payload, bool bai,
                     std::uint64_t lru_stamp)
{
    // Uniqueness (no duplicate resident line) is the caller's contract;
    // auditStorage() checks it off the hot path.
    dice_assert(n_ < capacity(), "set overfull: %u items", n_ + 1);
    ensureStorage();
    std::uint8_t f = kValid0;
    if (dirty)
        f |= kDirty0;
    if (bai)
        f |= kBai;
    if (line & 1)
        f |= kOdd;
    const std::uint32_t i = n_++;
    keys()[i] = keyOf(line);
    lru()[i] = lru_stamp;
    payloads()[i] = PayloadPair{{payload, 0}};
    dataBytes()[i] = static_cast<std::uint16_t>(data_bytes);
    flags()[i] = f;
    bytes_used_ += tag_bytes_ + data_bytes;
    ++line_count_;

    dice_assert(bytes_used_ <= budget_bytes_, "set overfull: %u bytes",
                bytes_used_);
    dice_assert(line_count_ <= max_lines_, "set overfull: %u lines",
                line_count_);
}

void
TadSet::insertPair(LineAddr base, std::uint32_t data_bytes, bool dirty0,
                   std::uint64_t payload0, bool dirty1,
                   std::uint64_t payload1, bool bai,
                   std::uint64_t lru_stamp)
{
    dice_assert((base & 1) == 0, "pair base must be even");
    // Uniqueness (no duplicate resident line) is the caller's contract;
    // auditStorage() checks it off the hot path.
    dice_assert(n_ < capacity(), "set overfull: %u items", n_ + 1);
    ensureStorage();
    std::uint8_t f = kPair | kValid0 | kValid1;
    if (dirty0)
        f |= kDirty0;
    if (dirty1)
        f |= kDirty1;
    if (bai)
        f |= kBai;
    const std::uint32_t i = n_++;
    keys()[i] = keyOf(base);
    lru()[i] = lru_stamp;
    payloads()[i] = PayloadPair{{payload0, payload1}};
    dataBytes()[i] = static_cast<std::uint16_t>(data_bytes);
    flags()[i] = f;
    bytes_used_ += tag_bytes_ + data_bytes;
    line_count_ += 2;

    dice_assert(bytes_used_ <= budget_bytes_, "set overfull: %u bytes",
                bytes_used_);
    dice_assert(line_count_ <= max_lines_, "set overfull: %u lines",
                line_count_);
}

bool
TadSet::auditStorage() const
{
    if (n_ > capacity() || (n_ != 0 && !block_))
        return false;

    const std::uint32_t payload_bytes = simd::sumU16(dataBytes(), n_);
    const std::uint32_t bytes = payload_bytes + tag_bytes_ * n_;
    std::uint32_t lines = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
        const std::uint8_t f = flags()[i];
        lines += popcount64(f & (kValid0 | kValid1));
        // Items must hold at least one valid line; singles keep theirs
        // in slot 0 and pairs keep an even base (kOdd clear).
        if (!(f & (kValid0 | kValid1)))
            return false;
        if (!(f & kPair) && ((f & kValid1) || !(f & kValid0)))
            return false;
        if ((f & kPair) && (f & kOdd))
            return false;
        // No line may be resident twice: items sharing a key must be
        // singles of opposite halves (a pair claims both halves).
        for (std::uint32_t j = 0; j < i; ++j) {
            if (keys()[j] != keys()[i])
                continue;
            const std::uint8_t g = flags()[j];
            if ((f & kPair) || (g & kPair))
                return false;
            if ((f & kOdd) == (g & kOdd))
                return false;
        }
    }
    return bytes == bytes_used_ && lines == line_count_ &&
           bytes_used_ <= budget_bytes_ && line_count_ <= max_lines_;
}

} // namespace dice
