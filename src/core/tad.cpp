#include "tad.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dice
{

std::optional<EvictedLine>
TadSet::remove(LineAddr line, std::uint32_t remaining_bytes)
{
    const std::uint64_t key = keyOf(line);
    for (std::size_t i = 0; i < items_.size(); ++i) {
        TadItem &it = items_[i];
        if (keys_[i] != key || !it.holds(line))
            continue;

        std::optional<EvictedLine> out;
        if (!it.is_pair) {
            if (it.dirty[0])
                out = EvictedLine{it.base, true, it.payload[0]};
            bytes_used_ -= tag_bytes_ + it.data_bytes;
            --line_count_;
            items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
            keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(i));
            return out;
        }

        const std::uint32_t slot = line & 1;
        if (it.dirty[slot])
            out = EvictedLine{line, true, it.payload[slot]};
        it.valid[slot] = false;
        it.dirty[slot] = false;
        --line_count_;

        const std::uint32_t other = slot ^ 1;
        if (!it.valid[other]) {
            bytes_used_ -= tag_bytes_ + it.data_bytes;
            items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
            keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(i));
            return out;
        }
        // The pair's payload shrinks to the survivor's single-line size.
        bytes_used_ += remaining_bytes;
        bytes_used_ -= it.data_bytes;
        // The survivor becomes a single-line item.
        TadItem single;
        single.base = it.base | other;
        single.is_pair = false;
        single.valid[0] = true;
        single.dirty[0] = it.dirty[other];
        single.payload[0] = it.payload[other];
        single.data_bytes = static_cast<std::uint16_t>(remaining_bytes);
        single.bai = it.bai;
        single.lru = it.lru;
        items_[i] = single;
        return out;
    }
    return std::nullopt;
}

bool
TadSet::evictLru(LineAddr protect, WritebackList &writebacks)
{
    std::size_t victim = items_.size();
    for (std::size_t i = 0; i < items_.size(); ++i) {
        if (items_[i].holds(protect))
            continue;
        if (items_[i].is_pair && (protect | 1) == (items_[i].base | 1))
            continue; // Never split the protected line's own pair item.
        if (victim == items_.size() || items_[i].lru < items_[victim].lru)
            victim = i;
    }
    if (victim == items_.size())
        return false;

    const TadItem &it = items_[victim];
    for (std::uint32_t slot = 0; slot < 2; ++slot) {
        if (it.valid[slot] && it.dirty[slot]) {
            writebacks.push_back(
                EvictedLine{it.base | slot, true, it.payload[slot]});
        }
    }
    bytes_used_ -= tag_bytes_ + it.data_bytes;
    line_count_ -= it.lineCount();
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(victim));
    keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(victim));
    return true;
}

void
TadSet::insertSingle(LineAddr line, std::uint32_t data_bytes, bool dirty,
                     std::uint64_t payload, bool bai,
                     std::uint64_t lru_stamp)
{
    dice_assert(!contains(line), "insertSingle of resident line");
    TadItem it;
    it.base = line;
    it.is_pair = false;
    it.valid[0] = true;
    it.dirty[0] = dirty;
    it.payload[0] = payload;
    it.data_bytes = static_cast<std::uint16_t>(data_bytes);
    it.bai = bai;
    it.lru = lru_stamp;
    items_.push_back(it);
    keys_.push_back(keyOf(line));
    bytes_used_ += tag_bytes_ + data_bytes;
    ++line_count_;

    dice_assert(bytes_used_ <= budget_bytes_, "set overfull: %u bytes",
                bytes_used_);
    dice_assert(line_count_ <= max_lines_, "set overfull: %u lines",
                line_count_);
}

void
TadSet::insertPair(LineAddr base, std::uint32_t data_bytes, bool dirty0,
                   std::uint64_t payload0, bool dirty1,
                   std::uint64_t payload1, bool bai,
                   std::uint64_t lru_stamp)
{
    dice_assert((base & 1) == 0, "pair base must be even");
    dice_assert(!contains(base) && !contains(base | 1),
                "insertPair over resident lines");
    TadItem it;
    it.base = base;
    it.is_pair = true;
    it.valid[0] = it.valid[1] = true;
    it.dirty[0] = dirty0;
    it.dirty[1] = dirty1;
    it.payload[0] = payload0;
    it.payload[1] = payload1;
    it.data_bytes = static_cast<std::uint16_t>(data_bytes);
    it.bai = bai;
    it.lru = lru_stamp;
    items_.push_back(it);
    keys_.push_back(keyOf(base));
    bytes_used_ += tag_bytes_ + data_bytes;
    line_count_ += 2;

    dice_assert(bytes_used_ <= budget_bytes_, "set overfull: %u bytes",
                bytes_used_);
    dice_assert(line_count_ <= max_lines_, "set overfull: %u lines",
                line_count_);
}

} // namespace dice
