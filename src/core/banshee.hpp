/**
 * @file
 * Banshee-style page-granularity DRAM cache (Yu et al., MICRO 2017 —
 * see PAPERS.md): the bandwidth-efficiency competitor to
 * line-granularity designs like Alloy/DICE.
 *
 * Model:
 *
 *  - The cache is organized as set-associative 4-KiB page frames. Page
 *    tags live with the page-table/TLB entries (SRAM side), so a probe
 *    costs no DRAM traffic at all: a hit issues exactly one 64-B data
 *    access and a miss is known immediately — Banshee's headline win
 *    over tag-in-DRAM designs.
 *
 *  - Replacement is frequency-based and bandwidth-aware. Every page
 *    (resident or not) accrues a saturating frequency counter;
 *    a missing page displaces the coldest resident way only when its
 *    counter exceeds the victim's by more than a margin, because a
 *    page replacement costs a full page of fill bandwidth. Counters
 *    age by halving a set when a resident counter saturates.
 *
 *  - Admitting a page streams the whole page: the demand line's
 *    payload arrives with the install, the remaining lines are
 *    requested from main memory through L4WriteResult::fill_fetches
 *    (the system charges the DDR traffic and hands payloads back via
 *    completeFill()), and the page write into the cache rows is
 *    charged to this device as posted row-sized bursts. This fill
 *    bloat is exactly what the bandwidth-aware filter exists to
 *    limit.
 *
 *  - A declined install (bypass) forwards a dirty line straight to
 *    main memory via the writeback list; clean bypasses cost nothing.
 */

#ifndef DICE_CORE_BANSHEE_HPP
#define DICE_CORE_BANSHEE_HPP

#include <vector>

#include "common/flat_map.hpp"
#include "core/dram_cache.hpp"
#include "core/l4_registry.hpp"

namespace dice
{

/** Page-granularity Banshee-style DRAM cache. */
class BansheeCache : public DramCache
{
  public:
    BansheeCache(const DramCacheConfig &config,
                 const BansheeL4Params &params,
                 std::string name = "banshee_l4");

    L4ReadResult read(LineAddr line, Cycle now) override;
    L4WriteResult install(LineAddr line, std::uint64_t payload, bool dirty,
                          Cycle now, bool after_read_miss) override;
    void completeFill(LineAddr line, std::uint64_t payload,
                      Cycle now) override;
    bool contains(LineAddr line) const override;
    std::uint64_t validLines() const override;
    const char *organization() const override { return "banshee"; }

    void resetStats() override;
    StatGroup stats() const override;

    /** Whole-page admissions / evictions (white-box for tests). */
    std::uint64_t pagesAdmitted() const { return pages_admitted_; }
    std::uint64_t pagesEvicted() const { return pages_evicted_; }
    /** Installs the bandwidth-aware filter declined. */
    std::uint64_t fillsBypassed() const { return fills_bypassed_; }
    /** Non-demand lines streamed from memory by page fills. */
    std::uint64_t pageFillLines() const { return page_fill_lines_; }

  private:
    std::uint64_t pageOf(LineAddr line) const { return line / page_lines_; }
    std::uint32_t setOf(std::uint64_t page) const
    {
        return static_cast<std::uint32_t>(page % num_sets_);
    }
    std::uint32_t frameOf(std::uint32_t set, std::uint32_t way) const
    {
        return set * params_.ways + way;
    }

    /** Way holding @p page in its set, or ways (absent). */
    std::uint32_t findWay(std::uint32_t set, std::uint64_t page) const;

    /** DRAM coordinates of row @p row_in_page of frame @p frame. */
    DramCoord frameCoord(std::uint32_t frame,
                         std::uint32_t row_in_page) const;

    /** Saturating bump of a resident counter, aging the set at max. */
    void bumpResident(std::uint32_t set, std::uint32_t way);

    BansheeL4Params params_;
    std::uint32_t page_lines_;
    std::uint32_t rows_per_page_;
    std::uint32_t lines_per_row_;
    std::uint64_t num_sets_;

    /** Per-frame SoA planes, indexed by frameOf(set, way). */
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint32_t> counters_;
    /** Per-frame dirty bitmask, one bit per line (page_lines <= 64). */
    std::vector<std::uint64_t> dirty_;
    /** Per-line payloads, frame-major ([frame * page_lines + off]). */
    std::vector<std::uint64_t> payloads_;

    /** Frequency counters of non-resident candidate pages. */
    FlatMap<std::uint64_t, std::uint32_t> candidates_;

    std::uint64_t resident_pages_ = 0;

    std::uint64_t pages_admitted_ = 0;
    std::uint64_t pages_evicted_ = 0;
    std::uint64_t fills_bypassed_ = 0;
    std::uint64_t page_fill_lines_ = 0;
};

} // namespace dice

#endif // DICE_CORE_BANSHEE_HPP
