#include "touche.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace dice
{

ToucheCache::ToucheCache(const DramCacheConfig &config,
                         const ToucheL4Params &params,
                         const LineDataSource &source, std::string name)
    : DramCache(config, std::move(name)), params_(params),
      indexer_(floorLog2(config.capacity / kLineSize)),
      mapper_(config.timing), source_(source),
      sig_mask_((params.signature_bits >= 32
                     ? ~std::uint32_t{0}
                     : (std::uint32_t{1} << params.signature_bits) - 1)),
      sets_(config.capacity / kLineSize,
            TadSet(kTadSetBytes, kTadMaxLines,
                   /*tag_bytes=*/kSignatureTagBytes))
{
    dice_assert(isPowerOfTwo(config.capacity / kLineSize),
                "Touché cache needs a power-of-two set count");
    dice_assert(params.signature_bits > 0 && params.signature_bits <= 32,
                "signature width %u out of range",
                params.signature_bits);
}

std::uint32_t
ToucheCache::signatureOf(LineAddr line) const
{
    return static_cast<std::uint32_t>(mix64(line)) & sig_mask_;
}

bool
ToucheCache::aliased(const TadSet &set, LineAddr line) const
{
    const std::uint32_t sig = signatureOf(line);
    const std::uint32_t n = set.itemCount();
    for (std::uint32_t i = 0; i < n; ++i) {
        const LineAddr resident = set.itemLine(i);
        if (resident != line && signatureOf(resident) == sig)
            return true;
    }
    return false;
}

std::uint32_t
ToucheCache::sizeOf(LineAddr line, std::uint64_t payload) const
{
    const std::uint64_t key = mix64(line, payload);
    if (const std::uint32_t *hit = size_cache_.find(key))
        return *hit;
    const std::uint32_t size =
        codec_.compressedSizeBytes(source_.bytes(line, payload));
    size_cache_.put(key, size);
    return size;
}

L4ReadResult
ToucheCache::read(LineAddr line, Cycle now)
{
    const std::uint64_t set_idx = indexer_.tsi(line);
    TadSet &set = sets_[set_idx];

    L4ReadResult res;
    // The 80-B Alloy-style burst streams the TAD and its signature
    // array; whether anything *might* match is known from that alone.
    const DramResult probe = device_.access(mapper_.coord(set_idx), 80,
                                            now, AccessKind::DemandRead);
    res.dram_accesses = 1;
    Cycle data_done = probe.done;

    const TadLookup lk = set.lookup(line);

    // An aliasing signature (another resident item hashing like this
    // line) forces a residual-tag verification burst before the
    // hit/miss verdict is trustworthy — signature collisions cost
    // DRAM-cache bandwidth and latency.
    if (aliased(set, line)) {
        ++alias_checks_;
        const DramResult verify =
            device_.access(mapper_.coord(set_idx), kVerifyBytes,
                           data_done, AccessKind::DemandRead);
        data_done = verify.done;
        ++res.dram_accesses;
        if (!lk.found)
            ++false_positives_;
    }

    if (!lk.found) {
        res.done = data_done + config_.controller_latency;
        ++read_misses_;
        return res;
    }

    res.hit = true;
    res.done = data_done + config_.controller_latency +
               config_.decompression_latency;
    res.payload = lk.payload;
    set.touchAt(lk.item, ++lru_clock_);
    ++read_hits_;
    return res;
}

L4WriteResult
ToucheCache::install(LineAddr line, std::uint64_t payload, bool dirty,
                     Cycle now, bool after_read_miss)
{
    ++installs_;
    const std::uint64_t set_idx = indexer_.tsi(line);
    TadSet &set = sets_[set_idx];

    L4WriteResult res;
    res.dram_accesses = 0;
    Cycle when = now;

    // Writebacks first read the target TAD to learn what is resident
    // (a fill after a read miss already streamed it).
    if (!after_read_miss) {
        const DramResult probe = device_.access(
            mapper_.coord(set_idx), 80, when, AccessKind::PostedRead);
        when = probe.done;
        ++res.dram_accesses;
    }

    const std::uint32_t lines_before = set.lineCount();
    const std::uint32_t size = sizeOf(line, payload);

    if (set.contains(line))
        set.remove(line, 0);
    while (!set.fits(size, 1)) {
        if (!set.evictLru(line, res.writebacks))
            dice_panic("Touché set cannot make room");
    }
    set.insertSingle(line, size, dirty, payload, false, ++lru_clock_);

    device_.access(mapper_.coord(set_idx), 72, when,
                   AccessKind::PostedWrite);
    ++res.dram_accesses;

    valid_lines_ += set.lineCount();
    valid_lines_ -= lines_before;
    return res;
}

bool
ToucheCache::contains(LineAddr line) const
{
    return sets_[indexer_.tsi(line)].contains(line);
}

std::uint64_t
ToucheCache::validLines() const
{
    return valid_lines_;
}

std::uint64_t
ToucheCache::bytesUsed() const
{
    std::uint64_t total = 0;
    for (const TadSet &set : sets_)
        total += set.bytesUsed();
    return total;
}

void
ToucheCache::resetStats()
{
    DramCache::resetStats();
    alias_checks_ = false_positives_ = 0;
}

StatGroup
ToucheCache::stats() const
{
    StatGroup g = DramCache::stats();
    g.addFormula("alias_checks",
                 [this]() { return double(alias_checks_); });
    g.addFormula("false_positives",
                 [this]() { return double(false_positives_); });
    return g;
}

} // namespace dice
