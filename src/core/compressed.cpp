#include "compressed.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace dice
{

const char *
policyName(CompressionPolicy policy)
{
    switch (policy) {
      case CompressionPolicy::TsiOnly:
        return "comp-tsi";
      case CompressionPolicy::NsiOnly:
        return "comp-nsi";
      case CompressionPolicy::BaiOnly:
        return "comp-bai";
      case CompressionPolicy::Dice:
        return "dice";
      default:
        return "?";
    }
}

CompressedDramCache::CompressedDramCache(
    const CompressedCacheConfig &config, const LineDataSource &source,
    std::string name)
    : DramCache(config.base, std::move(name)), cfg_(config),
      indexer_(floorLog2(config.base.capacity / kLineSize)),
      mapper_(config.base.timing), source_(source),
      cip_(config.cip_entries)
{
    dice_assert(isPowerOfTwo(config.base.capacity / kLineSize),
                "compressed cache needs a power-of-two set count");
    dice_assert(config.threshold_bytes <= kLineSize,
                "threshold %u exceeds line size", config.threshold_bytes);
}

const char *
CompressedDramCache::organization() const
{
    return policyName(cfg_.policy);
}

CompressedDramCache::Candidates
CompressedDramCache::readCandidates(LineAddr line) const
{
    Candidates c{};
    switch (cfg_.policy) {
      case CompressionPolicy::TsiOnly:
        c.primary = c.secondary = indexer_.tsi(line);
        c.primary_scheme = IndexScheme::TSI;
        c.single = true;
        return c;
      case CompressionPolicy::NsiOnly:
        c.primary = c.secondary = indexer_.nsi(line);
        c.primary_scheme = IndexScheme::NSI;
        c.single = true;
        return c;
      case CompressionPolicy::BaiOnly:
        c.primary = c.secondary = indexer_.bai(line);
        c.primary_scheme = IndexScheme::BAI;
        c.single = true;
        return c;
      case CompressionPolicy::Dice: {
        if (indexer_.baiInvariant(line)) {
            c.primary = c.secondary = indexer_.tsi(line);
            c.primary_scheme = IndexScheme::TSI;
            c.single = true;
            return c;
        }
        const IndexScheme predicted = cip_.predictRead(line);
        c.primary_scheme = predicted;
        c.primary = indexer_.set(line, predicted);
        c.secondary = SetIndexer::alternateSet(c.primary);
        c.single = false;
        return c;
      }
      default:
        dice_panic("bad policy");
    }
}

IndexScheme
CompressedDramCache::installScheme(LineAddr line, std::uint32_t size,
                                   bool &invariant) const
{
    invariant = false;
    switch (cfg_.policy) {
      case CompressionPolicy::TsiOnly:
        return IndexScheme::TSI;
      case CompressionPolicy::NsiOnly:
        return IndexScheme::NSI;
      case CompressionPolicy::BaiOnly:
        return IndexScheme::BAI;
      case CompressionPolicy::Dice:
        if (indexer_.baiInvariant(line)) {
            invariant = true;
            return IndexScheme::TSI; // TSI == BAI for this line.
        }
        return size <= cfg_.threshold_bytes ? IndexScheme::BAI
                                            : IndexScheme::TSI;
      default:
        dice_panic("bad policy");
    }
}

std::uint32_t
CompressedDramCache::sizeOf(LineAddr line, std::uint64_t payload) const
{
    // The memo is per cache instance, and a cache instance belongs to
    // exactly one System: concurrent Systems (the parallel bench
    // engine) each mutate their own memo, so no locking is needed.
    // The size-only codec route below performs no heap allocation.
    const std::uint64_t key = mix64(line, payload);
    const auto it = size_cache_.find(key);
    if (it != size_cache_.end())
        return it->second;
    const std::uint32_t size =
        codec_.compressedSizeBytes(source_.bytes(line, payload));
    size_cache_.emplace(key, size);
    return size;
}

L4ReadResult
CompressedDramCache::read(LineAddr line, Cycle now)
{
    const Candidates cand = readCandidates(line);

    L4ReadResult res;
    const DramResult probe1 = device_.access(mapper_.coord(cand.primary),
                                             readBytes(), now, false);
    res.dram_accesses = 1;

    auto finishHit = [&](std::uint64_t set_idx, const TadLookup &lk,
                         Cycle data_done) {
        res.hit = true;
        res.done = data_done + config_.controller_latency +
                   config_.decompression_latency;
        res.payload = lk.payload;
        if (lk.neighbor_present) {
            res.has_extra = true;
            res.extra_line = SetIndexer::spatialNeighbor(line);
            res.extra_payload = lk.neighbor_payload;
            ++extra_lines_;
        }
        sets_[set_idx].touch(line, ++lru_clock_);
        ++read_hits_;
    };

    const auto primary_it = sets_.find(cand.primary);
    TadLookup lk1;
    if (primary_it != sets_.end())
        lk1 = primary_it->second.lookup(line);

    if (lk1.found) {
        finishHit(cand.primary, lk1, probe1.done);
        if (!cand.single)
            cip_.updateRead(line, cand.primary_scheme);
        return res;
    }

    if (cand.single) {
        res.done = probe1.done + config_.controller_latency;
        ++read_misses_;
        return res;
    }

    // Two candidate locations. In Alloy mode the 8-B neighbor-tag burst
    // tells us for free whether the line sits in the alternate set; a
    // second access is issued only when it does. In KNL mode there is
    // no neighbor tag, so the controller issues a merged probe of the
    // alternate set whenever the first probe did not hit.
    const auto secondary_it = sets_.find(cand.secondary);
    TadLookup lk2;
    if (secondary_it != sets_.end())
        lk2 = secondary_it->second.lookup(line);

    const IndexScheme alternate_scheme =
        cand.primary_scheme == IndexScheme::BAI ? IndexScheme::TSI
                                                : IndexScheme::BAI;

    if (cfg_.knl_mode) {
        const DramResult probe2 = device_.access(
            mapper_.coord(cand.secondary), readBytes(), now, false);
        ++res.dram_accesses;
        if (lk2.found) {
            ++second_probes_;
            finishHit(cand.secondary, lk2,
                      std::max(probe1.done, probe2.done));
            cip_.updateRead(line, alternate_scheme);
            return res;
        }
        res.done = std::max(probe1.done, probe2.done) +
                   config_.controller_latency;
        ++read_misses_;
        return res;
    }

    if (lk2.found) {
        const DramResult probe2 = device_.access(
            mapper_.coord(cand.secondary), readBytes(), probe1.done,
            false);
        ++res.dram_accesses;
        ++second_probes_;
        finishHit(cand.secondary, lk2, probe2.done);
        cip_.updateRead(line, alternate_scheme);
        return res;
    }

    res.done = probe1.done + config_.controller_latency;
    ++read_misses_;
    return res;
}

void
CompressedDramCache::removeResident(TadSet &set, LineAddr line)
{
    const TadLookup lk = set.lookup(line);
    dice_assert(lk.found, "removeResident of absent line");
    std::uint32_t survivor_bytes = 0;
    if (lk.in_pair) {
        const LineAddr neighbor = SetIndexer::spatialNeighbor(line);
        const TadLookup nb = set.lookup(neighbor);
        dice_assert(nb.found, "pair without its other half");
        survivor_bytes = sizeOf(neighbor, nb.payload);
    }
    set.remove(line, survivor_bytes);
}

L4WriteResult
CompressedDramCache::install(LineAddr line, std::uint64_t payload,
                             bool dirty, Cycle now, bool after_read_miss)
{
    ++installs_;

    const std::uint32_t size = sizeOf(line, payload);
    bool invariant = false;
    const IndexScheme scheme = installScheme(line, size, invariant);
    const std::uint64_t target = indexer_.set(line, scheme);

    if (cfg_.policy == CompressionPolicy::Dice) {
        if (invariant) {
            ++installs_invariant_;
        } else if (scheme == IndexScheme::BAI) {
            ++installs_bai_;
        } else {
            ++installs_tsi_;
        }
    }

    L4WriteResult res;
    res.dram_accesses = 0;
    Cycle when = now;

    // Writebacks (and fills whose read probe went to the other set)
    // first read the target TAD to learn what is resident.
    if (!after_read_miss) {
        const DramResult probe =
            device_.access(mapper_.coord(target), readBytes(), when,
                           AccessKind::PostedRead);
        when = probe.done;
        ++res.dram_accesses;
    }

    const bool dual = cfg_.policy == CompressionPolicy::Dice && !invariant;
    if (dual) {
        // Score the size-based write predictor against where the line
        // actually was.
        const IndexScheme predicted =
            cip_.predictWrite(size, cfg_.threshold_bytes);
        IndexScheme actual = predicted;
        const std::uint64_t tsi_set = indexer_.tsi(line);
        const std::uint64_t bai_set = indexer_.bai(line);
        const auto tsi_it = sets_.find(tsi_set);
        const auto bai_it = sets_.find(bai_set);
        if (tsi_it != sets_.end() && tsi_it->second.contains(line)) {
            actual = IndexScheme::TSI;
        } else if (bai_it != sets_.end() &&
                   bai_it->second.contains(line)) {
            actual = IndexScheme::BAI;
        }
        cip_.scoreWrite(predicted, actual);

        // Scrub a stale copy from the alternate location so a line is
        // never valid under both indexings at once.
        const std::uint64_t other = SetIndexer::alternateSet(target);
        const auto other_it = sets_.find(other);
        if (other_it != sets_.end() && other_it->second.contains(line)) {
            removeResident(other_it->second, line);
            device_.access(mapper_.coord(other), 72, when, true);
            ++res.dram_accesses;
            ++duplicate_scrubs_;
        }

        cip_.train(line, scheme);
    }

    TadSet &set = sets_[target];

    // An update of a resident line is a remove + reinsert with the new
    // compressed size (its old copy is superseded, never written back).
    if (set.contains(line))
        removeResident(set, line);

    // Try to merge with the spatial neighbor into a shared-tag pair.
    const LineAddr neighbor = SetIndexer::spatialNeighbor(line);
    const TadLookup nb = set.lookup(neighbor);
    bool inserted = false;
    if (nb.found && cfg_.pair_compression) {
        const LineAddr base = SetIndexer::pairBase(line);
        const Line even_bytes = source_.bytes(
            base, (line & 1) == 0 ? payload : nb.payload);
        const Line odd_bytes = source_.bytes(
            base | 1, (line & 1) == 1 ? payload : nb.payload);
        const std::uint32_t pair_bytes =
            codec_.pairSizeBytes(even_bytes, odd_bytes);
        if (kTadTagBytes + pair_bytes <= kTadSetBytes) { // pair fits a TAD
            removeResident(set, neighbor);
            while (!set.fits(pair_bytes, 2)) {
                if (!set.evictLru(line, res.writebacks))
                    dice_panic("cannot make room for pair");
            }
            const bool even_is_new = (line & 1) == 0;
            set.insertPair(base, pair_bytes,
                           even_is_new ? dirty : nb.dirty,
                           even_is_new ? payload : nb.payload,
                           even_is_new ? nb.dirty : dirty,
                           even_is_new ? nb.payload : payload,
                           scheme == IndexScheme::BAI, ++lru_clock_);
            ++pair_installs_;
            inserted = true;
        }
    }

    if (!inserted) {
        while (!set.fits(size, 1)) {
            if (!set.evictLru(line, res.writebacks))
                dice_panic("cannot make room for line");
        }
        set.insertSingle(line, size, dirty, payload,
                         scheme == IndexScheme::BAI, ++lru_clock_);
    }

    device_.access(mapper_.coord(target), 72, when, true);
    ++res.dram_accesses;
    return res;
}

bool
CompressedDramCache::contains(LineAddr line) const
{
    for (const IndexScheme scheme :
         {IndexScheme::TSI, IndexScheme::NSI, IndexScheme::BAI}) {
        const auto it = sets_.find(indexer_.set(line, scheme));
        if (it != sets_.end() && it->second.contains(line))
            return true;
    }
    return false;
}

std::uint64_t
CompressedDramCache::validLines() const
{
    std::uint64_t total = 0;
    for (const auto &[idx, set] : sets_)
        total += set.lineCount();
    return total;
}

std::uint64_t
CompressedDramCache::bytesUsed() const
{
    std::uint64_t total = 0;
    for (const auto &[idx, set] : sets_)
        total += set.bytesUsed();
    return total;
}

void
CompressedDramCache::resetStats()
{
    DramCache::resetStats();
    installs_invariant_ = installs_bai_ = installs_tsi_ = 0;
    pair_installs_ = second_probes_ = duplicate_scrubs_ = 0;
    cip_.resetStats();
}

StatGroup
CompressedDramCache::stats() const
{
    StatGroup g = DramCache::stats();
    g.addFormula("installs_invariant",
                 [this]() { return double(installs_invariant_); });
    g.addFormula("installs_bai",
                 [this]() { return double(installs_bai_); });
    g.addFormula("installs_tsi",
                 [this]() { return double(installs_tsi_); });
    g.addFormula("pair_installs",
                 [this]() { return double(pair_installs_); });
    g.addFormula("second_probes",
                 [this]() { return double(second_probes_); });
    g.addFormula("duplicate_scrubs",
                 [this]() { return double(duplicate_scrubs_); });
    g.addFormula("cip_read_accuracy",
                 [this]() { return cip_.readAccuracy(); });
    g.addFormula("cip_write_accuracy",
                 [this]() { return cip_.writeAccuracy(); });
    return g;
}

} // namespace dice
