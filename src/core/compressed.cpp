#include "compressed.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace dice
{

const char *
policyName(CompressionPolicy policy)
{
    switch (policy) {
      case CompressionPolicy::TsiOnly:
        return "comp-tsi";
      case CompressionPolicy::NsiOnly:
        return "comp-nsi";
      case CompressionPolicy::BaiOnly:
        return "comp-bai";
      case CompressionPolicy::Dice:
        return "dice";
      default:
        return "?";
    }
}

CompressedDramCache::CompressedDramCache(
    const CompressedCacheConfig &config, const LineDataSource &source,
    std::string name)
    : DramCache(config.base, std::move(name)), cfg_(config),
      indexer_(floorLog2(config.base.capacity / kLineSize)),
      mapper_(config.base.timing), source_(source),
      cip_(config.cip_entries), sets_(config.base.capacity / kLineSize),
      trace_enabled_(decisionTraceEnabled())
{
    dice_assert(isPowerOfTwo(config.base.capacity / kLineSize),
                "compressed cache needs a power-of-two set count");
    dice_assert(config.threshold_bytes <= kLineSize,
                "threshold %u exceeds line size", config.threshold_bytes);
}

const char *
CompressedDramCache::organization() const
{
    return policyName(cfg_.policy);
}

CompressedDramCache::Candidates
CompressedDramCache::readCandidates(LineAddr line) const
{
    Candidates c{};
    switch (cfg_.policy) {
      case CompressionPolicy::TsiOnly:
        c.primary = c.secondary = indexer_.tsi(line);
        c.primary_scheme = IndexScheme::TSI;
        c.single = true;
        return c;
      case CompressionPolicy::NsiOnly:
        c.primary = c.secondary = indexer_.nsi(line);
        c.primary_scheme = IndexScheme::NSI;
        c.single = true;
        return c;
      case CompressionPolicy::BaiOnly:
        c.primary = c.secondary = indexer_.bai(line);
        c.primary_scheme = IndexScheme::BAI;
        c.single = true;
        return c;
      case CompressionPolicy::Dice: {
        if (indexer_.baiInvariant(line)) {
            c.primary = c.secondary = indexer_.tsi(line);
            c.primary_scheme = IndexScheme::TSI;
            c.single = true;
            return c;
        }
        const IndexScheme predicted = cip_.predictRead(line);
        c.primary_scheme = predicted;
        c.primary = indexer_.set(line, predicted);
        c.secondary = SetIndexer::alternateSet(c.primary);
        c.single = false;
        return c;
      }
      default:
        dice_panic("bad policy");
    }
}

IndexScheme
CompressedDramCache::installScheme(LineAddr line, std::uint32_t size,
                                   bool &invariant) const
{
    invariant = false;
    switch (cfg_.policy) {
      case CompressionPolicy::TsiOnly:
        return IndexScheme::TSI;
      case CompressionPolicy::NsiOnly:
        return IndexScheme::NSI;
      case CompressionPolicy::BaiOnly:
        return IndexScheme::BAI;
      case CompressionPolicy::Dice:
        if (indexer_.baiInvariant(line)) {
            invariant = true;
            return IndexScheme::TSI; // TSI == BAI for this line.
        }
        return size <= cfg_.threshold_bytes ? IndexScheme::BAI
                                            : IndexScheme::TSI;
      default:
        dice_panic("bad policy");
    }
}

std::uint32_t
CompressedDramCache::sizeOf(LineAddr line, std::uint64_t payload) const
{
    // The memo is per cache instance, and a cache instance belongs to
    // exactly one System: concurrent Systems (the parallel bench
    // engine) each mutate their own memo, so no locking is needed.
    // It is also bounded (collisions recompute, never grow) and the
    // size-only codec route below performs no heap allocation, so the
    // whole lookup path is allocation-free.
    const std::uint64_t key = mix64(line, payload);
    if (const std::uint32_t *hit = size_cache_.find(key))
        return *hit;
    const std::uint32_t size =
        codec_.compressedSizeBytes(source_.bytes(line, payload));
    size_cache_.put(key, size);
    return size;
}

std::uint32_t
CompressedDramCache::pairSizeOf(LineAddr base, std::uint64_t even_payload,
                                std::uint64_t odd_payload) const
{
    const std::uint64_t key =
        mix64(mix64(base, even_payload), odd_payload);
    if (const std::uint32_t *hit = pair_size_cache_.find(key))
        return *hit;

    // The single-line sizes usually sit in the size memo (the line
    // being installed was just sized; its neighbor was sized when it
    // arrived), so the joint pass only pays for the pair modes — and
    // when the independent sizes already beat every shared-base mode
    // (the smallest is B8D1's 24 B), the lines need not even be
    // synthesized. When they must be, each half is synthesized at most
    // once, shared between its memo-missed single sizing and the joint
    // pass; a pair neither sizing touched comes from one bytesPair
    // call so the source derives their common state once.
    Line lines[2];
    std::uint32_t have = 0; // bit h set: lines[h] synthesized
    const std::uint64_t payloads[2] = {even_payload, odd_payload};
    auto lineOf = [&](std::uint32_t h) -> const Line & {
        if (!(have & (1u << h))) {
            lines[h] = source_.bytes(base | h, payloads[h]);
            have |= 1u << h;
        }
        return lines[h];
    };
    const std::uint64_t half_keys[2] = {mix64(base, even_payload),
                                        mix64(base | 1, odd_payload)};
    std::uint32_t half_bytes[2];
    std::uint32_t missed = 0; // bit h set: size memo missed half h
    for (std::uint32_t h = 0; h < 2; ++h) {
        if (const std::uint32_t *hit = size_cache_.find(half_keys[h]))
            half_bytes[h] = *hit;
        else
            missed |= 1u << h;
    }
    if (missed == 3) {
        // Both halves miss: derive them together and size them through
        // the codec's batched route (one classification pass setup).
        source_.bytesPair(base, even_payload, odd_payload, lines);
        have = 3;
        codec_.compressedSizeBytes(lines, 2, half_bytes);
        size_cache_.put(half_keys[0], half_bytes[0]);
        size_cache_.put(half_keys[1], half_bytes[1]);
    } else {
        for (std::uint32_t h = 0; h < 2; ++h) {
            if (!(missed & (1u << h)))
                continue;
            half_bytes[h] = codec_.compressedSizeBytes(lineOf(h));
            size_cache_.put(half_keys[h], half_bytes[h]);
        }
    }

    const std::uint32_t even_bytes = half_bytes[0];
    const std::uint32_t odd_bytes = half_bytes[1];
    std::uint32_t size = even_bytes + odd_bytes;
    if (size > 24) {
        if (have == 0) {
            source_.bytesPair(base, even_payload, odd_payload, lines);
            have = 3;
        }
        size = codec_.pairSizeBytes(lineOf(0), lineOf(1), even_bytes,
                                    odd_bytes);
    }
    pair_size_cache_.put(key, size);
    return size;
}

L4ReadResult
CompressedDramCache::read(LineAddr line, Cycle now)
{
    const Candidates cand = readCandidates(line);

    L4ReadResult res;
    const DramResult probe1 = device_.access(mapper_.coord(cand.primary),
                                             readBytes(), now, false);
    res.dram_accesses = 1;

    auto finishHit = [&](std::uint64_t set_idx, const TadLookup &lk,
                         Cycle data_done) {
        res.hit = true;
        res.done = data_done + config_.controller_latency +
                   config_.decompression_latency;
        res.payload = lk.payload;
        if (lk.neighbor_present) {
            res.has_extra = true;
            res.extra_line = SetIndexer::spatialNeighbor(line);
            res.extra_payload = lk.neighbor_payload;
            ++extra_lines_;
        }
        sets_[set_idx].touchAt(lk.item, ++lru_clock_);
        ++read_hits_;
    };

    const TadLookup lk1 = sets_[cand.primary].lookup(line);

    if (lk1.found) {
        finishHit(cand.primary, lk1, probe1.done);
        if (!cand.single)
            cip_.updateRead(line, cand.primary_scheme);
        return res;
    }

    if (cand.single) {
        res.done = probe1.done + config_.controller_latency;
        ++read_misses_;
        return res;
    }

    // Two candidate locations. In Alloy mode the 8-B neighbor-tag burst
    // tells us for free whether the line sits in the alternate set; a
    // second access is issued only when it does. In KNL mode there is
    // no neighbor tag, so the controller issues a merged probe of the
    // alternate set whenever the first probe did not hit.
    const TadLookup lk2 = sets_[cand.secondary].lookup(line);

    const IndexScheme alternate_scheme =
        cand.primary_scheme == IndexScheme::BAI ? IndexScheme::TSI
                                                : IndexScheme::BAI;

    if (cfg_.knl_mode) {
        const DramResult probe2 = device_.access(
            mapper_.coord(cand.secondary), readBytes(), now, false);
        ++res.dram_accesses;
        if (lk2.found) {
            ++second_probes_;
            finishHit(cand.secondary, lk2,
                      std::max(probe1.done, probe2.done));
            cip_.updateRead(line, alternate_scheme);
            return res;
        }
        res.done = std::max(probe1.done, probe2.done) +
                   config_.controller_latency;
        ++read_misses_;
        return res;
    }

    if (lk2.found) {
        const DramResult probe2 = device_.access(
            mapper_.coord(cand.secondary), readBytes(), probe1.done,
            false);
        ++res.dram_accesses;
        ++second_probes_;
        finishHit(cand.secondary, lk2, probe2.done);
        cip_.updateRead(line, alternate_scheme);
        return res;
    }

    res.done = probe1.done + config_.controller_latency;
    ++read_misses_;
    return res;
}

void
CompressedDramCache::removeResident(TadSet &set, LineAddr line)
{
    removeResident(set, line, set.lookup(line));
}

void
CompressedDramCache::removeResident(TadSet &set, LineAddr line,
                                    const TadLookup &lk)
{
    dice_assert(lk.found, "removeResident of absent line");
    std::uint32_t survivor_bytes = 0;
    if (lk.in_pair) {
        // The pair item holds both halves, so the lookup above already
        // reported the survivor's payload.
        dice_assert(lk.neighbor_present, "pair without its other half");
        const LineAddr neighbor = SetIndexer::spatialNeighbor(line);
        survivor_bytes = sizeOf(neighbor, lk.neighbor_payload);
    }
    set.removeAt(lk.item, line, survivor_bytes);
}

L4WriteResult
CompressedDramCache::install(LineAddr line, std::uint64_t payload,
                             bool dirty, Cycle now, bool after_read_miss)
{
    ++installs_;

    const std::uint32_t size = sizeOf(line, payload);
    bool invariant = false;
    const IndexScheme scheme = installScheme(line, size, invariant);
    const std::uint64_t target = indexer_.set(line, scheme);

    if (cfg_.policy == CompressionPolicy::Dice) {
        if (invariant) {
            ++installs_invariant_;
        } else if (scheme == IndexScheme::BAI) {
            ++installs_bai_;
        } else {
            ++installs_tsi_;
        }
    }

    L4WriteResult res;
    res.dram_accesses = 0;
    Cycle when = now;

    // Everything below mutates at most the target set and its
    // alternate (the only other place the line can live), so the
    // resident-line count is settled from their before/after deltas.
    const std::uint64_t alt = SetIndexer::alternateSet(target);
    const std::uint64_t lines_before =
        sets_[target].lineCount() + sets_[alt].lineCount();

    // Writebacks (and fills whose read probe went to the other set)
    // first read the target TAD to learn what is resident.
    if (!after_read_miss) {
        const DramResult probe =
            device_.access(mapper_.coord(target), readBytes(), when,
                           AccessKind::PostedRead);
        when = probe.done;
        ++res.dram_accesses;
    }

    const bool dual = cfg_.policy == CompressionPolicy::Dice && !invariant;
    TadLookup target_lk; // membership before any scrubbing below
    if (dual) {
        // One membership probe per candidate set serves the write
        // predictor, the duplicate scrub, and the update check: the
        // TSI and BAI sets are the only two places the line can be,
        // and nothing mutates them between these uses (the scrub only
        // touches the non-target set, so the target lookup stays
        // valid for the update removal below).
        const std::uint64_t tsi_set = indexer_.tsi(line);
        const std::uint64_t bai_set = indexer_.bai(line);
        const TadLookup tsi_lk = sets_[tsi_set].lookup(line);
        const TadLookup bai_lk = sets_[bai_set].lookup(line);

        // Score the size-based write predictor against where the line
        // actually was.
        const IndexScheme predicted =
            cip_.predictWrite(size, cfg_.threshold_bytes);
        IndexScheme actual = predicted;
        if (tsi_lk.found) {
            actual = IndexScheme::TSI;
        } else if (bai_lk.found) {
            actual = IndexScheme::BAI;
        }
        cip_.scoreWrite(predicted, actual);

        // Scrub a stale copy from the alternate location so a line is
        // never valid under both indexings at once.
        const std::uint64_t other = SetIndexer::alternateSet(target);
        const TadLookup &other_lk = other == tsi_set ? tsi_lk : bai_lk;
        if (other_lk.found) {
            removeResident(sets_[other], line, other_lk);
            device_.access(mapper_.coord(other), 72, when, true);
            ++res.dram_accesses;
            ++duplicate_scrubs_;
        }

        cip_.train(line, scheme);
        target_lk = target == tsi_set ? tsi_lk : bai_lk;
    } else {
        target_lk = sets_[target].lookup(line);
    }

    TadSet &set = sets_[target];

    // An update of a resident line is a remove + reinsert with the new
    // compressed size (its old copy is superseded, never written back).
    if (target_lk.found)
        removeResident(set, line, target_lk);

    // Try to merge with the spatial neighbor into a shared-tag pair.
    const LineAddr neighbor = SetIndexer::spatialNeighbor(line);
    const TadLookup nb = set.lookup(neighbor);
    bool inserted = false;
    if (nb.found && cfg_.pair_compression) {
        const LineAddr base = SetIndexer::pairBase(line);
        const std::uint32_t pair_bytes = pairSizeOf(
            base, (line & 1) == 0 ? payload : nb.payload,
            (line & 1) == 1 ? payload : nb.payload);
        if (kTadTagBytes + pair_bytes <= kTadSetBytes) { // pair fits a TAD
            removeResident(set, neighbor, nb);
            while (!set.fits(pair_bytes, 2)) {
                if (!set.evictLru(line, res.writebacks))
                    dice_panic("cannot make room for pair");
            }
            const bool even_is_new = (line & 1) == 0;
            set.insertPair(base, pair_bytes,
                           even_is_new ? dirty : nb.dirty,
                           even_is_new ? payload : nb.payload,
                           even_is_new ? nb.dirty : dirty,
                           even_is_new ? nb.payload : payload,
                           scheme == IndexScheme::BAI, ++lru_clock_);
            ++pair_installs_;
            inserted = true;
        }
    }

    if (!inserted) {
        while (!set.fits(size, 1)) {
            if (!set.evictLru(line, res.writebacks))
                dice_panic("cannot make room for line");
        }
        set.insertSingle(line, size, dirty, payload,
                         scheme == IndexScheme::BAI, ++lru_clock_);
    }

    device_.access(mapper_.coord(target), 72, when, true);
    ++res.dram_accesses;

    valid_lines_ += sets_[target].lineCount() + sets_[alt].lineCount();
    valid_lines_ -= lines_before;

    if (trace_enabled_) {
        install_ring_.push(InstallTrace{line, size, scheme, invariant,
                                        inserted});
    }
    return res;
}

L4Metrics
CompressedDramCache::metrics() const
{
    L4Metrics m;
    m.second_probes = second_probes_;
    m.installs_invariant = installs_invariant_;
    m.installs_bai = installs_bai_;
    m.installs_tsi = installs_tsi_;
    m.cip_read_accuracy = cip_.readAccuracy();
    m.cip_write_accuracy = cip_.writeAccuracy();
    return m;
}

void
CompressedDramCache::registerExtraStats(StatRegistry &registry) const
{
    registry.add("cip", [this] { return cip_.stats(); });
}

void
CompressedDramCache::enableDecisionTrace(bool enabled)
{
    trace_enabled_ = enabled;
    cip_.enableDecisionTrace(enabled);
    if (!enabled)
        install_ring_.clear();
}

bool
CompressedDramCache::contains(LineAddr line) const
{
    for (const IndexScheme scheme :
         {IndexScheme::TSI, IndexScheme::NSI, IndexScheme::BAI}) {
        if (sets_[indexer_.set(line, scheme)].contains(line))
            return true;
    }
    return false;
}

std::uint64_t
CompressedDramCache::validLines() const
{
    return valid_lines_;
}

std::uint64_t
CompressedDramCache::bytesUsed() const
{
    std::uint64_t total = 0;
    for (const TadSet &set : sets_)
        total += set.bytesUsed();
    return total;
}

void
CompressedDramCache::resetStats()
{
    DramCache::resetStats();
    installs_invariant_ = installs_bai_ = installs_tsi_ = 0;
    pair_installs_ = second_probes_ = duplicate_scrubs_ = 0;
    cip_.resetStats();
}

StatGroup
CompressedDramCache::stats() const
{
    StatGroup g = DramCache::stats();
    g.addFormula("installs_invariant",
                 [this]() { return double(installs_invariant_); });
    g.addFormula("installs_bai",
                 [this]() { return double(installs_bai_); });
    g.addFormula("installs_tsi",
                 [this]() { return double(installs_tsi_); });
    g.addFormula("pair_installs",
                 [this]() { return double(pair_installs_); });
    g.addFormula("second_probes",
                 [this]() { return double(second_probes_); });
    g.addFormula("duplicate_scrubs",
                 [this]() { return double(duplicate_scrubs_); });
    g.addFormula("cip_read_accuracy",
                 [this]() { return cip_.readAccuracy(); });
    g.addFormula("cip_write_accuracy",
                 [this]() { return cip_.writeAccuracy(); });
    return g;
}

} // namespace dice
