#include "mapi.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace dice
{

MapI::MapI(std::uint32_t entries) : table_(entries, kThreshold)
{
    dice_assert(entries > 0, "MAP-I with empty table");
}

std::uint32_t
MapI::indexOf(std::uint64_t pc) const
{
    return static_cast<std::uint32_t>(mix64(pc) % table_.size());
}

bool
MapI::predictHit(std::uint64_t pc) const
{
    return table_[indexOf(pc)] >= kThreshold;
}

void
MapI::update(std::uint64_t pc, bool was_hit)
{
    std::uint8_t &ctr = table_[indexOf(pc)];
    const bool predicted_hit = ctr >= kThreshold;
    ++predictions_;
    if (predicted_hit != was_hit)
        ++mispredicts_;

    if (was_hit) {
        if (ctr < kMax)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

void
MapI::resetStats()
{
    predictions_ = mispredicts_ = 0;
}

double
MapI::accuracy() const
{
    if (predictions_ == 0)
        return 1.0;
    return 1.0 - static_cast<double>(mispredicts_) /
                     static_cast<double>(predictions_);
}

StatGroup
MapI::stats() const
{
    StatGroup g("mapi");
    g.addFormula("predictions", [this]() { return double(predictions_); });
    g.addFormula("accuracy", [this]() { return accuracy(); });
    return g;
}

} // namespace dice
