/**
 * @file
 * Common interface of every L4 DRAM-cache organization in the study:
 * the uncompressed Alloy baseline (and its ideal 2x variants), the
 * compressed cache under TSI / NSI / BAI / DICE policies, the KNL-style
 * tags-in-ECC variant, and the SCC baseline.
 *
 * The cache owns its DRAM timing substrate (a DramDevice); the system
 * model calls read() for demand accesses and install() for fills and
 * writebacks, and forwards the returned dirty victims to main memory.
 */

#ifndef DICE_CORE_DRAM_CACHE_HPP
#define DICE_CORE_DRAM_CACHE_HPP

#include <memory>
#include <vector>

#include "cache/sram_cache.hpp" // EvictedLine
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/dram.hpp"
#include "dram/timing.hpp"

namespace dice
{

/** Configuration shared by all DRAM-cache organizations. */
struct DramCacheConfig
{
    /** Data capacity (bytes); sets = capacity / 64 B. */
    std::uint64_t capacity = 64_MiB;
    /** Timing/geometry of the stacked-DRAM substrate. */
    DramTiming timing = DramTiming::stackedL4();
    /** Fixed controller overhead added to every access (cycles). */
    Cycle controller_latency = 6;
    /** Decompression latency charged on compressed hits (cycles). */
    Cycle decompression_latency = 2;
};

/** Outcome of a demand read presented to the L4. */
struct L4ReadResult
{
    bool hit = false;
    /** Cycle the requested data (or the miss verdict) is available. */
    Cycle done = 0;
    /** DRAM-cache accesses consumed (1, or 2 on CIP misprediction). */
    std::uint32_t dram_accesses = 1;
    /** Data version of the requested line (valid on hit). */
    std::uint64_t payload = 0;
    /** True when a useful spatial neighbor came along for free. */
    bool has_extra = false;
    LineAddr extra_line = 0;
    std::uint64_t extra_payload = 0;
};

/** Outcome of an install (fill from memory or writeback from L3). */
struct L4WriteResult
{
    /** DRAM-cache accesses consumed. */
    std::uint32_t dram_accesses = 1;
    /** Dirty victims that must now be written to main memory. */
    WritebackList writebacks;
    /**
     * True when the organization declined to cache the line (e.g. a
     * bandwidth-aware replacement kept the resident page). A declined
     * dirty line is carried out through `writebacks`; the system
     * otherwise needs no special handling.
     */
    bool bypassed = false;
    /**
     * Lines the organization wants streamed from main memory to
     * complete a coarse-granularity fill (page-based policies admit a
     * whole page on one demand line). The system charges the memory
     * read traffic and returns each payload via completeFill().
     * Empty for line-granularity organizations — the common case pays
     * no allocation (a default-constructed vector does not allocate).
     */
    std::vector<LineAddr> fill_fetches;
};

/**
 * Aggregate policy metrics the system folds into its RunResult. The
 * defaults match RunResult's: an organization without the concept
 * (no index predictor, no second probes) inherits them unchanged.
 */
struct L4Metrics
{
    /** Reads that needed a second DRAM access (index misprediction). */
    std::uint64_t second_probes = 0;
    /** Install-index decision counters (Figure 11). */
    std::uint64_t installs_invariant = 0;
    std::uint64_t installs_bai = 0;
    std::uint64_t installs_tsi = 0;
    /** Index-predictor accuracies (1.0 when there is no predictor). */
    double cip_read_accuracy = 1.0;
    double cip_write_accuracy = 1.0;
};

class StatRegistry;

/** Abstract L4 DRAM cache. */
class DramCache
{
  public:
    explicit DramCache(const DramCacheConfig &config, std::string name)
        : config_(config), device_(std::move(name), config.timing)
    {
    }

    virtual ~DramCache() = default;

    /** Demand read of @p line arriving at cycle @p now. */
    virtual L4ReadResult read(LineAddr line, Cycle now) = 0;

    /**
     * Install @p line (demand fill when @p dirty is false, writeback
     * from L3 when true). @p after_read_miss marks fills that directly
     * follow a read() miss of the same line, whose probe already
     * streamed the victim set.
     */
    virtual L4WriteResult install(LineAddr line, std::uint64_t payload,
                                  bool dirty, Cycle now,
                                  bool after_read_miss) = 0;

    /**
     * Deliver the payload of a line the last install() requested via
     * fill_fetches (the system has charged the memory read). Only
     * coarse-granularity organizations override this.
     */
    virtual void completeFill(LineAddr line, std::uint64_t payload,
                              Cycle now)
    {
        (void)line;
        (void)payload;
        (void)now;
    }

    /** True when @p line is resident (functional check, no timing). */
    virtual bool contains(LineAddr line) const = 0;

    /** Number of valid logical lines (for effective-capacity studies). */
    virtual std::uint64_t validLines() const = 0;

    /** Bytes of payload + tags currently resident. */
    virtual std::uint64_t bytesUsed() const
    {
        return validLines() * kLineSize;
    }

    /** Organization name for reports. */
    virtual const char *organization() const = 0;

    /**
     * Policy metrics for the run result. The base implementation's
     * defaults are the "organization has no such concept" values.
     */
    virtual L4Metrics metrics() const { return {}; }

    /**
     * Register organization-specific stat groups beyond the "l4" /
     * "l4.dram" pair the system always exports (e.g. the compressed
     * cache's index predictor registers "cip"). Default: none.
     */
    virtual void registerExtraStats(StatRegistry &registry) const
    {
        (void)registry;
    }

    virtual void resetStats();

    virtual StatGroup stats() const;

    DramDevice &device() { return device_; }
    const DramDevice &device() const { return device_; }
    const DramCacheConfig &config() const { return config_; }

    std::uint64_t readHits() const { return read_hits_; }
    std::uint64_t readMisses() const { return read_misses_; }
    std::uint64_t extraLinesSupplied() const { return extra_lines_; }

    /** Demand-read hit rate. */
    double hitRate() const;

  protected:
    DramCacheConfig config_;
    DramDevice device_;

    std::uint64_t read_hits_ = 0;
    std::uint64_t read_misses_ = 0;
    std::uint64_t extra_lines_ = 0;
    std::uint64_t installs_ = 0;
};

} // namespace dice

#endif // DICE_CORE_DRAM_CACHE_HPP
