#include "memory.hpp"

namespace dice
{

MainMemory::MainMemory(const DramTiming &timing)
    : device_("mem", timing), lines_per_row_(timing.row_bytes / kLineSize),
      versions_(/*expected_keys=*/1 << 16)
{
}

DramCoord
MainMemory::coordOf(LineAddr line) const
{
    const DramTiming &t = device_.timing();
    const std::uint64_t row_group = line / lines_per_row_;
    DramCoord c;
    c.channel = static_cast<std::uint32_t>(row_group % t.channels);
    c.bank = static_cast<std::uint32_t>(
        (row_group / t.channels) % t.banks_per_channel);
    c.row = row_group /
            (static_cast<std::uint64_t>(t.channels) * t.banks_per_channel);
    return c;
}

DramResult
MainMemory::read(LineAddr line, Cycle now)
{
    return device_.access(coordOf(line), kLineSize, now, false);
}

void
MainMemory::fetch(LineAddr line, Cycle now)
{
    device_.access(coordOf(line), kLineSize, now, AccessKind::PostedRead);
}

void
MainMemory::write(LineAddr line, std::uint64_t version, Cycle now)
{
    device_.access(coordOf(line), kLineSize, now, true);
    versions_[line] = version;
}

std::uint64_t
MainMemory::versionOf(LineAddr line) const
{
    return versions_.valueOr(line, 0);
}

} // namespace dice
