/**
 * @file
 * Main-memory model: the DDR DramDevice for timing plus a functional
 * store of per-line data versions (the full data bytes are regenerated
 * from (line, version) by the workload data generator).
 */

#ifndef DICE_SIM_MEMORY_HPP
#define DICE_SIM_MEMORY_HPP

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "dram/dram.hpp"
#include "dram/timing.hpp"

namespace dice
{

/** DDR main memory behind the L4 cache. */
class MainMemory
{
  public:
    explicit MainMemory(
        const DramTiming &timing = DramTiming::mainMemoryDdr());

    /** Read @p line at cycle @p now; returns device completion times. */
    DramResult read(LineAddr line, Cycle now);

    /** Write back @p line (posted; consumes bandwidth). */
    void write(LineAddr line, std::uint64_t version, Cycle now);

    /**
     * Stream @p line toward the L4 off the critical path (posted read;
     * consumes bandwidth). Page-granularity fills are made of these.
     */
    void fetch(LineAddr line, Cycle now);

    /** Current data version of @p line (0 if never written back). */
    std::uint64_t versionOf(LineAddr line) const;

    /** Start loading @p line's version slot ahead of versionOf(). */
    void prefetchVersion(LineAddr line) const { versions_.prefetch(line); }

    DramDevice &device() { return device_; }
    const DramDevice &device() const { return device_; }

  private:
    DramCoord coordOf(LineAddr line) const;

    DramDevice device_;
    std::uint32_t lines_per_row_;
    /** Open-addressed line -> version store (hot on every writeback). */
    FlatMap<LineAddr, std::uint64_t> versions_;
};

} // namespace dice

#endif // DICE_SIM_MEMORY_HPP
