#include "energy.hpp"

namespace dice
{

EnergyBreakdown
computeEnergy(const EnergyParams &params, const DramDevice *l4,
              const DramDevice &mem, Cycle cycles)
{
    EnergyBreakdown e;
    if (l4) {
        e.l4_nj = (static_cast<double>(l4->bytesMoved()) *
                       params.l4_pj_per_byte +
                   static_cast<double>(l4->activations()) *
                       params.l4_pj_per_activate) /
                  1e3;
    }
    e.mem_nj = (static_cast<double>(mem.bytesMoved()) *
                    params.mem_pj_per_byte +
                static_cast<double>(mem.activations()) *
                    params.mem_pj_per_activate) /
               1e3;

    e.seconds = static_cast<double>(cycles) /
                (params.cpu_freq_ghz * 1e9);
    e.background_nj = params.background_mw * 1e-3 * e.seconds * 1e9;
    e.total_nj = e.l4_nj + e.mem_nj + e.background_nj;
    e.avg_power_w = e.seconds > 0.0 ? e.total_nj * 1e-9 / e.seconds : 0.0;
    e.edp = e.total_nj * e.seconds;
    return e;
}

} // namespace dice
