#include "core_model.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dice
{

Cycle
TraceCore::prepareIssue(std::uint32_t gap_instr)
{
    instr_ += gap_instr + 1; // the gap plus the memory instruction
    frac_ += gap_instr + 1;
    cycle_ += frac_ / config_.issue_width;
    frac_ %= config_.issue_width;

    // Retire loads whose data already returned.
    while (!inflightEmpty() && inflightFront().done <= cycle_)
        popInflight();

    // ROB: an instruction cannot enter while a load older than
    // (instr_ - rob_size) is still blocking retirement.
    while (!inflightEmpty() &&
           inflightFront().pos + config_.rob_size <= instr_) {
        cycle_ = std::max(cycle_, inflightFront().done);
        popInflight();
    }

    // MSHRs: bound outstanding misses.
    while (inflightCount() >= config_.mshrs) {
        cycle_ = std::max(cycle_, inflightFront().done);
        popInflight();
    }

    return cycle_;
}

void
TraceCore::completeLoad(Cycle done)
{
    if (done > cycle_) {
        dice_assert(inflightCount() < ring_.size(),
                    "in-flight ring overflow (%u loads, %u MSHRs)",
                    inflightCount(), config_.mshrs);
        ring_[tail_ & ring_mask_] = InFlight{instr_, done};
        ++tail_;
    }
}

void
TraceCore::finish()
{
    while (!inflightEmpty()) {
        cycle_ = std::max(cycle_, inflightFront().done);
        popInflight();
    }
}

} // namespace dice
