#include "core_model.hpp"

#include <algorithm>

namespace dice
{

Cycle
TraceCore::prepareIssue(std::uint32_t gap_instr)
{
    instr_ += gap_instr + 1; // the gap plus the memory instruction
    frac_ += gap_instr + 1;
    cycle_ += frac_ / config_.issue_width;
    frac_ %= config_.issue_width;

    // Retire loads whose data already returned.
    while (!inflight_.empty() && inflight_.front().done <= cycle_)
        inflight_.pop_front();

    // ROB: an instruction cannot enter while a load older than
    // (instr_ - rob_size) is still blocking retirement.
    while (!inflight_.empty() &&
           inflight_.front().pos + config_.rob_size <= instr_) {
        cycle_ = std::max(cycle_, inflight_.front().done);
        inflight_.pop_front();
    }

    // MSHRs: bound outstanding misses.
    while (inflight_.size() >= config_.mshrs) {
        cycle_ = std::max(cycle_, inflight_.front().done);
        inflight_.pop_front();
    }

    return cycle_;
}

void
TraceCore::completeLoad(Cycle done)
{
    if (done > cycle_)
        inflight_.push_back(InFlight{instr_, done});
}

void
TraceCore::finish()
{
    for (const InFlight &l : inflight_)
        cycle_ = std::max(cycle_, l.done);
    inflight_.clear();
}

} // namespace dice
