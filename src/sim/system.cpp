#include "system.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/sweep_events.hpp"
#include "common/trace_events.hpp"
#include "workloads/region_plan.hpp"

namespace dice
{

System::System(const SystemConfig &config,
               std::vector<WorkloadProfile> core_profiles,
               std::shared_ptr<const TraceSet> replay)
    : cfg_(config), profiles_(std::move(core_profiles)),
      mem_(config.mem_timing)
{
    dice_assert(profiles_.size() == cfg_.num_cores,
                "expected %u per-core profiles, got %zu", cfg_.num_cores,
                profiles_.size());
    if (replay) {
        dice_assert(replay->streams.size() == cfg_.num_cores,
                    "replay set has %zu streams for %u cores",
                    replay->streams.size(), cfg_.num_cores);
        const std::uint64_t needed =
            cfg_.warmup_refs_per_core + cfg_.refs_per_core + 1;
        for (const PackedTrace &t : replay->streams) {
            dice_assert(t.size() >= needed,
                        "replay stream of %zu refs is shorter than the "
                        "%llu the run consumes",
                        t.size(),
                        static_cast<unsigned long long>(needed));
        }
    }

    write_counts_.reserve(1 << 16);
    l3_ = std::make_unique<SramCache>(cfg_.l3);

    // Per-core regions scaled so footprint/capacity pressure matches
    // the paper's Table 3 against a 1-GiB cache. planCoreRegions is
    // shared with the TraceArena so replayed streams see the same
    // layout the live generator would.
    const std::vector<CoreRegion> regions = planCoreRegions(
        cfg_.num_cores, cfg_.reference_capacity, profiles_);
    cores_.reserve(cfg_.num_cores);
    for (std::uint32_t cid = 0; cid < cfg_.num_cores; ++cid) {
        const LineAddr start = regions[cid].start;
        const std::uint64_t lines = regions[cid].lines;
        datagen_.addRegion(start, start + lines, profiles_[cid]);

        std::unique_ptr<TraceSource> source;
        if (replay) {
            source = std::make_unique<ReplayTraceSource>(
                TraceSet::stream(replay, cid));
        } else {
            source = std::make_unique<LiveTraceSource>(
                profiles_[cid], start, lines, mix64(cfg_.seed, cid));
        }

        CoreState state{TraceCore(cfg_.core), std::move(source),
                        nullptr, nullptr, 0, MemRef{}};
        if (cfg_.use_l1_l2) {
            SramCacheConfig l1 = cfg_.l1;
            l1.name = "l1." + std::to_string(cid);
            SramCacheConfig l2 = cfg_.l2;
            l2.name = "l2." + std::to_string(cid);
            state.l1 = std::make_unique<SramCache>(l1);
            state.l2 = std::make_unique<SramCache>(l2);
        }
        cores_.push_back(std::move(state));
    }

    // The registry validates the tagged config (unknown names and
    // mismatched parameter groups panic) and returns null for "none".
    l4_ = L4Registry::instance().create(cfg_.l4, datagen_);

    stats_interval_refs_ = statsIntervalRefs();
    registerStats();
}

void
System::registerStats()
{
    registry_.add("system", [this] {
        StatGroup g("system");
        g.addFormula("refs", [this] { return double(refs_total_); });
        g.addFormula("l3_miss_latency_avg", [this] {
            return miss_latency_count_ > 0
                       ? miss_latency_sum_ /
                             static_cast<double>(miss_latency_count_)
                       : 0.0;
        });
        g.addFormula("l3_misses_timed",
                     [this] { return double(miss_latency_count_); });
        return g;
    });
    registry_.add("l3", [this] { return l3_->stats(); });
    for (std::size_t cid = 0; cid < cores_.size(); ++cid) {
        if (const SramCache *l1 = cores_[cid].l1.get())
            registry_.add("l1." + std::to_string(cid),
                          [l1] { return l1->stats(); });
        if (const SramCache *l2 = cores_[cid].l2.get())
            registry_.add("l2." + std::to_string(cid),
                          [l2] { return l2->stats(); });
    }
    if (l4_) {
        registry_.add("l4", [this] { return l4_->stats(); });
        registry_.add("l4.dram",
                      [this] { return l4_->device().stats(); });
        // Organization-specific groups (e.g. the compressed cache's
        // "cip") register themselves — no special-casing here.
        l4_->registerExtraStats(registry_);
    }
    registry_.add("mapi", [this] { return mapi_.stats(); });
    registry_.add("mem.dram", [this] { return mem_.device().stats(); });
    // The arena is process-wide, but including its counters in every
    // cell's export shows each cell the hit/eviction state it ran
    // under (a stalling sweep is usually an arena thrashing story).
    registry_.add("trace_arena",
                  [] { return TraceArena::instance().statGroup(); });
    // Likewise process-wide: the sweep phase-latency histograms
    // (claim-wait, generate, simulate, export, whole-cell, lease ops)
    // this cell's run contributed to.
    registry_.add("sweep",
                  [] { return SweepMetrics::instance().statGroup(); });
}

std::uint64_t
System::bumpVersion(LineAddr line)
{
    return ++write_counts_[line];
}

std::uint64_t
System::expectedVersion(LineAddr line) const
{
    return write_counts_.valueOr(line, 0);
}

void
System::drainWritebacks(const WritebackList &wbs, Cycle when)
{
    for (const EvictedLine &wb : wbs)
        mem_.write(wb.line, wb.payload, when);
}

void
System::serviceFillFetches(const L4WriteResult &res, Cycle when)
{
    for (const LineAddr line : res.fill_fetches) {
        mem_.fetch(line, when);
        l4_->completeFill(line, mem_.versionOf(line), when);
    }
}

void
System::writebackBelowL3(LineAddr line, std::uint64_t payload, Cycle when)
{
    if (!l4_) {
        mem_.write(line, payload, when);
        return;
    }
    const L4WriteResult res = l4_->install(line, payload, true, when,
                                           false);
    drainWritebacks(res.writebacks, when);
    serviceFillFetches(res, when);
}

void
System::installIntoL3(LineAddr line, bool dirty, std::uint64_t payload,
                      Cycle when)
{
    const auto victim = l3_->install(line, dirty, payload);
    if (victim && victim->dirty)
        writebackBelowL3(victim->line, victim->payload, when);
}

Cycle
System::fetchIntoL3(LineAddr line, Cycle when, std::uint64_t pc,
                    bool make_dirty, std::uint64_t ver)
{
    Cycle done;
    std::uint64_t payload = 0;

    // The version probe (a big flat-map lookup) is needed on every
    // path that misses the L4, so start pulling its slot in now and
    // hide the latency under the cache probe.
    mem_.prefetchVersion(line);

    if (!l4_) {
        const DramResult mr = mem_.read(line, when);
        done = mr.done;
        payload = mem_.versionOf(line);
    } else {
        const bool predicted_hit = mapi_.predictHit(pc);
        const L4ReadResult r = l4_->read(line, when);
        if (r.hit) {
            done = r.done;
            payload = r.payload;
            if (r.has_extra && cfg_.extra_line_to_l3 &&
                !l3_->contains(r.extra_line)) {
                installIntoL3(r.extra_line, false, r.extra_payload, done);
            }
        } else {
            // MAP-I: a predicted miss overlaps the memory access with
            // the (futile) cache probe; a predicted hit serializes.
            const Cycle mem_start = predicted_hit ? r.done : when;
            const DramResult mr = mem_.read(line, mem_start);
            done = mr.done;
            payload = mem_.versionOf(line);
            const L4WriteResult w =
                l4_->install(line, payload, false, done, true);
            drainWritebacks(w.writebacks, done);
            serviceFillFetches(w, done);
        }
        mapi_.update(pc, r.hit);
    }

    installIntoL3(line, make_dirty, make_dirty ? ver : payload, done);
    return done;
}

void
System::step(std::uint32_t cid)
{
    CoreState &cs = cores_[cid];
    const MemRef ref = cs.pending;
    const Cycle t = cs.core.prepareIssue(ref.gap_instr);

    LineAddr line = ref.line;
    Cycle l3_arrival = t;
    bool handled = false;

    // Optional private L1/L2 in front of the shared L3.
    if (cfg_.use_l1_l2) {
        const AccessType type =
            ref.is_write ? AccessType::Write : AccessType::Read;
        const std::uint64_t ver =
            ref.is_write ? bumpVersion(line) : 0;
        if (cs.l1->access(line, type, ver)) {
            if (!ref.is_write)
                cs.core.completeLoad(t + cfg_.l1.hit_latency);
            handled = true;
        } else if (cs.l2->access(line, type, ver)) {
            // Fill L1 from L2; dirty L1 victims fold into L2.
            const auto v1 = cs.l1->install(line, ref.is_write, ver);
            if (v1 && v1->dirty)
                cs.l2->access(v1->line, AccessType::Writeback,
                              v1->payload);
            if (!ref.is_write) {
                cs.core.completeLoad(t + cfg_.l1.hit_latency +
                                     cfg_.l2.hit_latency);
            }
            handled = true;
        } else {
            l3_arrival = t + cfg_.l1.hit_latency + cfg_.l2.hit_latency;
        }
        // L2 victims from the eventual fill are handled below via the
        // L3 path; keep the model single-level beyond this point.
    }

    if (!handled) {
        if (ref.is_write) {
            const std::uint64_t ver = bumpVersion(line);
            if (!l3_->access(line, AccessType::Write, ver)) {
                // Write-allocate; the store itself does not block the
                // core (post-commit buffer), so only traffic is charged.
                fetchIntoL3(line, l3_arrival, ref.pc, true, ver);
            }
            if (cfg_.use_l1_l2) {
                const auto v1 = cs.l1->install(line, true, ver);
                if (v1 && v1->dirty)
                    cs.l2->access(v1->line, AccessType::Writeback,
                                  v1->payload);
            }
        } else {
            if (l3_->access(line, AccessType::Read)) {
                cs.core.completeLoad(l3_arrival + cfg_.l3.hit_latency);
            } else {
                const Cycle done = fetchIntoL3(line, l3_arrival, ref.pc,
                                               false, 0);
                cs.core.completeLoad(done);
                miss_latency_sum_ += static_cast<double>(done - t);
                ++miss_latency_count_;

                // Table 7 L3-side alternatives.
                if (cfg_.l3_wide_fetch) {
                    const LineAddr buddy = line ^ 1;
                    if (!l3_->contains(buddy))
                        fetchIntoL3(buddy, l3_arrival, ref.pc, false, 0);
                }
                if (cfg_.l3_nextline_prefetch) {
                    // The prefetch is issued alongside the demand
                    // request (it must not be timestamped at the
                    // demand's completion, which would serialize it
                    // behind the whole miss).
                    const LineAddr next = line + 1;
                    if (!l3_->contains(next))
                        fetchIntoL3(next, l3_arrival, ref.pc, false, 0);
                }
            }
            if (cfg_.use_l1_l2) {
                const auto v1 = cs.l1->install(line, false, 0);
                if (v1 && v1->dirty)
                    cs.l2->access(v1->line, AccessType::Writeback,
                                  v1->payload);
                cs.l2->install(line, false, 0);
            }
        }
    }

    ++cs.refs_done;
    ++refs_total_;
    ++refs_lifetime_;
    if (l4_ && sample_interval_ > 0 &&
        refs_total_ % sample_interval_ == 0) {
        valid_accum_ += static_cast<double>(l4_->validLines());
        ++valid_samples_;
    }
    if (stats_interval_refs_ > 0 &&
        refs_lifetime_ % stats_interval_refs_ == 0)
        registry_.captureInterval(phase_, refs_lifetime_);
    cs.pending = cs.trace->next();
}

void
System::runPhase(std::uint64_t target_refs)
{
    // Event-ordered interleaving: always advance the core whose next
    // reference issues earliest (estimated from its local clock).
    std::uint64_t remaining = 0;
    for (const CoreState &cs : cores_) {
        remaining +=
            target_refs > cs.refs_done ? target_refs - cs.refs_done : 0;
    }

    while (remaining > 0) {
        std::uint32_t best = cfg_.num_cores;
        Cycle best_time = ~Cycle{0};
        for (std::uint32_t cid = 0; cid < cfg_.num_cores; ++cid) {
            const CoreState &cs = cores_[cid];
            if (cs.refs_done >= target_refs)
                continue;
            const Cycle est =
                cs.core.estimateNextIssue(cs.pending.gap_instr);
            if (est < best_time) {
                best_time = est;
                best = cid;
            }
        }
        dice_assert(best < cfg_.num_cores, "no runnable core");
        step(best);
        --remaining;
    }
}

void
System::resetAllStats()
{
    l3_->resetStats();
    for (CoreState &cs : cores_) {
        if (cs.l1)
            cs.l1->resetStats();
        if (cs.l2)
            cs.l2->resetStats();
    }
    if (l4_)
        l4_->resetStats();
    mem_.device().resetStats();
    mapi_.resetStats();
}

RunResult
System::run()
{
    for (CoreState &cs : cores_)
        cs.pending = cs.trace->next();

    const std::uint64_t total_refs =
        cfg_.refs_per_core * cfg_.num_cores;
    sample_interval_ = std::max<std::uint64_t>(1, total_refs / 8);

    std::vector<Cycle> warmup_cycles(cfg_.num_cores, 0);
    if (cfg_.warmup_refs_per_core > 0) {
        TraceSpan span("sim", "warmup");
        phase_ = "warmup";
        sample_interval_ = 0; // no occupancy samples during warmup
        runPhase(cfg_.warmup_refs_per_core);
        for (std::uint32_t cid = 0; cid < cfg_.num_cores; ++cid)
            warmup_cycles[cid] = cores_[cid].core.cycle();
        resetAllStats();
        sample_interval_ = std::max<std::uint64_t>(1, total_refs / 8);
        refs_total_ = 0;
        valid_accum_ = 0.0;
        valid_samples_ = 0;
        miss_latency_sum_ = 0.0;
        miss_latency_count_ = 0;
    }

    {
        TraceSpan span("sim", "measure");
        phase_ = "measure";
        runPhase(cfg_.warmup_refs_per_core + cfg_.refs_per_core);
    }

    RunResult res;
    res.core_cycles.reserve(cores_.size());
    std::uint64_t instr_total = 0;
    for (std::uint32_t cid = 0; cid < cfg_.num_cores; ++cid) {
        CoreState &cs = cores_[cid];
        cs.core.finish();
        const Cycle measured = cs.core.cycle() - warmup_cycles[cid];
        res.core_cycles.push_back(measured);
        res.cycles = std::max(res.cycles, measured);
        instr_total += cs.core.instructions();
    }
    res.instructions = instr_total;
    res.ipc = res.cycles > 0
                  ? static_cast<double>(res.instructions) /
                        static_cast<double>(res.cycles) /
                        cfg_.num_cores
                  : 0.0;

    res.l3_hit_rate = l3_->hitRate();
    if (l4_) {
        res.l4_hit_rate = l4_->hitRate();
        res.l4_reads = l4_->readHits() + l4_->readMisses();
        res.l4_extra_lines = l4_->extraLinesSupplied();
        res.l4_bytes = l4_->device().bytesMoved();
        // Policy metrics come through the organization interface; the
        // L4Metrics defaults are exactly RunResult's, so organizations
        // without a predictor or install-index choice leave the result
        // untouched.
        const L4Metrics m = l4_->metrics();
        res.cip_read_accuracy = m.cip_read_accuracy;
        res.cip_write_accuracy = m.cip_write_accuracy;
        res.l4_second_probes = m.second_probes;
        const double decided =
            static_cast<double>(m.installs_invariant + m.installs_bai +
                                m.installs_tsi);
        if (decided > 0) {
            res.frac_invariant = m.installs_invariant / decided;
            res.frac_bai = m.installs_bai / decided;
            res.frac_tsi = m.installs_tsi / decided;
        }
        if (valid_samples_ > 0) {
            res.avg_valid_lines =
                valid_accum_ / static_cast<double>(valid_samples_);
        } else {
            res.avg_valid_lines =
                static_cast<double>(l4_->validLines());
        }
    }
    res.mapi_accuracy = mapi_.accuracy();
    res.mem_bytes = mem_.device().bytesMoved();
    res.avg_miss_latency =
        miss_latency_count_ > 0
            ? miss_latency_sum_ / static_cast<double>(miss_latency_count_)
            : 0.0;
    res.energy = computeEnergy(cfg_.energy,
                               l4_ ? &l4_->device() : nullptr,
                               mem_.device(), res.cycles);
    return res;
}

double
weightedSpeedup(const RunResult &base, const RunResult &test)
{
    dice_assert(base.core_cycles.size() == test.core_cycles.size(),
                "mismatched core counts");
    double sum = 0.0;
    for (std::size_t i = 0; i < base.core_cycles.size(); ++i) {
        sum += static_cast<double>(base.core_cycles[i]) /
               static_cast<double>(test.core_cycles[i]);
    }
    return sum / static_cast<double>(base.core_cycles.size());
}

} // namespace dice
