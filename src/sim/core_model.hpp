/**
 * @file
 * ROB/MLP-limited trace-driven core model.
 *
 * The core issues instructions at a fixed width; loads occupy reorder-
 * buffer slots until their data returns, and at most `mshrs` loads can
 * be outstanding. The model captures the two first-order effects the
 * study depends on: memory-level parallelism (overlapping misses) and
 * stall time that scales with memory latency under bandwidth pressure.
 * Stores are fire-and-forget (post-commit write buffer).
 */

#ifndef DICE_SIM_CORE_MODEL_HPP
#define DICE_SIM_CORE_MODEL_HPP

#include <algorithm>
#include <bit>
#include <vector>

#include "common/types.hpp"

namespace dice
{

/** Microarchitectural parameters (paper Table 2: 4-wide OoO). */
struct CoreConfig
{
    std::uint32_t issue_width = 4;
    std::uint32_t rob_size = 192;
    /** Maximum overlapping outstanding loads. */
    std::uint32_t mshrs = 8;
};

/** One simulated core consuming a reference trace. */
class TraceCore
{
  public:
    explicit TraceCore(const CoreConfig &config)
        : config_(config),
          // The MSHR limit bounds in-flight occupancy (prepareIssue
          // drains below it before every issue), so a fixed ring
          // sized once at construction replaces the deque's steady
          // block churn with zero steady-state allocation.
          ring_(std::bit_ceil(
              std::max<std::size_t>(config.mshrs, 1))),
          ring_mask_(static_cast<std::uint32_t>(ring_.size() - 1))
    {
    }

    /**
     * Account @p gap_instr non-memory instructions and compute the
     * cycle at which the next memory reference can issue, honoring
     * ROB occupancy and MSHR limits. Mutates core state.
     */
    Cycle prepareIssue(std::uint32_t gap_instr);

    /** Register a blocking load issued at the last prepareIssue(). */
    void completeLoad(Cycle done);

    /** Drain all outstanding loads (end of trace). */
    void finish();

    Cycle cycle() const { return cycle_; }
    std::uint64_t instructions() const { return instr_; }

    /** Cheap estimate of the next issue time (for event ordering). */
    Cycle
    estimateNextIssue(std::uint32_t gap_instr) const
    {
        return cycle_ + gap_instr / config_.issue_width;
    }

  private:
    struct InFlight
    {
        std::uint64_t pos;  ///< Instruction position of the load.
        Cycle done;         ///< Cycle its data returns.
    };

    std::uint32_t inflightCount() const { return tail_ - head_; }
    bool inflightEmpty() const { return head_ == tail_; }
    InFlight &inflightFront() { return ring_[head_ & ring_mask_]; }
    const InFlight &
    inflightFront() const
    {
        return ring_[head_ & ring_mask_];
    }
    void popInflight() { ++head_; }

    CoreConfig config_;
    Cycle cycle_ = 0;
    std::uint64_t instr_ = 0;
    std::uint32_t frac_ = 0; ///< Sub-width instruction remainder.

    /** FIFO of outstanding loads in a power-of-two ring; occupancy
     *  never exceeds mshrs, so head_/tail_ wraparound is harmless. */
    std::vector<InFlight> ring_;
    std::uint32_t ring_mask_;
    std::uint32_t head_ = 0;
    std::uint32_t tail_ = 0;
};

} // namespace dice

#endif // DICE_SIM_CORE_MODEL_HPP
