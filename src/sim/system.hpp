/**
 * @file
 * Full-system assembly: N trace-driven cores -> (optional private
 * L1/L2) -> shared L3 -> L4 DRAM cache -> DDR main memory, with MAP-I
 * hit/miss prediction at the L4 boundary and the energy model on top.
 *
 * This is the driver every benchmark binary uses: construct a System
 * from a SystemConfig plus one workload profile per core, call run(),
 * and read the RunResult.
 */

#ifndef DICE_SIM_SYSTEM_HPP
#define DICE_SIM_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/sram_cache.hpp"
#include "common/flat_map.hpp"
#include "common/telemetry.hpp"
#include "core/dram_cache.hpp"
#include "core/l4_registry.hpp"
#include "core/mapi.hpp"
#include "sim/core_model.hpp"
#include "sim/energy.hpp"
#include "sim/memory.hpp"
#include "workloads/datagen.hpp"
#include "workloads/trace_arena.hpp"
#include "workloads/trace_source.hpp"
#include "workloads/tracegen.hpp"

namespace dice
{

/** Configuration of one simulated system. */
struct SystemConfig
{
    std::uint32_t num_cores = 8;
    CoreConfig core;

    /** Private L1/L2 are modeled only when use_l1_l2 is set; the
     *  benchmark harness drives L3-level traces for speed. */
    bool use_l1_l2 = false;
    SramCacheConfig l1{"l1", 16_KiB, 8, 4};
    SramCacheConfig l2{"l2", 64_KiB, 8, 12};
    SramCacheConfig l3{"l3", 256_KiB, 8, 30};

    /**
     * Tagged L4 organization config, consumed by the L4Registry:
     * l4.organization names the policy ("none" disables the L4),
     * l4.base is shared, and the policy-specific parameter group is
     * validated against the selected organization.
     */
    L4Config l4;

    DramTiming mem_timing = DramTiming::mainMemoryDdr();

    /** Forward the free spatial neighbor from L4 hits into L3. */
    bool extra_line_to_l3 = true;
    /** L3 next-line prefetch (Table 7). */
    bool l3_nextline_prefetch = false;
    /** 128-B wide fetch at L3 (Table 7). */
    bool l3_wide_fetch = false;

    /**
     * Footprints in profiles are expressed relative to a 1-GiB L4;
     * they are scaled by reference_capacity / 1 GiB. Keeping this
     * independent of the L4's actual capacity lets the 2x-capacity
     * studies grow the cache without shrinking the workload.
     */
    std::uint64_t reference_capacity = 32_MiB;

    /** L3-level references simulated per core (measurement phase). */
    std::uint64_t refs_per_core = 200'000;

    /**
     * References per core executed before measurement begins: cache
     * contents and predictor state carry over, statistics and cycle
     * counting restart at the boundary.
     */
    std::uint64_t warmup_refs_per_core = 0;

    EnergyParams energy;
    std::uint64_t seed = 1;
};

/** Measurements from one run. */
struct RunResult
{
    Cycle cycles = 0;
    std::vector<Cycle> core_cycles;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    double l3_hit_rate = 0.0;
    double l4_hit_rate = 0.0;
    std::uint64_t l4_reads = 0;
    std::uint64_t l4_extra_lines = 0;
    std::uint64_t l4_second_probes = 0;

    double cip_read_accuracy = 1.0;
    double cip_write_accuracy = 1.0;
    double mapi_accuracy = 1.0;

    /** Install-index distribution (Figure 11); fractions of installs. */
    double frac_invariant = 0.0;
    double frac_bai = 0.0;
    double frac_tsi = 0.0;

    /** Mean valid lines sampled during the run (Table 5). */
    double avg_valid_lines = 0.0;

    std::uint64_t l4_bytes = 0;
    std::uint64_t mem_bytes = 0;

    /** Mean latency of demand reads that missed L3 (cycles). */
    double avg_miss_latency = 0.0;

    EnergyBreakdown energy;
};

/** One simulated machine. */
class System
{
  public:
    /**
     * @param config System parameters.
     * @param core_profiles One workload profile per core (rate mode
     *        replicates a single profile).
     * @param replay Pre-generated per-core streams to replay (e.g.
     *        from the TraceArena); null generates live. A replayed
     *        run is bit-identical to a live one — the arena records
     *        exactly what the same (profile, region, seed) generator
     *        would emit — but a sweep pays generation only once per
     *        stream instead of once per organization column. Each
     *        stream must hold at least warmup + measured + 1
     *        references (the simulator primes one ahead).
     */
    System(const SystemConfig &config,
           std::vector<WorkloadProfile> core_profiles,
           std::shared_ptr<const TraceSet> replay = nullptr);

    /** The stat registry holds this-capturing providers over every
     *  component; moving or copying the system would dangle them. */
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Simulate refs_per_core references on every core. */
    RunResult run();

    /**
     * Telemetry registry over every component of this system (L3, L4
     * and its DRAM device, CIP, MAP-I, main memory, the trace arena).
     * Values are live; run() additionally appends interval snapshots
     * every DICE_STATS_INTERVAL references when that knob is set.
     */
    StatRegistry &statRegistry() { return registry_; }
    const StatRegistry &statRegistry() const { return registry_; }

    /** The L4, for white-box inspection in tests (may be null). */
    DramCache *l4() { return l4_.get(); }
    SramCache &l3() { return *l3_; }
    MainMemory &memory() { return mem_; }
    const DataGenerator &dataGenerator() const { return datagen_; }

    /** Data version the system currently attributes to @p line. */
    std::uint64_t expectedVersion(LineAddr line) const;

  private:
    struct CoreState
    {
        TraceCore core;
        std::unique_ptr<TraceSource> trace;
        std::unique_ptr<SramCache> l1;
        std::unique_ptr<SramCache> l2;
        std::uint64_t refs_done = 0;
        MemRef pending{};
    };

    /** Process one reference of core @p cid; returns issue cycle. */
    void step(std::uint32_t cid);

    /** Run every core up to @p target_refs references. */
    void runPhase(std::uint64_t target_refs);

    /** Reset statistics at the warmup/measurement boundary. */
    void resetAllStats();

    /** Register every component's StatGroup provider (ctor tail). */
    void registerStats();

    /**
     * Service an L3 miss for @p line at @p when; fills L3 (dirty with
     * @p ver when @p make_dirty). Returns data-ready cycle.
     */
    Cycle fetchIntoL3(LineAddr line, Cycle when, std::uint64_t pc,
                      bool make_dirty, std::uint64_t ver);

    /** Install into L3, cascading dirty victims to L4/memory. */
    void installIntoL3(LineAddr line, bool dirty, std::uint64_t payload,
                       Cycle when);

    /** Push a dirty line below L3 (L4 install or memory write). */
    void writebackBelowL3(LineAddr line, std::uint64_t payload,
                          Cycle when);

    void drainWritebacks(const WritebackList &wbs, Cycle when);

    /**
     * Stream the lines an install requested via fill_fetches from
     * main memory into the L4 (page-granularity organizations):
     * charges the DDR read traffic and hands each payload back
     * through DramCache::completeFill().
     */
    void serviceFillFetches(const L4WriteResult &res, Cycle when);

    std::uint64_t bumpVersion(LineAddr line);

    SystemConfig cfg_;
    std::vector<WorkloadProfile> profiles_;
    DataGenerator datagen_;
    std::vector<CoreState> cores_;
    std::unique_ptr<SramCache> l3_;
    std::unique_ptr<DramCache> l4_;
    MainMemory mem_;
    MapI mapi_;

    /** Open-addressed line -> store count (hot on every write ref). */
    FlatMap<LineAddr, std::uint64_t> write_counts_;
    std::uint64_t refs_total_ = 0;
    double miss_latency_sum_ = 0.0;
    std::uint64_t miss_latency_count_ = 0;
    std::uint64_t valid_samples_ = 0;
    double valid_accum_ = 0.0;
    std::uint64_t sample_interval_ = 0;

    StatRegistry registry_;
    /**
     * Refs over the system's whole lifetime. Unlike refs_total_ it is
     * never reset at the warmup/measure boundary, so the interval
     * snapshots it stamps stay strictly monotonic across the run.
     */
    std::uint64_t refs_lifetime_ = 0;
    /** Refs between interval snapshots (DICE_STATS_INTERVAL; 0=off). */
    std::uint64_t stats_interval_refs_ = 0;
    /** Label interval snapshots carry ("warmup" / "measure"). */
    const char *phase_ = "warmup";
};

/** Weighted speedup of @p test over @p base (per-core cycle ratios). */
double weightedSpeedup(const RunResult &base, const RunResult &test);

} // namespace dice

#endif // DICE_SIM_SYSTEM_HPP
