/**
 * @file
 * Activity-based off-chip energy model (paper Section 6.9, Figure 14).
 *
 * Energy is charged per byte moved and per row activation at each DRAM
 * device, plus a constant background power; performance (delay) comes
 * from the timing simulation. The paper's energy result is driven by
 * DICE reducing DRAM-cache and memory access counts, which this model
 * captures directly.
 */

#ifndef DICE_SIM_ENERGY_HPP
#define DICE_SIM_ENERGY_HPP

#include "common/types.hpp"
#include "dram/dram.hpp"

namespace dice
{

/** Energy/power coefficients (HBM vs DDR rough constants). */
struct EnergyParams
{
    /** Stacked-DRAM I/O + array energy per byte (pJ); ~7 pJ/bit. */
    double l4_pj_per_byte = 56.0;
    /** Stacked-DRAM row activation energy (pJ). */
    double l4_pj_per_activate = 2000.0;
    /** Off-chip DDR energy per byte (pJ); ~20 pJ/bit. */
    double mem_pj_per_byte = 160.0;
    /** DDR row activation energy (pJ). */
    double mem_pj_per_activate = 3000.0;
    /** Combined L4+memory background power (mW). */
    double background_mw = 400.0;
    /** Core clock for converting cycles to seconds (GHz). */
    double cpu_freq_ghz = 3.2;
};

/** Result of an energy evaluation over one run. */
struct EnergyBreakdown
{
    double l4_nj = 0.0;
    double mem_nj = 0.0;
    double background_nj = 0.0;
    double total_nj = 0.0;
    /** Average off-chip power over the run (W). */
    double avg_power_w = 0.0;
    /** Energy-delay product (nJ * s). */
    double edp = 0.0;
    double seconds = 0.0;
};

/**
 * Charge @p l4 and @p mem device activity over @p cycles. @p l4 may be
 * null for a system without a DRAM cache.
 */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const DramDevice *l4, const DramDevice &mem,
                              Cycle cycles);

} // namespace dice

#endif // DICE_SIM_ENERGY_HPP
