/**
 * @file
 * Set-associative SRAM cache model used for the on-chip L1/L2/L3 levels.
 *
 * The model is functional + statistical: it tracks tag/valid/dirty/LRU
 * state and a 64-bit payload per line (the workload "data version", used
 * to check end-to-end value correctness), while latency is charged by
 * the system model. Write-back, write-allocate.
 */

#ifndef DICE_CACHE_SRAM_CACHE_HPP
#define DICE_CACHE_SRAM_CACHE_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/small_vector.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dice
{

/** Configuration of one SRAM cache level. */
struct SramCacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32_KiB;
    std::uint32_t ways = 8;
    /** Access latency charged on a hit, in CPU cycles. */
    Cycle hit_latency = 4;
};

/** A line pushed out of the cache by an install. */
struct EvictedLine
{
    LineAddr line = 0;
    bool dirty = false;
    /** Data version carried by the line (see workloads/datagen). */
    std::uint64_t payload = 0;
};

/**
 * Dirty victims produced by one install. Inline capacity covers the
 * overwhelmingly common case (an install evicts at most a few items),
 * so building the list performs no heap allocation.
 */
using WritebackList = SmallVector<EvictedLine, 6>;

/** Set-associative, LRU, write-back, write-allocate SRAM cache. */
class SramCache
{
  public:
    explicit SramCache(const SramCacheConfig &config);

    /**
     * Look up @p line; on a hit the LRU state is updated and, for
     * writes, the line is marked dirty with its payload replaced.
     * @return true on hit.
     */
    bool access(LineAddr line, AccessType type, std::uint64_t payload = 0);

    /**
     * Install @p line (write-allocate or demand fill). Marks the way
     * MRU. Returns the victim when a valid line had to be evicted.
     */
    std::optional<EvictedLine> install(LineAddr line, bool dirty,
                                       std::uint64_t payload);

    /** True when the line is resident (no LRU side effects). */
    bool contains(LineAddr line) const;

    /** Payload of a resident line; nullopt when absent. */
    std::optional<std::uint64_t> payloadOf(LineAddr line) const;

    /** Drop @p line if resident; returns its state when it was dirty. */
    std::optional<EvictedLine> invalidate(LineAddr line);

    const SramCacheConfig &config() const { return config_; }
    std::uint32_t numSets() const { return num_sets_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t dirtyEvictions() const { return dirty_evictions_; }
    std::uint64_t installs() const { return installs_; }

    /** Hit fraction over all accesses (0 when idle). */
    double hitRate() const;

    /** Number of currently-valid lines (for occupancy checks). */
    std::uint64_t validLines() const;

    void resetStats();

    StatGroup stats() const;

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t payload = 0;
        std::uint64_t lru = 0; // larger = more recently used
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setOf(LineAddr line) const;
    std::uint64_t tagOf(LineAddr line) const;

    Way *findWay(LineAddr line);
    const Way *findWay(LineAddr line) const;

    SramCacheConfig config_;
    std::uint32_t num_sets_;
    std::vector<Way> ways_; // num_sets_ * config_.ways, row-major
    std::uint64_t lru_clock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t dirty_evictions_ = 0;
    std::uint64_t installs_ = 0;
};

} // namespace dice

#endif // DICE_CACHE_SRAM_CACHE_HPP
