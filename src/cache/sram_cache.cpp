#include "sram_cache.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace dice
{

SramCache::SramCache(const SramCacheConfig &config) : config_(config)
{
    dice_assert(config.ways > 0, "cache %s with zero ways",
                config.name.c_str());
    const std::uint64_t lines = config.size_bytes / kLineSize;
    dice_assert(lines % config.ways == 0,
                "cache %s: %llu lines not divisible by %u ways",
                config.name.c_str(),
                static_cast<unsigned long long>(lines), config.ways);
    num_sets_ = static_cast<std::uint32_t>(lines / config.ways);
    dice_assert(isPowerOfTwo(num_sets_), "cache %s: %u sets not 2^k",
                config.name.c_str(), num_sets_);
    ways_.resize(static_cast<std::size_t>(num_sets_) * config.ways);
}

std::uint32_t
SramCache::setOf(LineAddr line) const
{
    return static_cast<std::uint32_t>(line & (num_sets_ - 1));
}

std::uint64_t
SramCache::tagOf(LineAddr line) const
{
    return line >> floorLog2(num_sets_);
}

SramCache::Way *
SramCache::findWay(LineAddr line)
{
    const std::uint64_t tag = tagOf(line);
    Way *set = &ways_[static_cast<std::size_t>(setOf(line)) * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const SramCache::Way *
SramCache::findWay(LineAddr line) const
{
    return const_cast<SramCache *>(this)->findWay(line);
}

bool
SramCache::access(LineAddr line, AccessType type, std::uint64_t payload)
{
    Way *way = findWay(line);
    if (!way) {
        ++misses_;
        return false;
    }
    ++hits_;
    way->lru = ++lru_clock_;
    if (type == AccessType::Write || type == AccessType::Writeback) {
        way->dirty = true;
        way->payload = payload;
    }
    return true;
}

std::optional<EvictedLine>
SramCache::install(LineAddr line, bool dirty, std::uint64_t payload)
{
    ++installs_;

    if (Way *way = findWay(line)) {
        // Refill of a resident line (e.g. upgrade): refresh in place.
        way->lru = ++lru_clock_;
        way->dirty = way->dirty || dirty;
        way->payload = payload;
        return std::nullopt;
    }

    Way *set = &ways_[static_cast<std::size_t>(setOf(line)) * config_.ways];
    Way *victim = &set[0];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lru < victim->lru)
            victim = &set[w];
    }

    std::optional<EvictedLine> evicted;
    if (victim->valid) {
        ++evictions_;
        if (victim->dirty)
            ++dirty_evictions_;
        const std::uint64_t set_idx =
            static_cast<std::uint64_t>(setOf(line));
        evicted = EvictedLine{
            (victim->tag << floorLog2(num_sets_)) | set_idx,
            victim->dirty, victim->payload};
    }

    victim->tag = tagOf(line);
    victim->payload = payload;
    victim->lru = ++lru_clock_;
    victim->valid = true;
    victim->dirty = dirty;
    return evicted;
}

bool
SramCache::contains(LineAddr line) const
{
    return findWay(line) != nullptr;
}

std::optional<std::uint64_t>
SramCache::payloadOf(LineAddr line) const
{
    const Way *way = findWay(line);
    if (!way)
        return std::nullopt;
    return way->payload;
}

std::optional<EvictedLine>
SramCache::invalidate(LineAddr line)
{
    Way *way = findWay(line);
    if (!way)
        return std::nullopt;
    way->valid = false;
    std::optional<EvictedLine> out;
    if (way->dirty)
        out = EvictedLine{line, true, way->payload};
    way->dirty = false;
    return out;
}

double
SramCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
}

std::uint64_t
SramCache::validLines() const
{
    std::uint64_t n = 0;
    for (const Way &w : ways_) {
        if (w.valid)
            ++n;
    }
    return n;
}

void
SramCache::resetStats()
{
    hits_ = misses_ = evictions_ = dirty_evictions_ = installs_ = 0;
}

StatGroup
SramCache::stats() const
{
    StatGroup g(config_.name);
    g.addFormula("hits", [this]() { return double(hits_); });
    g.addFormula("misses", [this]() { return double(misses_); });
    g.addFormula("hit_rate", [this]() { return hitRate(); });
    g.addFormula("evictions", [this]() { return double(evictions_); });
    g.addFormula("dirty_evictions",
                 [this]() { return double(dirty_evictions_); });
    g.addFormula("installs", [this]() { return double(installs_); });
    return g;
}

} // namespace dice
