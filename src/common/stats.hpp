/**
 * @file
 * Lightweight statistics framework.
 *
 * Subsystems expose their counters through a StatGroup so that tests,
 * examples, and the benchmark harness can enumerate and print them
 * uniformly. The design is a deliberately small subset of the gem5 stats
 * package: scalars, formulas (lazy ratios), and fixed-bucket histograms.
 */

#ifndef DICE_COMMON_STATS_HPP
#define DICE_COMMON_STATS_HPP

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace dice
{

/** A monotonically-increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used between measurement phases). */
    void reset() { value_ = 0; }

    operator std::uint64_t() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Histogram with fixed-width buckets plus an overflow bucket. */
class Histogram
{
  public:
    /**
     * @param n_buckets Number of regular buckets.
     * @param bucket_width Width of each bucket in sample units.
     */
    explicit Histogram(std::uint32_t n_buckets = 16,
                       std::uint64_t bucket_width = 1)
        : width_(bucket_width), buckets_(n_buckets + 1, 0)
    {
        // sample() divides by the width; a zero width would fault on
        // the first sample, far from the misconfiguration.
        dice_assert(bucket_width > 0, "Histogram bucket_width must be > 0");
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        const std::uint64_t idx = v / width_;
        const std::uint64_t cap = buckets_.size() - 1;
        ++buckets_[idx < cap ? idx : cap];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }

    /** Mean of all samples (0 when empty). */
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /** Count in bucket @p i (the last bucket is the overflow bucket). */
    std::uint64_t bucket(std::uint32_t i) const { return buckets_.at(i); }

    /** Inclusive lower edge of bucket @p i. */
    double
    bucketLoEdge(std::uint32_t i) const
    {
        return static_cast<double>(width_) * i;
    }

    /** Exclusive upper edge of bucket @p i. The overflow bucket's
     *  true edge is unbounded; the observed max is its tightest
     *  honest stand-in. */
    double
    bucketHiEdge(std::uint32_t i) const
    {
        if (i + 1 >= numBuckets())
            return std::max(bucketLoEdge(i),
                            static_cast<double>(max_));
        return static_cast<double>(width_) * (i + 1);
    }

    std::uint32_t
    numBuckets() const
    {
        return static_cast<std::uint32_t>(buckets_.size());
    }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        sum_ = count_ = max_ = 0;
    }

    /**
     * Quantile estimate (q in [0, 1]) by linear interpolation inside
     * the bucket containing the rank, clamped to [0, max()]. 0 when
     * empty.
     */
    double percentile(double q) const;

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Mergeable log-bucketed histogram.
 *
 * Bucket edges are *fixed* powers of two — bucket 0 holds exact
 * zeros, bucket i >= 1 holds [2^(i-1), 2^i) — so histograms recorded
 * by different sweep participants (other threads, other processes,
 * other hosts) merge exactly: merge() is elementwise bucket addition,
 * and the merged histogram is bit-identical to one that sampled the
 * concatenated streams. That is the property the distributed sweep
 * needs to report cross-worker phase-latency percentiles without ever
 * shipping raw samples.
 *
 * Storage is a fixed std::array, so construction and sample() never
 * allocate (the hot-path hooks are gated by the micro_simloop
 * allocation check). Not internally synchronized.
 */
class LogHistogram
{
  public:
    /** Bucket 0 (zeros) + one bucket per bit position of uint64. */
    static constexpr std::uint32_t kBuckets = 65;

    /** Bucket index of @p v: 0 for 0, otherwise bit_width(v). */
    static std::uint32_t
    bucketIndex(std::uint64_t v)
    {
        std::uint32_t w = 0;
        while (v != 0) {
            v >>= 1;
            ++w;
        }
        return w;
    }

    /** Inclusive lower edge of bucket @p i. */
    static std::uint64_t
    bucketLo(std::uint32_t i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Exclusive upper edge of bucket @p i (saturates for the top
     *  bucket, whose true edge 2^64 does not fit in uint64). */
    static std::uint64_t
    bucketHi(std::uint32_t i)
    {
        if (i == 0)
            return 1;
        if (i >= 64)
            return ~std::uint64_t{0};
        return std::uint64_t{1} << i;
    }

    /** Record one sample. Allocation-free. */
    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
        if (v < min_)
            min_ = v;
    }

    /** Fold @p other in: exact (see class comment). */
    void merge(const LogHistogram &other);

    /**
     * This histogram minus an earlier snapshot @p since of the *same*
     * histogram: bucket counts, count, and sum become the activity in
     * between (exact — counts are monotone). min/max stay cumulative:
     * extremes of a window are not derivable from two snapshots, and
     * every consumer (percentile clamping, straggler detection) wants
     * an upper bound anyway.
     */
    LogHistogram subtracted(const LogHistogram &since) const;

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t bucket(std::uint32_t i) const { return buckets_.at(i); }

    /** Mean of all samples (0 when empty). */
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /**
     * Quantile estimate (q in [0, 1]): linear interpolation inside
     * the bucket containing the rank, clamped to the observed
     * [min(), max()] so a wide top bucket cannot report a value no
     * sample reached. 0 when empty.
     */
    double percentile(double q) const;

    void reset() { *this = LogHistogram{}; }

    /** Rebuild from serialized parts (cross-process transport);
     *  count is the sum of @p buckets. */
    static LogHistogram
    fromParts(const std::array<std::uint64_t, kBuckets> &buckets,
              std::uint64_t sum, std::uint64_t max, std::uint64_t min);

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
};

/**
 * A named collection of statistics. Values are captured through
 * accessor lambdas so that a group can expose both raw counters and
 * derived formulas without storage duplication.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a raw counter under @p stat_name (panics on a name
     *  already registered in this group). */
    void
    addCounter(const std::string &stat_name, const Counter &c)
    {
        checkFresh(stat_name);
        entries_.push_back(
            {stat_name, [&c]() { return static_cast<double>(c.value()); }});
    }

    /** Register a derived value (ratio, percentage, ...); panics on a
     *  name already registered in this group. */
    void
    addFormula(const std::string &stat_name, std::function<double()> f)
    {
        checkFresh(stat_name);
        entries_.push_back({stat_name, std::move(f)});
    }

    /**
     * Register a histogram as a family of "<stat_name>.*" entries:
     * count/sum/mean/max, p50/p90/p99 quantiles, and a lo/hi/count
     * triple per non-empty bucket — explicit edges, so no consumer
     * ever re-derives bucket widths from the implementation. Unlike
     * addCounter, values are *frozen at registration time*: groups
     * are materialized on demand by their registry provider (so a
     * fresh group always carries current values) and freezing keeps
     * the export race-free against concurrent samplers.
     */
    void addHistogram(const std::string &stat_name, const Histogram &h);

    /** addHistogram for a LogHistogram (same entry family, same
     *  frozen-at-registration semantics). */
    void addLogHistogram(const std::string &stat_name,
                         const LogHistogram &h);

    const std::string &name() const { return name_; }

    std::size_t size() const { return entries_.size(); }

    /** Render "group.stat value" lines, one per entry. */
    std::string dump() const;

    /** Look up a stat by name; returns NaN when absent. */
    double get(const std::string &stat_name) const;

    /** Materialize every entry as (name, current value) rows. */
    std::vector<std::pair<std::string, double>> collect() const;

  private:
    struct Entry
    {
        std::string name;
        std::function<double()> value;
    };

    /** Panic when @p stat_name is already registered: a silent
     *  collision would make get() return whichever came first. */
    void checkFresh(const std::string &stat_name) const;

    std::string name_;
    std::vector<Entry> entries_;
};

/** Geometric mean of a vector of positive values (1.0 when empty). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0.0 when empty). */
double mean(const std::vector<double> &values);

} // namespace dice

#endif // DICE_COMMON_STATS_HPP
