/**
 * @file
 * Lightweight statistics framework.
 *
 * Subsystems expose their counters through a StatGroup so that tests,
 * examples, and the benchmark harness can enumerate and print them
 * uniformly. The design is a deliberately small subset of the gem5 stats
 * package: scalars, formulas (lazy ratios), and fixed-bucket histograms.
 */

#ifndef DICE_COMMON_STATS_HPP
#define DICE_COMMON_STATS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace dice
{

/** A monotonically-increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used between measurement phases). */
    void reset() { value_ = 0; }

    operator std::uint64_t() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Histogram with fixed-width buckets plus an overflow bucket. */
class Histogram
{
  public:
    /**
     * @param n_buckets Number of regular buckets.
     * @param bucket_width Width of each bucket in sample units.
     */
    explicit Histogram(std::uint32_t n_buckets = 16,
                       std::uint64_t bucket_width = 1)
        : width_(bucket_width), buckets_(n_buckets + 1, 0)
    {
        // sample() divides by the width; a zero width would fault on
        // the first sample, far from the misconfiguration.
        dice_assert(bucket_width > 0, "Histogram bucket_width must be > 0");
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        const std::uint64_t idx = v / width_;
        const std::uint64_t cap = buckets_.size() - 1;
        ++buckets_[idx < cap ? idx : cap];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }

    /** Mean of all samples (0 when empty). */
    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /** Count in bucket @p i (the last bucket is the overflow bucket). */
    std::uint64_t bucket(std::uint32_t i) const { return buckets_.at(i); }

    std::uint32_t
    numBuckets() const
    {
        return static_cast<std::uint32_t>(buckets_.size());
    }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        sum_ = count_ = max_ = 0;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics. Values are captured through
 * accessor lambdas so that a group can expose both raw counters and
 * derived formulas without storage duplication.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a raw counter under @p stat_name (panics on a name
     *  already registered in this group). */
    void
    addCounter(const std::string &stat_name, const Counter &c)
    {
        checkFresh(stat_name);
        entries_.push_back(
            {stat_name, [&c]() { return static_cast<double>(c.value()); }});
    }

    /** Register a derived value (ratio, percentage, ...); panics on a
     *  name already registered in this group. */
    void
    addFormula(const std::string &stat_name, std::function<double()> f)
    {
        checkFresh(stat_name);
        entries_.push_back({stat_name, std::move(f)});
    }

    const std::string &name() const { return name_; }

    std::size_t size() const { return entries_.size(); }

    /** Render "group.stat value" lines, one per entry. */
    std::string dump() const;

    /** Look up a stat by name; returns NaN when absent. */
    double get(const std::string &stat_name) const;

    /** Materialize every entry as (name, current value) rows. */
    std::vector<std::pair<std::string, double>> collect() const;

  private:
    struct Entry
    {
        std::string name;
        std::function<double()> value;
    };

    /** Panic when @p stat_name is already registered: a silent
     *  collision would make get() return whichever came first. */
    void checkFresh(const std::string &stat_name) const;

    std::string name_;
    std::vector<Entry> entries_;
};

/** Geometric mean of a vector of positive values (1.0 when empty). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (0.0 when empty). */
double mean(const std::vector<double> &values);

} // namespace dice

#endif // DICE_COMMON_STATS_HPP
