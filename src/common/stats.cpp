#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dice
{

std::string
StatGroup::dump() const
{
    std::string out;
    char buf[256];
    for (const auto &e : entries_) {
        std::snprintf(buf, sizeof buf, "%s.%s %.6g\n", name_.c_str(),
                      e.name.c_str(), e.value());
        out += buf;
    }
    return out;
}

double
StatGroup::get(const std::string &stat_name) const
{
    for (const auto &e : entries_) {
        if (e.name == stat_name)
            return e.value();
    }
    return std::numeric_limits<double>::quiet_NaN();
}

std::vector<std::pair<std::string, double>>
StatGroup::collect() const
{
    std::vector<std::pair<std::string, double>> rows;
    rows.reserve(entries_.size());
    for (const auto &e : entries_)
        rows.emplace_back(e.name, e.value());
    return rows;
}

void
StatGroup::checkFresh(const std::string &stat_name) const
{
    for (const auto &e : entries_) {
        if (e.name == stat_name) {
            dice_panic("duplicate stat '%s' in group '%s'",
                       stat_name.c_str(), name_.c_str());
        }
    }
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace dice
