#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dice
{

std::string
StatGroup::dump() const
{
    std::string out;
    char buf[256];
    for (const auto &e : entries_) {
        std::snprintf(buf, sizeof buf, "%s.%s %.6g\n", name_.c_str(),
                      e.name.c_str(), e.value());
        out += buf;
    }
    return out;
}

double
StatGroup::get(const std::string &stat_name) const
{
    for (const auto &e : entries_) {
        if (e.name == stat_name)
            return e.value();
    }
    return std::numeric_limits<double>::quiet_NaN();
}

std::vector<std::pair<std::string, double>>
StatGroup::collect() const
{
    std::vector<std::pair<std::string, double>> rows;
    rows.reserve(entries_.size());
    for (const auto &e : entries_)
        rows.emplace_back(e.name, e.value());
    return rows;
}

namespace
{

/**
 * Shared quantile estimator: walk @p bucket_count buckets whose
 * cumulative counts locate the rank q*count, then interpolate
 * linearly between bucket(i)'s [lo, hi) edges and clamp to the
 * observed [clamp_lo, clamp_hi].
 */
double
bucketPercentile(double q, std::uint64_t count,
                 std::uint32_t bucket_count,
                 const std::function<std::uint64_t(std::uint32_t)> &bucket,
                 const std::function<double(std::uint32_t)> &lo,
                 const std::function<double(std::uint32_t)> &hi,
                 double clamp_lo, double clamp_hi)
{
    if (count == 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * static_cast<double>(count);
    double cum = 0.0;
    for (std::uint32_t i = 0; i < bucket_count; ++i) {
        const std::uint64_t c = bucket(i);
        if (c == 0)
            continue;
        cum += static_cast<double>(c);
        if (cum >= target) {
            double frac =
                1.0 - (cum - target) / static_cast<double>(c);
            frac = std::min(1.0, std::max(0.0, frac));
            const double v = lo(i) + frac * (hi(i) - lo(i));
            return std::min(clamp_hi, std::max(clamp_lo, v));
        }
    }
    return clamp_hi;
}

/** The shared "<name>.*" histogram entry family (see addHistogram). */
template <typename H>
void
addHistogramEntries(StatGroup &g, const std::string &stat_name,
                    const H &h,
                    const std::function<double(std::uint32_t)> &lo,
                    const std::function<double(std::uint32_t)> &hi,
                    std::uint32_t bucket_count)
{
    const auto freeze = [&g, &stat_name](const char *suffix, double v) {
        g.addFormula(stat_name + "." + suffix, [v] { return v; });
    };
    freeze("count", static_cast<double>(h.count()));
    freeze("sum", static_cast<double>(h.sum()));
    freeze("mean", h.mean());
    freeze("max", static_cast<double>(h.max()));
    freeze("p50", h.percentile(0.50));
    freeze("p90", h.percentile(0.90));
    freeze("p99", h.percentile(0.99));
    for (std::uint32_t i = 0; i < bucket_count; ++i) {
        const std::uint64_t c = h.bucket(i);
        if (c == 0)
            continue;
        const std::string prefix =
            stat_name + ".bucket" + std::to_string(i);
        g.addFormula(prefix + ".lo", [v = lo(i)] { return v; });
        g.addFormula(prefix + ".hi", [v = hi(i)] { return v; });
        g.addFormula(prefix + ".count",
                     [v = static_cast<double>(c)] { return v; });
    }
}

} // namespace

double
Histogram::percentile(double q) const
{
    return bucketPercentile(
        q, count_, numBuckets(),
        [this](std::uint32_t i) { return buckets_[i]; },
        [this](std::uint32_t i) { return bucketLoEdge(i); },
        [this](std::uint32_t i) { return bucketHiEdge(i); },
        0.0, static_cast<double>(max_));
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (std::uint32_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    sum_ += other.sum_;
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
    min_ = std::min(min_, other.min_);
}

LogHistogram
LogHistogram::subtracted(const LogHistogram &since) const
{
    LogHistogram out;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
        dice_assert(buckets_[i] >= since.buckets_[i],
                    "LogHistogram::subtracted: snapshot is not a "
                    "prefix of this histogram");
        out.buckets_[i] = buckets_[i] - since.buckets_[i];
    }
    out.sum_ = sum_ - since.sum_;
    out.count_ = count_ - since.count_;
    out.max_ = max_;
    out.min_ = min_;
    return out;
}

LogHistogram
LogHistogram::fromParts(
    const std::array<std::uint64_t, kBuckets> &buckets,
    std::uint64_t sum, std::uint64_t max, std::uint64_t min)
{
    LogHistogram out;
    out.buckets_ = buckets;
    out.sum_ = sum;
    out.count_ = 0;
    for (const std::uint64_t c : buckets)
        out.count_ += c;
    out.max_ = max;
    out.min_ = out.count_ == 0 ? ~std::uint64_t{0} : min;
    return out;
}

double
LogHistogram::percentile(double q) const
{
    return bucketPercentile(
        q, count_, kBuckets,
        [this](std::uint32_t i) { return buckets_[i]; },
        [](std::uint32_t i) {
            return static_cast<double>(bucketLo(i));
        },
        [this](std::uint32_t i) {
            // Clamp the top bucket to the observed max (its nominal
            // edge 2^64 would dominate any interpolation).
            return std::min(static_cast<double>(bucketHi(i)),
                            static_cast<double>(max_));
        },
        static_cast<double>(min()), static_cast<double>(max_));
}

void
StatGroup::addHistogram(const std::string &stat_name, const Histogram &h)
{
    addHistogramEntries(
        *this, stat_name, h,
        [&h](std::uint32_t i) { return h.bucketLoEdge(i); },
        [&h](std::uint32_t i) { return h.bucketHiEdge(i); },
        h.numBuckets());
}

void
StatGroup::addLogHistogram(const std::string &stat_name,
                           const LogHistogram &h)
{
    addHistogramEntries(
        *this, stat_name, h,
        [](std::uint32_t i) {
            return static_cast<double>(LogHistogram::bucketLo(i));
        },
        [](std::uint32_t i) {
            return static_cast<double>(LogHistogram::bucketHi(i));
        },
        LogHistogram::kBuckets);
}

void
StatGroup::checkFresh(const std::string &stat_name) const
{
    for (const auto &e : entries_) {
        if (e.name == stat_name) {
            dice_panic("duplicate stat '%s' in group '%s'",
                       stat_name.c_str(), name_.c_str());
        }
    }
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace dice
