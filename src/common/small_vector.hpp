/**
 * @file
 * Small-buffer vector for the simulation hot loop.
 *
 * Eviction writeback lists are built once per install and almost always
 * hold zero to a handful of entries, but std::vector pays a heap
 * allocation for the first push_back — millions of allocations per
 * sweep. SmallVector keeps the first N elements inline and only spills
 * to the heap beyond that, so the common case allocates nothing.
 */

#ifndef DICE_COMMON_SMALL_VECTOR_HPP
#define DICE_COMMON_SMALL_VECTOR_HPP

#include <array>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace dice
{

/** Vector with inline storage for the first N elements. */
template <typename T, std::size_t N>
class SmallVector
{
    static_assert(N > 0, "inline capacity must be positive");
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector keeps elements in a plain buffer");

  public:
    SmallVector() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    push_back(const T &value)
    {
        if (spill_.empty()) {
            if (size_ < N) {
                buf_[size_++] = value;
                return;
            }
            // First spill: migrate the inline elements so the contents
            // stay contiguous for iteration.
            spill_.reserve(2 * N);
            spill_.insert(spill_.end(), buf_.begin(), buf_.end());
        }
        spill_.push_back(value);
        ++size_;
    }

    /** Drop all elements; spill capacity is retained for reuse. */
    void
    clear()
    {
        spill_.clear();
        size_ = 0;
    }

    T *data() { return spill_.empty() ? buf_.data() : spill_.data(); }
    const T *
    data() const
    {
        return spill_.empty() ? buf_.data() : spill_.data();
    }

    T *begin() { return data(); }
    T *end() { return data() + size_; }
    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }

    T &operator[](std::size_t i) { return data()[i]; }
    const T &operator[](std::size_t i) const { return data()[i]; }

  private:
    std::size_t size_ = 0;
    std::array<T, N> buf_{};
    std::vector<T> spill_;
};

} // namespace dice

#endif // DICE_COMMON_SMALL_VECTOR_HPP
