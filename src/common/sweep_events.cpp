#include "sweep_events.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/claim_file.hpp"
#include "common/log.hpp"
#include "common/telemetry.hpp"

namespace dice
{

namespace
{

std::uint64_t
wallMicroseconds()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

// ---------------------------------------------------------------------
// SweepMetrics.

const char *
sweepPhaseName(SweepPhase p)
{
    switch (p) {
      case SweepPhase::ClaimWait:
        return "claim_wait_us";
      case SweepPhase::Generate:
        return "generate_us";
      case SweepPhase::Simulate:
        return "simulate_us";
      case SweepPhase::Export:
        return "export_us";
      case SweepPhase::Cell:
        return "cell_us";
      case SweepPhase::LeaseAcquire:
        return "lease_acquire_us";
      case SweepPhase::LeaseRefresh:
        return "lease_refresh_us";
    }
    return "unknown";
}

SweepMetrics &
SweepMetrics::instance()
{
    static SweepMetrics metrics;
    return metrics;
}

void
SweepMetrics::sample(SweepPhase p, std::uint64_t us)
{
    std::lock_guard lock(mu_);
    hists_[static_cast<unsigned>(p)].sample(us);
}

void
SweepMetrics::noteCell(const std::string &cell, std::uint64_t us)
{
    std::lock_guard lock(mu_);
    hists_[static_cast<unsigned>(SweepPhase::Cell)].sample(us);
    if (us > slowest_us_) {
        slowest_us_ = us;
        slowest_cell_ = cell;
    }
}

LogHistogram
SweepMetrics::snapshot(SweepPhase p) const
{
    std::lock_guard lock(mu_);
    return hists_[static_cast<unsigned>(p)];
}

std::array<LogHistogram, kSweepPhases>
SweepMetrics::snapshotAll() const
{
    std::lock_guard lock(mu_);
    return hists_;
}

std::pair<std::string, std::uint64_t>
SweepMetrics::slowestCell() const
{
    std::lock_guard lock(mu_);
    return {slowest_cell_, slowest_us_};
}

StatGroup
SweepMetrics::statGroup() const
{
    const std::array<LogHistogram, kSweepPhases> hists = snapshotAll();
    StatGroup g("sweep");
    for (unsigned i = 0; i < kSweepPhases; ++i) {
        g.addLogHistogram(sweepPhaseName(static_cast<SweepPhase>(i)),
                          hists[i]);
    }
    return g;
}

void
SweepMetrics::resetForTest()
{
    std::lock_guard lock(mu_);
    for (LogHistogram &h : hists_)
        h.reset();
    slowest_cell_.clear();
    slowest_us_ = 0;
}

// ---------------------------------------------------------------------
// SweepJournal.

SweepJournal &
SweepJournal::instance()
{
    static SweepJournal journal;
    return journal;
}

bool
SweepJournal::open(const std::filesystem::path &events_dir,
                   const std::string &participant)
{
    std::lock_guard lock(mu_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
        enabled_.store(false, std::memory_order_relaxed);
    }
    std::error_code ec;
    std::filesystem::create_directories(events_dir, ec);
    const std::filesystem::path path =
        events_dir / (sanitizeFileStem(participant) + ".jsonl");
    file_ = std::fopen(path.string().c_str(), "a");
    if (file_ == nullptr) {
        dice_warn("sweep: cannot open event journal %s",
                  path.string().c_str());
        return false;
    }
    participant_ = sanitizeFileStem(participant);
    mono_epoch_ = std::chrono::steady_clock::now();

    std::string host;
    appendJsonEscaped(host, claimHost());
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"epoch\",\"participant\":\"%s\","
                  "\"pid\":%ld,\"host\":\"%s\","
                  "\"wall_us\":%" PRIu64 ",\"mono_us\":0}\n",
                  participant_.c_str(), claimPid(), host.c_str(),
                  wallMicroseconds());
    std::fputs(buf, file_);
    std::fflush(file_);
    enabled_.store(true, std::memory_order_relaxed);
    return true;
}

void
SweepJournal::close()
{
    std::lock_guard lock(mu_);
    enabled_.store(false, std::memory_order_relaxed);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

std::uint64_t
SweepJournal::monoUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - mono_epoch_)
            .count());
}

void
SweepJournal::writeRecord(const char *body)
{
    // One record per line, flushed immediately: a SIGKILLed worker's
    // journal is complete up to its final event, which is exactly
    // what the post-mortem timeline needs.
    std::lock_guard lock(mu_);
    if (file_ == nullptr)
        return;
    std::fputs(body, file_);
    std::fflush(file_);
}

void
SweepJournal::mark(const char *name, const std::string &detail)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"mark\",\"name\":\"%s\",\"detail\":\"%s\","
                  "\"wall_us\":%" PRIu64 ",\"mono_us\":%" PRIu64 "}\n",
                  name, detail.c_str(), wallMicroseconds(), monoUs());
    writeRecord(buf);
}

void
SweepJournal::claim(const std::string &cell, bool stolen, bool requeued,
                    std::uint64_t wait_us)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"claim\",\"cell\":\"%s\",\"stolen\":%d,"
                  "\"requeued\":%d,\"wait_us\":%" PRIu64
                  ",\"wall_us\":%" PRIu64 ",\"mono_us\":%" PRIu64 "}\n",
                  cell.c_str(), stolen ? 1 : 0, requeued ? 1 : 0,
                  wait_us, wallMicroseconds(), monoUs());
    writeRecord(buf);
}

void
SweepJournal::begin(const char *phase, const std::string &cell)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"begin\",\"phase\":\"%s\",\"cell\":\"%s\","
                  "\"wall_us\":%" PRIu64 ",\"mono_us\":%" PRIu64 "}\n",
                  phase, cell.c_str(), wallMicroseconds(), monoUs());
    writeRecord(buf);
}

void
SweepJournal::phase(const char *phase, const std::string &cell,
                    std::uint64_t start_mono_us, std::uint64_t dur_us)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"phase\",\"phase\":\"%s\",\"cell\":\"%s\","
                  "\"start_us\":%" PRIu64 ",\"dur_us\":%" PRIu64
                  ",\"wall_us\":%" PRIu64 ",\"mono_us\":%" PRIu64 "}\n",
                  phase, cell.c_str(), start_mono_us, dur_us,
                  wallMicroseconds(), monoUs());
    writeRecord(buf);
}

void
SweepJournal::publish(const std::string &cell)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"publish\",\"cell\":\"%s\","
                  "\"wall_us\":%" PRIu64 ",\"mono_us\":%" PRIu64 "}\n",
                  cell.c_str(), wallMicroseconds(), monoUs());
    writeRecord(buf);
}

void
SweepJournal::lease(const char *op, const std::string &cell,
                    std::uint64_t dur_us)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"lease\",\"op\":\"%s\",\"cell\":\"%s\","
                  "\"dur_us\":%" PRIu64 ",\"wall_us\":%" PRIu64
                  ",\"mono_us\":%" PRIu64 "}\n",
                  op, cell.c_str(), dur_us, wallMicroseconds(),
                  monoUs());
    writeRecord(buf);
}

void
SweepJournal::arena(const char *op, const std::string &key)
{
    if (!enabled())
        return;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"ev\":\"arena\",\"op\":\"%s\",\"key\":\"%s\","
                  "\"wall_us\":%" PRIu64 ",\"mono_us\":%" PRIu64 "}\n",
                  op, key.c_str(), wallMicroseconds(), monoUs());
    writeRecord(buf);
}

// ---------------------------------------------------------------------
// Journal parsing.

namespace
{

/**
 * Scan one journal line as a flat JSON object of string / integer /
 * bool-ish values into @p fields. Only what SweepJournal emits (plus
 * the mini_json subset the tests hand-write) — not a general parser.
 */
bool
scanFlatObject(const std::string &line,
               std::vector<std::pair<std::string, std::string>> &fields)
{
    std::size_t i = 0;
    const auto skipWs = [&] {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
    };
    skipWs();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    for (;;) {
        skipWs();
        if (i < line.size() && line[i] == '}')
            return true;
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        std::string key;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\')
                return false; // journal keys are never escaped
            key += line[i++];
        }
        if (i >= line.size())
            return false;
        ++i;
        skipWs();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipWs();
        std::string value;
        if (i < line.size() && line[i] == '"') {
            ++i;
            while (i < line.size() && line[i] != '"') {
                if (line[i] == '\\' && i + 1 < line.size()) {
                    // Journal strings only ever escape via
                    // appendJsonEscaped; unescape the simple cases
                    // and keep \uXXXX verbatim (identity is all the
                    // merge needs).
                    const char c = line[i + 1];
                    if (c == '"' || c == '\\')
                        value += c;
                    else if (c == 'n')
                        value += '\n';
                    else if (c == 't')
                        value += '\t';
                    else if (c == 'r')
                        value += '\r';
                    else {
                        value += line[i];
                        value += c;
                    }
                    i += 2;
                    continue;
                }
                value += line[i++];
            }
            if (i >= line.size())
                return false;
            ++i;
        } else {
            while (i < line.size() && line[i] != ',' && line[i] != '}')
                value += line[i++];
            while (!value.empty() &&
                   (value.back() == ' ' || value.back() == '\t'))
                value.pop_back();
            if (value.empty())
                return false;
        }
        fields.emplace_back(std::move(key), std::move(value));
        skipWs();
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < line.size() && line[i] == '}')
            return true;
        return false;
    }
}

std::uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

} // namespace

bool
parseJournalLine(const std::string &line, JournalEvent &out)
{
    std::vector<std::pair<std::string, std::string>> fields;
    if (!scanFlatObject(line, fields))
        return false;
    out = JournalEvent{};
    for (const auto &[key, value] : fields) {
        if (key == "ev")
            out.ev = value;
        else if (key == "cell")
            out.cell = value;
        else if (key == "phase")
            out.phase = value;
        else if (key == "op")
            out.op = value;
        else if (key == "name")
            out.name = value;
        else if (key == "detail")
            out.detail = value;
        else if (key == "key")
            out.key = value;
        else if (key == "participant")
            ; // redundant with the file stem
        else if (key == "host")
            out.name = out.ev == "epoch" ? value : out.name;
        else if (key == "wall_us")
            out.wall_us = toU64(value);
        else if (key == "mono_us")
            out.mono_us = toU64(value);
        else if (key == "start_us")
            out.start_us = toU64(value);
        else if (key == "dur_us")
            out.dur_us = toU64(value);
        else if (key == "wait_us")
            out.wait_us = toU64(value);
        else if (key == "pid")
            out.pid = std::strtol(value.c_str(), nullptr, 10);
        else if (key == "stolen")
            out.stolen = value == "1" || value == "true";
        else if (key == "requeued")
            out.requeued = value == "1" || value == "true";
        // Unknown keys are ignored: a newer writer must not break an
        // older reader.
    }
    return !out.ev.empty();
}

bool
readJournal(const std::filesystem::path &path, ParticipantJournal &out,
            std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = "cannot read " + path.string();
        return false;
    }
    out = ParticipantJournal{};
    out.name = path.stem().string();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JournalEvent e;
        if (!parseJournalLine(line, e))
            continue; // torn final line of a killed writer
        if (e.ev == "epoch") {
            JournalSegment seg;
            seg.epoch_wall_us = e.wall_us;
            seg.epoch_mono_us = e.mono_us;
            seg.pid = e.pid;
            seg.offset_us = static_cast<double>(e.wall_us) -
                            static_cast<double>(e.mono_us);
            out.segments.push_back(seg);
            if (!e.name.empty())
                out.host = e.name; // parse stashes host in name
            continue;
        }
        if (out.segments.empty())
            continue; // pre-epoch garbage
        e.segment = static_cast<int>(out.segments.size()) - 1;
        out.events.push_back(std::move(e));
    }
    if (out.segments.empty()) {
        if (error != nullptr)
            *error = path.string() + " has no epoch record";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Timeline merge.

namespace
{

double
alignedUs(const ParticipantJournal &p, int segment, std::uint64_t mono)
{
    return p.segments[static_cast<std::size_t>(segment)].offset_us +
           static_cast<double>(mono);
}

/**
 * Causal constraint relaxation. Epoch-record offsets are only as good
 * as each host's wall clock; two classes of events give hard
 * happens-before edges that survive any skew:
 *
 *  - spawn marks: a spawned worker's epoch cannot precede the
 *    coordinator's mark (the k-th spawn mark naming participant q
 *    pairs with q's k-th journal segment — workers are respawned per
 *    batch, appending one segment each);
 *  - requeued claims: a claim acquired by breaking a dead holder's
 *    lease cannot precede the cell's first (non-requeued) claim.
 *
 * Violations are repaired by pushing the *later* party's segment
 * offset forward (never backward: a forward-only shift cannot break a
 * previously-satisfied constraint of the same kind on that segment's
 * own earlier events). Bounded passes; the constraint graph is tiny.
 */
void
relaxOffsets(std::vector<ParticipantJournal> &journals)
{
    struct Constraint
    {
        // aligned(before) <= aligned(after)
        std::size_t before_j;
        int before_seg;
        std::uint64_t before_mono;
        std::size_t after_j;
        int after_seg;
        std::uint64_t after_mono;
    };
    std::vector<Constraint> constraints;

    std::map<std::string, std::size_t> by_name;
    for (std::size_t j = 0; j < journals.size(); ++j)
        by_name[journals[j].name] = j;

    // Spawn marks -> target segments, pairing k-th with k-th.
    std::map<std::string, std::size_t> spawn_seen;
    for (std::size_t j = 0; j < journals.size(); ++j) {
        for (const JournalEvent &e : journals[j].events) {
            if (e.ev != "mark" || e.name != "spawn")
                continue;
            const auto it = by_name.find(e.detail);
            if (it == by_name.end())
                continue;
            const std::size_t k = spawn_seen[e.detail]++;
            const ParticipantJournal &q = journals[it->second];
            if (k >= q.segments.size())
                continue;
            constraints.push_back(
                {j, e.segment, e.mono_us, it->second,
                 static_cast<int>(k), q.segments[k].epoch_mono_us});
        }
    }

    // First non-requeued claim of each cell -> its requeued claims.
    struct ClaimRef
    {
        std::size_t j;
        int seg;
        std::uint64_t mono;
    };
    std::map<std::string, ClaimRef> first_claim;
    std::vector<std::pair<std::string, ClaimRef>> requeued_claims;
    for (std::size_t j = 0; j < journals.size(); ++j) {
        for (const JournalEvent &e : journals[j].events) {
            if (e.ev != "claim")
                continue;
            const ClaimRef ref{j, e.segment, e.mono_us};
            if (e.requeued) {
                requeued_claims.emplace_back(e.cell, ref);
            } else if (first_claim.find(e.cell) == first_claim.end()) {
                first_claim.emplace(e.cell, ref);
            }
        }
    }
    for (const auto &[cell, r] : requeued_claims) {
        const auto it = first_claim.find(cell);
        if (it == first_claim.end())
            continue;
        const ClaimRef &f = it->second;
        constraints.push_back(
            {f.j, f.seg, f.mono, r.j, r.seg, r.mono});
    }

    for (int pass = 0; pass < 16; ++pass) {
        bool changed = false;
        for (const Constraint &c : constraints) {
            const double before = alignedUs(journals[c.before_j],
                                            c.before_seg, c.before_mono);
            const double after = alignedUs(journals[c.after_j],
                                           c.after_seg, c.after_mono);
            if (after < before) {
                journals[c.after_j]
                    .segments[static_cast<std::size_t>(c.after_seg)]
                    .offset_us += before - after;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

void
appendTraceEvent(std::string &out, bool &first, const char *name,
                 const char *cat, const char *ph, double ts,
                 std::size_t pid, const std::string &args_json,
                 std::uint64_t dur_us = 0)
{
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": \"";
    out += name;
    out += "\", \"cat\": \"";
    out += cat;
    out += "\", \"ph\": \"";
    out += ph;
    out += "\", \"ts\": ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", std::max(0.0, ts));
    out += buf;
    if (std::strcmp(ph, "X") == 0) {
        out += ", \"dur\": ";
        out += std::to_string(dur_us);
    }
    if (std::strcmp(ph, "i") == 0)
        out += ", \"s\": \"t\"";
    out += ", \"pid\": ";
    out += std::to_string(pid);
    out += ", \"tid\": 0";
    if (!args_json.empty()) {
        out += ", \"args\": ";
        out += args_json;
    }
    out += "}";
}

std::string
cellArg(const std::string &cell)
{
    std::string args = "{\"cell\": \"";
    appendJsonEscaped(args, cell);
    args += "\"}";
    return args;
}

} // namespace

bool
mergeSweepTimeline(const std::filesystem::path &events_dir,
                   const std::filesystem::path &out_path,
                   std::string *error, TimelineStats *stats)
{
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    std::filesystem::directory_iterator it(events_dir, ec);
    if (ec) {
        if (error != nullptr)
            *error = "cannot list " + events_dir.string();
        return false;
    }
    for (const auto &entry : it) {
        if (entry.path().extension() == ".jsonl")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    std::vector<ParticipantJournal> journals;
    for (const std::filesystem::path &f : files) {
        ParticipantJournal p;
        if (readJournal(f, p))
            journals.push_back(std::move(p));
    }
    if (journals.empty()) {
        if (error != nullptr)
            *error = "no readable journals under " +
                     events_dir.string();
        return false;
    }

    relaxOffsets(journals);

    // Normalize: the earliest aligned instant (epochs included)
    // becomes t=0 of the merged timeline.
    double t0 = std::numeric_limits<double>::max();
    for (const ParticipantJournal &p : journals) {
        for (std::size_t s = 0; s < p.segments.size(); ++s)
            t0 = std::min(t0, alignedUs(p, static_cast<int>(s),
                                        p.segments[s].epoch_mono_us));
        for (const JournalEvent &e : p.events) {
            t0 = std::min(t0, alignedUs(p, e.segment, e.mono_us));
            if (e.ev == "phase")
                t0 = std::min(t0,
                              alignedUs(p, e.segment, e.start_us));
        }
    }

    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    std::size_t n_events = 0;
    for (std::size_t j = 0; j < journals.size(); ++j) {
        const ParticipantJournal &p = journals[j];
        // Lane metadata: chrome://tracing shows the participant name
        // instead of a bare pid index.
        std::string lane = "{\"name\": \"";
        appendJsonEscaped(lane, p.name +
                                    (p.host.empty() ? ""
                                                    : " (" + p.host + ")"));
        lane += "\"}";
        out += first ? "\n" : ",\n";
        first = false;
        out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
        out += std::to_string(j);
        out += ", \"tid\": 0, \"args\": ";
        out += lane;
        out += "}";

        for (const JournalEvent &e : p.events) {
            const double ts = alignedUs(p, e.segment, e.mono_us) - t0;
            if (e.ev == "phase") {
                const double start =
                    alignedUs(p, e.segment, e.start_us) - t0;
                appendTraceEvent(out, first, e.phase.c_str(), "phase",
                                 "X", start, j, cellArg(e.cell),
                                 e.dur_us);
            } else if (e.ev == "claim") {
                const char *name = e.requeued ? "requeue"
                                   : e.stolen ? "steal"
                                              : "claim";
                std::string args = "{\"cell\": \"";
                appendJsonEscaped(args, e.cell);
                args += "\", \"wait_us\": ";
                args += std::to_string(e.wait_us);
                args += "}";
                appendTraceEvent(out, first, name, "sweep", "i", ts, j,
                                 args);
            } else if (e.ev == "publish") {
                appendTraceEvent(out, first, "publish", "sweep", "i",
                                 ts, j, cellArg(e.cell));
            } else if (e.ev == "lease") {
                const std::string name = "lease_" + e.op;
                appendTraceEvent(out, first, name.c_str(), "lease",
                                 "i", ts, j, cellArg(e.cell));
            } else if (e.ev == "arena") {
                std::string args = "{\"key\": \"";
                appendJsonEscaped(args, e.key);
                args += "\"}";
                appendTraceEvent(out, first, e.op.c_str(), "arena",
                                 "i", ts, j, args);
            } else if (e.ev == "mark") {
                std::string args = "{\"detail\": \"";
                appendJsonEscaped(args, e.detail);
                args += "\"}";
                appendTraceEvent(out, first, e.name.c_str(), "sweep",
                                 "i", ts, j, args);
            } else {
                continue; // begin/unknown: live-status only
            }
            ++n_events;
        }
    }
    out += "\n]}\n";

    if (!atomicWriteFile(out_path, out)) {
        if (error != nullptr)
            *error = "cannot write " + out_path.string();
        return false;
    }
    if (stats != nullptr) {
        stats->participants = journals.size();
        stats->events = n_events;
    }
    return true;
}

// ---------------------------------------------------------------------
// Histogram transport + anomaly detection.

void
appendHistText(std::string &out, const std::string &name,
               const LogHistogram &h)
{
    out += "hist ";
    out += name;
    out += " count " + std::to_string(h.count());
    out += " sum " + std::to_string(h.sum());
    out += " max " + std::to_string(h.max());
    out += " min " + std::to_string(h.min());
    out += " buckets ";
    bool first = true;
    for (std::uint32_t i = 0; i < LogHistogram::kBuckets; ++i) {
        const std::uint64_t c = h.bucket(i);
        if (c == 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += std::to_string(i) + ":" + std::to_string(c);
    }
    if (first)
        out += '-'; // empty histogram placeholder
    out += '\n';
}

bool
parseHistLine(const std::string &line, std::string &name,
              LogHistogram &out)
{
    std::istringstream in(line);
    std::string tag, word;
    std::uint64_t count = 0, sum = 0, max = 0, min = 0;
    std::string buckets_text;
    if (!(in >> tag >> name) || tag != "hist")
        return false;
    if (!(in >> word >> count) || word != "count")
        return false;
    if (!(in >> word >> sum) || word != "sum")
        return false;
    if (!(in >> word >> max) || word != "max")
        return false;
    if (!(in >> word >> min) || word != "min")
        return false;
    if (!(in >> word >> buckets_text) || word != "buckets")
        return false;

    std::array<std::uint64_t, LogHistogram::kBuckets> buckets{};
    std::uint64_t seen = 0;
    if (buckets_text != "-") {
        const char *p = buckets_text.c_str();
        while (*p != '\0') {
            char *end = nullptr;
            const unsigned long idx = std::strtoul(p, &end, 10);
            if (end == p || *end != ':' ||
                idx >= LogHistogram::kBuckets)
                return false;
            p = end + 1;
            const std::uint64_t c = std::strtoull(p, &end, 10);
            if (end == p)
                return false;
            buckets[idx] += c;
            seen += c;
            p = end;
            if (*p == ',')
                ++p;
            else if (*p != '\0')
                return false;
        }
    }
    if (seen != count)
        return false; // torn/garbled line
    out = LogHistogram::fromParts(buckets, sum, max, min);
    return true;
}

std::vector<std::string>
sweepAnomalyWarnings(const LogHistogram &cell_us,
                     const std::string &slowest_cell,
                     std::uint64_t slowest_us, std::uint64_t requeued,
                     std::uint64_t cells, double k)
{
    std::vector<std::string> warnings;
    char buf[256];
    // Straggler: the slowest cell is far out on the batch's own
    // latency distribution. Needs a minimum population — with 3 cells
    // the "p90" is just the max and everything self-flags.
    if (cell_us.count() >= 4 && slowest_us > 0) {
        const double p90 = cell_us.percentile(0.90);
        if (static_cast<double>(slowest_us) > k * p90) {
            std::snprintf(
                buf, sizeof buf,
                "straggler: cell %s took %.1f ms vs p90 %.1f ms "
                "(more than %.3gx p90)",
                slowest_cell.empty() ? "?" : slowest_cell.c_str(),
                static_cast<double>(slowest_us) / 1000.0,
                p90 / 1000.0, k);
            warnings.emplace_back(buf);
        }
    }
    // Requeue storm: dead-holder requeues are expected at crash
    // scale (a handful), not at batch scale — a quarter of the batch
    // coming back through broken leases means lease churn (workers
    // dying repeatedly, or a staleness threshold far below real cell
    // latency).
    if (cells > 0 && requeued >= 4 && requeued * 4 >= cells) {
        std::snprintf(buf, sizeof buf,
                      "lease churn: %llu of %llu cells were requeued "
                      "from dead or stale holders",
                      static_cast<unsigned long long>(requeued),
                      static_cast<unsigned long long>(cells));
        warnings.emplace_back(buf);
    }
    return warnings;
}

} // namespace dice
