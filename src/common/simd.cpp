/**
 * @file
 * Runtime state for the SIMD dispatch shim: the DICE_FORCE_SCALAR
 * latch lives here so every translation unit shares one decision.
 */

#include "common/simd.hpp"

#include <cstdlib>

namespace dice::simd
{

namespace detail
{

std::atomic<int> g_force_scalar{-1};

int
readForceScalarEnv()
{
    const char *env = std::getenv("DICE_FORCE_SCALAR");
    const int v = (env != nullptr && env[0] != '\0' &&
                   !(env[0] == '0' && env[1] == '\0'))
                      ? 1
                      : 0;
    // Another thread may race the first read; both write the same
    // value, so a plain store is fine.
    g_force_scalar.store(v, std::memory_order_relaxed);
    return v;
}

} // namespace detail

void
setForceScalarForTest(bool force)
{
    detail::g_force_scalar.store(force ? 1 : 0,
                                 std::memory_order_relaxed);
}

const char *
backendName()
{
#if defined(DICE_SIMD_X86)
    return active() ? "avx2" : "scalar";
#elif defined(DICE_SIMD_NEON)
    return active() ? "neon" : "scalar";
#else
    return "scalar";
#endif
}

} // namespace dice::simd
