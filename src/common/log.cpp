#include "log.hpp"

namespace dice
{

namespace
{

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        std::va_list ap)
{
    std::fprintf(stderr, "%s: %s:%d: ", tag, file, line);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", file, line, fmt, ap);
    va_end(ap);
}

} // namespace dice
