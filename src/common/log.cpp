#include "log.hpp"

#include <cstring>
#include <mutex>

namespace dice
{

namespace
{

/**
 * Serializes every report line. Parallel bench workers warn
 * concurrently (e.g. decision-ring burst dumps); without the lock
 * their lines interleave mid-text on shared stderr.
 */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        std::va_list ap)
{
    std::lock_guard lock(logMutex());
    std::fprintf(stderr, "%s: %s:%d: ", tag, file, line);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

LogLevel
logLevel()
{
    const char *env = std::getenv("DICE_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Warn;
    if (std::strcmp(env, "quiet") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::Quiet;
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Debug;
    return LogLevel::Warn;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", file, line, fmt, ap);
    va_end(ap);
}

void
debugImpl(const char *file, int line, const char *fmt, ...)
{
    if (logLevel() < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("debug", file, line, fmt, ap);
    va_end(ap);
}

void
assertFailImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
}

} // namespace dice
