#include "parallel.hpp"

#include <atomic>
#include <cstdlib>

namespace dice
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_task_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                cv_done_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const std::size_t threads =
        std::min<std::size_t>(jobs == 0 ? 1 : jobs, n);
    if (threads <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    const auto drain = [&next, n, &fn] {
        for (std::size_t i; (i = next.fetch_add(1)) < n;)
            fn(i);
    };

    ThreadPool pool(static_cast<unsigned>(threads));
    for (std::size_t t = 0; t < threads; ++t)
        pool.submit(drain);
    pool.wait();
}

unsigned
jobsFromEnv(const char *env_name)
{
    if (const char *env = std::getenv(env_name)) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace dice
