/**
 * @file
 * Fundamental types and memory-geometry constants shared by every
 * subsystem of the DICE reproduction.
 */

#ifndef DICE_COMMON_TYPES_HPP
#define DICE_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>

namespace dice
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Line address: byte address divided by the line size (64 B). */
using LineAddr = std::uint64_t;

/** Simulated time, measured in CPU cycles. */
using Cycle = std::uint64_t;

/** Identifier of a core in the simulated system. */
using CoreId = std::uint32_t;

/** Cache line size used throughout the hierarchy (bytes). */
inline constexpr std::uint32_t kLineSize = 64;

/** log2 of the line size, for address slicing. */
inline constexpr std::uint32_t kLineShift = 6;

/** OS page size assumed by the VA->PA mapper and by CIP (bytes). */
inline constexpr std::uint32_t kPageSize = 4096;

/** log2 of the page size. */
inline constexpr std::uint32_t kPageShift = 12;

/** Lines per page. */
inline constexpr std::uint32_t kLinesPerPage = kPageSize / kLineSize;

/** Convert a byte address to a line address. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> kLineShift;
}

/** Convert a line address back to the byte address of its first byte. */
constexpr Addr
addrOf(LineAddr line)
{
    return line << kLineShift;
}

/** Page number of a byte address. */
constexpr std::uint64_t
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** Page number of a line address. */
constexpr std::uint64_t
pageOfLine(LineAddr line)
{
    return line >> (kPageShift - kLineShift);
}

/** Kind of access presented to a cache level. */
enum class AccessType : std::uint8_t
{
    Read,      ///< Demand load (or instruction fetch).
    Write,     ///< Store (handled as write-allocate + writeback).
    Writeback, ///< Dirty eviction arriving from the level above.
};

/** Size-suffix helpers so configuration code reads like the paper. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

} // namespace dice

#endif // DICE_COMMON_TYPES_HPP
