#include "trace_events.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/telemetry.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace dice
{

namespace
{

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::uint32_t
traceTid()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

TraceLog &
TraceLog::instance()
{
    static TraceLog log;
    return log;
}

TraceLog::TraceLog() : epoch_ns_(steadyNowNs())
{
    if (const char *env = std::getenv("DICE_TRACE_OUT")) {
        if (env[0] != '\0') {
            path_ = env;
            enabled_ = true;
        }
    }
}

TraceLog::~TraceLog()
{
    if (enabled_)
        flush();
}

std::uint64_t
TraceLog::nowUs() const
{
    return (steadyNowNs() - epoch_ns_) / 1000;
}

void
TraceLog::complete(const char *cat, std::string name, std::uint64_t ts_us,
                   std::uint64_t dur_us, std::string args_json)
{
    if (!enabled_)
        return;
    Event ev{std::move(name), cat,  ts_us, dur_us, traceTid(),
             'X',             std::move(args_json)};
    std::lock_guard lock(mu_);
    events_.push_back(std::move(ev));
}

void
TraceLog::instant(const char *cat, std::string name,
                  std::string args_json)
{
    if (!enabled_)
        return;
    Event ev{std::move(name), cat,  nowUs(), 0, traceTid(),
             'i',             std::move(args_json)};
    std::lock_guard lock(mu_);
    events_.push_back(std::move(ev));
}

std::size_t
TraceLog::pendingEvents() const
{
    std::lock_guard lock(mu_);
    return events_.size();
}

bool
TraceLog::flush()
{
    std::lock_guard lock(mu_);
    if (!enabled_)
        return false;

    // Incremental append: the file holds a complete document after
    // every flush (a sweep can flush after each batch and a crash
    // loses only the tail), but each flush only renders the events
    // recorded since the previous one and re-writes the trailing
    // "\n]}\n" — total flush cost is O(events), not O(events²).
    if (!out_.is_open()) {
        out_.open(path_, std::ios::binary | std::ios::trunc);
        if (!out_) {
            std::fprintf(stderr,
                         "trace_events: cannot write DICE_TRACE_OUT=%s\n",
                         path_.c_str());
            return false;
        }
        out_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
        body_end_ = static_cast<std::uint64_t>(out_.tellp());
        wrote_event_ = false;
    }

    std::string out;
    const long pid =
#ifdef _WIN32
        static_cast<long>(_getpid());
#else
        static_cast<long>(getpid());
#endif
    char buf[160];
    bool first = !wrote_event_;
    for (const Event &ev : events_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += " {\"name\": \"";
        appendJsonEscaped(out, ev.name);
        out += "\", \"cat\": \"";
        appendJsonEscaped(out, ev.cat);
        if (ev.ph == 'i') {
            // Instant events carry a scope ("s":"t" = thread) and no
            // duration in the trace-event format.
            std::snprintf(buf, sizeof buf,
                          "\", \"ph\": \"i\", \"s\": \"t\", "
                          "\"ts\": %llu, \"pid\": %ld, \"tid\": %u",
                          static_cast<unsigned long long>(ev.ts_us),
                          pid, ev.tid);
        } else {
            std::snprintf(
                buf, sizeof buf,
                "\", \"ph\": \"X\", \"ts\": %llu, \"dur\": %llu, "
                "\"pid\": %ld, \"tid\": %u",
                static_cast<unsigned long long>(ev.ts_us),
                static_cast<unsigned long long>(ev.dur_us), pid,
                ev.tid);
        }
        out += buf;
        if (!ev.args_json.empty()) {
            out += ", \"args\": ";
            out += ev.args_json;
        }
        out += '}';
    }
    if (!events_.empty())
        wrote_event_ = true;
    events_.clear();
    out += "\n]}\n";

    out_.seekp(static_cast<std::streamoff>(body_end_));
    out_.write(out.data(), static_cast<std::streamsize>(out.size()));
    // The terminator is 4 bytes; the next flush overwrites it in place.
    body_end_ = static_cast<std::uint64_t>(out_.tellp()) - 4;
    out_.flush();
    return static_cast<bool>(out_);
}

void
TraceLog::setOutputForTest(const std::string &path)
{
    std::lock_guard lock(mu_);
    path_ = path;
    enabled_ = !path.empty();
    events_.clear();
    if (out_.is_open())
        out_.close();
    out_.clear();
    body_end_ = 0;
    wrote_event_ = false;
}

TraceSpan::TraceSpan(const char *cat, std::string name,
                     std::string args_json)
{
    TraceLog &log = TraceLog::instance();
    if (!log.enabled())
        return;
    active_ = true;
    cat_ = cat;
    name_ = std::move(name);
    args_json_ = std::move(args_json);
    start_us_ = log.nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    TraceLog &log = TraceLog::instance();
    const std::uint64_t end_us = log.nowUs();
    log.complete(cat_, std::move(name_), start_us_,
                 end_us > start_us_ ? end_us - start_us_ : 0,
                 std::move(args_json_));
}

} // namespace dice
