#include "telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/log.hpp"

namespace dice
{

namespace
{

std::string
envOr(const char *name, const char *fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? v : fallback;
}

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && std::strcmp(v, "0") != 0 &&
           std::strcmp(v, "") != 0;
}

bool
writeStringTo(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

} // namespace

void
StatRegistry::add(std::string path, Provider provider)
{
    dice_assert(provider != nullptr, "null stat provider for '%s'",
                path.c_str());
    for (const auto &g : groups_) {
        dice_assert(g.first != path,
                    "duplicate stat group path '%s'", path.c_str());
    }
    groups_.emplace_back(std::move(path), std::move(provider));
}

std::vector<std::pair<std::string, double>>
StatRegistry::flatten() const
{
    std::vector<std::pair<std::string, double>> rows;
    for (const auto &[path, provider] : groups_) {
        const StatGroup g = provider();
        for (const auto &[stat, value] : g.collect())
            rows.emplace_back(path + "." + stat, value);
    }
    return rows;
}

void
StatRegistry::captureInterval(const std::string &label,
                              std::uint64_t refs)
{
    Snapshot snap;
    snap.label = label;
    snap.refs = refs;
    snap.values = flatten();
    intervals_.push_back(std::move(snap));
}

std::vector<std::pair<std::string, double>>
StatRegistry::intervalDeltas(std::size_t i) const
{
    dice_assert(i < intervals_.size(), "interval index out of range");
    const Snapshot &snap = intervals_[i];
    const Snapshot *prev = i > 0 ? &intervals_[i - 1] : nullptr;

    std::vector<std::pair<std::string, double>> rows;
    rows.reserve(snap.values.size());
    for (std::size_t v = 0; v < snap.values.size(); ++v) {
        const auto &[name, value] = snap.values[v];
        double base = 0.0;
        if (prev != nullptr) {
            // Snapshots flatten in registration order, so the matching
            // row is almost always at the same index; fall back to a
            // name scan if a group appeared between captures.
            if (v < prev->values.size() &&
                prev->values[v].first == name) {
                base = prev->values[v].second;
            } else {
                for (const auto &[pname, pvalue] : prev->values) {
                    if (pname == name) {
                        base = pvalue;
                        break;
                    }
                }
            }
        }
        rows.emplace_back(name, value - base);
    }
    return rows;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xFF);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

std::string
StatRegistry::toJson() const
{
    std::string out;
    out += "{\n  \"groups\": {";
    bool first_group = true;
    for (const auto &[path, provider] : groups_) {
        out += first_group ? "\n" : ",\n";
        first_group = false;
        out += "    \"";
        appendJsonEscaped(out, path);
        out += "\": {";
        const StatGroup g = provider();
        bool first_stat = true;
        for (const auto &[stat, value] : g.collect()) {
            out += first_stat ? "" : ", ";
            first_stat = false;
            out += '"';
            appendJsonEscaped(out, stat);
            out += "\": ";
            appendJsonNumber(out, value);
        }
        out += '}';
    }
    out += "\n  },\n  \"intervals\": [";
    bool first_snap = true;
    for (std::size_t s = 0; s < intervals_.size(); ++s) {
        const Snapshot &snap = intervals_[s];
        out += first_snap ? "\n" : ",\n";
        first_snap = false;
        out += "    {\"label\": \"";
        appendJsonEscaped(out, snap.label);
        out += "\", \"refs\": ";
        appendJsonNumber(out, static_cast<double>(snap.refs));
        out += ", \"values\": {";
        bool first_val = true;
        for (const auto &[name, value] : snap.values) {
            out += first_val ? "" : ", ";
            first_val = false;
            out += '"';
            appendJsonEscaped(out, name);
            out += "\": ";
            appendJsonNumber(out, value);
        }
        // Per-interval activity: cumulative counters differenced
        // against the previous snapshot (the first one against zero),
        // so consumers get warmup-vs-steady rates without re-deriving
        // them from the cumulative rows.
        out += "}, \"deltas\": {";
        bool first_delta = true;
        for (const auto &[name, dv] : intervalDeltas(s)) {
            out += first_delta ? "" : ", ";
            first_delta = false;
            out += '"';
            appendJsonEscaped(out, name);
            out += "\": ";
            appendJsonNumber(out, dv);
        }
        out += "}}";
    }
    out += "\n  ]\n}\n";
    return out;
}

std::string
StatRegistry::toCsv() const
{
    std::string out = "scope,refs,stat,value\n";
    char buf[64];
    auto appendRow = [&out, &buf](const char *scope, std::uint64_t refs,
                                  const std::string &name, double value) {
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(refs));
        out += scope;
        out += ',';
        out += buf;
        out += ',';
        out += name;
        out += ',';
        std::snprintf(buf, sizeof buf, "%.17g", value);
        out += buf;
        out += '\n';
    };
    for (const auto &[name, value] : flatten())
        appendRow("final", 0, name, value);
    for (std::size_t s = 0; s < intervals_.size(); ++s) {
        const Snapshot &snap = intervals_[s];
        for (const auto &[name, value] : snap.values)
            appendRow(snap.label.c_str(), snap.refs, name, value);
        for (const auto &[name, dv] : intervalDeltas(s))
            appendRow(snap.label.c_str(), snap.refs, name + ".delta",
                      dv);
    }
    return out;
}

bool
StatRegistry::writeJson(const std::string &path) const
{
    return writeStringTo(path, toJson());
}

bool
StatRegistry::writeCsv(const std::string &path) const
{
    return writeStringTo(path, toCsv());
}

std::string
statsJsonDir()
{
    return envOr("DICE_STATS_JSON", "");
}

std::string
statsCsvDir()
{
    return envOr("DICE_STATS_CSV", "");
}

std::uint64_t
statsIntervalRefs()
{
    const char *v = std::getenv("DICE_STATS_INTERVAL");
    return v != nullptr ? std::strtoull(v, nullptr, 10) : 0;
}

bool
decisionTraceEnabled()
{
    return envFlag("DICE_DECISION_TRACE");
}

bool
progressEnabled()
{
    return envFlag("DICE_PROGRESS");
}

std::string
sweepResultsDir()
{
    return envOr("DICE_SWEEP_RESULTS", "");
}

std::string
sweepMergedPath()
{
    return envOr("DICE_SWEEP_MERGED", "");
}

bool
sweepEventsEnabled()
{
    return envFlag("DICE_SWEEP_EVENTS");
}

std::string
sweepTimelinePath()
{
    return envOr("DICE_SWEEP_TIMELINE", "");
}

double
sweepStragglerK()
{
    const char *v = std::getenv("DICE_SWEEP_STRAGGLER_K");
    if (v != nullptr && *v != '\0') {
        char *end = nullptr;
        const double k = std::strtod(v, &end);
        if (end != v && k > 0.0)
            return k;
    }
    return 4.0;
}

std::string
sanitizeFileStem(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
        out += ok ? c : '_';
    }
    return out.empty() ? "unnamed" : out;
}

} // namespace dice
