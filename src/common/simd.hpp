/**
 * @file
 * SIMD dispatch shim for the hot-loop scan kernels.
 *
 * The simulation's per-reference work is dominated by small dense
 * scans: TAD-set key matches, min-LRU victim selection, and the
 * FPC/BDI size-only classification loops. Each of those has a wide
 * (AVX2 on x86, NEON on aarch64) and a scalar implementation behind
 * the dispatched entry points below.
 *
 * Bit-identity contract: every wide kernel returns *exactly* what the
 * scalar reference implementation in simd::scalar returns, for every
 * input — the golden digests pin simulation output to the bit, so a
 * kernel that "almost" matches would silently fork the model. The
 * contract is enforced three ways:
 *
 *  - `DICE_FORCE_SCALAR=1` (env, read once, overridable per-test via
 *    setForceScalarForTest) routes every dispatched call to the
 *    scalar implementation at runtime;
 *  - `-DDICE_SIMD=OFF` (CMake -> DICE_NO_SIMD) compiles the wide
 *    paths out entirely;
 *  - tests/test_simd_parity.cpp fuzzes dispatched-vs-scalar for every
 *    kernel under both settings.
 *
 * x86 dispatch is *runtime*: the AVX2 kernels are compiled with a
 * per-function target attribute, so a default (-O2, no -march) build
 * still uses them on AVX2 hardware and falls back to scalar elsewhere.
 */

#ifndef DICE_COMMON_SIMD_HPP
#define DICE_COMMON_SIMD_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(DICE_NO_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define DICE_SIMD_X86 1
#include <immintrin.h>
#elif !defined(DICE_NO_SIMD) && defined(__ARM_NEON)
#define DICE_SIMD_NEON 1
#include <arm_neon.h>
#endif

// On x86 the wide kernels carry their own target attribute so that a
// portable build (no -march=native) can still run them after the
// runtime CPU check; with -mavx2/-march=native already in effect the
// attribute is redundant but harmless.
#if defined(DICE_SIMD_X86) && !defined(__AVX2__)
#define DICE_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define DICE_TARGET_AVX2
#endif

namespace dice::simd
{

namespace detail
{
/** -1 = env not read yet; else 0/1. Shared by the inline fast path. */
extern std::atomic<int> g_force_scalar;
/** Reads DICE_FORCE_SCALAR once and latches it; returns 0/1. */
int readForceScalarEnv();
} // namespace detail

/** True when DICE_FORCE_SCALAR (or a test override) disables SIMD. */
inline bool
scalarForced()
{
    const int v = detail::g_force_scalar.load(std::memory_order_relaxed);
    return (v >= 0 ? v : detail::readForceScalarEnv()) == 1;
}

/** Test hook: override the DICE_FORCE_SCALAR decision at runtime. */
void setForceScalarForTest(bool force);

#if defined(DICE_SIMD_X86)
/** Cached cpuid probe: does this machine execute AVX2? */
inline bool
cpuHasAvx2()
{
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
}
#endif

/** True when the dispatched kernels take a wide path on this call. */
inline bool
active()
{
#if defined(DICE_SIMD_X86)
    return cpuHasAvx2() && !scalarForced();
#elif defined(DICE_SIMD_NEON)
    return !scalarForced();
#else
    return false;
#endif
}

/** Name of the backend active() would pick: "avx2"/"neon"/"scalar". */
const char *backendName();

// ---------------------------------------------------------------------
// Scalar reference implementations. These define the semantics; every
// wide kernel must match them bit-for-bit (see file comment).
// ---------------------------------------------------------------------

namespace scalar
{

/** First index in [start, n) with v[i] == key, else n. */
inline std::size_t
findU64(const std::uint64_t *v, std::size_t n, std::uint64_t key,
        std::size_t start)
{
    for (std::size_t i = start; i < n; ++i) {
        if (v[i] == key)
            return i;
    }
    return n;
}

/** Bit i set iff v[i] == key, for i in [0, n); n <= 64. */
inline std::uint64_t
matchMaskU64(const std::uint64_t *v, std::size_t n, std::uint64_t key)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (v[i] == key)
            mask |= std::uint64_t{1} << i;
    }
    return mask;
}

/**
 * First index of the (unsigned) minimum of v[0..n), never returning
 * index @p skip (pass n or anything >= n for "no exclusion"); n when
 * no candidate exists. "First index of the minimum" is load-bearing:
 * the LRU eviction tie-break is part of the pinned model behavior.
 */
inline std::size_t
minIndexU64(const std::uint64_t *v, std::size_t n, std::size_t skip)
{
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (i == skip)
            continue;
        if (best == n || v[i] < v[best])
            best = i;
    }
    return best;
}

/** Sum of n uint16 values (byte-accounting audit; fits uint32). */
inline std::uint32_t
sumU16(const std::uint16_t *v, std::size_t n)
{
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        total += v[i];
    return total;
}

/** True when all @p n bytes at @p p are zero. */
inline bool
allZero(const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (p[i] != 0)
            return false;
    }
    return true;
}

/**
 * BDI representability of pre-sign-extended elements under one
 * explicit base: every element must fit @p delta_bits signed as an
 * immediate, or as a delta from the first non-immediate element.
 * Exactly the rule BdiCodec/compressInMode apply.
 */
inline bool
deltasFitI64(const std::int64_t *elems, std::uint32_t n_elem,
             std::uint32_t delta_bits)
{
    const std::int64_t lim = std::int64_t{1} << (delta_bits - 1);
    std::int64_t base = 0;
    bool base_set = false;
    for (std::uint32_t i = 0; i < n_elem; ++i) {
        const std::int64_t val = elems[i];
        if (val >= -lim && val < lim)
            continue;
        if (!base_set) {
            base = val;
            base_set = true;
        }
        // Matches the codec's (wrapping) int64 delta arithmetic.
        const std::int64_t delta = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(val) -
            static_cast<std::uint64_t>(base));
        if (!(delta >= -lim && delta < lim))
            return false;
    }
    return true;
}

} // namespace scalar

// ---------------------------------------------------------------------
// AVX2 kernels (x86). Each mirrors its scalar twin exactly.
// ---------------------------------------------------------------------

#if defined(DICE_SIMD_X86)

namespace detail
{

DICE_TARGET_AVX2 inline std::size_t
findU64Avx2(const std::uint64_t *v, std::size_t n, std::uint64_t key,
            std::size_t start)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(key));
    std::size_t i = start;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(x, needle)));
        if (m != 0)
            return i + static_cast<std::size_t>(
                           __builtin_ctz(static_cast<unsigned>(m)));
    }
    for (; i < n; ++i) {
        if (v[i] == key)
            return i;
    }
    return n;
}

DICE_TARGET_AVX2 inline std::uint64_t
matchMaskU64Avx2(const std::uint64_t *v, std::size_t n,
                 std::uint64_t key)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(key));
    std::uint64_t mask = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const auto m = static_cast<std::uint64_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(x, needle))));
        mask |= m << i;
    }
    for (; i < n; ++i) {
        if (v[i] == key)
            mask |= std::uint64_t{1} << i;
    }
    return mask;
}

DICE_TARGET_AVX2 inline std::size_t
minIndexU64Avx2(const std::uint64_t *v, std::size_t n, std::size_t skip)
{
    if (n < 8) // short sets: the vector setup would dominate
        return scalar::minIndexU64(v, n, skip);

    // Pass 1: minimum value over i != skip. AVX2 has no unsigned
    // 64-bit min, so compares run on sign-flipped lanes; the skip lane
    // (at most one) is blended to UINT64_MAX so it can never win
    // unless nothing else exists — which pass 2 handles by skipping.
    const __m256i flip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i ones = _mm256_set1_epi64x(-1);
    __m256i vmin = ones;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        if (skip >= i && skip < i + 4) {
            const __m256i lane_idx =
                _mm256_set_epi64x(static_cast<long long>(i + 3),
                                  static_cast<long long>(i + 2),
                                  static_cast<long long>(i + 1),
                                  static_cast<long long>(i));
            const __m256i skip_mask = _mm256_cmpeq_epi64(
                lane_idx,
                _mm256_set1_epi64x(static_cast<long long>(skip)));
            x = _mm256_blendv_epi8(x, ones, skip_mask);
        }
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(vmin, flip), _mm256_xor_si256(x, flip));
        vmin = _mm256_blendv_epi8(vmin, x, gt);
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), vmin);
    std::uint64_t best = lanes[0];
    for (int l = 1; l < 4; ++l)
        best = lanes[l] < best ? lanes[l] : best;
    // n >= 8 guarantees at least two full chunks with >= 7 non-skip
    // lanes, so `best` is a real candidate even if the sentinel or an
    // all-max input leaves it at UINT64_MAX.
    for (std::size_t t = i; t < n; ++t) {
        if (t != skip && v[t] < best)
            best = v[t];
    }

    // Pass 2: first index holding the minimum, still excluding skip.
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(best));
    for (std::size_t j = 0; j < n;) {
        if (j + 4 <= n) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(v + j));
            int m = _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(x, needle)));
            while (m != 0) {
                const std::size_t idx =
                    j + static_cast<std::size_t>(
                            __builtin_ctz(static_cast<unsigned>(m)));
                if (idx != skip)
                    return idx;
                m &= m - 1;
            }
            j += 4;
        } else {
            if (j != skip && v[j] == best)
                return j;
            ++j;
        }
    }
    return n; // unreachable when a candidate exists
}

DICE_TARGET_AVX2 inline std::uint32_t
sumU16Avx2(const std::uint16_t *v, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        acc = _mm256_add_epi32(acc, _mm256_cvtepu16_epi32(x));
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::uint32_t total = 0;
    for (std::uint32_t lane : lanes)
        total += lane;
    for (; i < n; ++i)
        total += v[i];
    return total;
}

DICE_TARGET_AVX2 inline bool
allZeroAvx2(const std::uint8_t *p, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc = _mm256_or_si256(acc, _mm256_loadu_si256(
                                       reinterpret_cast<const __m256i *>(
                                           p + i)));
    }
    if (_mm256_testz_si256(acc, acc) == 0)
        return false;
    for (; i < n; ++i) {
        if (p[i] != 0)
            return false;
    }
    return true;
}

DICE_TARGET_AVX2 inline bool
deltasFitI64Avx2(const std::int64_t *elems, std::uint32_t n_elem,
                 std::uint32_t delta_bits)
{
    // fitsSigned(x, b) == ((uint64)(x + 2^(b-1)) & ~(2^b - 1)) == 0:
    // the +half bias maps [-2^(b-1), 2^(b-1)) onto [0, 2^b) exactly
    // (modular add, so no overflow concerns). delta_bits is 8/16/32
    // here, n_elem a multiple of 4.
    const long long half =
        static_cast<long long>(std::uint64_t{1} << (delta_bits - 1));
    const long long high = static_cast<long long>(
        ~((std::uint64_t{1} << delta_bits) - 1));
    const __m256i vhalf = _mm256_set1_epi64x(half);
    const __m256i vhigh = _mm256_set1_epi64x(high);
    const __m256i zero = _mm256_setzero_si256();

    // Pass 1: find the base = first element that is not an immediate.
    std::uint32_t base_idx = n_elem;
    for (std::uint32_t i = 0; i < n_elem; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(elems + i));
        const __m256i imm = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_add_epi64(x, vhalf), vhigh), zero);
        const int m =
            _mm256_movemask_pd(_mm256_castsi256_pd(imm)) & 0xF;
        if (m != 0xF) {
            base_idx = i + static_cast<std::uint32_t>(__builtin_ctz(
                               static_cast<unsigned>(~m & 0xF)));
            break;
        }
    }
    if (base_idx == n_elem)
        return true; // every element is an immediate

    // Pass 2: every element must be an immediate or a fitting delta.
    // Re-testing the pre-base elements is free (they are immediates).
    const __m256i vbase = _mm256_set1_epi64x(
        static_cast<long long>(elems[base_idx]));
    for (std::uint32_t i = 0; i < n_elem; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(elems + i));
        const __m256i imm = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_add_epi64(x, vhalf), vhigh), zero);
        const __m256i d = _mm256_sub_epi64(x, vbase);
        const __m256i fit = _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_add_epi64(d, vhalf), vhigh), zero);
        const int ok = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_or_si256(imm, fit)));
        if ((ok & 0xF) != 0xF)
            return false;
    }
    return true;
}

} // namespace detail

#endif // DICE_SIMD_X86

// ---------------------------------------------------------------------
// NEON kernels (aarch64). The key-match and summation scans are wide;
// minIndexU64 and deltasFitI64 fall back to scalar (no unsigned 64-bit
// min / movemask on NEON, and the scanned arrays are tiny).
// ---------------------------------------------------------------------

#if defined(DICE_SIMD_NEON)

namespace detail
{

inline std::size_t
findU64Neon(const std::uint64_t *v, std::size_t n, std::uint64_t key,
            std::size_t start)
{
    const uint64x2_t needle = vdupq_n_u64(key);
    std::size_t i = start;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(v + i), needle);
        if (vgetq_lane_u64(eq, 0) != 0)
            return i;
        if (vgetq_lane_u64(eq, 1) != 0)
            return i + 1;
    }
    for (; i < n; ++i) {
        if (v[i] == key)
            return i;
    }
    return n;
}

inline std::uint64_t
matchMaskU64Neon(const std::uint64_t *v, std::size_t n,
                 std::uint64_t key)
{
    const uint64x2_t needle = vdupq_n_u64(key);
    std::uint64_t mask = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(v + i), needle);
        mask |= (vgetq_lane_u64(eq, 0) & 1) << i;
        mask |= (vgetq_lane_u64(eq, 1) & 1) << (i + 1);
    }
    for (; i < n; ++i) {
        if (v[i] == key)
            mask |= std::uint64_t{1} << i;
    }
    return mask;
}

inline std::uint32_t
sumU16Neon(const std::uint16_t *v, std::size_t n)
{
    uint32x4_t acc = vdupq_n_u32(0);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const uint16x8_t x = vld1q_u16(v + i);
        acc = vaddq_u32(acc, vaddl_u16(vget_low_u16(x),
                                       vget_high_u16(x)));
    }
    std::uint32_t total = vaddvq_u32(acc);
    for (; i < n; ++i)
        total += v[i];
    return total;
}

inline bool
allZeroNeon(const std::uint8_t *p, std::size_t n)
{
    uint8x16_t acc = vdupq_n_u8(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        acc = vorrq_u8(acc, vld1q_u8(p + i));
    if (vmaxvq_u8(acc) != 0)
        return false;
    for (; i < n; ++i) {
        if (p[i] != 0)
            return false;
    }
    return true;
}

} // namespace detail

#endif // DICE_SIMD_NEON

// ---------------------------------------------------------------------
// Dispatched entry points (what the simulator calls).
// ---------------------------------------------------------------------

inline std::size_t
findU64(const std::uint64_t *v, std::size_t n, std::uint64_t key,
        std::size_t start)
{
#if defined(DICE_SIMD_X86)
    if (active())
        return detail::findU64Avx2(v, n, key, start);
#elif defined(DICE_SIMD_NEON)
    if (active())
        return detail::findU64Neon(v, n, key, start);
#endif
    return scalar::findU64(v, n, key, start);
}

inline std::uint64_t
matchMaskU64(const std::uint64_t *v, std::size_t n, std::uint64_t key)
{
#if defined(DICE_SIMD_X86)
    if (active())
        return detail::matchMaskU64Avx2(v, n, key);
#elif defined(DICE_SIMD_NEON)
    if (active())
        return detail::matchMaskU64Neon(v, n, key);
#endif
    return scalar::matchMaskU64(v, n, key);
}

inline std::size_t
minIndexU64(const std::uint64_t *v, std::size_t n, std::size_t skip)
{
#if defined(DICE_SIMD_X86)
    if (active())
        return detail::minIndexU64Avx2(v, n, skip);
#endif
    return scalar::minIndexU64(v, n, skip);
}

inline std::uint32_t
sumU16(const std::uint16_t *v, std::size_t n)
{
#if defined(DICE_SIMD_X86)
    if (active())
        return detail::sumU16Avx2(v, n);
#elif defined(DICE_SIMD_NEON)
    if (active())
        return detail::sumU16Neon(v, n);
#endif
    return scalar::sumU16(v, n);
}

inline bool
allZero(const std::uint8_t *p, std::size_t n)
{
#if defined(DICE_SIMD_X86)
    if (active())
        return detail::allZeroAvx2(p, n);
#elif defined(DICE_SIMD_NEON)
    if (active())
        return detail::allZeroNeon(p, n);
#endif
    return scalar::allZero(p, n);
}

inline bool
deltasFitI64(const std::int64_t *elems, std::uint32_t n_elem,
             std::uint32_t delta_bits)
{
#if defined(DICE_SIMD_X86)
    if (active() && (n_elem & 3) == 0 && delta_bits >= 1 &&
        delta_bits < 64)
        return detail::deltasFitI64Avx2(elems, n_elem, delta_bits);
#endif
    return scalar::deltasFitI64(elems, n_elem, delta_bits);
}

} // namespace dice::simd

#endif // DICE_COMMON_SIMD_HPP
