/**
 * @file
 * Error-reporting helpers following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a debugger/core dump is available.
 *  - fatal():  the user asked for something unsatisfiable (bad
 *              configuration); exits with status 1.
 *  - warn():   something is suspicious but simulation can continue.
 *  - debug():  diagnostic chatter (decision-ring dumps, telemetry).
 *
 * All reporting is serialized behind one mutex, so parallel bench
 * workers never interleave mid-line, and filtered by DICE_LOG_LEVEL
 * (quiet | warn | debug, default warn): quiet suppresses warn() and
 * debug(), warn additionally shows warn(), debug shows everything.
 * panic() and fatal() terminate the process and always print.
 */

#ifndef DICE_COMMON_LOG_HPP
#define DICE_COMMON_LOG_HPP

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dice
{

/** Verbosity threshold parsed from DICE_LOG_LEVEL. */
enum class LogLevel
{
    Quiet = 0, ///< Only panic/fatal (they always print).
    Warn = 1,  ///< Default: warnings and above.
    Debug = 2, ///< Everything, including dice_debug chatter.
};

/**
 * Current threshold: "quiet"/"0", "warn"/"1" (default), "debug"/"2".
 * Re-read from the environment on every call — none of the log paths
 * are hot, and tests flip the level mid-process.
 */
LogLevel logLevel();

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void debugImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** The "assertion failed" preamble: prints at every log level (the
 *  process is about to abort; suppressing the condition would hide
 *  the only clue). */
void assertFailImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace dice

/** Report a simulator bug and abort. */
#define dice_panic(...) ::dice::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report an unusable user configuration and exit(1). */
#define dice_fatal(...) ::dice::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report a suspicious-but-survivable condition. */
#define dice_warn(...) ::dice::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Diagnostic chatter, shown only at DICE_LOG_LEVEL=debug. */
#define dice_debug(...) ::dice::debugImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless @p cond holds; remaining args are a printf message. */
#define dice_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dice::assertFailImpl(__FILE__, __LINE__,                      \
                                   "assertion '%s' failed", #cond);         \
            dice_panic(__VA_ARGS__);                                        \
        }                                                                   \
    } while (0)

#endif // DICE_COMMON_LOG_HPP
