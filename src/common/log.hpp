/**
 * @file
 * Error-reporting helpers following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a debugger/core dump is available.
 *  - fatal():  the user asked for something unsatisfiable (bad
 *              configuration); exits with status 1.
 *  - warn():   something is suspicious but simulation can continue.
 */

#ifndef DICE_COMMON_LOG_HPP
#define DICE_COMMON_LOG_HPP

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dice
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace dice

/** Report a simulator bug and abort. */
#define dice_panic(...) ::dice::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report an unusable user configuration and exit(1). */
#define dice_fatal(...) ::dice::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Report a suspicious-but-survivable condition. */
#define dice_warn(...) ::dice::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless @p cond holds; remaining args are a printf message. */
#define dice_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dice::warnImpl(__FILE__, __LINE__,                            \
                             "assertion '%s' failed", #cond);               \
            dice_panic(__VA_ARGS__);                                        \
        }                                                                   \
    } while (0)

#endif // DICE_COMMON_LOG_HPP
