#include "claim_file.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>

#ifdef _WIN32
#include <io.h>
#include <process.h>
#else
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace dice
{

long
claimPid()
{
#ifdef _WIN32
    return static_cast<long>(_getpid());
#else
    return static_cast<long>(getpid());
#endif
}

const std::string &
claimHost()
{
    static const std::string host = [] {
#ifdef _WIN32
        const char *h = std::getenv("COMPUTERNAME");
        return std::string(h != nullptr ? h : "unknown");
#else
        char buf[256] = {0};
        if (gethostname(buf, sizeof buf - 1) != 0)
            return std::string("unknown");
        return std::string(buf);
#endif
    }();
    return host;
}

bool
claimPidAlive(long pid)
{
#ifdef _WIN32
    // No cheap liveness probe; rely on the mtime staleness fallback.
    (void)pid;
    return true;
#else
    return kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
#endif
}

bool
parseClaimBody(const std::string &content, long &pid, std::string &host)
{
    const std::size_t host_at = content.find(" host ");
    if (content.rfind("pid ", 0) != 0 || host_at == std::string::npos)
        return false;
    pid = std::strtol(content.c_str() + 4, nullptr, 10);
    host = content.substr(host_at + 6);
    while (!host.empty() && (host.back() == '\n' || host.back() == '\r'))
        host.pop_back();
    return pid > 0 && !host.empty();
}

std::uint64_t
fileAgeSeconds(const std::filesystem::path &path)
{
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return 0;
    const auto now = std::filesystem::file_time_type::clock::now();
    const auto age =
        std::chrono::duration_cast<std::chrono::seconds>(now - mtime);
    return age.count() > 0 ? static_cast<std::uint64_t>(age.count()) : 0;
}

namespace
{

std::string
claimBody()
{
    return "pid " + std::to_string(claimPid()) + " host " + claimHost() +
           "\n";
}

} // namespace

ClaimAttempt
createClaimFile(const std::filesystem::path &path)
{
#ifdef _WIN32
    (void)path;
    return ClaimAttempt::Error;
#else
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
        const std::string body = claimBody();
        // A short or failed write still leaves a valid claim file; its
        // content only feeds liveness heuristics.
        (void)!::write(fd, body.data(), body.size());
        ::close(fd);
        return ClaimAttempt::Acquired;
    }
    return errno == EEXIST ? ClaimAttempt::Busy : ClaimAttempt::Error;
#endif
}

bool
claimFileLive(const std::filesystem::path &path,
              std::uint64_t stale_seconds)
{
    std::ifstream in(path);
    if (!in)
        return false; // no claim file: holder finished or died cleanly
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

    long pid = 0;
    std::string host;
    if (parseClaimBody(content, pid, host)) {
        if (host == claimHost() && !claimPidAlive(pid))
            return false;
    }
    // Shared-filesystem fallback: a claim from another host (or an
    // unparseable one) is presumed live until it outlives the stale
    // threshold; holders refresh their claims to stay under it.
    return fileAgeSeconds(path) < stale_seconds;
}

bool
refreshClaimFile(const std::filesystem::path &path)
{
    // A refresh extends the claim's freshness; it must preserve the
    // original body (never re-stamp ownership) and must not resurrect
    // a claim that was already released — so a vanished file is a
    // no-op, not a rewrite.
    std::ifstream in(path);
    if (!in)
        return false;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (content.empty())
        return false;
    // Atomic replace, not in-place truncation: a concurrent reader of
    // the claim must never observe an empty body (which would parse as
    // garbage and start the mtime-staleness clock on a live holder).
    return atomicWriteFile(path, content);
}

bool
atomicWriteFile(const std::filesystem::path &path,
                const std::string &content)
{
    static std::atomic<std::uint64_t> counter{0};
    std::filesystem::path tmp = path;
    tmp += ".tmp." + std::to_string(claimPid()) + "." +
           std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return false;
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        if (!out)
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace dice
