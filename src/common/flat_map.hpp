/**
 * @file
 * Cache-friendly associative storage for the simulation hot loop.
 *
 * The simulator's per-reference state (line versions, write counts,
 * memoized compressed sizes) used to live in node-based
 * std::unordered_map instances — one pointer chase plus one heap
 * allocation per new key, repeated billions of times across a sweep.
 * Two purpose-built replacements live here:
 *
 *  - FlatMap<K, V>: open-addressed hash map over contiguous arrays.
 *    Power-of-two capacity, linear probing, and tombstone-free
 *    backward-shift erasure; inserts allocate only on (amortized,
 *    doubling) growth, so a `reserve`d map runs allocation-free.
 *
 *  - BoundedMemo<K, V>: fixed-capacity, generation-versioned memo
 *    table for pure-function results. Set-associative replacement
 *    keeps it O(1) and its footprint constant regardless of how many
 *    distinct keys flow through — the property the compressed cache's
 *    size memo needs over billion-reference runs.
 *
 * Both are deterministic: identical operation sequences produce
 * identical contents, so simulation results stay bit-reproducible.
 */

#ifndef DICE_COMMON_FLAT_MAP_HPP
#define DICE_COMMON_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace dice
{

/** Default FlatMap hash: full-avalanche mixing of integral keys. */
struct Mix64Hash
{
    std::uint64_t
    operator()(std::uint64_t key) const
    {
        return mix64(key);
    }
};

/**
 * Open-addressed hash map with linear probing.
 *
 * Supports exactly what the simulator needs — find / operator[] /
 * insert_or_assign / erase / clear / reserve — over one flat slot
 * array that interleaves key, value, and occupancy byte, so a probe
 * run touches consecutive bytes of one or two cache lines instead of
 * three parallel arrays. Erasure backward-shifts the displaced run
 * instead of leaving tombstones, keeping probe lengths tight on
 * erase-heavy workloads. References returned by find()/operator[] are
 * invalidated by any mutating call (growth rehashes in place).
 */
template <typename K, typename V, typename Hash = Mix64Hash>
class FlatMap
{
  public:
    /** @param expected_keys Pre-sizes the table (see reserve()). */
    explicit FlatMap(std::size_t expected_keys = 0)
    {
        if (expected_keys > 0)
            reserve(expected_keys);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Current slot count (always a power of two, or zero). */
    std::size_t capacity() const { return slots_.size(); }

    /** Grow so @p expected_keys fit without further rehashing. */
    void
    reserve(std::size_t expected_keys)
    {
        std::size_t want = 16;
        // Max load factor 3/4: grow until the budget fits.
        while (want * 3 / 4 < expected_keys)
            want *= 2;
        if (want > capacity())
            rehash(want);
    }

    /** Drop all entries; keeps the allocated slots. */
    void
    clear()
    {
        for (Slot &s : slots_)
            s.used = 0;
        size_ = 0;
    }

    /** Pointer to the value of @p key, or nullptr when absent. */
    V *
    find(const K &key)
    {
        if (size_ == 0)
            return nullptr;
        for (std::size_t i = Hash{}(key)&mask_;; i = (i + 1) & mask_) {
            if (!slots_[i].used)
                return nullptr;
            if (slots_[i].key == key)
                return &slots_[i].val;
        }
    }

    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /**
     * Hint the cache to load @p key's home slot. Behavior-neutral: use
     * when the lookup is known to follow other long work it can hide
     * under (e.g. the main-memory version probe behind an L4 read).
     */
    void
    prefetch(const K &key) const
    {
        if (!slots_.empty())
            __builtin_prefetch(slots_.data() + (Hash{}(key) & mask_));
    }

    /** Value of @p key, or @p fallback when absent. */
    V
    valueOr(const K &key, V fallback) const
    {
        const V *v = find(key);
        return v ? *v : fallback;
    }

    /** Reference to the value of @p key, value-initialized if new. */
    V &
    operator[](const K &key)
    {
        growIfNeeded();
        Slot &s = slots_[probe(key)];
        if (!s.used) {
            s.used = 1;
            s.key = key;
            s.val = V{};
            ++size_;
        }
        return s.val;
    }

    /** Insert or overwrite; returns true when the key was new. */
    bool
    insert_or_assign(const K &key, V value)
    {
        growIfNeeded();
        Slot &s = slots_[probe(key)];
        const bool inserted = !s.used;
        if (inserted) {
            s.used = 1;
            s.key = key;
            ++size_;
        }
        s.val = std::move(value);
        return inserted;
    }

    /**
     * Remove @p key, backward-shifting the displaced probe run so no
     * tombstone is left behind. Returns true when the key was present.
     */
    bool
    erase(const K &key)
    {
        if (size_ == 0)
            return false;
        std::size_t i = Hash{}(key)&mask_;
        for (;; i = (i + 1) & mask_) {
            if (!slots_[i].used)
                return false;
            if (slots_[i].key == key)
                break;
        }
        // Shift successors whose home slot precedes the emptied hole
        // back into it, preserving every probe chain.
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask_; slots_[j].used;
             j = (j + 1) & mask_) {
            const std::size_t home = Hash{}(slots_[j].key) & mask_;
            // Move j into the hole unless j's home lies after the hole
            // (cyclically), in which case the chain stays intact.
            const bool reachable =
                ((j - home) & mask_) >= ((j - hole) & mask_);
            if (reachable) {
                slots_[hole].key = std::move(slots_[j].key);
                slots_[hole].val = std::move(slots_[j].val);
                hole = j;
            }
        }
        slots_[hole].used = 0;
        --size_;
        return true;
    }

  private:
    /** One probe slot: key, value, and occupancy interleaved. */
    struct Slot
    {
        K key;
        V val;
        std::uint8_t used;
    };

    /** Slot where @p key lives or must be inserted (table non-empty). */
    std::size_t
    probe(const K &key) const
    {
        std::size_t i = Hash{}(key)&mask_;
        while (slots_[i].used && !(slots_[i].key == key))
            i = (i + 1) & mask_;
        return i;
    }

    void
    growIfNeeded()
    {
        if (capacity() == 0 || (size_ + 1) * 4 > capacity() * 3)
            rehash(capacity() == 0 ? 16 : capacity() * 2);
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old = std::move(slots_);

        slots_.assign(new_capacity, Slot{});
        mask_ = new_capacity - 1;

        for (Slot &s : old) {
            if (!s.used)
                continue;
            const std::size_t j = probe(s.key);
            slots_[j].used = 1;
            slots_[j].key = std::move(s.key);
            slots_[j].val = std::move(s.val);
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/**
 * Fixed-footprint, generation-versioned memo table for pure-function
 * results (key -> value with value fully determined by key).
 *
 * Capacity is fixed at construction: 2^bucket_bits buckets of kWays
 * slots. A colliding insert deterministically replaces a way instead
 * of growing, so a miss only ever costs a recomputation — never a
 * heap allocation — and memory stays flat no matter how many distinct
 * keys pass through. clear() bumps the generation counter, lazily
 * invalidating every slot in O(1).
 *
 * Set @p PreHashed when keys are already well-mixed (e.g. mix64
 * outputs): the bucket then comes straight from the key's low bits
 * instead of rehashing.
 */
template <typename K, typename V, bool PreHashed = false>
class BoundedMemo
{
  public:
    static constexpr std::uint32_t kWays = 4;

    /** @param bucket_bits log2 of the bucket count (default 2^14). */
    explicit BoundedMemo(std::uint32_t bucket_bits = 14)
        : bucket_mask_((std::size_t{1} << bucket_bits) - 1),
          buckets_(bucket_mask_ + 1)
    {
    }

    /** Total slots (constant for the memo's lifetime). */
    std::size_t slotCount() const { return buckets_.size() * kWays; }

    /** Storage footprint in bytes (constant for the memo's lifetime). */
    std::size_t
    capacityBytes() const
    {
        return buckets_.size() * sizeof(Bucket);
    }

    /** Pointer to the memoized value of @p key, or nullptr on miss. */
    const V *
    find(const K &key) const
    {
        const std::uint64_t h = hashOf(key);
        const Bucket &b = buckets_[h & bucket_mask_];
        for (std::uint32_t w = 0; w < kWays; ++w) {
            if (b.gens[w] == gen_ && b.keys[w] == key)
                return &b.vals[w];
        }
        return nullptr;
    }

    /** Memoize key -> value, evicting a colliding way if needed. */
    void
    put(const K &key, V value)
    {
        const std::uint64_t h = hashOf(key);
        Bucket &b = buckets_[h & bucket_mask_];
        // Deterministic replacement way from independent hash bits.
        auto victim = static_cast<std::uint32_t>(h >> 62);
        for (std::uint32_t w = 0; w < kWays; ++w) {
            if (b.gens[w] != gen_) {
                victim = w; // prefer a stale slot
                break;
            }
            if (b.keys[w] == key) {
                victim = w; // refresh in place
                break;
            }
        }
        b.keys[victim] = key;
        b.vals[victim] = std::move(value);
        b.gens[victim] = gen_;
    }

    /** Invalidate everything in O(1) via the generation counter. */
    void
    clear()
    {
        ++gen_;
        if (gen_ == 0) { // wrapped: slots with gen 0 must not revive
            for (Bucket &b : buckets_)
                std::fill(std::begin(b.gens), std::end(b.gens), 0);
            gen_ = 1;
        }
    }

  private:
    static std::uint64_t
    hashOf(const K &key)
    {
        if constexpr (PreHashed)
            return static_cast<std::uint64_t>(key);
        else
            return mix64(static_cast<std::uint64_t>(key));
    }

    /**
     * One bucket interleaves its ways' keys, values, and generations so
     * a probe touches one cache line, not three parallel arrays — at
     * the memo footprints the compressed cache uses (MiBs), every probe
     * is a cache miss and the layout sets how many. For the 8-B-key /
     * 4-B-value instantiation of the hot path, sizeof(Bucket) is
     * exactly 64.
     */
    struct Bucket
    {
        K keys[kWays];
        V vals[kWays];
        std::uint32_t gens[kWays];
    };

    std::size_t bucket_mask_;
    std::vector<Bucket> buckets_;
    std::uint32_t gen_ = 1;
};

} // namespace dice

#endif // DICE_COMMON_FLAT_MAP_HPP
