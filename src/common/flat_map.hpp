/**
 * @file
 * Cache-friendly associative storage for the simulation hot loop.
 *
 * The simulator's per-reference state (line versions, write counts,
 * memoized compressed sizes) used to live in node-based
 * std::unordered_map instances — one pointer chase plus one heap
 * allocation per new key, repeated billions of times across a sweep.
 * Two purpose-built replacements live here:
 *
 *  - FlatMap<K, V>: open-addressed hash map over contiguous arrays.
 *    Power-of-two capacity, linear probing, and tombstone-free
 *    backward-shift erasure; inserts allocate only on (amortized,
 *    doubling) growth, so a `reserve`d map runs allocation-free.
 *
 *  - BoundedMemo<K, V>: fixed-capacity, generation-versioned memo
 *    table for pure-function results. Set-associative replacement
 *    keeps it O(1) and its footprint constant regardless of how many
 *    distinct keys flow through — the property the compressed cache's
 *    size memo needs over billion-reference runs.
 *
 * Both are deterministic: identical operation sequences produce
 * identical contents, so simulation results stay bit-reproducible.
 */

#ifndef DICE_COMMON_FLAT_MAP_HPP
#define DICE_COMMON_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace dice
{

/** Default FlatMap hash: full-avalanche mixing of integral keys. */
struct Mix64Hash
{
    std::uint64_t
    operator()(std::uint64_t key) const
    {
        return mix64(key);
    }
};

/**
 * Open-addressed hash map with linear probing.
 *
 * Supports exactly what the simulator needs — find / operator[] /
 * insert_or_assign / erase / clear / reserve — over flat arrays with
 * a separate one-byte occupancy plane, so probe runs stay within a
 * couple of cache lines. Erasure backward-shifts the displaced run
 * instead of leaving tombstones, keeping probe lengths tight on
 * erase-heavy workloads. References returned by find()/operator[] are
 * invalidated by any mutating call (growth rehashes in place).
 */
template <typename K, typename V, typename Hash = Mix64Hash>
class FlatMap
{
  public:
    /** @param expected_keys Pre-sizes the table (see reserve()). */
    explicit FlatMap(std::size_t expected_keys = 0)
    {
        if (expected_keys > 0)
            reserve(expected_keys);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Current slot count (always a power of two, or zero). */
    std::size_t capacity() const { return keys_.size(); }

    /** Grow so @p expected_keys fit without further rehashing. */
    void
    reserve(std::size_t expected_keys)
    {
        std::size_t want = 16;
        // Max load factor 3/4: grow until the budget fits.
        while (want * 3 / 4 < expected_keys)
            want *= 2;
        if (want > capacity())
            rehash(want);
    }

    /** Drop all entries; keeps the allocated slots. */
    void
    clear()
    {
        std::fill(used_.begin(), used_.end(), std::uint8_t{0});
        size_ = 0;
    }

    /** Pointer to the value of @p key, or nullptr when absent. */
    V *
    find(const K &key)
    {
        if (size_ == 0)
            return nullptr;
        for (std::size_t i = Hash{}(key)&mask_;; i = (i + 1) & mask_) {
            if (!used_[i])
                return nullptr;
            if (keys_[i] == key)
                return &vals_[i];
        }
    }

    const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /** Value of @p key, or @p fallback when absent. */
    V
    valueOr(const K &key, V fallback) const
    {
        const V *v = find(key);
        return v ? *v : fallback;
    }

    /** Reference to the value of @p key, value-initialized if new. */
    V &
    operator[](const K &key)
    {
        growIfNeeded();
        const std::size_t i = probe(key);
        if (!used_[i]) {
            used_[i] = 1;
            keys_[i] = key;
            vals_[i] = V{};
            ++size_;
        }
        return vals_[i];
    }

    /** Insert or overwrite; returns true when the key was new. */
    bool
    insert_or_assign(const K &key, V value)
    {
        growIfNeeded();
        const std::size_t i = probe(key);
        const bool inserted = !used_[i];
        if (inserted) {
            used_[i] = 1;
            keys_[i] = key;
            ++size_;
        }
        vals_[i] = std::move(value);
        return inserted;
    }

    /**
     * Remove @p key, backward-shifting the displaced probe run so no
     * tombstone is left behind. Returns true when the key was present.
     */
    bool
    erase(const K &key)
    {
        if (size_ == 0)
            return false;
        std::size_t i = Hash{}(key)&mask_;
        for (;; i = (i + 1) & mask_) {
            if (!used_[i])
                return false;
            if (keys_[i] == key)
                break;
        }
        // Shift successors whose home slot precedes the emptied hole
        // back into it, preserving every probe chain.
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask_; used_[j];
             j = (j + 1) & mask_) {
            const std::size_t home = Hash{}(keys_[j]) & mask_;
            // Move j into the hole unless j's home lies after the hole
            // (cyclically), in which case the chain stays intact.
            const bool reachable =
                ((j - home) & mask_) >= ((j - hole) & mask_);
            if (reachable) {
                keys_[hole] = std::move(keys_[j]);
                vals_[hole] = std::move(vals_[j]);
                hole = j;
            }
        }
        used_[hole] = 0;
        --size_;
        return true;
    }

  private:
    /** Slot where @p key lives or must be inserted (table non-empty). */
    std::size_t
    probe(const K &key) const
    {
        std::size_t i = Hash{}(key)&mask_;
        while (used_[i] && !(keys_[i] == key))
            i = (i + 1) & mask_;
        return i;
    }

    void
    growIfNeeded()
    {
        if (capacity() == 0 || (size_ + 1) * 4 > capacity() * 3)
            rehash(capacity() == 0 ? 16 : capacity() * 2);
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<K> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        std::vector<std::uint8_t> old_used = std::move(used_);

        keys_.assign(new_capacity, K{});
        vals_.assign(new_capacity, V{});
        used_.assign(new_capacity, 0);
        mask_ = new_capacity - 1;

        for (std::size_t i = 0; i < old_used.size(); ++i) {
            if (!old_used[i])
                continue;
            const std::size_t j = probe(old_keys[i]);
            used_[j] = 1;
            keys_[j] = std::move(old_keys[i]);
            vals_[j] = std::move(old_vals[i]);
        }
    }

    std::vector<K> keys_;
    std::vector<V> vals_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/**
 * Fixed-footprint, generation-versioned memo table for pure-function
 * results (key -> value with value fully determined by key).
 *
 * Capacity is fixed at construction: 2^bucket_bits buckets of kWays
 * slots. A colliding insert deterministically replaces a way instead
 * of growing, so a miss only ever costs a recomputation — never a
 * heap allocation — and memory stays flat no matter how many distinct
 * keys pass through. clear() bumps the generation counter, lazily
 * invalidating every slot in O(1).
 */
template <typename K, typename V>
class BoundedMemo
{
  public:
    static constexpr std::uint32_t kWays = 4;

    /** @param bucket_bits log2 of the bucket count (default 2^14). */
    explicit BoundedMemo(std::uint32_t bucket_bits = 14)
        : bucket_mask_((std::size_t{1} << bucket_bits) - 1),
          keys_((bucket_mask_ + 1) * kWays, K{}),
          vals_((bucket_mask_ + 1) * kWays, V{}),
          gens_((bucket_mask_ + 1) * kWays, 0)
    {
    }

    /** Total slots (constant for the memo's lifetime). */
    std::size_t slotCount() const { return keys_.size(); }

    /** Storage footprint in bytes (constant for the memo's lifetime). */
    std::size_t
    capacityBytes() const
    {
        return keys_.size() * (sizeof(K) + sizeof(V) + sizeof(gen_));
    }

    /** Pointer to the memoized value of @p key, or nullptr on miss. */
    const V *
    find(const K &key) const
    {
        const std::size_t base = bucketOf(key) * kWays;
        for (std::uint32_t w = 0; w < kWays; ++w) {
            if (gens_[base + w] == gen_ && keys_[base + w] == key)
                return &vals_[base + w];
        }
        return nullptr;
    }

    /** Memoize key -> value, evicting a colliding way if needed. */
    void
    put(const K &key, V value)
    {
        const std::size_t base = bucketOf(key) * kWays;
        std::size_t victim = base + victimWay(key);
        for (std::uint32_t w = 0; w < kWays; ++w) {
            if (gens_[base + w] != gen_) {
                victim = base + w; // prefer a stale slot
                break;
            }
            if (keys_[base + w] == key) {
                victim = base + w; // refresh in place
                break;
            }
        }
        keys_[victim] = key;
        vals_[victim] = std::move(value);
        gens_[victim] = gen_;
    }

    /** Invalidate everything in O(1) via the generation counter. */
    void
    clear()
    {
        ++gen_;
        if (gen_ == 0) { // wrapped: slots with gen 0 must not revive
            std::fill(gens_.begin(), gens_.end(), 0);
            gen_ = 1;
        }
    }

  private:
    std::size_t
    bucketOf(const K &key) const
    {
        return mix64(static_cast<std::uint64_t>(key)) & bucket_mask_;
    }

    /** Deterministic replacement way from independent hash bits. */
    std::uint32_t
    victimWay(const K &key) const
    {
        return static_cast<std::uint32_t>(
            mix64(static_cast<std::uint64_t>(key)) >> 62);
    }

    std::size_t bucket_mask_;
    std::vector<K> keys_;
    std::vector<V> vals_;
    std::vector<std::uint32_t> gens_;
    std::uint32_t gen_ = 1;
};

} // namespace dice

#endif // DICE_COMMON_FLAT_MAP_HPP
