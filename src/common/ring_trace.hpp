/**
 * @file
 * Fixed-capacity, allocation-free ring buffer for per-access decision
 * traces.
 *
 * Telemetry consumers (CIP read predictions, DICE install decisions)
 * record one small POD record per event into a DecisionRing sized at
 * compile time; the ring overwrites its oldest entry once full, so a
 * long run keeps only the most recent window — exactly what is needed
 * to dump "what just happened" when a misprediction burst is detected.
 * Storage is an inline std::array, so recording never allocates and
 * the hot-path cost is one store plus two index updates.
 */

#ifndef DICE_COMMON_RING_TRACE_HPP
#define DICE_COMMON_RING_TRACE_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace dice
{

/** Ring of the last N records of type T (oldest overwritten first). */
template <typename T, std::size_t N>
class DecisionRing
{
    static_assert(N > 0, "DecisionRing needs at least one slot");

  public:
    /** Append @p v, overwriting the oldest record when full. */
    void
    push(const T &v)
    {
        buf_[head_] = v;
        head_ = head_ + 1 == N ? 0 : head_ + 1;
        if (count_ < N)
            ++count_;
        ++pushes_;
    }

    /** Records currently held (<= capacity()). */
    std::size_t size() const { return count_; }

    static constexpr std::size_t capacity() { return N; }

    /** Total records ever pushed (wrapped records included). */
    std::uint64_t pushes() const { return pushes_; }

    bool empty() const { return count_ == 0; }

    /** Record @p i in age order: 0 is the oldest still held. */
    const T &
    at(std::size_t i) const
    {
        const std::size_t oldest = count_ < N ? 0 : head_;
        return buf_[(oldest + i) % N];
    }

    /** Visit every held record oldest -> newest. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < count_; ++i)
            fn(at(i));
    }

    void
    clear()
    {
        head_ = count_ = 0;
        pushes_ = 0;
    }

  private:
    std::array<T, N> buf_{};
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t pushes_ = 0;
};

} // namespace dice

#endif // DICE_COMMON_RING_TRACE_HPP
