/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (trace generation, data
 * synthesis, page placement) draws from an explicitly-seeded Xorshift128+
 * stream so that runs are bit-reproducible regardless of the standard
 * library implementation.
 */

#ifndef DICE_COMMON_RNG_HPP
#define DICE_COMMON_RNG_HPP

#include <cstdint>

namespace dice
{

/**
 * Xorshift128+ generator. Small, fast, and adequate statistical quality
 * for workload synthesis; not for cryptography.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is fine). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 seeding to decorrelate nearby seeds.
        auto next_seed = [&seed]() {
            seed += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            return z ^ (z >> 31);
        };
        s0_ = next_seed();
        s1_ = next_seed();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next 64 uniformly-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift bounded rejection-free mapping (slightly biased
        // for astronomically-large bounds; irrelevant for simulation).
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw: true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

/**
 * Stateless 64-bit mix hash; used to derive deterministic per-address
 * values (data synthesis, page->profile assignment, CIP table hashing).
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

/** Combine two values into one hash (order-sensitive). */
constexpr std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (mix64(b) + 0x9E3779B97F4A7C15ull + (a << 6)));
}

} // namespace dice

#endif // DICE_COMMON_RNG_HPP
