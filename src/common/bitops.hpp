/**
 * @file
 * Small bit-manipulation helpers used by indexing schemes, the TAD set
 * layout codec, and the compressors.
 */

#ifndef DICE_COMMON_BITOPS_HPP
#define DICE_COMMON_BITOPS_HPP

#include <cassert>
#include <cstdint>

namespace dice
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr std::uint32_t
floorLog2(std::uint64_t v)
{
    std::uint32_t l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr std::uint32_t
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Number of set bits in @p v. */
constexpr std::uint32_t
popcount64(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<std::uint32_t>(__builtin_popcountll(v));
#else
    std::uint32_t n = 0;
    for (; v != 0; v &= v - 1)
        ++n;
    return n;
#endif
}

/**
 * Extract bits [hi:lo] (inclusive, hi >= lo) of @p v, right-justified.
 */
constexpr std::uint64_t
bits(std::uint64_t v, std::uint32_t hi, std::uint32_t lo)
{
    const std::uint32_t n_bits = hi - lo + 1;
    const std::uint64_t mask =
        n_bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n_bits) - 1);
    return (v >> lo) & mask;
}

/** Extract the single bit @p pos of @p v. */
constexpr std::uint64_t
bit(std::uint64_t v, std::uint32_t pos)
{
    return (v >> pos) & 1;
}

/**
 * Insert the low @p n_bits of @p field into @p v at bit position @p lo,
 * returning the updated word.
 */
constexpr std::uint64_t
insertBits(std::uint64_t v, std::uint32_t lo, std::uint32_t n_bits,
           std::uint64_t field)
{
    const std::uint64_t mask =
        n_bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n_bits) - 1);
    return (v & ~(mask << lo)) | ((field & mask) << lo);
}

/** Sign-extend the low @p n_bits of @p v to a signed 64-bit value. */
constexpr std::int64_t
signExtend(std::uint64_t v, std::uint32_t n_bits)
{
    assert(n_bits >= 1 && n_bits <= 64);
    if (n_bits == 64)
        return static_cast<std::int64_t>(v);
    const std::uint64_t sign = std::uint64_t{1} << (n_bits - 1);
    const std::uint64_t mask = (std::uint64_t{1} << n_bits) - 1;
    v &= mask;
    return static_cast<std::int64_t>((v ^ sign) - sign);
}

/**
 * True iff signed value @p v is representable in @p n_bits two's
 * complement bits.
 */
constexpr bool
fitsSigned(std::int64_t v, std::uint32_t n_bits)
{
    if (n_bits >= 64)
        return true;
    const std::int64_t lim = std::int64_t{1} << (n_bits - 1);
    return v >= -lim && v < lim;
}

/** True iff unsigned value @p v is representable in @p n_bits. */
constexpr bool
fitsUnsigned(std::uint64_t v, std::uint32_t n_bits)
{
    if (n_bits >= 64)
        return true;
    return v < (std::uint64_t{1} << n_bits);
}

} // namespace dice

#endif // DICE_COMMON_BITOPS_HPP
