/**
 * @file
 * Minimal threading utilities for the embarrassingly-parallel parts of
 * the project (the bench suite's simulation sweeps, bulk codec
 * measurement). Tasks must be independent and must not throw: the
 * simulator reports failure through dice_assert/dice_panic, which
 * abort the process.
 */

#ifndef DICE_COMMON_PARALLEL_HPP
#define DICE_COMMON_PARALLEL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dice
{

/** Fixed-size pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Waits for queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_task_;
    std::condition_variable cv_done_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

/**
 * Run fn(0) ... fn(n-1) on up to @p jobs threads and return when all
 * have finished. jobs <= 1 (or n <= 1) executes inline on the calling
 * thread with no pool at all, so a single-job run is bit-identical in
 * behavior to a plain loop. Indices are claimed dynamically, one at a
 * time, so uneven task costs balance across the pool.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

/**
 * Worker-thread count from environment variable @p env_name (values
 * >= 1), falling back to the hardware concurrency (at least 1).
 */
unsigned jobsFromEnv(const char *env_name);

} // namespace dice

#endif // DICE_COMMON_PARALLEL_HPP
