/**
 * @file
 * Distributed sweep observability: per-participant event journals,
 * process-wide phase-latency metrics, and the cross-participant
 * timeline merge.
 *
 * A multi-process (possibly multi-host) sweep has no shared memory,
 * so every participant — coordinator, spawned `--worker`s, `--join`
 * attachers, or a plain serial run — appends structured events to its
 * own journal `<results>/events/<participant>.jsonl`:
 *
 *   {"ev":"epoch","participant":..,"pid":..,"host":..,
 *    "wall_us":..,"mono_us":..}            first record per process
 *   {"ev":"mark","name":..,"detail":..,...}    e.g. worker spawns
 *   {"ev":"claim","cell":..,"stolen":0|1,"requeued":0|1,
 *    "wait_us":..,...}                     queue claim (requeued=1:
 *                                          acquired by breaking a
 *                                          dead holder's lease)
 *   {"ev":"begin","phase":..,"cell":..,...}    phase entry (lets a
 *                                          live tail show in-flight
 *                                          work and a post-mortem
 *                                          show where a worker died)
 *   {"ev":"phase","phase":..,"cell":..,"start_us":..,"dur_us":..,...}
 *   {"ev":"publish","cell":..,...}
 *   {"ev":"lease","op":"refresh"|"break"|"release","cell":..,
 *    "dur_us":..,...}
 *   {"ev":"arena","op":"disk_hit"|"generate"|"spill","key":..,...}
 *
 * Every record carries both clocks: "wall_us" (system clock, for
 * humans and cross-host sanity) and "mono_us" (steady clock relative
 * to the process's epoch record, immune to NTP steps). The merge step
 * estimates one offset per journal segment from its epoch record and
 * then *relaxes* it against causal constraints that cannot be
 * violated no matter how skewed the wall clocks are: a worker's epoch
 * cannot precede the coordinator's spawn mark for it, and a requeued
 * claim of a cell cannot precede the first claim of the same cell.
 * The result is one Chrome trace-event document with a lane per
 * participant — a whole multi-host sweep in one chrome://tracing (or
 * Perfetto) load.
 *
 * Everything here is gated by DICE_SWEEP_EVENTS (off by default).
 * When disabled, every journal emitter returns immediately without
 * allocating — enforced by the micro_simloop allocation gate.
 */

#ifndef DICE_COMMON_SWEEP_EVENTS_HPP
#define DICE_COMMON_SWEEP_EVENTS_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace dice
{

// ---------------------------------------------------------------------
// Phase-latency metrics.

/** The per-cell and lease-op latencies a sweep participant records. */
enum class SweepPhase : unsigned
{
    ClaimWait,    ///< Claim loop: queue poll until a cell was claimed.
    Generate,     ///< Trace acquisition (arena hit, disk load, or gen).
    Simulate,     ///< System::run of a fresh cell.
    Export,       ///< Per-cell stats export (zero when disabled).
    Cell,         ///< Whole fresh cell (generate + simulate + export).
    LeaseAcquire, ///< createClaimFile syscall latency.
    LeaseRefresh, ///< refreshClaimFile syscall latency.
};

constexpr unsigned kSweepPhases = 7;

/** Stable stat/export name of @p p ("claim_wait_us", ...). */
const char *sweepPhaseName(SweepPhase p);

/**
 * Process-wide sweep metrics: one LogHistogram per SweepPhase plus
 * the slowest-cell record. Sampled unconditionally (a mutexed
 * histogram bump per *cell*, not per ref — invisible next to a
 * simulation), so sweep_summary.json percentiles exist even when the
 * event journal is off. Cumulative for the process's lifetime; use
 * snapshotAll() deltas for per-batch reporting.
 */
class SweepMetrics
{
  public:
    static SweepMetrics &instance();

    /** Record one latency sample. Allocation-free. */
    void sample(SweepPhase p, std::uint64_t us);

    /** Record a whole fresh cell: samples SweepPhase::Cell and tracks
     *  the slowest cell's identity for straggler flagging. */
    void noteCell(const std::string &cell, std::uint64_t us);

    /** Copies under lock (safe against concurrent samplers). */
    LogHistogram snapshot(SweepPhase p) const;
    std::array<LogHistogram, kSweepPhases> snapshotAll() const;

    /** (cell stem, microseconds) of the slowest cell ("" if none). */
    std::pair<std::string, std::uint64_t> slowestCell() const;

    /**
     * The "sweep" StatGroup: every phase histogram as a
     * count/sum/mean/max/p50/p90/p99 + bucket-edge entry family
     * (StatGroup::addLogHistogram). Values frozen at call time.
     */
    StatGroup statGroup() const;

    void resetForTest();

  private:
    SweepMetrics() = default;

    mutable std::mutex mu_;
    std::array<LogHistogram, kSweepPhases> hists_;
    std::string slowest_cell_;
    std::uint64_t slowest_us_ = 0;
};

// ---------------------------------------------------------------------
// Event journal.

/**
 * One participant's append-only event journal. A process-wide
 * singleton: disabled (and allocation-free on every emitter) until
 * open() is called, which only the bench harness does — and only when
 * DICE_SWEEP_EVENTS is set.
 *
 * Records are one JSON object per line, fflushed per record so a
 * SIGKILLed worker's journal is complete up to its last event. Files
 * are opened in append mode: a respawned worker of a later batch adds
 * a new epoch record ("segment") to the same journal, and the merge
 * step aligns each segment independently.
 */
class SweepJournal
{
  public:
    static SweepJournal &instance();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Open (append) @p events_dir/<participant>.jsonl and write the
     * epoch record. False on I/O failure (the journal stays
     * disabled). @p participant must be a sanitized file stem.
     */
    bool open(const std::filesystem::path &events_dir,
              const std::string &participant);

    void close();

    const std::string &participant() const { return participant_; }

    /** Microseconds of steady clock since this process's epoch. */
    std::uint64_t monoUs() const;

    // Emitters. All return immediately, without allocating, when the
    // journal is disabled; cell/phase/op strings are emitted verbatim
    // (callers pass sanitized stems and literals).
    void mark(const char *name, const std::string &detail);
    void claim(const std::string &cell, bool stolen, bool requeued,
               std::uint64_t wait_us);
    void begin(const char *phase, const std::string &cell);
    void phase(const char *phase, const std::string &cell,
               std::uint64_t start_mono_us, std::uint64_t dur_us);
    void publish(const std::string &cell);
    void lease(const char *op, const std::string &cell,
               std::uint64_t dur_us);
    void arena(const char *op, const std::string &key);

  private:
    SweepJournal() = default;

    void writeRecord(const char *body);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::FILE *file_ = nullptr;
    std::string participant_;
    std::chrono::steady_clock::time_point mono_epoch_{};
};

// ---------------------------------------------------------------------
// Journal reading + timeline merge (coordinator / tools / tests).

/** One parsed journal record (unset fields keep their defaults). */
struct JournalEvent
{
    std::string ev;      ///< Record type ("epoch", "claim", ...).
    std::string cell;
    std::string phase;
    std::string op;
    std::string name;    ///< mark name.
    std::string detail;  ///< mark detail.
    std::string key;     ///< arena key.
    std::uint64_t wall_us = 0;
    std::uint64_t mono_us = 0;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    std::uint64_t wait_us = 0;
    long pid = 0;
    bool stolen = false;
    bool requeued = false;
    /** Index of the epoch segment this event belongs to. */
    int segment = 0;
};

/** One epoch record's scope within a journal (one process run). */
struct JournalSegment
{
    std::uint64_t epoch_wall_us = 0;
    std::uint64_t epoch_mono_us = 0;
    long pid = 0;
    /** Estimated wall-clock offset: aligned(e) = offset + e.mono_us.
     *  Seeded from the epoch record, then causally relaxed. */
    double offset_us = 0.0;
};

/** A fully-read participant journal. */
struct ParticipantJournal
{
    std::string name; ///< File stem ("coordinator", "worker0", ...).
    std::string host; ///< From the last epoch record.
    std::vector<JournalSegment> segments;
    std::vector<JournalEvent> events; ///< File order, segment-tagged.
};

/**
 * Parse one journal line into @p out. False on anything that is not
 * a flat JSON object with the fields above (foreign garbage).
 */
bool parseJournalLine(const std::string &line, JournalEvent &out);

/**
 * Read a whole journal file. Unparseable lines are skipped (a journal
 * ends mid-line when its writer is SIGKILLed between write and
 * flush); false only when the file cannot be read or contains no
 * epoch record.
 */
bool readJournal(const std::filesystem::path &path,
                 ParticipantJournal &out, std::string *error = nullptr);

/** What mergeSweepTimeline produced (for logging/tools). */
struct TimelineStats
{
    std::size_t participants = 0;
    std::size_t events = 0; ///< Trace events emitted.
};

/**
 * Merge every *.jsonl journal under @p events_dir into one Chrome
 * trace-event document at @p out_path: per-segment clock offsets from
 * the epoch records, causal constraint relaxation (worker epochs
 * after their spawn marks; requeued claims after the cell's first
 * claim), one lane (pid) per participant, "X" events for phases and
 * instant events for claims/steals/requeues/publishes/lease
 * ops/arena traffic. Deterministic for a given set of journals.
 * False (with @p error) when the directory has no readable journals
 * or the output cannot be written.
 */
bool mergeSweepTimeline(const std::filesystem::path &events_dir,
                        const std::filesystem::path &out_path,
                        std::string *error = nullptr,
                        TimelineStats *stats = nullptr);

// ---------------------------------------------------------------------
// Cross-process histogram transport + anomaly detection.

/**
 * Append "hist <name> count .. sum .. max .. min .. buckets i:c,i:c\n"
 * — the worker-summary transport line for one LogHistogram. Only
 * non-empty buckets are listed; parseHistLine inverts exactly.
 */
void appendHistText(std::string &out, const std::string &name,
                    const LogHistogram &h);

/** Inverse of appendHistText (without the trailing newline
 *  requirement). False on anything malformed. */
bool parseHistLine(const std::string &line, std::string &name,
                   LogHistogram &out);

/**
 * The coordinator's anomaly screen over the merged (all participants)
 * batch record: flags straggler cells (slowest > k x p90 of the cell
 * distribution, with a minimum population so two-cell batches don't
 * self-flag) and requeue storms (a quarter or more of the batch's
 * cells came back through dead-holder requeues — lease churn).
 * Returns human-readable warning strings, empty when healthy.
 */
std::vector<std::string>
sweepAnomalyWarnings(const LogHistogram &cell_us,
                     const std::string &slowest_cell,
                     std::uint64_t slowest_us, std::uint64_t requeued,
                     std::uint64_t cells, double k);

} // namespace dice

#endif // DICE_COMMON_SWEEP_EVENTS_HPP
