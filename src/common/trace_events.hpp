/**
 * @file
 * Chrome trace-event output (viewable in Perfetto / chrome://tracing).
 *
 * The process-wide TraceLog collects complete ("ph":"X") events —
 * spans with a start timestamp and a duration — and writes them as one
 * trace-event JSON document. Flushing is incremental: each flush
 * appends only the events recorded since the previous one and then
 * re-writes the closing "]}"'s position, so the output file is a
 * complete, valid document after every flush while total flush cost
 * stays O(events), not O(events²). The bench harness wraps each sweep
 * cell's generate/replay/simulate phases in TraceSpans, so a
 * fig10-style run produces a per-worker timeline where load imbalance
 * and arena contention are directly visible.
 *
 * Cost model: when DICE_TRACE_OUT is unset the log is disabled and a
 * TraceSpan is two branch tests; when enabled, recording takes a
 * mutex, but spans are only created at phase granularity (a handful
 * per simulation cell), never per reference, so the hot loop is
 * unaffected either way.
 */

#ifndef DICE_COMMON_TRACE_EVENTS_HPP
#define DICE_COMMON_TRACE_EVENTS_HPP

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace dice
{

/** Process-wide collector of Chrome trace-event spans. */
class TraceLog
{
  public:
    /** The singleton; enabled iff DICE_TRACE_OUT names a file. */
    static TraceLog &instance();

    /** Flushes any pending events (best effort). */
    ~TraceLog();

    TraceLog(const TraceLog &) = delete;
    TraceLog &operator=(const TraceLog &) = delete;

    bool enabled() const { return enabled_; }

    /** Microseconds since the log was created (the trace epoch). */
    std::uint64_t nowUs() const;

    /**
     * Record a complete event: @p name in category @p cat spanning
     * [@p ts_us, @p ts_us + @p dur_us] on the calling thread's lane.
     * @p args_json, when non-empty, must be a rendered JSON object
     * ("{\"workload\": \"mcf\"}"). No-op when disabled.
     */
    void complete(const char *cat, std::string name, std::uint64_t ts_us,
                  std::uint64_t dur_us, std::string args_json = {});

    /**
     * Record an instant event ("ph":"i", thread scope): a point-in-time
     * marker at the current trace clock — arena evictions, budget
     * trips, and similar one-shot occurrences that have no duration.
     * No-op when disabled.
     */
    void instant(const char *cat, std::string name,
                 std::string args_json = {});

    /** Events recorded since the last flush. */
    std::size_t pendingEvents() const;

    /**
     * Append every event recorded since the previous flush to the
     * output document and re-close it, leaving a complete, valid
     * trace-event JSON file (repeatable; the first flush writes the
     * header). False on I/O failure or when disabled.
     */
    bool flush();

    const std::string &outputPath() const { return path_; }

    /** Redirect to @p path and enable (tests); drops pending events. */
    void setOutputForTest(const std::string &path);

  private:
    TraceLog();

    struct Event
    {
        std::string name;
        const char *cat;
        std::uint64_t ts_us;
        std::uint64_t dur_us; ///< Unused (0) for instant events.
        std::uint32_t tid;
        char ph; ///< 'X' = complete span, 'i' = instant marker.
        std::string args_json;
    };

    mutable std::mutex mu_;
    std::vector<Event> events_; ///< Recorded but not yet flushed.
    std::string path_;
    bool enabled_ = false;
    std::uint64_t epoch_ns_ = 0;

    /** Open output document (first flush opens it). The terminator
     *  "\n]}\n" lives at body_end_; the next flush seeks back there,
     *  appends the new events, and re-writes it. */
    std::ofstream out_;
    std::uint64_t body_end_ = 0;
    bool wrote_event_ = false;
};

/**
 * Stable small integer id for the calling thread (Perfetto lanes).
 * Assigned on first use in increasing spawn order; the main thread,
 * which touches telemetry first, is normally lane 0.
 */
std::uint32_t traceTid();

/** RAII span: records a complete event from construction to scope
 *  exit. All construction work is skipped when tracing is off. */
class TraceSpan
{
  public:
    TraceSpan(const char *cat, std::string name,
              std::string args_json = {});
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool active_ = false;
    const char *cat_ = nullptr;
    std::uint64_t start_us_ = 0;
    std::string name_;
    std::string args_json_;
};

} // namespace dice

#endif // DICE_COMMON_TRACE_EVENTS_HPP
