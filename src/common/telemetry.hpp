/**
 * @file
 * Simulator-wide telemetry: a hierarchical registry of StatGroups with
 * machine-readable export, plus the environment knobs that gate every
 * observability feature.
 *
 * A StatRegistry owns a list of (path, provider) pairs, where each
 * provider materializes a StatGroup on demand. Because StatGroup
 * entries read live counters through lambdas, a registry snapshot
 * always reflects the owning component's *current* state: the System
 * registers its L3/L4/CIP/DRAM/arena groups once at construction, and
 * the same registry serves both the end-of-run export and the interval
 * snapshots taken mid-run (warmup vs steady state).
 *
 * Export formats:
 *  - JSON (DICE_STATS_JSON=<dir>): one self-contained document per
 *    simulation cell, groups keyed by path plus an "intervals" array.
 *  - CSV  (DICE_STATS_CSV=<dir>): flat group,stat,value rows for
 *    spreadsheet-style diffing between runs.
 *
 * Every knob is re-read from the environment at use time (none of
 * these paths are hot), so tests and long-lived processes can flip
 * them between sweeps.
 */

#ifndef DICE_COMMON_TELEMETRY_HPP
#define DICE_COMMON_TELEMETRY_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace dice
{

/** Hierarchical collection of StatGroups with JSON/CSV export. */
class StatRegistry
{
  public:
    /** Builds the group whose live counters the entry reads. */
    using Provider = std::function<StatGroup()>;

    StatRegistry() = default;

    /** The registry holds this-capturing providers; copying it would
     *  silently alias another object's components. */
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Register @p provider under @p path ("l3", "l4.dram", ...).
     * Panics on a duplicate path: two components exporting under one
     * name would make every downstream consumer ambiguous.
     */
    void add(std::string path, Provider provider);

    std::size_t groupCount() const { return groups_.size(); }

    /** One mid-run capture of every registered stat. */
    struct Snapshot
    {
        std::string label;  ///< Phase name ("warmup", "measure", ...).
        std::uint64_t refs; ///< References completed at capture time.
        /** Flattened "path.stat" -> value rows, registration order. */
        std::vector<std::pair<std::string, double>> values;
    };

    /** Capture an interval snapshot of every group's current values. */
    void captureInterval(const std::string &label, std::uint64_t refs);

    const std::vector<Snapshot> &intervals() const { return intervals_; }

    /**
     * Per-interval activity of snapshot @p i: each stat's value minus
     * the previous snapshot's value for the same name (the first
     * snapshot is differenced against zero). For cumulative counters
     * this is the work done *within* the interval — what rate plots
     * and warmup-vs-steady comparisons actually want. Exported as the
     * "deltas" object per interval in toJson() and as "<name>.delta"
     * rows in toCsv().
     */
    std::vector<std::pair<std::string, double>>
    intervalDeltas(std::size_t i) const;

    /** Current value of every stat as flattened "path.stat" rows. */
    std::vector<std::pair<std::string, double>> flatten() const;

    /**
     * Whole registry (groups + intervals) as one JSON document.
     * Non-finite values are emitted as null so the output always
     * parses.
     */
    std::string toJson() const;

    /** Flat "group,stat,value" CSV (intervals get a refs column). */
    std::string toCsv() const;

    /** Write toJson()/toCsv() to @p path; false on I/O failure. */
    bool writeJson(const std::string &path) const;
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, Provider>> groups_;
    std::vector<Snapshot> intervals_;
};

/** Append @p s to @p out with JSON string escaping (no quotes added). */
void appendJsonEscaped(std::string &out, const std::string &s);

/** Append @p v as a JSON number ("null" for NaN/infinity). */
void appendJsonNumber(std::string &out, double v);

/** DICE_STATS_JSON: directory for per-cell stats JSON ("" = off). */
std::string statsJsonDir();

/** DICE_STATS_CSV: directory for per-cell stats CSV ("" = off). */
std::string statsCsvDir();

/** DICE_STATS_INTERVAL: refs between interval snapshots (0 = off). */
std::uint64_t statsIntervalRefs();

/** DICE_DECISION_TRACE=1: record per-access decision rings. */
bool decisionTraceEnabled();

/** DICE_PROGRESS=1: bench-harness heartbeat/progress line. */
bool progressEnabled();

/** DICE_SWEEP_RESULTS: directory for distributed-sweep worker output
 *  (per-cell docs, heartbeats, summaries). "" = harness default
 *  (<bench cache dir>/results). */
std::string sweepResultsDir();

/** DICE_SWEEP_MERGED: path for the canonical merged sweep document
 *  ("" = not written). */
std::string sweepMergedPath();

/** DICE_SWEEP_EVENTS=1: every sweep participant journals structured
 *  events into <results>/events/ and the coordinator merges them into
 *  one Chrome timeline at sweep end (DICE_SWEEP_EVENTS=0 / unset is
 *  the zero-cost off state). */
bool sweepEventsEnabled();

/** DICE_SWEEP_TIMELINE: path for the merged Chrome trace-event
 *  timeline ("" = <results>/timeline.json). */
std::string sweepTimelinePath();

/** DICE_SWEEP_STRAGGLER_K: a cell slower than k x p90 of the batch's
 *  cell latencies is flagged as a straggler (default 4.0). */
double sweepStragglerK();

/** Make @p name safe as a file stem ([A-Za-z0-9._-], rest -> '_'). */
std::string sanitizeFileStem(const std::string &name);

} // namespace dice

#endif // DICE_COMMON_TELEMETRY_HPP
