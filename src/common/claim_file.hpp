/**
 * @file
 * Shared-filesystem claim/lease files.
 *
 * Several subsystems coordinate exactly-once work across processes —
 * possibly on different hosts sharing one filesystem — through small
 * marker files created with O_EXCL: the arena store's per-stream
 * generation claims (`src/workloads/arena_store.cpp`) and the sweep
 * scheduler's per-cell leases (`bench/sweep_queue.cpp`). This module
 * is the one implementation of that protocol.
 *
 * A claim file's body is `pid <pid> host <host>\n`. Liveness is
 * decided in two tiers:
 *  - same host: the pid is probed directly (kill(pid, 0)), so a
 *    crashed holder's claim is breakable immediately;
 *  - different host (or unparseable body): the claim is presumed live
 *    until its mtime outlives the caller's staleness threshold — the
 *    shared-filesystem fallback. Holders of long-running work keep
 *    their claims fresh by periodically rewriting them
 *    (refreshClaimFile), so only a dead or wedged holder ever goes
 *    stale.
 *
 * Breakers remove the stale file and retake it via O_EXCL, so two
 * breakers racing on the same stale claim cannot both win.
 */

#ifndef DICE_COMMON_CLAIM_FILE_HPP
#define DICE_COMMON_CLAIM_FILE_HPP

#include <cstdint>
#include <filesystem>
#include <string>

namespace dice
{

/** This process's pid, as written into claim bodies. */
long claimPid();

/** This machine's hostname ("unknown" if unavailable). */
const std::string &claimHost();

/** Whether a same-host pid still names a live process. */
bool claimPidAlive(long pid);

/** Parse a `pid <pid> host <host>` claim body; false on garbage. */
bool parseClaimBody(const std::string &content, long &pid,
                    std::string &host);

/** Seconds since @p path was last written (0 on stat failure). */
std::uint64_t fileAgeSeconds(const std::filesystem::path &path);

/** Outcome of an O_EXCL claim-file creation attempt. */
enum class ClaimAttempt
{
    Acquired, ///< The file was created; this process holds the claim.
    Busy,     ///< The file already exists (someone else holds it).
    Error     ///< Unclaimable (read-only dir, no O_EXCL support, ...).
};

/**
 * Atomically create @p path with this process's `pid/host` body.
 * Never blocks; Busy means the caller should check liveness and
 * either wait or break the claim.
 */
ClaimAttempt createClaimFile(const std::filesystem::path &path);

/**
 * Whether @p path names a claim whose holder is presumed alive:
 * the file exists, its same-host pid (if parseable) is live, and its
 * mtime is younger than @p stale_seconds. False means the claim is
 * safe to break (or was already released).
 */
bool claimFileLive(const std::filesystem::path &path,
                   std::uint64_t stale_seconds);

/**
 * Rewrite @p path's body (atomic replace) to push its mtime forward —
 * the holder's heartbeat. Only the claim holder may call this; false
 * on I/O failure (the claim then ages toward staleness as if the
 * holder had died, which is the safe direction).
 */
bool refreshClaimFile(const std::filesystem::path &path);

/**
 * Crash- and race-safe small-file publish: @p content goes to a
 * unique temp name in @p path's directory, then renames into place,
 * so concurrent writers never collide and readers never observe a
 * torn file. False on I/O failure.
 */
bool atomicWriteFile(const std::filesystem::path &path,
                     const std::string &content);

} // namespace dice

#endif // DICE_COMMON_CLAIM_FILE_HPP
