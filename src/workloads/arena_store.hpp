/**
 * @file
 * Persistent on-disk spill of TraceArena reference streams.
 *
 * Generating a sweep-scale reference stream costs seconds of CPU; the
 * in-process TraceArena already makes that a once-per-process cost,
 * and the ArenaStore makes it once-per-machine (or once per shared
 * filesystem): every generated TraceSet is serialized into
 * `bench_cache/arena/` and later processes — parallel sweep workers,
 * reruns of the same bench, entirely different bench binaries — load
 * the packed planes back instead of regenerating.
 *
 * On-disk format (one file per (workload, seed, cores, capacity,
 * length) key, named by a stable hash of the key):
 *
 *   [0]  magic   "DICEARNA"            (8 B)
 *   [8]  version u32 (kFormatVersion) + stream count u32
 *   [16] payload size u64
 *   [24] payload checksum u64 (FNV-1a)
 *   [32] payload: PackedTrace::serializeTo records, one per core,
 *        each 8-byte aligned (raw plane dumps — the file can be
 *        mmapped and the planes copied out with no decoding pass)
 *
 * Files are written to a unique temp name and atomically renamed, so
 * readers never observe torn writes; a truncated, corrupted, or
 * version-mismatched file fails validation and reads as a miss (the
 * caller regenerates and rewrites it).
 *
 * Cross-process dedup: before generating, a worker takes a claim file
 * (`<key>.claim`, created with O_EXCL via the shared claim/lease
 * protocol in common/claim_file.hpp) naming its pid and host. Other
 * workers that miss on the same key wait for the claim holder's
 * result instead of generating a duplicate. A claim whose process has
 * died (same host, pid gone) or whose file has gone stale (mtime
 * older than the stale threshold — the shared-filesystem fallback) is
 * broken with a warning, so a crashed worker never wedges later runs.
 */

#ifndef DICE_WORKLOADS_ARENA_STORE_HPP
#define DICE_WORKLOADS_ARENA_STORE_HPP

#include <cstdint>
#include <filesystem>
#include <string>

#include "workloads/trace_arena.hpp"

namespace dice
{

/** The cache key of one spilled TraceSet. */
struct ArenaStoreKey
{
    std::string workload;
    std::uint64_t seed = 0;
    std::uint32_t num_cores = 0;
    std::uint64_t reference_capacity = 0;
    std::uint64_t refs_per_core = 0;
};

/** Directory-backed persistent cache of serialized TraceSets. */
class ArenaStore
{
  public:
    /** Bump when the serialized stream layout changes. */
    static constexpr std::uint32_t kFormatVersion = 1;

    explicit ArenaStore(std::filesystem::path dir);

    const std::filesystem::path &dir() const { return dir_; }

    /** Stable file stem for @p key (readable prefix + key hash). */
    static std::string fileStem(const ArenaStoreKey &key);

    /** Path of the spill file for @p key. */
    std::filesystem::path resultPath(const ArenaStoreKey &key) const;

    /**
     * Load the spilled set for @p key into @p out. False — a miss —
     * for missing files and for any file that fails magic/version/
     * size/checksum validation or stream deserialization.
     */
    bool load(const ArenaStoreKey &key,
              std::shared_ptr<const TraceSet> &out) const;

    /**
     * Serialize @p set and atomically publish it as @p key's spill
     * file. False on I/O failure (the store is an optimization; the
     * caller keeps its in-memory set either way).
     */
    bool save(const ArenaStoreKey &key, const TraceSet &set) const;

    /** Serialize @p set into @p out exactly as save() writes it. */
    static void serialize(const TraceSet &set, std::string &out);

    /** Inverse of serialize(); false on any validation failure. */
    static bool deserialize(const char *data, std::size_t size,
                            TraceSet &out);

    /**
     * RAII ownership of a key's generation claim. release() (or the
     * destructor) removes the claim file; a process that dies while
     * holding one leaves it for stale-claim recovery.
     */
    class Claim
    {
      public:
        Claim() = default;
        ~Claim() { release(); }
        Claim(Claim &&other) noexcept { *this = std::move(other); }
        Claim &
        operator=(Claim &&other) noexcept
        {
            release();
            path_ = std::move(other.path_);
            other.path_.clear();
            return *this;
        }
        Claim(const Claim &) = delete;
        Claim &operator=(const Claim &) = delete;

        bool held() const { return !path_.empty(); }
        void release();

      private:
        friend class ArenaStore;
        std::filesystem::path path_;
    };

    /**
     * Try to become @p key's generator. True: @p claim now holds the
     * claim file (release it after save()). False: another live
     * process holds it — poll load() / claimHolderAlive() instead.
     * Stale claims (dead same-host pid, or mtime beyond the stale
     * threshold) are broken with a warning before retrying.
     */
    bool tryClaim(const ArenaStoreKey &key, Claim &claim) const;

    /**
     * Whether @p key's claim file still exists and is not stale. Used
     * by waiters: once the holder vanishes without publishing a
     * result, the waiter claims and generates itself.
     */
    bool claimHolderAlive(const ArenaStoreKey &key) const;

    /** Claim age beyond which it is presumed dead (seconds). */
    static std::uint64_t staleClaimSeconds();

  private:
    std::filesystem::path claimPath(const ArenaStoreKey &key) const;

    std::filesystem::path dir_;
};

} // namespace dice

#endif // DICE_WORKLOADS_ARENA_STORE_HPP
