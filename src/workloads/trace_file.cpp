#include "trace_file.hpp"

#include <sstream>

#include "common/log.hpp"

namespace dice
{

TraceFileWriter::TraceFileWriter(const std::string &path) : out_(path)
{
    if (!out_)
        dice_fatal("cannot open trace file '%s' for writing",
                   path.c_str());
}

void
TraceFileWriter::comment(const std::string &text)
{
    out_ << "# " << text << '\n';
}

void
TraceFileWriter::append(const MemRef &ref)
{
    out_ << (ref.is_write ? 'W' : 'R') << ' ' << std::hex << ref.line
         << std::dec << ' ' << ref.gap_instr << ' ' << std::hex << ref.pc
         << std::dec << '\n';
    ++written_;
}

TraceFileReader::TraceFileReader(const std::string &path)
    : path_(path), in_(path)
{
    if (!in_)
        dice_fatal("cannot open trace file '%s'", path.c_str());
}

bool
TraceFileReader::next(MemRef &ref)
{
    std::string line;
    while (std::getline(in_, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        char kind = 0;
        ss >> kind >> std::hex >> ref.line >> std::dec >>
            ref.gap_instr >> std::hex >> ref.pc;
        if (!ss || (kind != 'R' && kind != 'W')) {
            dice_warn("malformed trace record in %s: '%s'", path_.c_str(),
                      line.c_str());
            continue;
        }
        ref.is_write = kind == 'W';
        ++consumed_;
        return true;
    }
    return false;
}

void
TraceFileReader::rewind()
{
    in_.clear();
    in_.seekg(0);
    consumed_ = 0;
}

} // namespace dice
