/**
 * @file
 * Synthetic memory-reference trace generation.
 *
 * Each core runs one TraceGenerator over its private region. The
 * generator emits bursts whose kind (sequential / strided / random) is
 * drawn from the profile's pattern mix, targeting a hot sub-region with
 * the profile's bias. Sequential bursts touch consecutive lines — the
 * spatial-pair reuse that bandwidth-aware indexing converts into free
 * extra lines. Inter-reference instruction gaps follow the profile's
 * L3 access tempo so the core model sees realistic memory intensity.
 */

#ifndef DICE_WORKLOADS_TRACEGEN_HPP
#define DICE_WORKLOADS_TRACEGEN_HPP

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workloads/profile.hpp"

namespace dice
{

/** One memory reference presented to the cache hierarchy. */
struct MemRef
{
    LineAddr line = 0;
    bool is_write = false;
    /** Non-memory instructions since the previous reference. */
    std::uint32_t gap_instr = 0;
    /** Synthetic PC of the requesting instruction (feeds MAP-I). */
    std::uint64_t pc = 0;
};

/** Per-core reference-stream generator. */
class TraceGenerator
{
  public:
    /**
     * @param profile Workload statistics.
     * @param region_start First line of this core's region.
     * @param region_lines Region length in lines (the scaled
     *        per-core footprint).
     * @param seed Core-unique RNG seed.
     */
    TraceGenerator(const WorkloadProfile &profile, LineAddr region_start,
                   std::uint64_t region_lines, std::uint64_t seed);

    /** Produce the next reference. */
    MemRef next();

    const WorkloadProfile &profile() const { return *profile_; }
    std::uint64_t regionLines() const { return region_lines_; }

  private:
    enum class BurstKind : std::uint8_t { Seq, Stride, Rand };

    void startBurst();
    LineAddr randomLineIn(std::uint64_t lo_lines, std::uint64_t n_lines);

    const WorkloadProfile *profile_;
    LineAddr region_start_;
    std::uint64_t region_lines_;
    std::uint64_t hot_lines_;
    Rng rng_;

    BurstKind kind_ = BurstKind::Seq;
    LineAddr cursor_ = 0;
    std::uint32_t remaining_ = 0;
    std::uint32_t stride_ = 1;
    std::uint32_t obj_remaining_ = 0;
    std::uint64_t burst_pc_ = 0;
    std::uint32_t mean_gap_;

    /** Ring of recently-emitted lines, for short-term reuse. */
    std::vector<LineAddr> recent_;
    std::size_t recent_pos_ = 0;
};

} // namespace dice

#endif // DICE_WORKLOADS_TRACEGEN_HPP
