/**
 * @file
 * Trace-file import/export.
 *
 * The paper drives USIMM with PinPoints trace slices; this repo
 * synthesizes traces, but users with real traces (ChampSim/Pin-style)
 * can convert them to this format and replay them, or export the
 * synthetic streams for use by other simulators.
 *
 * Format: plain text, one reference per line,
 *
 *     R <line-hex> <gap-instructions> <pc-hex>
 *     W <line-hex> <gap-instructions> <pc-hex>
 *
 * with '#'-prefixed comment lines allowed anywhere.
 */

#ifndef DICE_WORKLOADS_TRACE_FILE_HPP
#define DICE_WORKLOADS_TRACE_FILE_HPP

#include <fstream>
#include <string>

#include "workloads/tracegen.hpp"

namespace dice
{

/** Streams MemRefs out to a trace file. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal when the file cannot open. */
    explicit TraceFileWriter(const std::string &path);

    /** Write a header comment (e.g. generator provenance). */
    void comment(const std::string &text);

    /** Append one reference. */
    void append(const MemRef &ref);

    std::uint64_t written() const { return written_; }

  private:
    std::ofstream out_;
    std::uint64_t written_ = 0;
};

/** Reads MemRefs back from a trace file. */
class TraceFileReader
{
  public:
    /** Open @p path; fatal when the file cannot open. */
    explicit TraceFileReader(const std::string &path);

    /**
     * Read the next reference into @p ref.
     * @return false at end of file.
     */
    bool next(MemRef &ref);

    /** Restart from the beginning of the file. */
    void rewind();

    std::uint64_t consumed() const { return consumed_; }

  private:
    std::string path_;
    std::ifstream in_;
    std::uint64_t consumed_ = 0;
};

} // namespace dice

#endif // DICE_WORKLOADS_TRACE_FILE_HPP
