#include "trace_arena.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/sweep_events.hpp"
#include "common/telemetry.hpp"
#include "common/trace_events.hpp"
#include "common/rng.hpp"
#include "workloads/arena_store.hpp"
#include "workloads/region_plan.hpp"

namespace dice
{

namespace
{

/** Default resident budget when DICE_TRACE_ARENA_BYTES is unset. */
constexpr std::uint64_t kDefaultBudgetBytes = 512_MiB;

/** How long a miss waits on another process's generation claim before
 *  giving up and generating its own copy (DICE_ARENA_WAIT_MS). */
std::uint64_t
claimWaitMs()
{
    if (const char *env = std::getenv("DICE_ARENA_WAIT_MS"))
        return std::strtoull(env, nullptr, 10);
    return 120'000;
}

/** Environment-derived spill directory ("" = store disabled). */
std::string
storeDirFromEnv()
{
    if (std::getenv("DICE_BENCH_NO_CACHE") != nullptr)
        return "";
    if (const char *env = std::getenv("DICE_ARENA_SPILL")) {
        if (std::strcmp(env, "0") == 0)
            return "";
    }
    if (const char *env = std::getenv("DICE_ARENA_DIR"))
        return env;
    std::string base = "bench_cache";
    if (const char *env = std::getenv("DICE_BENCH_CACHE_DIR"))
        base = env;
    return base + "/arena";
}

/**
 * The cross-process protocol of a store-backed miss. Returns true with
 * @p out filled when the stream came off disk (possibly after waiting
 * out another process's generation); returns false with @p claim held
 * (when claimable) when the caller must generate — and, via the claim,
 * has the exclusive right to. A waiter whose claim holder dies
 * recovers by breaking the stale claim and taking over; one whose wait
 * times out generates a duplicate rather than stalling forever.
 */
bool
loadOrAwait(const ArenaStore &store, const ArenaStoreKey &key,
            ArenaStore::Claim &claim,
            std::shared_ptr<const TraceSet> &out)
{
    if (store.load(key, out))
        return true;

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(claimWaitMs());
    for (;;) {
        if (store.tryClaim(key, claim)) {
            // Double-check under the claim: the previous holder may
            // have published between our load miss and its release.
            if (store.load(key, out)) {
                claim.release();
                return true;
            }
            return false;
        }
        // Another live process is generating this key: poll for its
        // result instead of burning CPU on a duplicate.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        if (store.load(key, out))
            return true;
        if (std::chrono::steady_clock::now() >= deadline) {
            dice_warn("arena: waited %llu ms on claim for %s; "
                      "generating a duplicate",
                      static_cast<unsigned long long>(claimWaitMs()),
                      key.workload.c_str());
            return false;
        }
    }
}

} // namespace

std::shared_ptr<const TraceSet>
generateTraceSet(const std::vector<WorkloadProfile> &profiles,
                 std::uint32_t num_cores,
                 std::uint64_t reference_capacity, std::uint64_t seed,
                 std::uint64_t refs_per_core, unsigned jobs)
{
    dice_assert(profiles.size() == num_cores,
                "expected %u per-core profiles, got %zu", num_cores,
                profiles.size());
    const std::vector<CoreRegion> regions =
        planCoreRegions(num_cores, reference_capacity, profiles);

    auto set = std::make_shared<TraceSet>();
    set->streams.resize(num_cores);
    parallelFor(num_cores, jobs, [&](std::size_t cid) {
        TraceGenerator gen(profiles[cid], regions[cid].start,
                           regions[cid].lines,
                           mix64(seed, static_cast<std::uint64_t>(cid)));
        PackedTrace &trace = set->streams[cid];
        trace.reserve(refs_per_core);
        for (std::uint64_t r = 0; r < refs_per_core; ++r)
            trace.append(gen.next());
        trace.seal();
    });
    return set;
}

TraceArena &
TraceArena::instance()
{
    static TraceArena arena;
    return arena;
}

TraceArena::TraceArena() : budget_bytes_(kDefaultBudgetBytes)
{
    if (const char *env = std::getenv("DICE_TRACE_ARENA_BYTES"))
        budget_bytes_ = std::strtoull(env, nullptr, 10);
}

TraceArena::~TraceArena() = default;

std::unique_ptr<ArenaStore>
TraceArena::storeForUse() const
{
    std::string dir;
    {
        std::unique_lock lock(mu_);
        dir = store_dir_override_.has_value() ? *store_dir_override_
                                              : storeDirFromEnv();
    }
    if (dir.empty())
        return nullptr;
    return std::make_unique<ArenaStore>(dir);
}

std::shared_ptr<const TraceSet>
TraceArena::acquire(const std::string &workload, std::uint64_t seed,
                    std::uint32_t num_cores,
                    std::uint64_t reference_capacity,
                    std::uint64_t refs_per_core,
                    const std::vector<WorkloadProfile> &profiles,
                    unsigned jobs)
{
    const Key key{workload, seed, num_cores, reference_capacity,
                  refs_per_core};

    std::promise<std::shared_ptr<const TraceSet>> promise;
    {
        std::unique_lock lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Resident or in flight either way: the requester shares
            // the one generation instead of starting its own.
            ++hits_;
            it->second.lru_tick = ++lru_clock_;
            auto future = it->second.future;
            lock.unlock();
            return future.get();
        }
        Entry entry;
        entry.future = promise.get_future().share();
        entry.lru_tick = ++lru_clock_;
        entries_.emplace(key, std::move(entry));
    }

    // Fill the entry outside the lock; waiters block on the shared
    // future. Disk before generate: any stream some process already
    // paid for is loaded back from the persistent store, and a
    // generation claim keeps concurrent worker processes from
    // duplicating the work we are about to do.
    const std::unique_ptr<ArenaStore> store = storeForUse();
    const ArenaStoreKey skey{workload, seed, num_cores,
                             reference_capacity, refs_per_core};
    std::shared_ptr<const TraceSet> set;
    bool from_disk = false;
    bool spilled = false;
    ArenaStore::Claim claim;

    if (store != nullptr) {
        TraceSpan load_span("arena_load", workload);
        from_disk = loadOrAwait(*store, skey, claim, set);
    }
    if (set == nullptr) {
        set = generateTraceSet(profiles, num_cores, reference_capacity,
                               seed, refs_per_core, jobs);
        if (store != nullptr) {
            TraceSpan spill_span("arena_spill", workload);
            spilled = store->save(skey, *set);
        }
    }
    claim.release();
    promise.set_value(set);

    // Journal the arena outcome: a sweep timeline showing which cells
    // hit disk vs paid a full generation (or re-spilled) is usually
    // the answer to "why is worker 2 slower".
    SweepJournal &journal = SweepJournal::instance();
    if (journal.enabled()) {
        const std::string jkey =
            workload + ".s" + std::to_string(seed);
        journal.arena(from_disk ? "disk_hit" : "generate", jkey);
        if (spilled)
            journal.arena("spill", jkey);
    }

    {
        std::unique_lock lock(mu_);
        if (from_disk)
            ++disk_hits_;
        else
            ++generations_;
        if (spilled)
            ++spills_;
        // clear() may have raced the generation; the set is still
        // handed to every waiter through the future either way.
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            it->second.bytes = set->bytes();
            resident_bytes_ += it->second.bytes;
            evictOverBudgetLocked();
        }
    }
    return set;
}

void
TraceArena::evictOverBudgetLocked()
{
    while (resident_bytes_ > budget_bytes_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.bytes == 0)
                continue; // still generating; nothing resident yet
            if (victim == entries_.end() ||
                it->second.lru_tick < victim->second.lru_tick)
                victim = it;
        }
        if (victim == entries_.end())
            return;
        resident_bytes_ -= victim->second.bytes;
        // Mark the eviction on the trace timeline: budget-driven
        // stream drops are exactly the events that explain a sweep
        // regenerating a trace it already paid for.
        TraceLog &log = TraceLog::instance();
        if (log.enabled()) {
            std::string args = "{\"workload\": \"";
            appendJsonEscaped(args, std::get<0>(victim->first));
            char buf[96];
            std::snprintf(
                buf, sizeof buf,
                "\", \"bytes\": %llu, \"resident_bytes\": %llu}",
                static_cast<unsigned long long>(victim->second.bytes),
                static_cast<unsigned long long>(resident_bytes_));
            args += buf;
            log.instant("arena", "arena_evict", std::move(args));
        }
        entries_.erase(victim);
        ++evictions_;
    }
}

TraceArena::Stats
TraceArena::stats() const
{
    std::unique_lock lock(mu_);
    Stats s;
    s.generations = generations_;
    s.hits = hits_;
    s.evictions = evictions_;
    s.disk_hits = disk_hits_;
    s.spills = spills_;
    s.resident_bytes = resident_bytes_;
    s.entries = entries_.size();
    return s;
}

StatGroup
TraceArena::statGroup() const
{
    StatGroup g("trace_arena");
    g.addFormula("hits", [this]() { return double(stats().hits); });
    g.addFormula("misses",
                 [this]() { return double(stats().generations); });
    g.addFormula("evictions",
                 [this]() { return double(stats().evictions); });
    g.addFormula("disk_hits",
                 [this]() { return double(stats().disk_hits); });
    g.addFormula("spills", [this]() { return double(stats().spills); });
    g.addFormula("resident_bytes",
                 [this]() { return double(stats().resident_bytes); });
    g.addFormula("entries", [this]() { return double(stats().entries); });
    return g;
}

void
TraceArena::setByteBudget(std::uint64_t bytes)
{
    std::unique_lock lock(mu_);
    budget_bytes_ = bytes;
    evictOverBudgetLocked();
}

void
TraceArena::clear()
{
    std::unique_lock lock(mu_);
    entries_.clear();
    resident_bytes_ = 0;
    generations_ = 0;
    hits_ = 0;
    evictions_ = 0;
    disk_hits_ = 0;
    spills_ = 0;
    lru_clock_ = 0;
}

void
TraceArena::setStoreDirForTest(std::optional<std::string> dir)
{
    std::unique_lock lock(mu_);
    store_dir_override_ = std::move(dir);
}

} // namespace dice
