#include "tracegen.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dice
{

namespace
{

/** Depth of the short-term reuse window (lines). */
constexpr std::size_t kRecentLines = 384;

} // namespace

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               LineAddr region_start,
                               std::uint64_t region_lines,
                               std::uint64_t seed)
    : profile_(&profile), region_start_(region_start),
      region_lines_(region_lines), rng_(seed)
{
    dice_assert(region_lines_ >= 256,
                "region of %llu lines is too small for %s",
                static_cast<unsigned long long>(region_lines_),
                profile.name.c_str());
    hot_lines_ = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                static_cast<double>(region_lines_) * profile.hot_frac));

    // Mean instructions between L3-level references. Table 3 gives L3
    // *misses* per kilo-instruction; with the paper's ~37% baseline L3
    // hit rate the L3 access rate is mpki / 0.63.
    const double accesses_per_ki = profile.l3_mpki / 0.63;
    mean_gap_ = static_cast<std::uint32_t>(
        std::clamp(1000.0 / std::max(accesses_per_ki, 0.05), 1.0,
                   20000.0));
    startBurst();
}

LineAddr
TraceGenerator::randomLineIn(std::uint64_t lo_lines, std::uint64_t n_lines)
{
    return region_start_ + lo_lines + rng_.below(n_lines);
}

void
TraceGenerator::startBurst()
{
    // All burst kinds share the same mean length so the per-burst kind
    // probabilities equal the per-reference pattern fractions.
    const WorkloadProfile &p = *profile_;
    const double total = p.seq_frac + p.stride_frac + p.rand_frac;
    const double u = rng_.uniform() * total;
    remaining_ = static_cast<std::uint32_t>(rng_.between(32, 128));
    if (u < p.seq_frac) {
        kind_ = BurstKind::Seq;
        stride_ = 1;
    } else if (u < p.seq_frac + p.stride_frac) {
        kind_ = BurstKind::Stride;
        stride_ = static_cast<std::uint32_t>(rng_.between(2, 8));
    } else {
        kind_ = BurstKind::Rand;
        stride_ = 1;
    }

    const bool hot = rng_.chance(p.hot_bias);
    const std::uint64_t span = hot ? hot_lines_ : region_lines_;
    const std::uint64_t reach =
        static_cast<std::uint64_t>(remaining_) * stride_;
    const std::uint64_t max_start = span > reach ? span - reach : 1;
    cursor_ = randomLineIn(0, max_start);

    // One synthetic PC per (burst kind, slot): loops re-execute the
    // same instructions, so MAP-I sees stable PCs.
    const std::uint64_t slot = rng_.below(p.num_pcs);
    burst_pc_ = mix64(mix64(static_cast<std::uint64_t>(kind_), slot),
                      region_start_);
}

MemRef
TraceGenerator::next()
{
    if (remaining_ == 0)
        startBurst();

    MemRef ref;

    // Short-term temporal locality: with probability l3_reuse_frac,
    // re-touch one of the last few hundred lines instead of advancing
    // the burst. These re-references are what the L3 absorbs.
    if (!recent_.empty() && rng_.chance(profile_->l3_reuse_frac)) {
        ref.line = recent_[rng_.below(recent_.size())];
        ref.is_write = rng_.chance(profile_->write_frac);
        ref.pc = burst_pc_;
        ref.gap_instr = static_cast<std::uint32_t>(rng_.between(
            mean_gap_ / 2 + 1, mean_gap_ + mean_gap_ / 2 + 1));
        return ref;
    }

    ref.line = cursor_;
    ref.is_write = rng_.chance(profile_->write_frac);
    ref.pc = burst_pc_;
    ref.gap_instr = static_cast<std::uint32_t>(
        rng_.between(mean_gap_ / 2 + 1, mean_gap_ + mean_gap_ / 2 + 1));

    if (kind_ == BurstKind::Rand) {
        // Walk through the current multi-line object before jumping.
        if (obj_remaining_ > 1) {
            --obj_remaining_;
            ++cursor_;
            if (cursor_ >= region_start_ + region_lines_)
                cursor_ = region_start_;
        } else {
            const bool hot = rng_.chance(profile_->hot_bias);
            cursor_ = randomLineIn(0, hot ? hot_lines_ : region_lines_);
            obj_remaining_ = static_cast<std::uint32_t>(rng_.between(
                1, 2 * profile_->rand_obj_lines - 1));
        }
    } else {
        cursor_ += stride_;
        if (cursor_ >= region_start_ + region_lines_)
            cursor_ = region_start_;
    }
    --remaining_;

    if (recent_.size() < kRecentLines) {
        recent_.push_back(ref.line);
    } else {
        recent_[recent_pos_] = ref.line;
        recent_pos_ = (recent_pos_ + 1) % kRecentLines;
    }
    return ref;
}

} // namespace dice
