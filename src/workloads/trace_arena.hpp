/**
 * @file
 * Process-wide store of pre-generated reference streams.
 *
 * Every cell of a bench sweep simulates some (workload, organization)
 * pair, but the reference stream a cell consumes depends only on
 * (workload, seed, num_cores, reference_capacity, stream length) —
 * not on the L4 organization under test. Re-deriving it per cell made
 * trace generation a per-column cost; the arena makes it a per-stream
 * cost: the first request for a key generates all per-core streams in
 * parallel into packed SoA buffers (PackedTrace, ~12 B/reference) and
 * every later request replays the same immutable set.
 *
 * Concurrency: requests are deduplicated with per-key futures, so
 * racing sweep workers never generate a stream twice. Memory: resident
 * sets are LRU-evicted past a byte budget (DICE_TRACE_ARENA_BYTES;
 * callers keep shared_ptr ownership, so eviction only drops the cache
 * entry, never a stream in use).
 *
 * Persistence: misses fall back disk-before-generate through an
 * ArenaStore under `bench_cache/arena/` — a stream any process on
 * this machine (or this shared filesystem) ever generated is loaded
 * back instead of regenerated, and freshly generated streams are
 * spilled for everyone else. O_EXCL claim files make generation
 * exactly-once across concurrent worker processes. Disabled together
 * with the result cache (DICE_BENCH_NO_CACHE=1) or alone with
 * DICE_ARENA_SPILL=0; DICE_ARENA_DIR overrides the directory.
 */

#ifndef DICE_WORKLOADS_TRACE_ARENA_HPP
#define DICE_WORKLOADS_TRACE_ARENA_HPP

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.hpp"
#include "workloads/packed_trace.hpp"
#include "workloads/profile.hpp"

namespace dice
{

class ArenaStore;

/** All per-core streams of one (workload, seed, ...) key. */
struct TraceSet
{
    std::vector<PackedTrace> streams; // one per core

    /** Aliasing view of one core's stream (shares ownership). */
    static std::shared_ptr<const PackedTrace>
    stream(const std::shared_ptr<const TraceSet> &set,
           std::uint32_t cid)
    {
        return std::shared_ptr<const PackedTrace>(
            set, &set->streams.at(cid));
    }

    std::size_t
    bytes() const
    {
        std::size_t total = 0;
        for (const PackedTrace &t : streams)
            total += t.bytes();
        return total;
    }
};

/**
 * Generate @p refs_per_core references for every core, one parallelFor
 * task per core across @p jobs threads. Pure function of its inputs;
 * the arena calls it on a miss, and tests/benchmarks call it directly
 * to build replay sets without touching the process-wide cache.
 */
std::shared_ptr<const TraceSet>
generateTraceSet(const std::vector<WorkloadProfile> &profiles,
                 std::uint32_t num_cores,
                 std::uint64_t reference_capacity, std::uint64_t seed,
                 std::uint64_t refs_per_core, unsigned jobs);

/** Keyed, LRU-bounded, thread-safe cache of TraceSets. */
class TraceArena
{
  public:
    /** The process-wide instance the bench harness shares. */
    static TraceArena &instance();

    /** Byte budget from DICE_TRACE_ARENA_BYTES (default 512 MiB). */
    TraceArena();

    ~TraceArena();

    /**
     * Return the streams for the key, generating them (once, even
     * under concurrent requests) on first use. @p profiles must be
     * the per-core profiles the key's workload name denotes.
     */
    std::shared_ptr<const TraceSet>
    acquire(const std::string &workload, std::uint64_t seed,
            std::uint32_t num_cores, std::uint64_t reference_capacity,
            std::uint64_t refs_per_core,
            const std::vector<WorkloadProfile> &profiles, unsigned jobs);

    /** Monotonic counters (exactly-once generation is testable). */
    struct Stats
    {
        std::uint64_t generations = 0; ///< Streams built from scratch.
        std::uint64_t hits = 0;        ///< Served resident or in-flight.
        std::uint64_t evictions = 0;   ///< Entries dropped by the LRU.
        std::uint64_t disk_hits = 0;   ///< Loaded from the ArenaStore.
        std::uint64_t spills = 0;      ///< Generated sets spilled to disk.
        std::uint64_t resident_bytes = 0;
        std::uint64_t entries = 0;
    };

    Stats stats() const;

    /**
     * The same counters as a telemetry group ("trace_arena"), for
     * registration in a StatRegistry. Values are read live (each
     * formula snapshots the counters under the arena lock), so a
     * per-cell stats export shows arena behavior as of that cell.
     */
    StatGroup statGroup() const;

    /** Override the byte budget (tests); evicts down immediately. */
    void setByteBudget(std::uint64_t bytes);

    /** Drop every resident entry and zero the counters (tests). */
    void clear();

    /**
     * Override the persistent store location (tests): a path pins the
     * spill directory, an empty string disables the store, and
     * std::nullopt restores the environment-derived default
     * (DICE_ARENA_DIR / bench_cache/arena, gated by
     * DICE_BENCH_NO_CACHE and DICE_ARENA_SPILL).
     */
    void setStoreDirForTest(std::optional<std::string> dir);

  private:
    using Key = std::tuple<std::string, std::uint64_t, std::uint32_t,
                           std::uint64_t, std::uint64_t>;

    struct Entry
    {
        std::shared_future<std::shared_ptr<const TraceSet>> future;
        std::uint64_t lru_tick = 0;
        std::size_t bytes = 0; ///< 0 until generation completes.
    };

    /** Evict LRU-complete entries until the budget holds. Locked. */
    void evictOverBudgetLocked();

    /** The persistent store to use right now (null = disabled). */
    std::unique_ptr<ArenaStore> storeForUse() const;

    mutable std::mutex mu_;
    std::map<Key, Entry> entries_;
    std::uint64_t budget_bytes_;
    std::uint64_t resident_bytes_ = 0;
    std::uint64_t lru_clock_ = 0;
    std::uint64_t generations_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t disk_hits_ = 0;
    std::uint64_t spills_ = 0;
    /** Test override: nullopt = env default, "" = store disabled. */
    std::optional<std::string> store_dir_override_;
};

} // namespace dice

#endif // DICE_WORKLOADS_TRACE_ARENA_HPP
