#include "arena_store.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/claim_file.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace dice
{

namespace
{

constexpr char kMagic[8] = {'D', 'I', 'C', 'E', 'A', 'R', 'N', 'A'};
constexpr std::size_t kHeaderBytes = 32;

/** Stable FNV-1a over a byte range (same scheme as the result cache). */
std::uint64_t
fnv1aBytes(const char *data, std::size_t size)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<std::uint8_t>(data[i]);
        h *= 0x100000001B3ull;
    }
    return h;
}

void
putU32(std::string &out, std::uint32_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    out.append(buf, sizeof v);
}

} // namespace

ArenaStore::ArenaStore(std::filesystem::path dir) : dir_(std::move(dir))
{
}

std::string
ArenaStore::fileStem(const ArenaStoreKey &key)
{
    std::string id = key.workload;
    id += '|';
    id += std::to_string(key.seed);
    id += '|';
    id += std::to_string(key.num_cores);
    id += '|';
    id += std::to_string(key.reference_capacity);
    id += '|';
    id += std::to_string(key.refs_per_core);
    id += '|';
    id += std::to_string(kFormatVersion);
    return sanitizeFileStem(key.workload) + "." +
           std::to_string(mix64(fnv1aBytes(id.data(), id.size())));
}

std::filesystem::path
ArenaStore::resultPath(const ArenaStoreKey &key) const
{
    return dir_ / (fileStem(key) + ".trace");
}

std::filesystem::path
ArenaStore::claimPath(const ArenaStoreKey &key) const
{
    return dir_ / (fileStem(key) + ".claim");
}

void
ArenaStore::serialize(const TraceSet &set, std::string &out)
{
    std::string payload;
    for (const PackedTrace &t : set.streams)
        t.serializeTo(payload);

    out.clear();
    out.reserve(kHeaderBytes + payload.size());
    out.append(kMagic, sizeof kMagic);
    putU32(out, kFormatVersion);
    putU32(out, static_cast<std::uint32_t>(set.streams.size()));
    putU64(out, payload.size());
    putU64(out, fnv1aBytes(payload.data(), payload.size()));
    out += payload;
}

bool
ArenaStore::deserialize(const char *data, std::size_t size,
                        TraceSet &out)
{
    if (size < kHeaderBytes ||
        std::memcmp(data, kMagic, sizeof kMagic) != 0)
        return false;
    std::uint32_t version = 0, streams = 0;
    std::uint64_t payload_size = 0, checksum = 0;
    std::memcpy(&version, data + 8, sizeof version);
    std::memcpy(&streams, data + 12, sizeof streams);
    std::memcpy(&payload_size, data + 16, sizeof payload_size);
    std::memcpy(&checksum, data + 24, sizeof checksum);
    if (version != kFormatVersion)
        return false;
    if (payload_size != size - kHeaderBytes)
        return false;
    const char *payload = data + kHeaderBytes;
    if (fnv1aBytes(payload, payload_size) != checksum)
        return false;

    out.streams.clear();
    out.streams.resize(streams);
    std::size_t offset = 0;
    for (PackedTrace &t : out.streams) {
        if (!t.deserializeFrom(payload, payload_size, offset))
            return false;
    }
    return offset == payload_size;
}

bool
ArenaStore::load(const ArenaStoreKey &key,
                 std::shared_ptr<const TraceSet> &out) const
{
    std::ifstream in(resultPath(key), std::ios::binary);
    if (!in)
        return false;
    // One sized read, not an istreambuf_iterator slurp: spill files
    // are tens of MB and the per-char path costs more than the
    // deserialization itself.
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0)
        return false;
    in.seekg(0);
    std::string content(static_cast<std::size_t>(size), '\0');
    in.read(content.data(), size);
    if (!in)
        return false;

    auto set = std::make_shared<TraceSet>();
    if (!deserialize(content.data(), content.size(), *set))
        return false;
    out = std::move(set);
    return true;
}

bool
ArenaStore::save(const ArenaStoreKey &key, const TraceSet &set) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);

    std::string content;
    serialize(set, content);

    // Unique temp name + atomic rename: concurrent writers never
    // collide and readers never see a torn file (same protocol as the
    // bench result cache).
    static std::atomic<std::uint64_t> counter{0};
    const std::filesystem::path path = resultPath(key);
    std::filesystem::path tmp = path;
    tmp += ".tmp." + std::to_string(claimPid()) + "." +
           std::to_string(counter.fetch_add(1));
    {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf)
            return false;
        outf.write(content.data(),
                   static_cast<std::streamsize>(content.size()));
        if (!outf)
            return false;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

void
ArenaStore::Claim::release()
{
    if (path_.empty())
        return;
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    path_.clear();
}

std::uint64_t
ArenaStore::staleClaimSeconds()
{
    if (const char *env = std::getenv("DICE_ARENA_CLAIM_STALE_S"))
        return std::strtoull(env, nullptr, 10);
    return 600;
}

bool
ArenaStore::tryClaim(const ArenaStoreKey &key, Claim &claim) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    const std::filesystem::path path = claimPath(key);

    for (int attempt = 0; attempt < 2; ++attempt) {
        switch (createClaimFile(path)) {
          case ClaimAttempt::Acquired:
            claim.path_ = path;
            return true;
          case ClaimAttempt::Error:
            // Unclaimable dir (read-only, or a platform without
            // O_EXCL): just generate a private copy.
            return true;
          case ClaimAttempt::Busy:
            break;
        }
        if (claimHolderAlive(key))
            return false;
        dice_warn("arena: breaking stale claim %s",
                  path.string().c_str());
        std::filesystem::remove(path, ec);
        // Retake via O_EXCL so racing breakers cannot both win.
    }
    return false;
}

bool
ArenaStore::claimHolderAlive(const ArenaStoreKey &key) const
{
    // Generation takes seconds, so a claim older than the stale
    // threshold means the holder is gone.
    return claimFileLive(claimPath(key), staleClaimSeconds());
}

} // namespace dice
